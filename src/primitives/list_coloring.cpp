#include "primitives/list_coloring.hpp"

#include <algorithm>
#include <atomic>
#include <span>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/graph_view.hpp"
#include "local/sync_runner.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

namespace {

// Bitset width covering every color a sweep can observe: list entries plus
// the pre-existing partial coloring (all colors assigned *during* a sweep
// come from the lists, so the bound is sweep-invariant).
int palette_width(const ColorLists& lists, const std::vector<Color>& color) {
  Color mx = lists.max_color();
  for (const Color c : color) mx = std::max(mx, c);
  return static_cast<int>(mx) + 1;
}

// The calling worker's exclusion bitset; reset(width) per step reuses the
// backing words, so the sweep is allocation-free once warm.
PaletteSet& taken_set() {
  thread_local PaletteSet taken;
  return taken;
}

// Colors of already-colored neighbors of v removed from v's list
// (precondition checking only; the engine sweeps use the PaletteSet).
std::vector<Color> effective_list(const Graph& g, NodeId v,
                                  std::span<const Color> list,
                                  const std::vector<Color>& color) {
  std::vector<Color> taken;
  taken.reserve(g.degree(v));
  for (const NodeId u : g.neighbors(v))
    if (color[u] != kNoColor) taken.push_back(color[u]);
  std::sort(taken.begin(), taken.end());
  std::vector<Color> eff;
  eff.reserve(list.size());
  for (const Color c : list)
    if (!std::binary_search(taken.begin(), taken.end(), c)) eff.push_back(c);
  return eff;
}

void check_precondition(const Graph& g, const NodeMask& active,
                        const ColorLists& lists,
                        const std::vector<Color>& color) {
  DC_CHECK(active.size() == g.num_nodes());
  DC_CHECK(lists.size() == g.num_nodes());
  DC_CHECK(color.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!active[v]) continue;
    DC_CHECK_MSG(color[v] == kNoColor,
                 "active node " << v << " is already colored");
    int active_deg = 0;
    for (const NodeId u : g.neighbors(v))
      if (active[u]) ++active_deg;
    const auto eff = effective_list(g, v, lists[v], color);
    DC_CHECK_MSG(static_cast<int>(eff.size()) >= active_deg + 1,
                 "deg+1 precondition violated at node "
                     << v << ": effective list " << eff.size()
                     << " <= active degree " << active_deg);
  }
}

}  // namespace

int deg_plus_one_list_color(const Graph& g, const NodeMask& active,
                            const ColorLists& lists,
                            std::vector<Color>& color, LocalContext& ctx) {
  DefaultPhase scope(ctx, "deg+1-list");
  check_precondition(g, active, lists, color);

  std::vector<NodeId> active_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (active[v]) active_nodes.push_back(v);
  if (active_nodes.empty()) return 0;

  // Symmetry breaking: Linial + Kuhn-Wattenhofer reduction on the lazy
  // active-induced view gives a (deg_active+1)-class schedule in
  // O(Delta log Delta + log* n) rounds; then one greedy round per class.
  // Nodes of the same class are non-adjacent, so their simultaneous
  // choices cannot conflict.
  const InducedSubgraphView sub(g, active_nodes);
  RoundLedger sub_ledger;  // schedule rounds are re-charged below
  LocalContext sub_ctx(sub_ledger, ctx.engine(), ctx.seed());
  const LinialResult lin = schedule_coloring(sub, sub_ctx);

  // Class sweep on the *host* graph (exclusions come from all neighbors,
  // active or not): engine round t colors schedule class t. The exclusion
  // set is a word-parallel bitset; scanning the node's list in *its own
  // order* against it picks the same color the old sort+binary_search code
  // did, for sorted and unsorted lists alike.
  const int width = palette_width(lists, color);
  std::vector<Color> class_of(g.num_nodes(), -1);
  for (NodeId i = 0; i < sub.num_nodes(); ++i)
    class_of[sub.orig_of(i)] = lin.color[i];
  SyncRunner<Color> runner(g, color, ctx.round_indexed_engine());
  std::atomic<bool> failed{false};
  // Side data shipped into the plane so the class sweep can dispatch to
  // pool workers: the schedule, the CSR color lists, and the failure flag.
  // The thread_local PaletteSet works unchanged inside a worker process.
  const ShardSpan<Color> class_of_s = runner.ship(class_of);
  const ColorListsRef lists_ref{runner.ship(lists.raw_offsets()).data,
                                runner.ship(lists.raw_flat()).data};
  const ShardFlag fail_flag = runner.ship_flag(failed);
  const auto step = shard_safe(
      [class_of_s, lists_ref, width, fail_flag](const auto& v) -> Color {
        if (class_of_s[v.node()] != v.round()) return v.self();
        PaletteSet& taken = taken_set();
        taken.reset(width);
        v.for_each_neighbor([&](NodeId u) {
          const Color cu = v.neighbor(u);
          if (cu != kNoColor) taken.insert(cu);
        });
        for (const Color c : lists_ref[v.node()])
          if (!taken.contains(c)) return c;
        fail_flag.set();
        return v.self();
      });
  runner.run_rounds(lin.num_colors, step);
  DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
               "class-greedy ran out of colors");
  color = runner.take_states();

  const int rounds = lin.rounds + lin.num_colors;
  // The schedule's own rounds went into sub_ledger; charge them to the
  // caller's phase together with the class sweep.
  ctx.charge(rounds);
  return rounds;
}

namespace {

struct TrialState {
  Color color = kNoColor;
  Color trial = kNoColor;
  bool operator==(const TrialState&) const = default;
};

}  // namespace

int deg_plus_one_list_color_randomized(const Graph& g, const NodeMask& active,
                                       const ColorLists& lists,
                                       std::vector<Color>& color,
                                       LocalContext& ctx) {
  DefaultPhase scope(ctx, "deg+1-list-rand");
  check_precondition(g, active, lists, color);
  const std::uint64_t seed = ctx.seed();
  const int width = palette_width(lists, color);
  const int max_iterations = 64 * (32 - __builtin_clz(g.num_nodes() + 2));

  // One iteration = 2 engine rounds: trial (2t) then commit (2t+1). A
  // pending node's state flips every round (trial set, then cleared), and
  // decided/inactive nodes are fixpoints, so the user's frontier setting is
  // sound here and the sweep shrinks with the pending set.
  std::vector<TrialState> initial(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) initial[v].color = color[v];
  SyncRunner<TrialState> runner(g, std::move(initial), ctx.engine());
  std::atomic<bool> failed{false};
  // Shipped side data (see the deterministic sweep above).
  const ShardSpan<std::uint8_t> active_s = runner.ship(active);
  const ColorListsRef lists_ref{runner.ship(lists.raw_offsets()).data,
                                runner.ship(lists.raw_flat()).data};
  const ShardFlag fail_flag = runner.ship_flag(failed);
  const auto step = shard_safe([active_s, lists_ref, width, seed,
                                fail_flag](const auto& v) -> TrialState {
    TrialState s = v.self();
    if (!active_s[v.node()] || s.color != kNoColor) return s;
    if (v.round() % 2 == 0) {
      // Trial: sample uniformly from the effective list. Two passes over
      // the node's flat list against the taken bitset — count the free
      // entries (in list order, duplicates preserved), then select the
      // drawn one — reproduce exactly the old materialized eff[draw % k]
      // without touching the heap.
      PaletteSet& taken = taken_set();
      taken.reset(width);
      v.for_each_neighbor([&](NodeId u) {
        const Color cu = v.neighbor(u).color;
        if (cu != kNoColor) taken.insert(cu);
      });
      const std::span<const Color> list = lists_ref[v.node()];
      std::size_t eff = 0;
      for (const Color c : list)
        if (!taken.contains(c)) ++eff;
      if (eff == 0) {
        fail_flag.set();
        return s;
      }
      std::size_t k = hash_mix(seed, v.node(),
                               static_cast<std::uint64_t>(v.round() / 2)) %
                      eff;
      for (const Color c : list) {
        if (taken.contains(c)) continue;
        if (k == 0) {
          s.trial = c;
          break;
        }
        --k;
      }
      return s;
    }
    // Commit: keep the trial if no neighbor tried the same color.
    if (s.trial == kNoColor) return s;
    bool ok = true;
    v.for_each_neighbor([&](NodeId u) {
      if (v.neighbor(u).trial == s.trial) ok = false;
    });
    if (ok) s.color = s.trial;
    s.trial = kNoColor;
    return s;
  });
  const auto done_node = shard_safe([active_s](NodeId v,
                                               const TrialState& s) {
    return !active_s[v] || s.color != kNoColor;
  });
  const int engine_rounds =
      runner.run_until(2 * max_iterations, step, done_node);
  DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
               "randomized deg+1: empty effective list");
  bool converged = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    converged &= done_node(v, runner.states()[v]);
  DC_CHECK_MSG(converged, "randomized deg+1 did not converge");
  const int iterations = (engine_rounds + 1) / 2;

  const auto& states = runner.states();
  for (NodeId v = 0; v < g.num_nodes(); ++v) color[v] = states[v].color;
  ctx.charge(iterations);
  return iterations;
}

ColorLists uniform_lists(const Graph& g, int num_colors) {
  return ColorLists::uniform(g.num_nodes(), num_colors);
}

}  // namespace deltacolor
