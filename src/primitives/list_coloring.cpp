#include "primitives/list_coloring.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/subgraph.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

namespace {

// Colors of already-colored neighbors of v removed from v's list.
std::vector<Color> effective_list(const Graph& g, NodeId v,
                                  const std::vector<Color>& list,
                                  const std::vector<Color>& color) {
  std::vector<Color> taken;
  taken.reserve(g.degree(v));
  for (const NodeId u : g.neighbors(v))
    if (color[u] != kNoColor) taken.push_back(color[u]);
  std::sort(taken.begin(), taken.end());
  std::vector<Color> eff;
  eff.reserve(list.size());
  for (const Color c : list)
    if (!std::binary_search(taken.begin(), taken.end(), c)) eff.push_back(c);
  return eff;
}

void check_precondition(const Graph& g, const std::vector<bool>& active,
                        const std::vector<std::vector<Color>>& lists,
                        const std::vector<Color>& color) {
  DC_CHECK(active.size() == g.num_nodes());
  DC_CHECK(lists.size() == g.num_nodes());
  DC_CHECK(color.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!active[v]) continue;
    DC_CHECK_MSG(color[v] == kNoColor,
                 "active node " << v << " is already colored");
    int active_deg = 0;
    for (const NodeId u : g.neighbors(v))
      if (active[u]) ++active_deg;
    const auto eff = effective_list(g, v, lists[v], color);
    DC_CHECK_MSG(static_cast<int>(eff.size()) >= active_deg + 1,
                 "deg+1 precondition violated at node "
                     << v << ": effective list " << eff.size()
                     << " <= active degree " << active_deg);
  }
}

}  // namespace

int deg_plus_one_list_color(const Graph& g, const std::vector<bool>& active,
                            const std::vector<std::vector<Color>>& lists,
                            std::vector<Color>& color, RoundLedger& ledger,
                            const std::string& phase) {
  check_precondition(g, active, lists, color);

  std::vector<NodeId> active_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (active[v]) active_nodes.push_back(v);
  if (active_nodes.empty()) return 0;

  // Symmetry breaking: Linial + Kuhn-Wattenhofer reduction on the
  // active-induced subgraph gives a (deg_active+1)-class schedule in
  // O(Delta log Delta + log* n) rounds; then one greedy round per class.
  // Nodes of the same class are non-adjacent, so their simultaneous
  // choices cannot conflict.
  const Subgraph sub = induced_subgraph(g, active_nodes);
  RoundLedger sub_ledger;
  const LinialResult lin = schedule_coloring(sub.graph, sub_ledger, phase);

  for (const auto& cls : color_classes(lin)) {
    for (const NodeId i : cls) {
      const NodeId v = sub.orig_of[i];
      const auto eff = effective_list(g, v, lists[v], color);
      DC_CHECK_MSG(!eff.empty(),
                   "class-greedy ran out of colors at node " << v);
      color[v] = eff.front();
    }
  }
  const int rounds = lin.rounds + lin.num_colors;
  // The schedule's own rounds were charged into sub_ledger; re-charge them
  // to the caller's ledger together with the class sweep.
  ledger.charge(phase, lin.rounds + lin.num_colors);
  return rounds;
}

int deg_plus_one_list_color_randomized(
    const Graph& g, const std::vector<bool>& active,
    const std::vector<std::vector<Color>>& lists, std::vector<Color>& color,
    std::uint64_t seed, RoundLedger& ledger, const std::string& phase) {
  check_precondition(g, active, lists, color);
  std::vector<bool> pending = active;
  NodeId remaining = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (pending[v]) ++remaining;

  int rounds = 0;
  const int max_rounds = 64 * (32 - __builtin_clz(g.num_nodes() + 2));
  std::vector<Color> trial(g.num_nodes(), kNoColor);
  while (remaining > 0) {
    DC_CHECK_MSG(rounds < max_rounds,
                 "randomized deg+1 did not converge; remaining=" << remaining);
    // Trial phase: every pending node samples from its effective list.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      trial[v] = kNoColor;
      if (!pending[v]) continue;
      const auto eff = effective_list(g, v, lists[v], color);
      DC_CHECK(!eff.empty());
      trial[v] = eff[hash_mix(seed, v, static_cast<std::uint64_t>(rounds)) %
                     eff.size()];
    }
    // Commit phase: keep the trial if no neighbor tried the same color.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (trial[v] == kNoColor) continue;
      bool ok = true;
      for (const NodeId u : g.neighbors(v)) {
        if (trial[u] == trial[v]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        color[v] = trial[v];
        pending[v] = false;
        --remaining;
      }
    }
    ++rounds;
  }
  ledger.charge(phase, rounds);
  return rounds;
}

std::vector<std::vector<Color>> uniform_lists(const Graph& g,
                                              int num_colors) {
  std::vector<Color> palette(num_colors);
  for (int c = 0; c < num_colors; ++c) palette[c] = c;
  return std::vector<std::vector<Color>>(g.num_nodes(), palette);
}

}  // namespace deltacolor
