#include "primitives/list_coloring.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/graph_view.hpp"
#include "local/sync_runner.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

namespace {

// Colors held by neighbors of v (via engine view `nv`), sorted — the
// exclusion set for v's list. Thread-local scratch: called from pool
// workers.
template <typename ViewArg>
const std::vector<Color>& taken_colors(const ViewArg& nv) {
  thread_local std::vector<Color> taken;
  taken.clear();
  nv.for_each_neighbor([&](NodeId u) {
    if (nv.neighbor(u) != kNoColor) taken.push_back(nv.neighbor(u));
  });
  std::sort(taken.begin(), taken.end());
  return taken;
}

// Colors of already-colored neighbors of v removed from v's list
// (precondition checking only; the engine sweeps use taken_colors).
std::vector<Color> effective_list(const Graph& g, NodeId v,
                                  const std::vector<Color>& list,
                                  const std::vector<Color>& color) {
  std::vector<Color> taken;
  taken.reserve(g.degree(v));
  for (const NodeId u : g.neighbors(v))
    if (color[u] != kNoColor) taken.push_back(color[u]);
  std::sort(taken.begin(), taken.end());
  std::vector<Color> eff;
  eff.reserve(list.size());
  for (const Color c : list)
    if (!std::binary_search(taken.begin(), taken.end(), c)) eff.push_back(c);
  return eff;
}

void check_precondition(const Graph& g, const std::vector<bool>& active,
                        const std::vector<std::vector<Color>>& lists,
                        const std::vector<Color>& color) {
  DC_CHECK(active.size() == g.num_nodes());
  DC_CHECK(lists.size() == g.num_nodes());
  DC_CHECK(color.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!active[v]) continue;
    DC_CHECK_MSG(color[v] == kNoColor,
                 "active node " << v << " is already colored");
    int active_deg = 0;
    for (const NodeId u : g.neighbors(v))
      if (active[u]) ++active_deg;
    const auto eff = effective_list(g, v, lists[v], color);
    DC_CHECK_MSG(static_cast<int>(eff.size()) >= active_deg + 1,
                 "deg+1 precondition violated at node "
                     << v << ": effective list " << eff.size()
                     << " <= active degree " << active_deg);
  }
}

}  // namespace

int deg_plus_one_list_color(const Graph& g, const std::vector<bool>& active,
                            const std::vector<std::vector<Color>>& lists,
                            std::vector<Color>& color, LocalContext& ctx) {
  DefaultPhase scope(ctx, "deg+1-list");
  check_precondition(g, active, lists, color);

  std::vector<NodeId> active_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (active[v]) active_nodes.push_back(v);
  if (active_nodes.empty()) return 0;

  // Symmetry breaking: Linial + Kuhn-Wattenhofer reduction on the lazy
  // active-induced view gives a (deg_active+1)-class schedule in
  // O(Delta log Delta + log* n) rounds; then one greedy round per class.
  // Nodes of the same class are non-adjacent, so their simultaneous
  // choices cannot conflict.
  const InducedSubgraphView sub(g, active_nodes);
  RoundLedger sub_ledger;  // schedule rounds are re-charged below
  LocalContext sub_ctx(sub_ledger, ctx.engine(), ctx.seed());
  const LinialResult lin = schedule_coloring(sub, sub_ctx);

  // Class sweep on the *host* graph (exclusions come from all neighbors,
  // active or not): engine round t colors schedule class t.
  std::vector<Color> class_of(g.num_nodes(), -1);
  for (NodeId i = 0; i < sub.num_nodes(); ++i)
    class_of[sub.orig_of(i)] = lin.color[i];
  SyncRunner<Color> runner(g, color, ctx.round_indexed_engine());
  std::atomic<bool> failed{false};
  const auto step = [&](const auto& v) -> Color {
    if (class_of[v.node()] != v.round()) return v.self();
    const std::vector<Color>& taken = taken_colors(v);
    for (const Color c : lists[v.node()])
      if (!std::binary_search(taken.begin(), taken.end(), c)) return c;
    failed.store(true, std::memory_order_relaxed);
    return v.self();
  };
  const auto never = [](const std::vector<Color>&) { return false; };
  runner.run(lin.num_colors, step, never);
  DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
               "class-greedy ran out of colors");
  color = runner.take_states();

  const int rounds = lin.rounds + lin.num_colors;
  // The schedule's own rounds went into sub_ledger; charge them to the
  // caller's phase together with the class sweep.
  ctx.charge(rounds);
  return rounds;
}

namespace {

struct TrialState {
  Color color = kNoColor;
  Color trial = kNoColor;
  bool operator==(const TrialState&) const = default;
};

}  // namespace

int deg_plus_one_list_color_randomized(
    const Graph& g, const std::vector<bool>& active,
    const std::vector<std::vector<Color>>& lists, std::vector<Color>& color,
    LocalContext& ctx) {
  DefaultPhase scope(ctx, "deg+1-list-rand");
  check_precondition(g, active, lists, color);
  const std::uint64_t seed = ctx.seed();
  const int max_iterations = 64 * (32 - __builtin_clz(g.num_nodes() + 2));

  // One iteration = 2 engine rounds: trial (2t) then commit (2t+1). A
  // pending node's state flips every round (trial set, then cleared), and
  // decided/inactive nodes are fixpoints, so the user's frontier setting is
  // sound here and the sweep shrinks with the pending set.
  std::vector<TrialState> initial(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) initial[v].color = color[v];
  SyncRunner<TrialState> runner(g, std::move(initial), ctx.engine());
  std::atomic<bool> failed{false};
  const auto step = [&](const auto& v) -> TrialState {
    TrialState s = v.self();
    if (!active[v.node()] || s.color != kNoColor) return s;
    if (v.round() % 2 == 0) {
      // Trial: sample uniformly from the effective list.
      thread_local std::vector<Color> taken;
      taken.clear();
      v.for_each_neighbor([&](NodeId u) {
        if (v.neighbor(u).color != kNoColor)
          taken.push_back(v.neighbor(u).color);
      });
      std::sort(taken.begin(), taken.end());
      thread_local std::vector<Color> eff;
      eff.clear();
      for (const Color c : lists[v.node()])
        if (!std::binary_search(taken.begin(), taken.end(), c))
          eff.push_back(c);
      if (eff.empty()) {
        failed.store(true, std::memory_order_relaxed);
        return s;
      }
      s.trial = eff[hash_mix(seed, v.node(),
                             static_cast<std::uint64_t>(v.round() / 2)) %
                    eff.size()];
      return s;
    }
    // Commit: keep the trial if no neighbor tried the same color.
    if (s.trial == kNoColor) return s;
    bool ok = true;
    v.for_each_neighbor([&](NodeId u) {
      if (v.neighbor(u).trial == s.trial) ok = false;
    });
    if (ok) s.color = s.trial;
    s.trial = kNoColor;
    return s;
  };
  const auto done = [&](const std::vector<TrialState>& states) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (active[v] && states[v].color == kNoColor) return false;
    return true;
  };
  const int engine_rounds = runner.run(2 * max_iterations, step, done);
  DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
               "randomized deg+1: empty effective list");
  DC_CHECK_MSG(done(runner.states()),
               "randomized deg+1 did not converge");
  const int iterations = (engine_rounds + 1) / 2;

  const auto& states = runner.states();
  for (NodeId v = 0; v < g.num_nodes(); ++v) color[v] = states[v].color;
  ctx.charge(iterations);
  return iterations;
}

std::vector<std::vector<Color>> uniform_lists(const Graph& g,
                                              int num_colors) {
  std::vector<Color> palette(num_colors);
  for (int c = 0; c < num_colors; ++c) palette[c] = c;
  return std::vector<std::vector<Color>>(g.num_nodes(), palette);
}

}  // namespace deltacolor
