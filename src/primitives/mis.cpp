#include "primitives/mis.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

std::vector<bool> mis_deterministic(const Graph& g, RoundLedger& ledger,
                                    const std::string& phase) {
  const LinialResult lin = schedule_coloring(g, ledger, phase);
  std::vector<bool> in_set(g.num_nodes(), false);
  // One round per color class: a node joins unless a neighbor already did.
  // Same-class nodes are non-adjacent, so simultaneous joins are safe.
  for (const auto& cls : color_classes(lin)) {
    for (const NodeId v : cls) {
      bool blocked = false;
      for (const NodeId u : g.neighbors(v)) {
        if (in_set[u]) {
          blocked = true;
          break;
        }
      }
      if (!blocked) in_set[v] = true;
    }
  }
  ledger.charge(phase, lin.num_colors);
  return in_set;
}

std::vector<bool> mis_luby(const Graph& g, std::uint64_t seed,
                           RoundLedger& ledger, const std::string& phase) {
  ScopedPhaseTimer timer(ledger, phase);
  const NodeId n = g.num_nodes();
  std::vector<bool> in_set(n, false);
  std::vector<bool> decided(n, false);
  NodeId remaining = n;
  int rounds = 0;
  const int max_rounds = 64 * (32 - __builtin_clz(n + 2));
  std::vector<std::uint64_t> draw(n);
  while (remaining > 0) {
    DC_CHECK_MSG(rounds < max_rounds, "Luby MIS did not converge");
    for (NodeId v = 0; v < n; ++v)
      draw[v] = decided[v]
                    ? 0
                    : hash_mix(seed, g.id(v),
                               static_cast<std::uint64_t>(rounds)) |
                          1;  // nonzero
    // Join if strict local maximum among undecided closed neighborhood
    // (ties broken by identifier, folded into the hash's uniqueness via id).
    std::vector<bool> join(n, false);
    for (NodeId v = 0; v < n; ++v) {
      if (decided[v]) continue;
      bool is_max = true;
      for (const NodeId u : g.neighbors(v)) {
        if (decided[u]) continue;
        if (draw[u] > draw[v] ||
            (draw[u] == draw[v] && g.id(u) > g.id(v))) {
          is_max = false;
          break;
        }
      }
      join[v] = is_max;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (!join[v]) continue;
      in_set[v] = true;
      decided[v] = true;
      --remaining;
    }
    // Neighbors of fresh members drop out.
    for (NodeId v = 0; v < n; ++v) {
      if (decided[v]) continue;
      for (const NodeId u : g.neighbors(v)) {
        if (join[u]) {
          decided[v] = true;
          --remaining;
          break;
        }
      }
    }
    ++rounds;
  }
  ledger.charge(phase, rounds);
  return in_set;
}

}  // namespace deltacolor
