#include "primitives/mis.hpp"

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "local/sync_runner.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

std::vector<bool> mis_deterministic(const Graph& g, LocalContext& ctx) {
  DefaultPhase scope(ctx, "mis");
  const LinialResult lin = schedule_coloring(g, ctx);
  // One engine round per color class: a node joins unless a neighbor
  // already did. Same-class nodes are non-adjacent, so simultaneous joins
  // are safe and the double-buffered engine matches the sequential sweep.
  SyncRunner<std::uint8_t> runner(
      g, std::vector<std::uint8_t>(g.num_nodes(), 0),
      ctx.round_indexed_engine());
  // Ship the schedule so the stage can dispatch to pool workers.
  const ShardSpan<Color> color = runner.ship(lin.color);
  const auto step = shard_safe([color](const auto& v) -> std::uint8_t {
    if (v.self()) return 1;
    if (color[v.node()] != v.round()) return 0;
    bool blocked = false;
    v.for_each_neighbor([&](NodeId u) {
      if (v.neighbor(u)) blocked = true;
    });
    return blocked ? 0 : 1;
  });
  runner.run_rounds(lin.num_colors, step);
  const auto& states = runner.states();
  std::vector<bool> in_set(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) in_set[v] = states[v] != 0;
  ctx.charge(lin.num_colors);
  return in_set;
}

namespace {

enum LubyStatus : std::uint8_t {
  kLubyUndecided = 0,
  kLubyCandidate = 1,
  kLubyIn = 2,
  kLubyOut = 3,
};

struct LubyState {
  std::uint8_t status = kLubyUndecided;
  std::uint64_t draw = 0;
  bool operator==(const LubyState&) const = default;
};

}  // namespace

std::vector<bool> mis_luby(const Graph& g, LocalContext& ctx) {
  DefaultPhase scope(ctx, "mis-luby");
  ScopedContextTimer timer(ctx);
  const NodeId n = g.num_nodes();
  const std::uint64_t seed = ctx.seed();
  const int max_iterations = 64 * (32 - __builtin_clz(n + 2));

  // One Luby iteration = 3 engine rounds: draw (3t), join (3t+1),
  // eliminate (3t+2). The transition is keyed on round % 3 and the draw on
  // round / 3, so frontier mode is off (a quiet candidate must still see
  // its elimination round).
  SyncRunner<LubyState> runner(g, std::vector<LubyState>(n),
                               ctx.round_indexed_engine());
  // Captures: seed by value, the pre-prepare host graph by reference —
  // both valid inside forked pool workers, so the stage is shard-safe.
  const auto step = shard_safe([seed, &g](const auto& v) -> LubyState {
    LubyState s = v.self();
    if (s.status == kLubyIn || s.status == kLubyOut) return s;
    switch (v.round() % 3) {
      case 0:  // draw: every undecided node becomes a candidate
        s.draw = hash_mix(seed, v.id(),
                          static_cast<std::uint64_t>(v.round() / 3)) |
                 1;  // nonzero
        s.status = kLubyCandidate;
        return s;
      case 1: {  // join if strict local maximum among candidates
        bool is_max = true;
        v.for_each_neighbor([&](NodeId u) {
          const LubyState& nb = v.neighbor(u);
          if (nb.status != kLubyCandidate) return;
          if (nb.draw > s.draw ||
              (nb.draw == s.draw && g.id(u) > v.id()))
            is_max = false;
        });
        if (is_max) {
          s.status = kLubyIn;
          s.draw = 0;
        }
        return s;
      }
      default: {  // eliminate: neighbors of fresh members drop out
        bool out = false;
        v.for_each_neighbor([&](NodeId u) {
          if (v.neighbor(u).status == kLubyIn) out = true;
        });
        s.status = out ? kLubyOut : kLubyUndecided;
        s.draw = 0;
        return s;
      }
    }
  });
  const auto done_node = [](NodeId, const LubyState& s) {
    return s.status == kLubyIn || s.status == kLubyOut;
  };
  const int engine_rounds =
      runner.run_until(3 * max_iterations, step, done_node);
  DC_CHECK_MSG(std::all_of(runner.states().begin(), runner.states().end(),
                           [](const LubyState& s) {
                             return s.status == kLubyIn ||
                                    s.status == kLubyOut;
                           }),
               "Luby MIS did not converge");
  const int iterations = (engine_rounds + 2) / 3;

  const auto& states = runner.states();
  std::vector<bool> in_set(n, false);
  for (NodeId v = 0; v < n; ++v) in_set[v] = states[v].status == kLubyIn;
  ctx.charge(iterations);
  return in_set;
}

}  // namespace deltacolor
