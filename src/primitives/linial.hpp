// Linial's O(log* n) color reduction [Lin92].
//
// From any proper k-coloring (initially the unique identifiers), one round
// of communication reduces to a proper q^2-coloring, where q is the
// smallest prime with q > Delta * d and q^(d+1) > k: each node interprets
// its color as a polynomial of degree <= d over F_q and picks an evaluation
// point on which it differs from every neighbor (at most d collisions per
// neighbor, so Delta*d < q points are excluded). Iterating reaches the
// fixed point q0^2, q0 ~ Delta, in O(log* k) rounds.
//
// The core reduction is generic over an *implicit* graph (node count +
// neighbor enumeration callback), so it also runs on line graphs and other
// virtual graphs without materializing them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct LinialResult {
  std::vector<Color> color;  ///< proper coloring, palette {0..num_colors-1}
  int num_colors = 0;
  int rounds = 0;
};

namespace detail {

std::uint64_t linial_pow_sat(std::uint64_t q, int e);
int linial_degree_for(std::uint64_t q, std::uint64_t max_val);
/// Smallest prime q with q > delta * degree and q^(degree+1) > max_val.
std::pair<std::uint64_t, int> linial_choose_field(int delta,
                                                  std::uint64_t max_val);

}  // namespace detail

/// Generic reduction. `initial` must be a proper coloring of the implicit
/// graph (pairwise distinct along every edge); `for_each_neighbor(v, fn)`
/// calls fn(u) for every neighbor u of v (duplicates tolerated).
template <typename ForEachNeighbor>
LinialResult linial_reduce(NodeId n, int max_degree,
                           const std::vector<std::uint64_t>& initial,
                           ForEachNeighbor&& for_each_neighbor,
                           RoundLedger& ledger, const std::string& phase) {
  LinialResult res;
  res.color.assign(n, 0);
  if (n == 0) {
    res.num_colors = 1;
    return res;
  }
  DC_CHECK(initial.size() == n);

  std::vector<std::uint64_t> cur = initial;
  std::uint64_t max_val = 0;
  for (NodeId v = 0; v < n; ++v) max_val = std::max(max_val, cur[v]);

  std::vector<std::uint64_t> nxt(n);
  std::vector<std::uint32_t> coeff;  // flat (d+1) coefficients per node
  for (;;) {
    const auto [q, d] = detail::linial_choose_field(max_degree, max_val);
    if (q * q > max_val) break;  // fixed point: no further progress

    // Decompose colors into base-q coefficient vectors (the "message"
    // content each node publishes this round is its polynomial).
    coeff.assign(static_cast<std::size_t>(n) * (d + 1), 0);
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t c = cur[v];
      for (int i = 0; i <= d; ++i) {
        coeff[static_cast<std::size_t>(v) * (d + 1) + i] =
            static_cast<std::uint32_t>(c % q);
        c /= q;
      }
    }
    auto eval = [&](NodeId v, std::uint64_t x) {
      const std::uint32_t* a = &coeff[static_cast<std::size_t>(v) * (d + 1)];
      std::uint64_t acc = 0;
      for (int i = d; i >= 0; --i) acc = (acc * x + a[i]) % q;
      return acc;
    };
    // Each node scans evaluation points until one separates it from every
    // neighbor; guaranteed to exist since bad points number <= Delta * d < q.
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t chosen = q;  // sentinel
      for (std::uint64_t x = 0; x < q && chosen == q; ++x) {
        const std::uint64_t mine = eval(v, x);
        bool ok = true;
        for_each_neighbor(v, [&](NodeId u) {
          if (ok && u != v && eval(u, x) == mine) ok = false;
        });
        if (ok) chosen = x;
      }
      DC_CHECK_MSG(chosen < q, "Linial: no collision-free point at node "
                                   << v << " (q=" << q << ")");
      nxt[v] = chosen * q + eval(v, chosen);
    }
    cur.swap(nxt);
    max_val = q * q - 1;
    ++res.rounds;
    DC_CHECK_MSG(res.rounds < 64, "Linial failed to converge");
  }

  res.num_colors = static_cast<int>(max_val + 1);
  for (NodeId v = 0; v < n; ++v) res.color[v] = static_cast<Color>(cur[v]);
  ledger.charge(phase, res.rounds);
  return res;
}

/// O(Delta^2)-coloring of g in O(log* n) rounds from its LOCAL identifiers.
LinialResult linial_coloring(const Graph& g, RoundLedger& ledger,
                             const std::string& phase = "linial");

/// Proper *edge* coloring of g with an O(Delta^2)-sized palette, indexed by
/// EdgeId, computed without materializing the line graph: a vertex Linial
/// coloring is composed with per-endpoint port numbers into a proper (huge-
/// palette) edge coloring, which the generic reduction then shrinks. Costs
/// O(log* n) rounds; each line-graph round dilates to 2 real rounds.
LinialResult linial_edge_coloring(const Graph& g, RoundLedger& ledger,
                                  const std::string& phase = "linial-edge");

/// Buckets node indices by color class (helper for class-greedy sweeps:
/// iterate classes in order, nodes of one class act simultaneously).
std::vector<std::vector<NodeId>> color_classes(const LinialResult& lin);

}  // namespace deltacolor
