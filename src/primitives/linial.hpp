// Linial's O(log* n) color reduction [Lin92].
//
// From any proper k-coloring (initially the unique identifiers), one round
// of communication reduces to a proper q^2-coloring, where q is the
// smallest prime with q > Delta * d and q^(d+1) > k: each node interprets
// its color as a polynomial of degree <= d over F_q and picks an evaluation
// point on which it differs from every neighbor (at most d collisions per
// neighbor, so Delta*d < q points are excluded). Iterating reaches the
// fixed point q0^2, q0 ~ Delta, in O(log* k) rounds.
//
// The core reduction is generic over any GraphView (graph_view.hpp), so it
// runs unchanged on host graphs, induced subgraphs, power graphs, and line
// graphs — all without materializing the virtual graph. Each stage is one
// synchronous round stepped through SyncRunner (multi-worker, bit-identical
// across worker counts); rounds are charged to the LocalContext's active
// phase with the view's dilation factor.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "local/context.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {

struct LinialResult {
  std::vector<Color> color;  ///< proper coloring, palette {0..num_colors-1}
  int num_colors = 0;
  int rounds = 0;  ///< virtual rounds of the view (not dilation-scaled)
};

namespace detail {

std::uint64_t linial_pow_sat(std::uint64_t q, int e);
int linial_degree_for(std::uint64_t q, std::uint64_t max_val);
/// Smallest prime q with q > delta * degree and q^(degree+1) > max_val.
std::pair<std::uint64_t, int> linial_choose_field(int delta,
                                                  std::uint64_t max_val);

}  // namespace detail

/// Generic reduction over any GraphView. `initial` must be a proper
/// coloring of the view (pairwise distinct along every view edge).
/// Charges rounds * view.dilation() to the context's active phase
/// ("linial" when the caller opened none).
template <GraphView ViewT>
LinialResult linial_reduce(const ViewT& view,
                           const std::vector<std::uint64_t>& initial,
                           LocalContext& ctx) {
  DefaultPhase scope(ctx, "linial");
  const NodeId n = view.num_nodes();
  LinialResult res;
  res.color.assign(n, 0);
  if (n == 0) {
    res.num_colors = 1;
    return res;
  }
  DC_CHECK(initial.size() == n);

  std::uint64_t max_val = 0;
  for (const std::uint64_t c : initial) max_val = std::max(max_val, c);
  const int max_degree = view.max_degree();

  // Every stage is one engine round; the transition depends on the stage
  // field (q, d), which changes between run() calls, so the frontier
  // optimization does not apply (worker count still does).
  SyncRunner<std::uint64_t, ViewT> runner(view, initial,
                                          ctx.round_indexed_engine());
  std::atomic<bool> failed{false};
  // The flag cell (unlike &failed, a stack address) survives shipping into
  // pool workers; each run_* ORs it back into `failed`.
  const ShardFlag fail_flag = runner.ship_flag(failed);

  // One stage = one engine round with stage-specific (q, d); the step
  // closure is rebuilt per stage with those scalars captured by value, so
  // its byte image is self-contained and the stage is dispatchable to the
  // persistent shard pool (shard_safe below).
  const auto make_step = [&](std::uint64_t q, int d) {
    return shard_safe([q, d, fail_flag](const auto& v) -> std::uint64_t {
    // Decompose the closed neighborhood's colors into base-q coefficient
    // vectors (the "message" each neighbor publishes is its polynomial).
    // Scratch lives in the worker's round-local arena (one frame per
    // step): degree() bounds the neighbor count, so the whole table is
    // carved up front and the round allocates nothing once arenas are
    // warm.
    const std::size_t terms = static_cast<std::size_t>(d) + 1;
    ScratchArena::Frame frame(ScratchArena::local());
    std::uint32_t* self_coeff = frame.alloc<std::uint32_t>(terms);
    std::uint32_t* nbr_coeff = frame.alloc<std::uint32_t>(
        (static_cast<std::size_t>(v.degree()) + 1) * terms);
    {
      std::uint64_t c = v.self();
      for (std::size_t i = 0; i < terms; ++i) {
        self_coeff[i] = static_cast<std::uint32_t>(c % q);
        c /= q;
      }
    }
    std::size_t nbrs = 0;
    v.for_each_neighbor([&](NodeId u) {
      if (u == v.node()) return;
      std::uint64_t c = v.neighbor(u);
      std::uint32_t* out = nbr_coeff + nbrs * terms;
      for (std::size_t i = 0; i < terms; ++i) {
        out[i] = static_cast<std::uint32_t>(c % q);
        c /= q;
      }
      ++nbrs;
    });
    const auto eval = [&](const std::uint32_t* a, std::uint64_t x) {
      std::uint64_t acc = 0;
      for (int i = d; i >= 0; --i) acc = (acc * x + a[i]) % q;
      return acc;
    };
    // Scan evaluation points until one separates this node from every
    // neighbor; guaranteed to exist since bad points number <= Delta*d < q.
    for (std::uint64_t x = 0; x < q; ++x) {
      const std::uint64_t mine = eval(self_coeff, x);
      bool ok = true;
      for (std::size_t j = 0; j < nbrs && ok; ++j) {
        if (eval(nbr_coeff + j * terms, x) == mine) ok = false;
      }
      if (ok) return x * q + mine;
    }
    fail_flag.set();
    return v.self();
    });
  };
  for (;;) {
    const auto [q, d] = detail::linial_choose_field(max_degree, max_val);
    if (q * q > max_val) break;  // fixed point: no further progress
    runner.run_rounds(1, make_step(q, d));
    DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
                 "Linial: no collision-free point (q=" << q << ")");
    max_val = q * q - 1;
    ++res.rounds;
    DC_CHECK_MSG(res.rounds < 64, "Linial failed to converge");
  }

  res.num_colors = static_cast<int>(max_val + 1);
  const auto& states = runner.states();
  for (NodeId v = 0; v < n; ++v)
    res.color[v] = static_cast<Color>(states[v]);
  ctx.charge(res.rounds, view.dilation());
  return res;
}

/// O(Delta^2)-coloring of the view in O(log* n) rounds from its LOCAL
/// identifiers (works on any GraphView; "linial" default phase).
template <GraphView ViewT>
LinialResult linial_coloring(const ViewT& view, LocalContext& ctx) {
  DefaultPhase scope(ctx, "linial");
  const NodeId n = view.num_nodes();
  std::vector<std::uint64_t> initial(n);
  for (NodeId v = 0; v < n; ++v) initial[v] = view.id(v);
  return linial_reduce(view, initial, ctx);
}

/// Proper *edge* coloring of g with an O(Delta^2)-sized palette, indexed by
/// EdgeId, computed on the lazy LineGraphView (the line graph is never
/// materialized): a vertex Linial coloring is composed with per-endpoint
/// port numbers into a proper (huge-palette) edge coloring, which the
/// generic reduction then shrinks. Costs O(log* n) rounds; each line-graph
/// round dilates to 2 real rounds (charged via the view's dilation).
LinialResult linial_edge_coloring(const Graph& g, LocalContext& ctx);

/// Buckets node indices by color class (helper for class-greedy sweeps:
/// iterate classes in order, nodes of one class act simultaneously).
std::vector<std::vector<NodeId>> color_classes(const LinialResult& lin);

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline LinialResult linial_coloring(const Graph& g, RoundLedger& ledger,
                                    const std::string& phase = "linial") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return linial_coloring(g, ctx);
}

inline LinialResult linial_edge_coloring(
    const Graph& g, RoundLedger& ledger,
    const std::string& phase = "linial-edge") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return linial_edge_coloring(g, ctx);
}

}  // namespace deltacolor
