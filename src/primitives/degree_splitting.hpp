// Distributed degree splitting (Lemma 21 / Corollary 22 role, GHK+17-style).
//
// Construction: every node pairs up its incident edges; the pairing splices
// edges into walks (paths and cycles, since each edge-end joins at most one
// pair). Each walk is chopped into segments of ~`segment_length` edges and
// the edges of a segment are 2-colored alternately. A pair whose two edges
// are consecutive within one segment contributes one edge to each side, so
// a node's discrepancy is bounded by (2 * #cut pairs at the node) + 3.
// Cuts are `segment_length` apart along each walk, so a node's expected
// number of cut pairs is ~ deg / segment_length — choose segment_length =
// Theta(1/epsilon) for discrepancy ~ epsilon * deg + O(1). Recursing i
// times yields a 2^i-way split (Corollary 22).
//
// Substitution note (DESIGN.md): the paper cites the recursive GHK+17
// splitter with a deterministic worst-case guarantee; our walk-chopper has
// the same structure, runs in O(i * (1/epsilon + log* n)) simulated rounds,
// and its discrepancy is verified empirically (bench E9 / property tests).
//
// The core splitter works on an abstract edge list over virtual node ids
// (parallel edges allowed) because the paper applies it to the virtual
// multigraph G_Q of Phase 2; the Graph overload wraps it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct DegreeSplitResult {
  /// Part index per edge (input order), in {0, .., 2^levels - 1}.
  std::vector<int> part;
  int num_parts = 0;
  int rounds = 0;
};

/// Splits an abstract multigraph's edges into 2^levels parts of near-equal
/// per-node degree. `edges[k]` joins two virtual nodes in [0, num_nodes).
/// The global walk extraction is a centralized stand-in for the recursive
/// GHK+17 splitter (see the substitution note above): it is not stepped
/// through the engine; only round accounting and the execution context
/// flow through LocalContext. Default phase "degree-split".
DegreeSplitResult degree_split_edges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges, int levels,
    int segment_length, std::uint64_t seed, LocalContext& ctx);

/// Graph overload: part indices are by EdgeId.
DegreeSplitResult degree_split(const Graph& g, int levels, int segment_length,
                               std::uint64_t seed, LocalContext& ctx);

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline DegreeSplitResult degree_split_edges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges, int levels,
    int segment_length, std::uint64_t seed, RoundLedger& ledger,
    const std::string& phase = "degree-split") {
  LocalContext ctx(ledger, {}, seed);
  ScopedPhase scope(ctx, phase);
  return degree_split_edges(num_nodes, edges, levels, segment_length, seed,
                            ctx);
}

inline DegreeSplitResult degree_split(const Graph& g, int levels,
                                      int segment_length, std::uint64_t seed,
                                      RoundLedger& ledger,
                                      const std::string& phase =
                                          "degree-split") {
  LocalContext ctx(ledger, {}, seed);
  ScopedPhase scope(ctx, phase);
  return degree_split(g, levels, segment_length, seed, ctx);
}

/// Per-node edge count inside one part (verification helper).
std::vector<int> part_degrees(const Graph& g, const DegreeSplitResult& split,
                              int part);

}  // namespace deltacolor
