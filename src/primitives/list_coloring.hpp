// (deg+1)-list coloring [MT20-role; realized as class-greedy over a Linial
// coloring, O(Delta^2 + log* n) rounds] plus a randomized color-trial
// variant for comparison benches.
//
// Instance semantics (Section 2 of the paper): a set of *active* nodes must
// be colored; every active node v must have an allowed list whose colors,
// after removing the colors of already-colored neighbors, number at least
// (number of active neighbors of v) + 1. Under this precondition the
// class-greedy schedule always finds a free color.
//
// The deterministic schedule is computed on a lazy InducedSubgraphView of
// the active nodes (the subgraph is never materialized); both variants step
// their sweeps through the SyncRunner engine via LocalContext. Lists live
// in flat CSR storage (ColorLists) and the per-step exclusion set is a
// word-parallel PaletteSet (palette.hpp) — the steady-state sweep performs
// no heap allocation and no sorting.
#pragma once

#include <string>
#include <vector>

#include "common/palette.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

/// Deterministically colors all nodes with active[v] != 0. `color` holds
/// the global partial coloring and is extended in place; `lists[v]` is the
/// allowed palette of active node v (entries for inactive nodes ignored).
/// The deg+1 precondition is checked (throws on violation). Returns the
/// number of LOCAL rounds consumed (also charged to the context's phase,
/// default "deg+1-list").
int deg_plus_one_list_color(const Graph& g, const NodeMask& active,
                            const ColorLists& lists,
                            std::vector<Color>& color, LocalContext& ctx);

/// Randomized variant: active nodes repeatedly try a uniform color from
/// their remaining list; a trial sticks if no neighbor tried or holds the
/// same color. Terminates w.h.p. in O(log n) rounds under the same deg+1
/// precondition. Randomness comes from ctx.seed().
int deg_plus_one_list_color_randomized(const Graph& g, const NodeMask& active,
                                       const ColorLists& lists,
                                       std::vector<Color>& color,
                                       LocalContext& ctx);

/// Builds the default (Delta+1)-coloring lists {0..Delta} for every node.
ColorLists uniform_lists(const Graph& g, int num_colors);

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline int deg_plus_one_list_color(const Graph& g, const NodeMask& active,
                                   const ColorLists& lists,
                                   std::vector<Color>& color,
                                   RoundLedger& ledger,
                                   const std::string& phase = "deg+1-list") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return deg_plus_one_list_color(g, active, lists, color, ctx);
}

inline int deg_plus_one_list_color_randomized(
    const Graph& g, const NodeMask& active, const ColorLists& lists,
    std::vector<Color>& color, std::uint64_t seed, RoundLedger& ledger,
    const std::string& phase = "deg+1-list-rand") {
  LocalContext ctx(ledger, {}, seed);
  ScopedPhase scope(ctx, phase);
  return deg_plus_one_list_color_randomized(g, active, lists, color, ctx);
}

}  // namespace deltacolor
