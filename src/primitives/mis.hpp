// Maximal independent set: deterministic class-greedy over a Linial
// coloring (O(Delta^2 + log* n) rounds) and Luby's randomized algorithm
// (O(log n) rounds w.h.p.) [Gha16-role].
//
// Both are stepped through the SyncRunner engine via LocalContext: the
// class sweep runs one engine round per color class (round-indexed, so
// frontier mode is off), Luby runs a 3-round draw/join/eliminate protocol
// per iteration. Results are bit-identical to the sequential reference at
// any worker count.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

std::vector<bool> mis_deterministic(const Graph& g, LocalContext& ctx);

/// Luby's algorithm; randomness is drawn from ctx.seed().
std::vector<bool> mis_luby(const Graph& g, LocalContext& ctx);

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline std::vector<bool> mis_deterministic(const Graph& g,
                                           RoundLedger& ledger,
                                           const std::string& phase = "mis") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return mis_deterministic(g, ctx);
}

inline std::vector<bool> mis_luby(const Graph& g, std::uint64_t seed,
                                  RoundLedger& ledger,
                                  const std::string& phase = "mis-luby") {
  LocalContext ctx(ledger, {}, seed);
  ScopedPhase scope(ctx, phase);
  return mis_luby(g, ctx);
}

}  // namespace deltacolor
