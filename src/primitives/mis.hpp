// Maximal independent set: deterministic class-greedy over a Linial
// coloring (O(Delta^2 + log* n) rounds) and Luby's randomized algorithm
// (O(log n) rounds w.h.p.) [Gha16-role].
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

std::vector<bool> mis_deterministic(const Graph& g, RoundLedger& ledger,
                                    const std::string& phase = "mis");

std::vector<bool> mis_luby(const Graph& g, std::uint64_t seed,
                           RoundLedger& ledger,
                           const std::string& phase = "mis-luby");

}  // namespace deltacolor
