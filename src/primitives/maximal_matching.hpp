// Maximal matching [PR01-role]: deterministic class-greedy over a Linial
// coloring of the line graph (each line-graph round dilates to 2 real
// rounds: the two endpoints of an edge hold its state and sync over the
// edge) and the randomized Israeli-Itai-style proposal algorithm.
//
// All three variants step through the SyncRunner engine via LocalContext;
// the deterministic variant runs its palette reduction and class sweep
// directly on the lazy LineGraphView.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

/// Flags by EdgeId; a maximal matching of g. Default phase
/// "maximal-matching".
std::vector<bool> maximal_matching_deterministic(const Graph& g,
                                                 LocalContext& ctx);

/// Panconesi-Rizzi maximal matching in O(Delta + log* n) rounds: orient
/// every edge toward its higher-identifier endpoint, split the out-edges
/// into <= Delta rooted forests (the i-th out-edge of every node forms
/// forest i; identifiers increase along edges, so each forest is acyclic),
/// 3-color all forests at once with Cole-Vishkin, then process forests
/// sequentially — within a forest, three proposal rounds (one per color
/// class, children propose to parents) leave no free tree edge. Default
/// phase "maximal-matching-pr".
std::vector<bool> maximal_matching_pr(const Graph& g, LocalContext& ctx);

/// Randomized proposal matching; randomness from ctx.seed(). Default phase
/// "maximal-matching-rand".
std::vector<bool> maximal_matching_randomized(const Graph& g,
                                              LocalContext& ctx);

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline std::vector<bool> maximal_matching_deterministic(
    const Graph& g, RoundLedger& ledger,
    const std::string& phase = "maximal-matching") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return maximal_matching_deterministic(g, ctx);
}

inline std::vector<bool> maximal_matching_pr(
    const Graph& g, RoundLedger& ledger,
    const std::string& phase = "maximal-matching-pr") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return maximal_matching_pr(g, ctx);
}

inline std::vector<bool> maximal_matching_randomized(
    const Graph& g, std::uint64_t seed, RoundLedger& ledger,
    const std::string& phase = "maximal-matching-rand") {
  LocalContext ctx(ledger, {}, seed);
  ScopedPhase scope(ctx, phase);
  return maximal_matching_randomized(g, ctx);
}

}  // namespace deltacolor
