#include "primitives/color_reduction.hpp"

// The KW reduction is fully generic over GraphView and lives in the header;
// this translation unit pins an instantiation for the host graph so the
// common path is compiled once into the library.

namespace deltacolor {

template LinialResult kw_reduce<Graph>(const Graph&, std::vector<Color>, int,
                                       int, LocalContext&);
template LinialResult schedule_coloring<Graph>(const Graph&, LocalContext&);

}  // namespace deltacolor
