#include "primitives/color_reduction.hpp"

namespace deltacolor {

LinialResult kw_reduce_graph(const Graph& g, std::vector<Color> color,
                             int num_colors, int target, RoundLedger& ledger,
                             const std::string& phase) {
  return kw_reduce(
      g.num_nodes(), g.max_degree(), std::move(color), num_colors, target,
      [&g](NodeId v, auto&& fn) {
        for (const NodeId u : g.neighbors(v)) fn(u);
      },
      ledger, phase);
}

LinialResult schedule_coloring(const Graph& g, RoundLedger& ledger,
                               const std::string& phase) {
  const LinialResult lin = linial_coloring(g, ledger, phase);
  if (g.num_nodes() == 0) return lin;
  LinialResult res = kw_reduce_graph(g, lin.color, lin.num_colors,
                                     g.max_degree() + 1, ledger, phase);
  res.rounds += lin.rounds;
  return res;
}

}  // namespace deltacolor
