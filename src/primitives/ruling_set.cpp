#include "primitives/ruling_set.hpp"

namespace deltacolor {

RulingSetResult ruling_set_power(const Graph& g, int radius,
                                 LocalContext& ctx) {
  DC_CHECK(radius >= 1);
  DefaultPhase scope(ctx, "ruling-set-power");
  const PowerGraphView power(g, radius);
  return ruling_set(power, ctx);
}

// Pin the host-graph instantiation into the library.
template RulingSetResult ruling_set<Graph>(const Graph&, LocalContext&);

}  // namespace deltacolor
