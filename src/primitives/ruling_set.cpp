#include "primitives/ruling_set.hpp"

#include "common/check.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

RulingSetResult ruling_set(const Graph& g, RoundLedger& ledger,
                           const std::string& phase) {
  RulingSetResult res;
  const NodeId n = g.num_nodes();
  res.in_set.assign(n, false);
  if (n == 0) return res;

  const LinialResult lin = linial_coloring(g, ledger, phase);
  int bits = 1;
  while ((1 << bits) < lin.num_colors) ++bits;
  res.domination_radius = bits;

  std::vector<bool> candidate(n, true);
  std::vector<bool> next(n);
  for (int b = bits - 1; b >= 0; --b) {
    for (NodeId v = 0; v < n; ++v) {
      next[v] = candidate[v];
      if (!candidate[v] || ((lin.color[v] >> b) & 1) == 1) continue;
      for (const NodeId u : g.neighbors(v)) {
        if (candidate[u] && ((lin.color[u] >> b) & 1) == 1) {
          next[v] = false;  // a bit-1 candidate neighbor dominates v
          break;
        }
      }
    }
    candidate.swap(next);
  }
  // Survivors are independent: adjacent survivors would agree on every bit,
  // i.e. share a Linial color — impossible for a proper coloring.
  res.in_set = candidate;
  ledger.charge(phase, bits);
  return res;
}

}  // namespace deltacolor
