#include "primitives/maximal_matching.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/checker.hpp"
#include "graph/graph_view.hpp"
#include "local/sync_runner.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/forest_coloring.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

namespace {
/// Real rounds per simulated line-graph round.
constexpr int kLineGraphDilation = 2;
}  // namespace

std::vector<bool> maximal_matching_deterministic(const Graph& g,
                                                 LocalContext& ctx) {
  DefaultPhase scope(ctx, "maximal-matching");
  std::vector<bool> in_matching(g.num_edges(), false);
  if (g.num_edges() == 0) return in_matching;

  // Proper edge coloring on the lazy line-graph view, reduced to 2*Delta-1
  // classes, then one virtual round per color class: an edge joins if no
  // adjacent edge (= line-graph neighbor = edge sharing an endpoint) did.
  // Edges of a class share no endpoint. The coloring rounds are recharged
  // below with their dilation already folded in, so the nested calls run
  // against a throwaway ledger.
  const LineGraphView line(g);
  RoundLedger ec_ledger;
  LocalContext ec_ctx(ec_ledger, ctx.engine(), ctx.seed());
  LinialResult ec = linial_edge_coloring(g, ec_ctx);
  {
    LinialResult reduced = kw_reduce(line, std::move(ec.color),
                                     ec.num_colors, line.max_degree() + 1,
                                     ec_ctx);
    reduced.rounds = ec.rounds + 2 * reduced.rounds;  // line-graph dilation
    ec = std::move(reduced);
  }

  SyncRunner<std::uint8_t, LineGraphView> runner(
      line, std::vector<std::uint8_t>(g.num_edges(), 0),
      ctx.round_indexed_engine());
  // View runners never shard (the gate is host-graph-only), so a plain
  // reference capture is fine here.
  const auto step = [&](const auto& e) -> std::uint8_t {
    if (e.self()) return 1;
    if (ec.color[e.node()] != e.round()) return 0;
    bool blocked = false;
    e.for_each_neighbor([&](NodeId f) {
      if (e.neighbor(f)) blocked = true;
    });
    return blocked ? 0 : 1;
  };
  runner.run_rounds(ec.num_colors, step);
  const auto& states = runner.states();
  for (EdgeId e = 0; e < g.num_edges(); ++e) in_matching[e] = states[e] != 0;

  ctx.charge(ec.rounds);  // edge-coloring rounds (dilation inside)
  ctx.charge(ec.num_colors, kLineGraphDilation);
  return in_matching;
}

namespace {

/// Panconesi-Rizzi per-node engine state for the proposal rounds.
struct PrState {
  std::uint8_t matched = 0;
  NodeId proposal = kNoNode;  ///< forest parent this node proposed to
  NodeId accepted = kNoNode;  ///< smallest-id proposer this parent accepted
  EdgeId matched_edge = kNoEdge;
  bool operator==(const PrState&) const = default;
};

}  // namespace

std::vector<bool> maximal_matching_pr(const Graph& g, LocalContext& ctx) {
  DefaultPhase scope(ctx, "maximal-matching-pr");
  std::vector<bool> in_matching(g.num_edges(), false);
  if (g.num_edges() == 0) return in_matching;
  const int delta = g.max_degree();

  // Forest decomposition: v's i-th higher-identifier neighbor is its
  // parent in forest i. Identifiers strictly increase along parent edges,
  // so every forest is acyclic.
  std::vector<std::vector<NodeId>> parent_in(
      static_cast<std::size_t>(delta),
      std::vector<NodeId>(g.num_nodes(), kNoNode));
  std::vector<std::vector<EdgeId>> parent_edge(
      static_cast<std::size_t>(delta),
      std::vector<EdgeId>(g.num_nodes(), kNoEdge));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    int i = 0;
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (g.id(nbrs[k]) < g.id(v)) continue;
      parent_in[static_cast<std::size_t>(i)][v] = nbrs[k];
      parent_edge[static_cast<std::size_t>(i)][v] = inc[k];
      ++i;
    }
  }

  // 3-color every forest; all reductions run in parallel, so the round
  // cost is a single O(log* n) term (charged as the max).
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = g.id(v);
  std::vector<std::vector<Color>> forest_color(
      static_cast<std::size_t>(delta));
  int coloring_rounds = 0;
  for (int f = 0; f < delta; ++f) {
    RoundLedger forest_ledger;
    LocalContext forest_ctx(forest_ledger, ctx.engine(), ctx.seed());
    const ForestColoringResult fc = forest_3_coloring(
        parent_in[static_cast<std::size_t>(f)], ids, forest_ctx);
    forest_color[static_cast<std::size_t>(f)] = fc.color;
    coloring_rounds = std::max(coloring_rounds, fc.rounds);
  }
  ctx.charge(1 + coloring_rounds);  // orientation + parallel CV

  // Sequential forests, one (forest, class) slot per 3 engine rounds:
  // propose (free class-c nodes point at their free forest parent), accept
  // (a parent picks its smallest-identifier proposer), commit (both sides
  // fold the handshake into their state — bookkeeping, not an extra
  // message, hence the 2-rounds-per-class charge below). The slot schedule
  // is round-indexed, so frontier mode is off.
  SyncRunner<PrState> runner(g, std::vector<PrState>(g.num_nodes()),
                             ctx.round_indexed_engine());
  // Flatten the per-forest tables to delta x n arrays ([f*n + v]) so they
  // ship into the halo plane as three contiguous spans; the proposal stage
  // is then dispatchable to pool workers.
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> parent_in_flat(static_cast<std::size_t>(delta) * n);
  std::vector<EdgeId> parent_edge_flat(static_cast<std::size_t>(delta) * n);
  std::vector<Color> forest_color_flat(static_cast<std::size_t>(delta) * n);
  for (std::size_t f = 0; f < static_cast<std::size_t>(delta); ++f) {
    std::copy(parent_in[f].begin(), parent_in[f].end(),
              parent_in_flat.begin() + static_cast<std::ptrdiff_t>(f * n));
    std::copy(parent_edge[f].begin(), parent_edge[f].end(),
              parent_edge_flat.begin() + static_cast<std::ptrdiff_t>(f * n));
    std::copy(forest_color[f].begin(), forest_color[f].end(),
              forest_color_flat.begin() + static_cast<std::ptrdiff_t>(f * n));
  }
  const ShardSpan<NodeId> parent_in_s = runner.ship(parent_in_flat);
  const ShardSpan<EdgeId> parent_edge_s = runner.ship(parent_edge_flat);
  const ShardSpan<Color> forest_color_s = runner.ship(forest_color_flat);
  const auto step = shard_safe([parent_in_s, parent_edge_s, forest_color_s,
                                n, &g](const auto& v) -> PrState {
    PrState s = v.self();
    const int slot = v.round() / 3;
    const std::size_t f = static_cast<std::size_t>(slot / 3);
    const Color cls = slot % 3;
    switch (v.round() % 3) {
      case 0: {  // propose
        s.proposal = kNoNode;
        if (s.matched || forest_color_s[f * n + v.node()] != cls) return s;
        const NodeId p = parent_in_s[f * n + v.node()];
        if (p != kNoNode && !v.neighbor(p).matched) s.proposal = p;
        return s;
      }
      case 1: {  // accept the smallest-identifier proposer
        s.accepted = kNoNode;
        v.for_each_neighbor([&](NodeId u) {
          if (parent_in_s[f * n + u] != v.node()) return;
          if (v.neighbor(u).proposal != v.node()) return;
          if (s.accepted == kNoNode || g.id(u) < g.id(s.accepted))
            s.accepted = u;
        });
        return s;
      }
      default: {  // commit
        if (s.accepted != kNoNode) {  // parent side of a handshake
          s.matched = 1;
          s.accepted = kNoNode;
          s.proposal = kNoNode;
          return s;
        }
        if (s.proposal != kNoNode) {  // child side: did the parent accept?
          if (v.neighbor(s.proposal).accepted == v.node()) {
            s.matched = 1;
            s.matched_edge = parent_edge_s[f * n + v.node()];
          }
          s.proposal = kNoNode;
        }
        return s;
      }
    }
  });
  runner.run_rounds(3 * 3 * delta, step);
  const auto& states = runner.states();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (states[v].matched_edge != kNoEdge)
      in_matching[states[v].matched_edge] = true;

  ctx.charge(2 * 3 * delta);  // propose + accept per class
  DC_DCHECK(is_matching(g, in_matching));
  return in_matching;
}

namespace {

/// Randomized proposal state: a matched node freezes; a free node redraws
/// its proposal every iteration.
struct RandMatchState {
  std::uint8_t matched = 0;
  NodeId proposal = kNoNode;
  EdgeId proposal_edge = kNoEdge;
  bool operator==(const RandMatchState&) const = default;
};

}  // namespace

std::vector<bool> maximal_matching_randomized(const Graph& g,
                                              LocalContext& ctx) {
  DefaultPhase scope(ctx, "maximal-matching-rand");
  const std::uint64_t seed = ctx.seed();
  std::vector<bool> in_matching(g.num_edges(), false);
  const int max_rounds = 64 * (32 - __builtin_clz(g.num_nodes() + 2));

  // One iteration = 2 engine rounds: propose (2t), then mutual-proposal
  // match (2t+1). A free node with free neighbors changes state every
  // round (proposal set, then cleared or frozen), and matched nodes /
  // isolated-free nodes are fixpoints, so the user's frontier setting is
  // sound and the sweep shrinks with the free subgraph.
  SyncRunner<RandMatchState> runner(
      g, std::vector<RandMatchState>(g.num_nodes()), ctx.engine());
  const auto step = [&](const auto& v) -> RandMatchState {
    RandMatchState s = v.self();
    if (s.matched) return s;
    if (v.round() % 2 == 0) {  // propose to a random free neighbor
      s.proposal = kNoNode;
      s.proposal_edge = kNoEdge;
      const auto nbrs = v.neighbors();
      const auto inc = g.incident_edges(v.node());
      // Candidate arrays live in the worker's round-local scratch arena
      // (degree-bounded, frame-reclaimed per node) — no heap traffic in
      // the steady-state round.
      ScratchArena::Frame frame(ScratchArena::local());
      NodeId* free_nbrs = frame.alloc<NodeId>(nbrs.size());
      EdgeId* free_edges = frame.alloc<EdgeId>(nbrs.size());
      std::size_t free_count = 0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (!v.neighbor(nbrs[k]).matched) {
          free_nbrs[free_count] = nbrs[k];
          free_edges[free_count] = inc[k];
          ++free_count;
        }
      }
      if (free_count == 0) return s;
      const std::size_t pick =
          hash_mix(seed, v.id(), static_cast<std::uint64_t>(v.round())) %
          free_count;
      s.proposal = free_nbrs[pick];
      s.proposal_edge = free_edges[pick];
      return s;
    }
    // Match on mutual proposals; both endpoints keep the same edge id.
    if (s.proposal != kNoNode &&
        v.neighbor(s.proposal).proposal == v.node()) {
      s.matched = 1;  // proposal_edge survives as the matched edge
    } else {
      s.proposal_edge = kNoEdge;
    }
    s.proposal = kNoNode;
    return s;
  };
  const auto done = [&](const std::vector<RandMatchState>& states) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (!states[u].matched && !states[v].matched) return false;
    }
    return true;
  };
  const int rounds = runner.run(2 * max_rounds, step, done);
  DC_CHECK_MSG(done(runner.states()),
               "randomized matching did not converge");
  const auto& states = runner.states();
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (states[v].matched && states[v].proposal_edge != kNoEdge)
      in_matching[states[v].proposal_edge] = true;
  ctx.charge(rounds);
  return in_matching;
}

}  // namespace deltacolor
