#include "primitives/maximal_matching.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/checker.hpp"
#include "graph/subgraph.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/forest_coloring.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

namespace {
/// Real rounds per simulated line-graph round.
constexpr int kLineGraphDilation = 2;
}  // namespace

std::vector<bool> maximal_matching_deterministic(const Graph& g,
                                                 RoundLedger& ledger,
                                                 const std::string& phase) {
  std::vector<bool> in_matching(g.num_edges(), false);
  if (g.num_edges() == 0) return in_matching;

  // Proper edge coloring (implicit line graph) reduced to 2*Delta-1
  // classes, then one virtual round per color class: an edge joins if both
  // endpoints are still free. Edges of a class share no endpoint.
  RoundLedger ec_ledger;
  LinialResult ec = linial_edge_coloring(g, ec_ledger, phase);
  {
    const int line_degree = std::max(0, 2 * g.max_degree() - 2);
    LinialResult reduced = kw_reduce(
        g.num_edges(), line_degree, std::move(ec.color), ec.num_colors,
        line_degree + 1,
        [&g](NodeId e, auto&& fn) {
          const auto [u, v] = g.endpoints(static_cast<EdgeId>(e));
          for (const EdgeId f : g.incident_edges(u))
            if (f != e) fn(static_cast<NodeId>(f));
          for (const EdgeId f : g.incident_edges(v))
            if (f != e) fn(static_cast<NodeId>(f));
        },
        ec_ledger, phase);
    reduced.rounds = ec.rounds + 2 * reduced.rounds;  // line-graph dilation
    ec = std::move(reduced);
  }

  std::vector<bool> matched(g.num_nodes(), false);
  for (const auto& cls : color_classes(ec)) {
    for (const NodeId en : cls) {
      const EdgeId e = static_cast<EdgeId>(en);
      const auto [u, v] = g.endpoints(e);
      if (matched[u] || matched[v]) continue;
      in_matching[e] = true;
      matched[u] = matched[v] = true;
    }
  }
  ledger.charge(phase, ec.rounds);  // edge-coloring rounds (dilation inside)
  ledger.charge(phase, ec.num_colors, kLineGraphDilation);
  return in_matching;
}

std::vector<bool> maximal_matching_pr(const Graph& g, RoundLedger& ledger,
                                      const std::string& phase) {
  std::vector<bool> in_matching(g.num_edges(), false);
  if (g.num_edges() == 0) return in_matching;
  const int delta = g.max_degree();

  // Forest decomposition: v's i-th higher-identifier neighbor is its
  // parent in forest i. Identifiers strictly increase along parent edges,
  // so every forest is acyclic.
  std::vector<std::vector<NodeId>> parent_in(
      static_cast<std::size_t>(delta),
      std::vector<NodeId>(g.num_nodes(), kNoNode));
  std::vector<std::vector<EdgeId>> parent_edge(
      static_cast<std::size_t>(delta),
      std::vector<EdgeId>(g.num_nodes(), kNoEdge));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    int i = 0;
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (g.id(nbrs[k]) < g.id(v)) continue;
      parent_in[static_cast<std::size_t>(i)][v] = nbrs[k];
      parent_edge[static_cast<std::size_t>(i)][v] = inc[k];
      ++i;
    }
  }

  // 3-color every forest; all reductions run in parallel, so the round
  // cost is a single O(log* n) term (charged as the max).
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = g.id(v);
  std::vector<std::vector<Color>> forest_color(
      static_cast<std::size_t>(delta));
  int coloring_rounds = 0;
  for (int f = 0; f < delta; ++f) {
    RoundLedger forest_ledger;
    const ForestColoringResult fc = forest_3_coloring(
        parent_in[static_cast<std::size_t>(f)], ids, forest_ledger, phase);
    forest_color[static_cast<std::size_t>(f)] = fc.color;
    coloring_rounds = std::max(coloring_rounds, fc.rounds);
  }
  ledger.charge(phase, 1 + coloring_rounds);  // orientation + parallel CV

  // Sequential forests, three proposal rounds each: free class-c nodes
  // propose to their (free) forest parent; a parent accepts its smallest-
  // identifier proposer.
  std::vector<bool> matched(g.num_nodes(), false);
  std::vector<NodeId> accepted(g.num_nodes(), kNoNode);
  for (int f = 0; f < delta; ++f) {
    for (Color cls = 0; cls < 3; ++cls) {
      std::fill(accepted.begin(), accepted.end(), kNoNode);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (matched[v] || forest_color[static_cast<std::size_t>(f)][v] != cls)
          continue;
        const NodeId p = parent_in[static_cast<std::size_t>(f)][v];
        if (p == kNoNode || matched[p]) continue;
        if (accepted[p] == kNoNode || g.id(v) < g.id(accepted[p]))
          accepted[p] = v;
      }
      for (NodeId p = 0; p < g.num_nodes(); ++p) {
        const NodeId v = accepted[p];
        if (v == kNoNode) continue;
        in_matching[parent_edge[static_cast<std::size_t>(f)][v]] = true;
        matched[v] = matched[p] = true;
      }
    }
  }
  ledger.charge(phase, 2 * 3 * delta);  // propose + accept per class
  DC_DCHECK(is_matching(g, in_matching));
  return in_matching;
}

std::vector<bool> maximal_matching_randomized(const Graph& g,
                                              std::uint64_t seed,
                                              RoundLedger& ledger,
                                              const std::string& phase) {
  std::vector<bool> in_matching(g.num_edges(), false);
  std::vector<bool> matched(g.num_nodes(), false);
  int rounds = 0;
  const int max_rounds = 64 * (32 - __builtin_clz(g.num_nodes() + 2));
  for (;;) {
    // Any free edge left?
    bool any_free = false;
    for (EdgeId e = 0; e < g.num_edges() && !any_free; ++e) {
      const auto [u, v] = g.endpoints(e);
      any_free = !matched[u] && !matched[v];
    }
    if (!any_free) break;
    DC_CHECK_MSG(rounds < max_rounds, "randomized matching did not converge");

    // Proposal: every free node points at one free neighbor chosen at
    // random; an edge whose two endpoints point at each other joins.
    std::vector<NodeId> proposal(g.num_nodes(), kNoNode);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (matched[v]) continue;
      std::vector<NodeId> free_nbrs;
      for (const NodeId u : g.neighbors(v))
        if (!matched[u]) free_nbrs.push_back(u);
      if (free_nbrs.empty()) continue;
      proposal[v] =
          free_nbrs[hash_mix(seed, g.id(v),
                             static_cast<std::uint64_t>(rounds)) %
                    free_nbrs.size()];
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (proposal[u] == v && proposal[v] == u) {
        in_matching[e] = true;
        matched[u] = matched[v] = true;
      }
    }
    rounds += 2;  // propose + accept
  }
  ledger.charge(phase, rounds);
  return in_matching;
}

}  // namespace deltacolor
