#include "primitives/degree_splitting.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace deltacolor {

namespace {

// One halving pass over the edges flagged `active`: writes 0/1 into `side`
// for every active edge. Edges are abstract (endpoint node ids); parallel
// edges and even self-parallel structures are fine since everything is
// indexed by edge position.
void halve(int num_nodes, const std::vector<std::pair<int, int>>& edges,
           const NodeMask& active, std::vector<int>& side,
           std::uint64_t seed, int segment_length) {
  const std::size_t m = edges.size();
  // Edge-end pairing per node: consecutive active incident edge-ends pair
  // up. Ends are indexed 2e (at edges[e].first) and 2e+1 (at .second).
  std::vector<std::size_t> partner(2 * m, ~std::size_t{0});
  {
    std::vector<std::vector<std::size_t>> ends_at(
        static_cast<std::size_t>(num_nodes));
    for (std::size_t e = 0; e < m; ++e) {
      if (!active[e]) continue;
      ends_at[static_cast<std::size_t>(edges[e].first)].push_back(2 * e);
      ends_at[static_cast<std::size_t>(edges[e].second)].push_back(2 * e + 1);
    }
    for (const auto& ends : ends_at) {
      for (std::size_t i = 0; i + 1 < ends.size(); i += 2) {
        partner[ends[i]] = ends[i + 1];
        partner[ends[i + 1]] = ends[i];
      }
    }
  }
  const auto kNone = ~std::size_t{0};
  auto other_end = [](std::size_t end) { return end ^ std::size_t{1}; };

  // Walk extraction: each active edge lies on exactly one path or cycle.
  NodeMask visited(m, 0);
  std::vector<std::size_t> walk;  // edge indices in walk order
  for (std::size_t start = 0; start < m; ++start) {
    if (!active[start] || visited[start]) continue;
    // Rewind from end 2*start backwards to a walk head (an unpaired end),
    // or detect a cycle when the rewind re-enters the start edge.
    std::size_t head_end = 2 * start;
    {
      std::size_t end = 2 * start;
      while (partner[end] != kNone) {
        const std::size_t prev = partner[end];  // an end of previous edge
        if (prev / 2 == start) break;           // cycle closed
        end = other_end(prev);
      }
      head_end = end;  // path head, or an arbitrary cycle cut point
    }
    // March forward from the head, collecting the walk.
    walk.clear();
    std::size_t enter = head_end;
    while (true) {
      const std::size_t e = enter / 2;
      walk.push_back(e);
      visited[e] = 1;
      const std::size_t exit = other_end(enter);
      const std::size_t next = partner[exit];
      if (next == kNone || visited[next / 2]) break;
      enter = next;
    }
    // Chop into segments with a per-walk random offset; alternate within
    // each segment (this is what a distributed implementation achieves with
    // list symmetry breaking in O(segment_length + log* n) rounds).
    const std::uint64_t offset =
        hash_mix(seed, head_end, static_cast<std::uint64_t>(walk.size())) %
        static_cast<std::uint64_t>(segment_length);
    for (std::size_t i = 0; i < walk.size(); ++i) {
      const std::size_t pos = i + offset;
      const std::size_t within =
          pos % static_cast<std::size_t>(segment_length);
      side[walk[i]] = static_cast<int>(within % 2);
    }
  }
}

}  // namespace

DegreeSplitResult degree_split_edges(
    int num_nodes, const std::vector<std::pair<int, int>>& edges, int levels,
    int segment_length, std::uint64_t seed, LocalContext& ctx) {
  DefaultPhase scope(ctx, "degree-split");
  DC_CHECK(levels >= 1 && segment_length >= 2);
  for (const auto& [a, b] : edges)
    DC_CHECK(a >= 0 && a < num_nodes && b >= 0 && b < num_nodes);
  DegreeSplitResult res;
  res.num_parts = 1 << levels;
  res.part.assign(edges.size(), 0);

  NodeMask active(edges.size(), 0);
  std::vector<int> side(edges.size(), 0);
  for (int level = 0; level < levels; ++level) {
    // Split every current part independently; edges of part p move to
    // 2p + side. All 2^level sub-splits run in parallel in LOCAL. The
    // snapshot keeps part-p membership fixed while earlier sub-splits of
    // this level already write the doubled indices.
    const std::vector<int> before = res.part;
    for (int p = 0; p < (1 << level); ++p) {
      for (std::size_t e = 0; e < edges.size(); ++e)
        active[e] = before[e] == p;
      halve(num_nodes, edges, active, side, hash_mix(seed, level, p),
            segment_length);
      for (std::size_t e = 0; e < edges.size(); ++e)
        if (active[e]) res.part[e] = 2 * p + side[e];
    }
    res.rounds += 1 + segment_length + log_star(num_nodes + 2);
  }
  ctx.charge(res.rounds);
  return res;
}

DegreeSplitResult degree_split(const Graph& g, int levels, int segment_length,
                               std::uint64_t seed, LocalContext& ctx) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(g.num_edges());
  for (const auto& [u, v] : g.edges())
    edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
  return degree_split_edges(static_cast<int>(g.num_nodes()), edges, levels,
                            segment_length, seed, ctx);
}

std::vector<int> part_degrees(const Graph& g, const DegreeSplitResult& split,
                              int part) {
  std::vector<int> deg(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (split.part[e] != part) continue;
    const auto [u, v] = g.endpoints(e);
    ++deg[u];
    ++deg[v];
  }
  return deg;
}

}  // namespace deltacolor
