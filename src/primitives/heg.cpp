#include "primitives/heg.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace deltacolor {

namespace {

// Alternating BFS from a free vertex in the (vertex, hyperedge) bipartite
// incidence graph: vertex -> any incident hyperedge; hyperedge -> its
// current grabber. Returns the augmenting path as alternating
// vertex/hyperedge indices (v0, f0, v1, f1, .., fk) where fk is free, or an
// empty vector if none exists within `depth_cap` vertex layers. Elements
// flagged in `blocked_*` (already used by another augmentation this
// iteration) are skipped.
std::vector<int> find_augmenting_path(const Hypergraph& h,
                                      const std::vector<int>& grabber,
                                      int source, int depth_cap,
                                      const NodeMask& blocked_vertex,
                                      const NodeMask& blocked_edge) {
  const int num_edges = static_cast<int>(h.edges.size());
  std::vector<int> prev_vertex_of_edge(num_edges, -2);  // -2 = unvisited
  std::vector<int> prev_edge_of_vertex(h.num_vertices, -2);
  std::queue<int> frontier;  // vertices
  prev_edge_of_vertex[source] = -1;
  frontier.push(source);
  int free_edge = -1;
  int depth = 0;
  while (!frontier.empty() && free_edge == -1 && depth < depth_cap) {
    std::queue<int> next;
    while (!frontier.empty() && free_edge == -1) {
      const int v = frontier.front();
      frontier.pop();
      for (const int f : h.incidence[v]) {
        if (prev_vertex_of_edge[f] != -2 || blocked_edge[f]) continue;
        prev_vertex_of_edge[f] = v;
        const int w = grabber[f];
        if (w == -1) {
          free_edge = f;
          break;
        }
        if (prev_edge_of_vertex[w] != -2 || blocked_vertex[w]) continue;
        prev_edge_of_vertex[w] = f;
        next.push(w);
      }
    }
    frontier.swap(next);
    ++depth;
  }
  if (free_edge == -1) return {};
  // Reconstruct: fk, v_k, f_{k-1}, .., v_0 reversed.
  std::vector<int> path;
  int f = free_edge;
  for (;;) {
    path.push_back(f);
    const int v = prev_vertex_of_edge[f];
    path.push_back(v);
    if (v == source) break;
    f = prev_edge_of_vertex[v];
  }
  std::reverse(path.begin(), path.end());
  return path;  // v0 f0 v1 f1 .. fk
}

void apply_augmenting_path(std::vector<int>& grabbed_edge,
                           std::vector<int>& grabber,
                           const std::vector<int>& path) {
  // path = v0 f0 v1 f1 .. v_k f_k: v_i grabs f_i.
  DC_CHECK(path.size() % 2 == 0);
  for (std::size_t i = 0; i < path.size(); i += 2) {
    const int v = path[i];
    const int f = path[i + 1];
    grabbed_edge[v] = f;
    grabber[f] = v;
  }
}

}  // namespace

HegResult solve_heg(const Hypergraph& h, LocalContext& ctx) {
  DefaultPhase scope(ctx, "heg");
  DC_CHECK_MSG(static_cast<int>(h.incidence.size()) == h.num_vertices,
               "call build_incidence() before solve_heg");
  HegResult res;
  const int num_edges = static_cast<int>(h.edges.size());
  res.grabbed_edge.assign(h.num_vertices, -1);
  res.grabber.assign(num_edges, -1);

  // Greedy first wave: every vertex proposes to its first incident
  // hyperedge; an edge accepts one proposer. Repeated a few times this
  // grabs most vertices in O(1) rounds; the remainder augment below.
  for (int wave = 0; wave < 3; ++wave) {
    for (int v = 0; v < h.num_vertices; ++v) {
      if (res.grabbed_edge[v] != -1) continue;
      for (const int f : h.incidence[v]) {
        if (res.grabber[f] == -1) {
          res.grabber[f] = v;
          res.grabbed_edge[v] = f;
          break;
        }
      }
    }
    res.rounds += 2;  // propose + accept
  }

  // Phase-doubling augmentation: while free vertices remain, every free
  // vertex searches an alternating path of bounded depth; a maximal
  // vertex-disjoint subset of the found paths is applied (simulated
  // greedily in identifier order; a LOCAL implementation resolves the
  // conflicts inside the paths' bounded neighborhoods).
  int radius = 2;
  const int hard_cap = 4 * (h.num_vertices + num_edges) + 16;
  while (true) {
    std::vector<int> free_vertices;
    for (int v = 0; v < h.num_vertices; ++v)
      if (res.grabbed_edge[v] == -1) free_vertices.push_back(v);
    if (free_vertices.empty()) {
      res.complete = true;
      break;
    }
    NodeMask blocked_vertex(h.num_vertices, 0);
    NodeMask blocked_edge(num_edges, 0);
    bool any = false;
    for (const int v : free_vertices) {
      if (blocked_vertex[v]) continue;
      const auto path = find_augmenting_path(h, res.grabber, v, radius,
                                             blocked_vertex, blocked_edge);
      if (path.empty()) continue;
      apply_augmenting_path(res.grabbed_edge, res.grabber, path);
      for (std::size_t i = 0; i < path.size(); i += 2) {
        blocked_vertex[path[i]] = 1;
        blocked_edge[path[i + 1]] = 1;
      }
      any = true;
    }
    // One augmentation iteration costs O(radius) rounds: BFS out, conflict
    // resolution within the paths' radius-bounded neighborhoods, commit.
    res.rounds += 3 * radius;
    if (!any) {
      if (radius >= hard_cap) break;  // infeasible instance
      radius *= 2;
    }
  }
  ctx.charge(res.rounds);
  return res;
}

HegResult solve_heg_centralized(const Hypergraph& h) {
  DC_CHECK(static_cast<int>(h.incidence.size()) == h.num_vertices);
  HegResult res;
  const int num_edges = static_cast<int>(h.edges.size());
  res.grabbed_edge.assign(h.num_vertices, -1);
  res.grabber.assign(num_edges, -1);
  // Kuhn's algorithm with DFS augmentation (simple, exact).
  std::vector<int> stamp(num_edges, -1);
  auto try_augment = [&](auto&& self, int v, int iteration) -> bool {
    for (const int f : h.incidence[v]) {
      if (stamp[f] == iteration) continue;
      stamp[f] = iteration;
      if (res.grabber[f] == -1 ||
          self(self, res.grabber[f], iteration)) {
        res.grabber[f] = v;
        res.grabbed_edge[v] = f;
        return true;
      }
    }
    return false;
  };
  res.complete = true;
  for (int v = 0; v < h.num_vertices; ++v)
    if (!try_augment(try_augment, v, v)) res.complete = false;
  return res;
}

bool is_valid_heg(const Hypergraph& h, const HegResult& r,
                  bool require_complete) {
  if (static_cast<int>(r.grabbed_edge.size()) != h.num_vertices) return false;
  std::vector<int> grab_count(h.edges.size(), 0);
  for (int v = 0; v < h.num_vertices; ++v) {
    const int f = r.grabbed_edge[v];
    if (f == -1) {
      if (require_complete) return false;
      continue;
    }
    if (f < 0 || f >= static_cast<int>(h.edges.size())) return false;
    // Grab must be incident.
    if (std::find(h.edges[f].begin(), h.edges[f].end(), v) ==
        h.edges[f].end())
      return false;
    if (++grab_count[f] > 1) return false;
  }
  return true;
}

}  // namespace deltacolor
