// Cole-Vishkin 3-coloring of rooted forests in O(log* n) rounds.
//
// Each node knows its parent (kNoNode for roots). Colors start as the
// LOCAL identifiers; one Cole-Vishkin step maps a color to
// 2*i + bit_i(color), where i is the lowest bit position at which the
// color differs from the parent's (roots diff against their own color
// xor 1). After O(log* n) steps the palette stabilizes at {0..5}; colors
// 5, 4, 3 are then eliminated by shift-down + recolor rounds: after every
// node adopts its parent's color (roots pick a fresh one), all siblings
// agree, so a node sees at most two colors in its neighborhood and can
// move into {0, 1, 2}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct ForestColoringResult {
  std::vector<Color> color;  ///< proper 3-coloring of the forest edges
  int rounds = 0;
};

/// `parent[v]` is v's parent in the forest or kNoNode for roots; `ids`
/// are the unique node identifiers the reduction starts from.
ForestColoringResult forest_3_coloring(const std::vector<NodeId>& parent,
                                       const std::vector<std::uint64_t>& ids,
                                       RoundLedger& ledger,
                                       const std::string& phase = "forest-3col");

/// Validity helper: no node shares a color with its parent.
bool is_proper_forest_coloring(const std::vector<NodeId>& parent,
                               const std::vector<Color>& color,
                               int num_colors);

}  // namespace deltacolor
