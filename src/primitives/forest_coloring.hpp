// Cole-Vishkin 3-coloring of rooted forests in O(log* n) rounds.
//
// Each node knows its parent (kNoNode for roots). Colors start as the
// LOCAL identifiers; one Cole-Vishkin step maps a color to
// 2*i + bit_i(color), where i is the lowest bit position at which the
// color differs from the parent's (roots diff against their own color
// xor 1). After O(log* n) steps the palette stabilizes at {0..5}; colors
// 5, 4, 3 are then eliminated by shift-down + recolor rounds: after every
// node adopts its parent's color (roots pick a fresh one), all siblings
// agree, so a node sees at most two colors in its neighborhood and can
// move into {0, 1, 2}.
//
// Both phases are stepped through the SyncRunner engine over a lazy
// parent-pointer view (each node's only visible neighbor is its parent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct ForestColoringResult {
  std::vector<Color> color;  ///< proper 3-coloring of the forest edges
  int rounds = 0;
};

/// `parent[v]` is v's parent in the forest or kNoNode for roots; `ids`
/// are the unique node identifiers the reduction starts from. Rounds are
/// charged to the context's phase (default "forest-3col").
ForestColoringResult forest_3_coloring(const std::vector<NodeId>& parent,
                                       const std::vector<std::uint64_t>& ids,
                                       LocalContext& ctx);

/// Validity helper: no node shares a color with its parent.
bool is_proper_forest_coloring(const std::vector<NodeId>& parent,
                               const std::vector<Color>& color,
                               int num_colors);

// ---- RoundLedger-based compatibility wrapper (pre-LocalContext API) ----

inline ForestColoringResult forest_3_coloring(
    const std::vector<NodeId>& parent, const std::vector<std::uint64_t>& ids,
    RoundLedger& ledger, const std::string& phase = "forest-3col") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return forest_3_coloring(parent, ids, ctx);
}

}  // namespace deltacolor
