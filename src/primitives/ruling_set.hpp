// (2, beta)-ruling sets [Mau21, SEW13-role].
//
// Realized by the classic bit-peeling scheme over a Linial coloring: process
// the label bits from high to low; a candidate whose current bit is 0 and
// that has a candidate neighbor whose bit is 1 withdraws. Surviving
// candidates are independent (two adjacent survivors would share all label
// bits, contradicting properness), and every withdrawn node can charge a
// chain of length <= #bits to a survivor, so the domination radius is
// O(log(Delta^2)) = O(log Delta). Runs in O(log Delta + log* n) rounds.
//
// The construction is generic over any GraphView. Running it on the lazy
// PowerGraphView G^r (ruling_set_power) yields an (r+1, O(r log Delta))-
// ruling set of the host graph without ever materializing G^r: each
// virtual round costs r real rounds, charged via the view's dilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"
#include "local/sync_runner.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

struct RulingSetResult {
  std::vector<bool> in_set;
  /// Upper bound on the domination radius guaranteed by the construction,
  /// in *host-graph* hops (= label bits peeled, times the view's dilation
  /// when run on a virtual graph). Benches/tests verify it.
  int domination_radius = 0;
};

/// (2, O(log Delta))-ruling set of the view. Nodes flagged true are
/// pairwise non-adjacent *in the view* and dominate it within
/// domination_radius / dilation view hops.
template <GraphView ViewT>
RulingSetResult ruling_set(const ViewT& view, LocalContext& ctx) {
  DefaultPhase scope(ctx, "ruling-set");
  RulingSetResult res;
  const NodeId n = view.num_nodes();
  res.in_set.assign(n, false);
  if (n == 0) return res;

  const LinialResult lin = linial_coloring(view, ctx);
  int bits = 1;
  while ((1 << bits) < lin.num_colors) ++bits;
  res.domination_radius = bits * view.dilation();

  // Engine round r peels bit (bits - 1 - r): round-indexed, frontier off.
  SyncRunner<std::uint8_t, ViewT> runner(
      view, std::vector<std::uint8_t>(n, 1), ctx.round_indexed_engine());
  // The Linial labels are read-only side data; shipping them places a copy
  // in the halo plane so pool workers see them (in-process runs alias the
  // vector directly).
  const ShardSpan<Color> label = runner.ship(lin.color);
  const auto step = shard_safe([bits, label](const auto& v) -> std::uint8_t {
    if (!v.self()) return 0;
    const int b = bits - 1 - v.round();
    if (((label[v.node()] >> b) & 1) == 1) return 1;
    std::uint8_t survives = 1;
    v.for_each_neighbor([&](NodeId u) {
      if (v.neighbor(u) && ((label[u] >> b) & 1) == 1)
        survives = 0;  // a bit-1 candidate neighbor dominates v
    });
    return survives;
  });
  runner.run_rounds(bits, step);
  // Survivors are independent: adjacent survivors would agree on every bit,
  // i.e. share a Linial color — impossible for a proper coloring.
  const auto& states = runner.states();
  for (NodeId v = 0; v < n; ++v) res.in_set[v] = states[v] != 0;
  ctx.charge(bits, view.dilation());
  return res;
}

/// (r+1, O(r log Delta))-ruling set of g, computed on the lazy power-graph
/// view G^r (never materialized): members are pairwise at host distance
/// > r, and every node is within domination_radius host hops of a member.
RulingSetResult ruling_set_power(const Graph& g, int radius,
                                 LocalContext& ctx);

// ---- RoundLedger-based compatibility wrapper (pre-LocalContext API) ----

inline RulingSetResult ruling_set(const Graph& g, RoundLedger& ledger,
                                  const std::string& phase = "ruling-set") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return ruling_set(g, ctx);
}

}  // namespace deltacolor
