// (2, beta)-ruling sets [Mau21, SEW13-role].
//
// Realized by the classic bit-peeling scheme over a Linial coloring: process
// the label bits from high to low; a candidate whose current bit is 0 and
// that has a candidate neighbor whose bit is 1 withdraws. Surviving
// candidates are independent (two adjacent survivors would share all label
// bits, contradicting properness), and every withdrawn node can charge a
// chain of length <= #bits to a survivor, so the domination radius is
// O(log(Delta^2)) = O(log Delta). Runs in O(log Delta + log* n) rounds.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct RulingSetResult {
  std::vector<bool> in_set;
  /// Upper bound on the domination radius guaranteed by the construction
  /// (= number of label bits peeled). Benches/tests verify it.
  int domination_radius = 0;
};

/// (2, O(log Delta))-ruling set of g. Nodes flagged true are pairwise
/// non-adjacent and dominate the graph within `domination_radius` hops.
RulingSetResult ruling_set(const Graph& g, RoundLedger& ledger,
                           const std::string& phase = "ruling-set");

}  // namespace deltacolor
