// Hyperedge grabbing (HEG): every vertex must grab one incident hyperedge
// such that no hyperedge is grabbed by more than one vertex (equivalently,
// hypergraph sinkless orientation; Lemma 5 of the paper, [BMN+25]).
//
// Solvability: a solution is a bipartite matching (vertices x hyperedges)
// saturating all vertices; Hall's condition holds whenever the minimum
// degree delta exceeds the rank r, and the paper's instances guarantee
// delta > 1.1 r (Lemma 11). The slack makes the vertex side expand by a
// factor delta/r, so augmenting paths have length O(log_{delta/r} n).
//
// Substitution note (DESIGN.md): the BMN+25 algorithm is replaced by a
// distributed phase-doubling augmenting-path solver that exploits exactly
// the same expansion; bench E8 verifies the logarithmic round shape, and a
// centralized Hopcroft-Karp matcher provides ground truth in tests.
#pragma once

#include <string>
#include <vector>

#include "local/context.hpp"
#include "local/ledger.hpp"
#include "primitives/hypergraph.hpp"

namespace deltacolor {

struct HegResult {
  /// grabbed_edge[v] = hyperedge grabbed by vertex v (-1 if the instance is
  /// infeasible for v — never happens when min_degree > rank).
  std::vector<int> grabbed_edge;
  /// grabber[f] = vertex grabbing hyperedge f, or -1.
  std::vector<int> grabber;
  int rounds = 0;
  bool complete = false;  ///< every vertex grabbed an edge
};

/// Distributed-flavored HEG solver. `h` must have build_incidence() called.
/// The augmenting-path search is a centralized stand-in for the BMN+25
/// algorithm (see the substitution note above): it is order-dependent, so
/// it is *not* stepped through the engine; only round accounting and the
/// execution context flow through LocalContext. Default phase "heg".
HegResult solve_heg(const Hypergraph& h, LocalContext& ctx);

/// RoundLedger-based compatibility wrapper (pre-LocalContext API).
inline HegResult solve_heg(const Hypergraph& h, RoundLedger& ledger,
                           const std::string& phase = "heg") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return solve_heg(h, ctx);
}

/// Centralized Hopcroft-Karp saturating matcher (ground truth for tests).
HegResult solve_heg_centralized(const Hypergraph& h);

/// Validity check: every grab is incident, no hyperedge grabbed twice, and
/// (if `require_complete`) every vertex grabbed something.
bool is_valid_heg(const Hypergraph& h, const HegResult& r,
                  bool require_complete = true);

}  // namespace deltacolor
