#include "primitives/forest_coloring.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {

namespace {

int lowest_differing_bit(std::uint64_t a, std::uint64_t b) {
  DC_DCHECK(a != b);
  return __builtin_ctzll(a ^ b);
}

/// Lazy parent-pointer view: each node's only visible neighbor is its
/// parent. The adjacency is *asymmetric* (children are invisible), so the
/// engine's frontier expansion — which follows view edges — cannot reach
/// the dependents of a changed node; forest runs always disable frontier
/// mode via round_indexed_engine().
struct ParentPointerView {
  const std::vector<NodeId>* parent;
  const std::vector<std::uint64_t>* ids;

  NodeId num_nodes() const { return static_cast<NodeId>(parent->size()); }
  int degree(NodeId v) const { return (*parent)[v] == kNoNode ? 0 : 1; }
  int max_degree() const { return 1; }
  std::uint64_t id(NodeId v) const { return (*ids)[v]; }
  static constexpr int dilation() { return 1; }

  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    if ((*parent)[v] != kNoNode) fn((*parent)[v]);
  }
};

/// Shift-down/recolor state: `pre` carries the node's own pre-shift color
/// into the recolor round (its children all hold that color then).
struct ShiftState {
  std::uint64_t color = 0;
  std::uint64_t pre = 0;
  bool operator==(const ShiftState&) const = default;
};

}  // namespace

ForestColoringResult forest_3_coloring(const std::vector<NodeId>& parent,
                                       const std::vector<std::uint64_t>& ids,
                                       LocalContext& ctx) {
  const std::size_t n = parent.size();
  DC_CHECK(ids.size() == n);
  ForestColoringResult res;
  res.color.assign(n, 0);
  if (n == 0) return res;
  DefaultPhase scope(ctx, "forest-3col");

  for (std::size_t v = 0; v < n; ++v)
    if (parent[v] != kNoNode)
      DC_CHECK_MSG(ids[v] != ids[parent[v]],
                   "forest_3_coloring: duplicate ids along an edge");
  const ParentPointerView view{&parent, &ids};

  // Cole-Vishkin reduction until the palette stabilizes at {0..5}.
  SyncRunner<std::uint64_t, ParentPointerView> cv(
      view, ids, ctx.round_indexed_engine());
  const auto cv_step = [&](const auto& v) -> std::uint64_t {
    const std::uint64_t mine = v.self();
    const std::uint64_t other = parent[v.node()] == kNoNode
                                    ? (mine ^ 1)
                                    : v.neighbor(parent[v.node()]);
    const int i = lowest_differing_bit(mine, other);
    return 2 * static_cast<std::uint64_t>(i) + ((mine >> i) & 1);
  };
  const auto cv_done = [](NodeId, const std::uint64_t& s) { return s < 6; };
  res.rounds = cv.run_until(80, cv_step, cv_done);
  DC_CHECK_MSG(res.rounds < 80, "Cole-Vishkin failed to converge");

  // Eliminate colors 5, 4, 3, two engine rounds each: round 2j shifts down
  // (adopt the parent's color; roots pick a fresh one — siblings then
  // agree), round 2j+1 recolors the holders of color 5-j into {0,1,2}.
  // Post-shift holders form an independent set (v and its parent both
  // holding 5-j would mean v's parent and grandparent shared a color
  // pre-shift), so the double-buffered recolor equals the sequential one.
  std::vector<ShiftState> elim_initial(n);
  {
    const auto& colors = cv.states();
    for (std::size_t v = 0; v < n; ++v) elim_initial[v].color = colors[v];
  }
  SyncRunner<ShiftState, ParentPointerView> elim(
      view, std::move(elim_initial), ctx.round_indexed_engine());
  const auto elim_step = [&](const auto& v) -> ShiftState {
    ShiftState s = v.self();
    const NodeId p = parent[v.node()];
    if (v.round() % 2 == 0) {  // shift-down
      s.pre = s.color;
      s.color = p == kNoNode ? (s.color == 0 ? 1 : 0) : v.neighbor(p).color;
      return s;
    }
    const std::uint64_t eliminate = 5 - static_cast<std::uint64_t>(v.round() / 2);
    if (s.color != eliminate) return s;
    // Neighborhood colors: the parent's, and the (shared) children color —
    // every child holds v's pre-shift color after the shift.
    const std::uint64_t blocked1 =
        p == kNoNode ? ~std::uint64_t{0} : v.neighbor(p).color;
    const std::uint64_t blocked2 = s.pre;
    for (std::uint64_t c = 0; c < 3; ++c) {
      if (c != blocked1 && c != blocked2) {
        s.color = c;
        break;
      }
    }
    return s;
  };
  elim.run_rounds(6, elim_step);
  res.rounds += 6;

  const auto& states = elim.states();
  for (std::size_t v = 0; v < n; ++v) {
    DC_CHECK(states[v].color < 3);
    res.color[v] = static_cast<Color>(states[v].color);
  }
  ctx.charge(res.rounds);
  return res;
}

bool is_proper_forest_coloring(const std::vector<NodeId>& parent,
                               const std::vector<Color>& color,
                               int num_colors) {
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (color[v] < 0 || color[v] >= num_colors) return false;
    if (parent[v] != kNoNode && color[v] == color[parent[v]]) return false;
  }
  return true;
}

}  // namespace deltacolor
