#include "primitives/forest_coloring.hpp"

#include <vector>

#include "common/check.hpp"

namespace deltacolor {

namespace {

int lowest_differing_bit(std::uint64_t a, std::uint64_t b) {
  DC_DCHECK(a != b);
  return __builtin_ctzll(a ^ b);
}

}  // namespace

ForestColoringResult forest_3_coloring(const std::vector<NodeId>& parent,
                                       const std::vector<std::uint64_t>& ids,
                                       RoundLedger& ledger,
                                       const std::string& phase) {
  const std::size_t n = parent.size();
  DC_CHECK(ids.size() == n);
  ForestColoringResult res;
  res.color.assign(n, 0);
  if (n == 0) return res;

  std::vector<std::uint64_t> cur = ids;
  for (std::size_t v = 0; v < n; ++v)
    if (parent[v] != kNoNode)
      DC_CHECK_MSG(cur[v] != cur[parent[v]],
                   "forest_3_coloring: duplicate ids along an edge");

  // Cole-Vishkin reduction until the palette stabilizes at {0..5}.
  std::vector<std::uint64_t> nxt(n);
  std::uint64_t max_val = 0;
  for (const std::uint64_t c : cur) max_val = std::max(max_val, c);
  while (max_val >= 6) {
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint64_t mine = cur[v];
      const std::uint64_t other =
          parent[v] == kNoNode ? (mine ^ 1) : cur[parent[v]];
      const int i = lowest_differing_bit(mine, other);
      nxt[v] = 2 * static_cast<std::uint64_t>(i) + ((mine >> i) & 1);
    }
    cur.swap(nxt);
    ++res.rounds;
    max_val = 0;
    for (const std::uint64_t c : cur) max_val = std::max(max_val, c);
    DC_CHECK_MSG(res.rounds < 80, "Cole-Vishkin failed to converge");
  }

  // Eliminate colors 5, 4, 3 with shift-down + recolor.
  for (std::uint64_t eliminate = 5; eliminate >= 3; --eliminate) {
    // Shift-down: adopt the parent's color; roots pick a different color
    // from {0, 1, 2} (any not equal to their own suffices for properness
    // against their children, who now all hold the root's old color).
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] == kNoNode) {
        nxt[v] = cur[v] == 0 ? 1 : 0;
      } else {
        nxt[v] = cur[parent[v]];
      }
    }
    cur.swap(nxt);
    ++res.rounds;
    // Recolor the eliminated class: all its holders act simultaneously
    // (they form an independent set in the forest after shift-down:
    // parent and children of a holder hold other... parent may also hold
    // `eliminate`; holders only consult colors < eliminate among their
    // neighbors and pick greedily from {0,1,2} — parent and (uniform)
    // child colors block at most two choices).
    for (std::size_t v = 0; v < n; ++v) {
      if (cur[v] != eliminate) continue;
      // Neighborhood colors: parent's and the (shared) children color.
      std::uint64_t blocked1 = ~std::uint64_t{0}, blocked2 = ~std::uint64_t{0};
      if (parent[v] != kNoNode) blocked1 = cur[parent[v]];
      // Children all hold v's pre-shift color, i.e. nxt[v] (the swapped
      // buffer still carries it).
      blocked2 = nxt[v];
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != blocked1 && c != blocked2) {
          cur[v] = c;
          break;
        }
      }
      DC_CHECK(cur[v] != eliminate);
    }
    ++res.rounds;
  }

  for (std::size_t v = 0; v < n; ++v) {
    DC_CHECK(cur[v] < 3);
    res.color[v] = static_cast<Color>(cur[v]);
  }
  ledger.charge(phase, res.rounds);
  return res;
}

bool is_proper_forest_coloring(const std::vector<NodeId>& parent,
                               const std::vector<Color>& color,
                               int num_colors) {
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (color[v] < 0 || color[v] >= num_colors) return false;
    if (parent[v] != kNoNode && color[v] == color[parent[v]]) return false;
  }
  return true;
}

}  // namespace deltacolor
