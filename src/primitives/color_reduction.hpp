// Kuhn-Wattenhofer color reduction: from any proper k-coloring to a proper
// `target`-coloring (target >= Delta + 1) in O(Delta * log(k/Delta))
// rounds.
//
// One stage partitions the palette into groups of 2*target consecutive
// colors. Within every group, in parallel across groups, the upper target
// colors are eliminated one per round: all holders of the eliminated color
// (an independent set) simultaneously move to a free color among the
// group's lower `target` colors — at most Delta of those are blocked by
// neighbors, and only neighbors inside the same group matter. A stage
// halves the palette at the cost of `target` rounds; after O(log(k/target))
// stages the palette is `target`.
//
// Used to shrink Linial's O(Delta^2) palette before class-greedy sweeps,
// turning their round cost from O(Delta^2) into O(Delta log Delta).
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"
#include "graph/graph.hpp"
#include "local/ledger.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

/// Generic reduction over an implicit graph (see linial_reduce).
/// `color` must be a proper coloring with values in [0, num_colors).
template <typename ForEachNeighbor>
LinialResult kw_reduce(NodeId n, int max_degree, std::vector<Color> color,
                       int num_colors, int target,
                       ForEachNeighbor&& for_each_neighbor,
                       RoundLedger& ledger, const std::string& phase) {
  DC_CHECK_MSG(target >= max_degree + 1,
               "KW reduction target " << target << " below Delta+1 = "
                                      << max_degree + 1);
  LinialResult res;
  int k = num_colors;
  while (k > target) {
    const int group_size = 2 * target;
    // Eliminate group-local colors [target, 2*target), top first, one
    // round each (lockstep across groups).
    for (int offset = group_size - 1; offset >= target; --offset) {
      if (offset >= k) continue;  // nobody holds such a color anywhere
      for (NodeId v = 0; v < n; ++v) {
        if (color[v] % group_size != offset) continue;
        const Color group_base = color[v] - offset;
        bool used[2 * 1024];  // target <= 1024 guarded below
        DC_CHECK(target <= 1024);
        for (int c = 0; c < target; ++c) used[c] = false;
        for_each_neighbor(v, [&](NodeId u) {
          const Color cu = color[u];
          if (cu >= group_base && cu < group_base + target)
            used[cu - group_base] = true;
        });
        Color pick = -1;
        for (int c = 0; c < target && pick == -1; ++c)
          if (!used[c]) pick = group_base + c;
        DC_CHECK_MSG(pick != -1, "KW: no free color at node " << v);
        color[v] = pick;
      }
      ++res.rounds;
    }
    // Compact: group g's surviving colors [g*2t, g*2t + t) -> [g*t, (g+1)*t).
    for (NodeId v = 0; v < n; ++v) {
      const Color group = color[v] / group_size;
      const Color within = color[v] % group_size;
      DC_DCHECK(within < target);
      color[v] = group * target + within;
    }
    k = ((k + group_size - 1) / group_size) * target;
  }
  res.color = std::move(color);
  res.num_colors = std::min(k, num_colors);
  ledger.charge(phase, res.rounds);
  return res;
}

/// Graph convenience overload.
LinialResult kw_reduce_graph(const Graph& g, std::vector<Color> color,
                             int num_colors, int target, RoundLedger& ledger,
                             const std::string& phase = "kw-reduce");

/// Linial followed by KW down to Delta+1 colors: a proper
/// (Delta+1)-coloring in O(Delta log Delta + log* n) rounds — the schedule
/// generator used by the class-greedy subroutines.
LinialResult schedule_coloring(const Graph& g, RoundLedger& ledger,
                               const std::string& phase = "schedule");

}  // namespace deltacolor
