// Kuhn-Wattenhofer color reduction: from any proper k-coloring to a proper
// `target`-coloring (target >= Delta + 1) in O(Delta * log(k/Delta))
// rounds.
//
// One stage partitions the palette into groups of 2*target consecutive
// colors. Within every group, in parallel across groups, the upper target
// colors are eliminated one per round: all holders of the eliminated color
// (an independent set) simultaneously move to a free color among the
// group's lower `target` colors — at most Delta of those are blocked by
// neighbors, and only neighbors inside the same group matter. A stage
// halves the palette at the cost of `target` rounds; after O(log(k/target))
// stages the palette is `target`.
//
// Used to shrink Linial's O(Delta^2) palette before class-greedy sweeps,
// turning their round cost from O(Delta^2) into O(Delta log Delta).
//
// Generic over any GraphView: the same engine-stepped implementation runs
// on host graphs and on the lazy LineGraphView (edge-coloring reduction).
// Each elimination round is one SyncRunner round; since holders of the
// eliminated color form an independent set, double-buffered reads equal
// the sequential in-place update, so results match the pre-engine code
// bit for bit at any worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "local/context.hpp"
#include "local/sync_runner.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {

/// Generic reduction over any GraphView. `color` must be a proper coloring
/// of the view with values in [0, num_colors). Charges the elimination
/// rounds (times view.dilation()) to the active phase ("kw-reduce" when the
/// caller opened none).
template <GraphView ViewT>
LinialResult kw_reduce(const ViewT& view, std::vector<Color> color,
                       int num_colors, int target, LocalContext& ctx) {
  DefaultPhase scope(ctx, "kw-reduce");
  const int max_degree = view.max_degree();
  DC_CHECK_MSG(target >= max_degree + 1,
               "KW reduction target " << target << " below Delta+1 = "
                                      << max_degree + 1);
  DC_CHECK(target <= 1024);  // fixed scratch bound in the step below
  LinialResult res;

  // The transition is keyed on the round number (which color is being
  // eliminated), so quiet nodes must still step on their slot: frontier off.
  SyncRunner<Color, ViewT> runner(view, std::move(color),
                                  ctx.round_indexed_engine());
  std::atomic<bool> failed{false};
  // Shared-plane cell standing in for &failed inside pool workers.
  const ShardFlag fail_flag = runner.ship_flag(failed);

  int k = num_colors;
  while (k > target) {
    const int group_size = 2 * target;
    const int hi = std::min(group_size, k);  // offsets >= k are held nowhere
    // Eliminate group-local colors [target, hi), top first, one round each
    // (lockstep across groups): engine round r handles offset hi - 1 - r.
    // Captures are all values, so the stage ships to the shard pool.
    const auto step = [hi, group_size, target,
                       fail_flag](const auto& v) -> Color {
      const Color c = v.self();
      const int offset = hi - 1 - v.round();
      if (c % group_size != offset) return c;
      const Color group_base = c - offset;
      // Word-parallel "first free group-local color": mark neighbor-held
      // offsets in a fixed 16-word bitset, then ctz the first word with a
      // clear bit below `target` — the same index the old per-bool linear
      // scan produced, at 64 colors per iteration.
      std::uint64_t used[1024 / 64];
      const int words = (target + 63) / 64;
      for (int w = 0; w < words; ++w) used[w] = 0;
      v.for_each_neighbor([&](NodeId u) {
        const Color cu = v.neighbor(u);
        if (cu >= group_base && cu < group_base + target)
          used[(cu - group_base) >> 6] |=
              std::uint64_t{1} << ((cu - group_base) & 63);
      });
      for (int w = 0; w < words; ++w) {
        std::uint64_t free_mask = ~used[w];
        if (w == words - 1 && target % 64 != 0)
          free_mask &= (std::uint64_t{1} << (target % 64)) - 1;
        if (free_mask != 0)
          return group_base + w * 64 + __builtin_ctzll(free_mask);
      }
      // Workers must not throw (neither ThreadPool nor a pool worker
      // propagates); flag and re-check on the main thread after the stage.
      fail_flag.set();
      return c;
    };
    const int stage_rounds = hi - target;
    runner.run_rounds(stage_rounds, shard_safe(step));
    DC_CHECK_MSG(!failed.load(std::memory_order_relaxed),
                 "KW: no free color during elimination");
    res.rounds += stage_rounds;
    // Compact: group g's surviving colors [g*2t, g*2t + t) -> [g*t, (g+1)*t)
    // — a zero-round renaming (pure local computation).
    runner.mutate_states([group_size, target](Color c) {
      return (c / group_size) * target + (c % group_size);
    });
    k = ((k + group_size - 1) / group_size) * target;
  }
  res.color = runner.take_states();
  res.num_colors = std::min(k, num_colors);
  ctx.charge(res.rounds, view.dilation());
  return res;
}

/// Linial followed by KW down to max_degree()+1 colors: a proper
/// (Delta+1)-coloring of the view in O(Delta log Delta + log* n) rounds —
/// the schedule generator used by the class-greedy subroutines. Default
/// phase "schedule".
template <GraphView ViewT>
LinialResult schedule_coloring(const ViewT& view, LocalContext& ctx) {
  DefaultPhase scope(ctx, "schedule");
  const LinialResult lin = linial_coloring(view, ctx);
  if (view.num_nodes() == 0) return lin;
  LinialResult res = kw_reduce(view, lin.color, lin.num_colors,
                               view.max_degree() + 1, ctx);
  res.rounds += lin.rounds;
  return res;
}

// ---- RoundLedger-based compatibility wrappers (pre-LocalContext API) ----

inline LinialResult kw_reduce_graph(const Graph& g, std::vector<Color> color,
                                    int num_colors, int target,
                                    RoundLedger& ledger,
                                    const std::string& phase = "kw-reduce") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return kw_reduce(g, std::move(color), num_colors, target, ctx);
}

inline LinialResult schedule_coloring(const Graph& g, RoundLedger& ledger,
                                      const std::string& phase = "schedule") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return schedule_coloring(g, ctx);
}

}  // namespace deltacolor
