// Multihypergraph support for the hyperedge grabbing problem (Lemma 5,
// [BMN+25-role]).
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace deltacolor {

struct Hypergraph {
  /// edges[f] lists the member vertex indices of hyperedge f (duplicates
  /// allowed across edges: this is a multihypergraph).
  std::vector<std::vector<int>> edges;
  int num_vertices = 0;

  /// incidence[v] lists the hyperedges containing v (built on demand).
  std::vector<std::vector<int>> incidence;

  void build_incidence() {
    incidence.assign(num_vertices, {});
    for (std::size_t f = 0; f < edges.size(); ++f)
      for (const int v : edges[f]) {
        DC_CHECK(v >= 0 && v < num_vertices);
        incidence[v].push_back(static_cast<int>(f));
      }
  }

  /// Maximum number of vertices in any hyperedge.
  int rank() const {
    std::size_t r = 0;
    for (const auto& e : edges) r = std::max(r, e.size());
    return static_cast<int>(r);
  }

  /// Minimum number of hyperedges incident to any vertex (requires
  /// build_incidence()).
  int min_degree() const {
    DC_CHECK(static_cast<int>(incidence.size()) == num_vertices);
    std::size_t d = edges.size();
    for (const auto& inc : incidence) d = std::min(d, inc.size());
    return static_cast<int>(d);
  }
};

}  // namespace deltacolor
