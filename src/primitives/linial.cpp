#include "primitives/linial.hpp"

#include <algorithm>

#include "graph/generators.hpp"  // next_prime

namespace deltacolor {

namespace detail {

std::uint64_t linial_pow_sat(std::uint64_t q, int e) {
  std::uint64_t r = 1;
  for (int i = 0; i < e; ++i) {
    if (r > ~std::uint64_t{0} / q) return ~std::uint64_t{0};
    r *= q;
  }
  return r;
}

int linial_degree_for(std::uint64_t q, std::uint64_t max_val) {
  int d = 0;
  while (linial_pow_sat(q, d + 1) <= max_val) ++d;
  return d;
}

std::pair<std::uint64_t, int> linial_choose_field(int delta,
                                                  std::uint64_t max_val) {
  for (int q = next_prime(std::max(2, delta + 2));; q = next_prime(q + 1)) {
    const int d = linial_degree_for(static_cast<std::uint64_t>(q), max_val);
    if (static_cast<std::uint64_t>(q) >
        static_cast<std::uint64_t>(delta) * static_cast<std::uint64_t>(d))
      return {static_cast<std::uint64_t>(q), d};
  }
}

}  // namespace detail

LinialResult linial_edge_coloring(const Graph& g, LocalContext& ctx) {
  DefaultPhase scope(ctx, "linial-edge");
  const EdgeId m = g.num_edges();
  LinialResult empty;
  if (m == 0) {
    empty.num_colors = 1;
    return empty;
  }

  // Vertex coloring first (palette chi = O(Delta^2)); its rounds are
  // accounted separately below, so it runs against a throwaway ledger.
  RoundLedger vertex_ledger;
  LocalContext vertex_ctx(vertex_ledger, ctx.engine(), ctx.seed());
  const LinialResult vertex = linial_coloring(g, vertex_ctx);

  // Compose a proper initial edge coloring: for edge (u, v) combine
  // (c_u, port_u(v)) and (c_v, port_v(u)) as an unordered pair, where
  // port_u(v) is v's index within u's adjacency list. Properness: two edges
  // sharing endpoint u differ either in the other endpoint's vertex color
  // or, if those collide, in u's ports; the unordered encoding cannot
  // confuse sides because adjacent endpoints never share a vertex color.
  const std::uint64_t port_space = static_cast<std::uint64_t>(
      std::max(1, g.max_degree()));
  const std::uint64_t half_space =
      static_cast<std::uint64_t>(vertex.num_colors) * port_space;
  std::vector<std::uint64_t> initial(m);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto inc = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (v < u) continue;  // handle each edge once, from its low endpoint
      // Find u's port at v.
      const auto vn = g.neighbors(v);
      const std::size_t j = static_cast<std::size_t>(
          std::lower_bound(vn.begin(), vn.end(), u) - vn.begin());
      const std::uint64_t a =
          static_cast<std::uint64_t>(vertex.color[u]) * port_space + i;
      const std::uint64_t b =
          static_cast<std::uint64_t>(vertex.color[v]) * port_space + j;
      const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
      initial[inc[i]] = lo * half_space + hi;
    }
  }

  // Reduce on the lazy line-graph view; each virtual round dilates to 2
  // real rounds (endpoints sync edge state over the edge), realized by the
  // view's dilation() inside linial_reduce's charge.
  const LineGraphView line(g);
  LinialResult res = linial_reduce(line, initial, ctx);
  const int line_rounds = res.rounds;
  res.rounds = vertex.rounds + 2 * line_rounds;
  ctx.charge(vertex.rounds);  // the vertex coloring's rounds are real rounds
  return res;
}

std::vector<std::vector<NodeId>> color_classes(const LinialResult& lin) {
  std::vector<std::vector<NodeId>> classes(
      static_cast<std::size_t>(std::max(lin.num_colors, 1)));
  for (NodeId v = 0; v < lin.color.size(); ++v)
    classes[static_cast<std::size_t>(lin.color[v])].push_back(v);
  return classes;
}

}  // namespace deltacolor
