#include "common/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DELTACOLOR_HAVE_AVX2_PATH 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define DELTACOLOR_HAVE_NEON_PATH 1
#endif

namespace deltacolor::simd {

namespace {

// --- scalar reference kernels ----------------------------------------------
// These are the semantics. Every vector kernel below must agree bit-for-bit
// on every input; bench_kernels enforces that with an abort-on-mismatch
// cross-check, and test_palette_set re-verifies it per level.

void andnot_scalar(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

int popcount_scalar(const std::uint64_t* w, std::size_t n) {
  int total = 0;
  for (std::size_t i = 0; i < n; ++i) total += __builtin_popcountll(w[i]);
  return total;
}

int popcount_and_scalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  int total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += __builtin_popcountll(a[i] & b[i]);
  return total;
}

std::size_t first_nonzero_scalar(const std::uint64_t* w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

std::size_t select_word_scalar(const std::uint64_t* w, std::size_t n,
                               int* k) {
  for (std::size_t i = 0; i < n; ++i) {
    const int pop = __builtin_popcountll(w[i]);
    if (*k < pop) return i;
    *k -= pop;
  }
  return n;
}

#if defined(DELTACOLOR_HAVE_AVX2_PATH)

// --- AVX2 kernels -----------------------------------------------------------
// 4 words per 256-bit vector, unaligned loads (palette words live in
// std::vector / arena storage; the arena aligns to 32 bytes but vectors only
// promise 16). Popcounts use the vpshufb nibble-LUT ("Mula") form reduced
// with vpsadbw: exact integer counts, no floating point, no reassociation.

__attribute__((target("avx2"))) inline __m256i popcount_epu64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  // Per-64-bit-lane byte sums.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) void andnot_avx2(std::uint64_t* dst,
                                                 const std::uint64_t* src,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s0, d0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4),
                        _mm256_andnot_si256(s1, d1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) int popcount_avx2(const std::uint64_t* w,
                                                  std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, popcount_epu64(v));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int total = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) total += __builtin_popcountll(w[i]);
  return total;
}

__attribute__((target("avx2"))) int popcount_and_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_epu64(_mm256_and_si256(va, vb)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int total = static_cast<int>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) total += __builtin_popcountll(a[i] & b[i]);
  return total;
}

__attribute__((target("avx2"))) std::size_t first_nonzero_avx2(
    const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (!_mm256_testz_si256(v, v)) {
      for (std::size_t j = i;; ++j)
        if (w[j] != 0) return j;
    }
  }
  for (; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

__attribute__((target("avx2"))) std::size_t select_word_avx2(
    const std::uint64_t* w, std::size_t n, int* k) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    alignas(32) std::uint64_t pops[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(pops), popcount_epu64(v));
    const int block =
        static_cast<int>(pops[0] + pops[1] + pops[2] + pops[3]);
    if (*k >= block) {
      *k -= block;
      continue;
    }
    for (std::size_t j = 0; j < 4; ++j) {
      const int pop = static_cast<int>(pops[j]);
      if (*k < pop) return i + j;
      *k -= pop;
    }
  }
  for (; i < n; ++i) {
    const int pop = __builtin_popcountll(w[i]);
    if (*k < pop) return i;
    *k -= pop;
  }
  return n;
}

#endif  // DELTACOLOR_HAVE_AVX2_PATH

#if defined(DELTACOLOR_HAVE_NEON_PATH)

// --- NEON kernels (aarch64) -------------------------------------------------
// 2 words per 128-bit vector; popcounts via vcntq_u8 + pairwise adds. NEON
// is mandatory on aarch64, so these compile unconditionally there.

void andnot_neon(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t d = vld1q_u64(dst + i);
    const uint64x2_t s = vld1q_u64(src + i);
    vst1q_u64(dst + i, vbicq_u64(d, s));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

inline std::uint64_t popcount_u64x2(uint64x2_t v) {
  const uint8x16_t cnt = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(cnt);
}

int popcount_neon(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) total += popcount_u64x2(vld1q_u64(w + i));
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(w[i]));
  return static_cast<int>(total);
}

int popcount_and_neon(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    total += popcount_u64x2(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  for (; i < n; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return static_cast<int>(total);
}

std::size_t first_nonzero_neon(const std::uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(w + i);
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0) {
      return w[i] != 0 ? i : i + 1;
    }
  }
  for (; i < n; ++i)
    if (w[i] != 0) return i;
  return n;
}

std::size_t select_word_neon(const std::uint64_t* w, std::size_t n, int* k) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int block =
        static_cast<int>(popcount_u64x2(vld1q_u64(w + i)));
    if (*k >= block) {
      *k -= block;
      continue;
    }
    const int pop0 = __builtin_popcountll(w[i]);
    if (*k < pop0) return i;
    *k -= pop0;
    return i + 1;
  }
  for (; i < n; ++i) {
    const int pop = __builtin_popcountll(w[i]);
    if (*k < pop) return i;
    *k -= pop;
  }
  return n;
}

#endif  // DELTACOLOR_HAVE_NEON_PATH

#if defined(DELTACOLOR_HAVE_AVX2_PATH)
const KernelTable kAvx2Table = {
    andnot_avx2,        popcount_avx2, popcount_and_avx2,
    first_nonzero_avx2, select_word_avx2,
    Level::kAvx2,       "avx2"};
#endif
#if defined(DELTACOLOR_HAVE_NEON_PATH)
const KernelTable kNeonTable = {
    andnot_neon,        popcount_neon, popcount_and_neon,
    first_nonzero_neon, select_word_neon,
    Level::kNeon,       "neon"};
#endif

const KernelTable* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &detail::kScalarTable;
    case Level::kAvx2:
#if defined(DELTACOLOR_HAVE_AVX2_PATH)
      return level_supported(Level::kAvx2) ? &kAvx2Table : nullptr;
#else
      return nullptr;
#endif
    case Level::kNeon:
#if defined(DELTACOLOR_HAVE_NEON_PATH)
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// DELTACOLOR_SIMD > best supported. Unknown / unsupported requests warn
/// once on stderr and fall back to best_level().
const KernelTable* resolve_startup_table() {
  const char* env = std::getenv("DELTACOLOR_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "native") != 0) {
    Level want = Level::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      want = Level::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Level::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      want = Level::kNeon;
    } else {
      known = false;
    }
    if (known) {
      if (const KernelTable* t = table_for(want)) return t;
      std::fprintf(stderr,
                   "deltacolor: DELTACOLOR_SIMD=%s not supported on this "
                   "host; using %s\n",
                   env, to_string(best_level()));
    } else {
      std::fprintf(stderr,
                   "deltacolor: unknown DELTACOLOR_SIMD=%s (expected "
                   "scalar|avx2|neon|native); using %s\n",
                   env, to_string(best_level()));
    }
  }
  return table_for(best_level());
}

/// Upgrades the constant-initialized scalar table to the resolved level
/// before main() runs (palette calls during earlier static init stay on the
/// safe scalar path).
struct StartupResolver {
  StartupResolver() {
    detail::g_active.store(resolve_startup_table(),
                           std::memory_order_relaxed);
  }
} g_startup_resolver;

}  // namespace

namespace detail {
const KernelTable kScalarTable = {
    andnot_scalar,        popcount_scalar, popcount_and_scalar,
    first_nonzero_scalar, select_word_scalar,
    Level::kScalar,       "scalar"};
std::atomic<const KernelTable*> g_active{&kScalarTable};
}  // namespace detail

Level active_level() { return detail::active().level; }

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

bool level_supported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(DELTACOLOR_HAVE_AVX2_PATH)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(DELTACOLOR_HAVE_NEON_PATH)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level best_level() {
  if (level_supported(Level::kAvx2)) return Level::kAvx2;
  if (level_supported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

bool force_level(Level level) {
  const KernelTable* t = table_for(level);
  if (t == nullptr) return false;
  detail::g_active.store(t, std::memory_order_relaxed);
  return true;
}

void reset_level() {
  detail::g_active.store(resolve_startup_table(), std::memory_order_relaxed);
}

}  // namespace deltacolor::simd
