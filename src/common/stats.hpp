// Small statistics helpers used by tests and the benchmark harness:
// summaries, histograms, and least-squares fits against log n / log log n
// used to report complexity "shape" in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace deltacolor {

struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  double median = 0;
};

/// Summary statistics of a sample (empty input yields a zeroed Summary).
Summary summarize(std::vector<double> values);

/// Result of fitting y = a + b * x by ordinary least squares.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;  ///< coefficient of determination
};

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fits rounds(n) = a + b * log2(n). A good fit (high r2, positive slope)
/// is the empirical signature of an O(log n)-round algorithm.
LinearFit fit_log(const std::vector<double>& n,
                  const std::vector<double>& rounds);

/// Fits rounds(n) = a + b * log2(log2(n)).
LinearFit fit_loglog(const std::vector<double>& n,
                     const std::vector<double>& rounds);

/// iterated-log of n (number of times log2 must be applied to reach <= 1).
int log_star(double n);

std::string format_summary(const Summary& s);

}  // namespace deltacolor
