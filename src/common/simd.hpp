// Runtime-dispatched SIMD kernels for the word-parallel palette loops.
//
// Every PaletteSet hot operation (remove_all, count, intersect_count, the
// word-skip scans of first_free / nth_free / sample_free) reduces to one of
// five primitives over little-endian arrays of 64-bit words. This header
// exposes those primitives behind a single dispatch table that is resolved
// once at startup:
//
//   * kScalar — the portable word-at-a-time loops. Always compiled, always
//     available; this is the reference implementation every vector path is
//     cross-checked against (bench_kernels aborts on any divergence).
//   * kAvx2   — 256-bit AVX2 paths (4 words per vector; popcounts via the
//     vpshufb nibble-LUT + vpsadbw reduction). Compiled on x86-64 behind
//     __attribute__((target("avx2"))), selected only when the CPU reports
//     AVX2 support.
//   * kNeon   — 128-bit NEON paths on aarch64 (vbicq / vcntq_u8). NEON is
//     architecturally mandatory there, so no runtime probe is needed.
//
// Determinism contract: every kernel computes the exact same value as the
// scalar reference for every input — these are bitwise/popcount operations
// with no reassociation hazards — so the palette ascending-enumeration
// contract and the golden hashes are level-independent by construction.
//
// Selection order: DELTACOLOR_SIMD env var ("scalar" | "avx2" | "neon" |
// "native") > best level the host supports ("native", the default). An
// unsupported or unknown request falls back to the best supported level
// with a one-line stderr warning. Tests and benches can swap levels at
// runtime via force_level(); PaletteSet picks up the change on the next
// call (the table pointer is a relaxed atomic).
//
// Dispatch cost: one relaxed load + one indirect call per operation. Below
// kMinWords (8 words = 512 palette colors) the callers keep their inlined
// scalar loops — an indirect call would cost more than it saves on 1-4
// word palettes — so dispatch only ever sees widths where vectors win.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace deltacolor::simd {

enum class Level : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Word-count cutoff below which callers should prefer their own inlined
/// scalar loops over a dispatched call (512 bits).
inline constexpr std::size_t kMinWords = 8;

/// The dispatch table: one function pointer per kernel. All kernels accept
/// n == 0 and have no alignment requirements (unaligned vector loads).
struct KernelTable {
  /// dst[i] &= ~src[i] for i in [0, n).
  void (*andnot)(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t n);
  /// Total set bits over w[0..n).
  int (*popcount)(const std::uint64_t* w, std::size_t n);
  /// Total set bits of a[i] & b[i] over [0, n).
  int (*popcount_and)(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n);
  /// Index of the first non-zero word, or n when all words are zero.
  std::size_t (*first_nonzero)(const std::uint64_t* w, std::size_t n);
  /// Index of the word containing the k-th (0-based) set bit of the whole
  /// array; *k is rewritten to the remaining rank within that word. Returns
  /// n (leaving *k as the shortfall) when fewer than k+1 bits are set.
  std::size_t (*select_word)(const std::uint64_t* w, std::size_t n, int* k);
  Level level;
  const char* name;
};

namespace detail {
/// Scalar table — the constant-initialized startup default, so palette
/// operations issued during static initialization are already safe.
extern const KernelTable kScalarTable;
extern std::atomic<const KernelTable*> g_active;
inline const KernelTable& active() {
  return *g_active.load(std::memory_order_relaxed);
}
}  // namespace detail

// --- dispatched entry points (the palette hot path) -------------------------

inline void andnot_words(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  detail::active().andnot(dst, src, n);
}
inline int popcount_words(const std::uint64_t* w, std::size_t n) {
  return detail::active().popcount(w, n);
}
inline int popcount_and_words(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  return detail::active().popcount_and(a, b, n);
}
inline std::size_t first_nonzero_word(const std::uint64_t* w,
                                      std::size_t n) {
  return detail::active().first_nonzero(w, n);
}
inline std::size_t select_word(const std::uint64_t* w, std::size_t n,
                               int* k) {
  return detail::active().select_word(w, n, k);
}

// --- level management -------------------------------------------------------

/// The level the dispatch table currently routes to.
Level active_level();
const char* to_string(Level level);

/// True when this host can execute `level`.
bool level_supported(Level level);

/// Best level the host supports (what "native" resolves to).
Level best_level();

/// Swaps the dispatch table; returns false (and leaves the table unchanged)
/// when the host does not support `level`. Used by the cross-checking
/// microbench and the parity tests; not intended for concurrent callers
/// racing palette operations mid-swap.
bool force_level(Level level);

/// Re-resolves from DELTACOLOR_SIMD / best_level() (undoes force_level).
void reset_level();

}  // namespace deltacolor::simd
