// Deterministic, seedable PRNG used everywhere randomness is needed so every
// experiment is reproducible from its seed. xoshiro256** with splitmix64
// seeding; satisfies UniformRandomBitGenerator so it plugs into <random>.
#pragma once

#include <cstdint>

namespace deltacolor {

/// splitmix64 step — used for seeding and for cheap per-node hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless hash of (seed, a, b) to a uniform 64-bit value. Used by node
/// programs that need per-(node, round) randomness without shared state.
inline std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b = 0) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  return splitmix64(s);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free-enough reduction; bias is negligible for
    // our bounds (<< 2^32) but we reject to be exact.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace deltacolor
