// Per-worker scratch arena: a bump allocator for the variable-length
// scratch a node transition needs (neighbor coefficient tables, free-edge
// candidate lists). Replaces per-step thread_local std::vectors with spans
// carved from one per-thread buffer, so the steady-state engine round
// performs no heap allocation once every worker's arena has reached its
// high-water capacity.
//
// Ownership / reset contract (see DESIGN.md):
//   - ScratchArena::local() returns the calling thread's arena. The
//     SyncRunner engine resets it at the start of every chunk a worker
//     executes (one chunk per worker per round), so scratch never outlives
//     the round that carved it — re-reading stale scratch across rounds
//     would break the LOCAL fidelity contract, and the reset makes that
//     structurally impossible.
//   - Step kernels open a Frame (RAII) and allocate through it; the frame
//     restores the bump pointer on destruction, so per-node scratch is
//     reclaimed immediately and a chunk's footprint is the *maximum* over
//     its nodes, not the sum.
//   - alloc<T>() requires trivially copyable T (no destructors run).
//   - An optional per-arena byte budget (set_limit) turns runaway scratch
//     growth into a structured allocation-limit CellError at the growth
//     site instead of std::bad_alloc-ing the process mid-sweep; the sweep
//     driver installs it per cell from RetryPolicy::arena_limit_bytes.
//     Growth events also report to an installable probe (set_alloc_probe),
//     which is how the FaultInjector plants deterministic allocation
//     failures without this header depending on the injector.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/errors.hpp"

namespace deltacolor {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Rewinds the bump pointer. Growth beyond the current capacity during
  /// the previous epoch is folded into one contiguous block here (never
  /// mid-epoch, so outstanding pointers stay valid until reset).
  void reset() {
    if (!overflow_.empty()) {
      std::size_t total = buf_.size();
      for (const auto& block : overflow_) total += block.size();
      buf_.resize(total);
      overflow_.clear();
      overflow_used_ = 0;
    }
    used_ = 0;
  }

  /// Minimum absolute-address alignment of every allocation: one AVX2
  /// vector, so SIMD palette kernels may use aligned loads on arena-carved
  /// word arrays. Must be computed against the buffer's address, not the
  /// bump offset — operator new only guarantees ~16 bytes for the buffer
  /// itself.
  static constexpr std::size_t kMinAlign = 32;

  /// `count` default-initialized T's, aligned to max(alignof(T), 32)
  /// bytes. Pointers remain valid until reset() (frames rewind the offset
  /// but never reclaim storage).
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena scratch must be trivially copyable");
    const std::size_t align =
        alignof(T) > kMinAlign ? alignof(T) : kMinAlign;
    const std::size_t bytes = count * sizeof(T);
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(buf_.data());
    const std::size_t aligned =
        static_cast<std::size_t>(((base + used_ + align - 1) & ~(align - 1)) -
                                 base);
    if (aligned + bytes <= buf_.size()) {
      used_ = aligned + bytes;
      high_water_ = used_ > high_water_ ? used_ : high_water_;
      return reinterpret_cast<T*>(buf_.data() + aligned);
    }
    return static_cast<T*>(alloc_overflow(bytes, align));
  }

  std::size_t used() const { return used_; }
  std::size_t capacity() const { return buf_.size(); }
  std::size_t high_water() const { return high_water_; }
  /// Heap allocations the arena itself has performed (growth events) —
  /// flat after warm-up; the allocation-counting test asserts this.
  std::size_t growth_count() const { return growth_count_; }

  /// Optional byte budget for this arena's total capacity (primary buffer
  /// plus overflow blocks). 0 = unlimited. A growth event that would push
  /// the capacity past the limit throws a structured allocation-limit
  /// CellError instead of letting std::bad_alloc (or the OOM killer) take
  /// the whole sweep down; already-reserved capacity stays usable.
  void set_limit(std::size_t bytes) { limit_ = bytes; }
  std::size_t limit() const { return limit_; }
  /// Total heap bytes currently reserved by this arena.
  std::size_t total_capacity() const {
    std::size_t total = buf_.size();
    for (const auto& block : overflow_) total += block.size();
    return total;
  }

  /// Probe invoked (process-wide, all arenas) at every growth event with
  /// the requested byte count, before the allocation happens. Installed by
  /// the FaultInjector to plant deterministic allocation failures; a probe
  /// may throw. nullptr disables (the default).
  using AllocProbe = void (*)(std::size_t bytes);
  static void set_alloc_probe(AllocProbe probe) {
    alloc_probe_ref().store(probe, std::memory_order_relaxed);
  }

  /// The calling thread's arena (workers and the serial engine path each
  /// see their own).
  static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// RAII bump-pointer frame: restores used() on destruction so per-node
  /// scratch does not accumulate across a chunk. Frames nest (stack
  /// discipline); allocation through a dead frame's pointers is UB.
  class Frame {
   public:
    explicit Frame(ScratchArena& arena = ScratchArena::local())
        : arena_(arena), saved_(arena.used_) {}
    ~Frame() {
      // Overflow blocks (if any) stay alive until the next reset(); only
      // the primary bump offset rewinds.
      arena_.used_ = saved_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    template <typename T>
    T* alloc(std::size_t count) {
      return arena_.alloc<T>(count);
    }

   private:
    ScratchArena& arena_;
    std::size_t saved_;
  };

 private:
  /// Slow path: the primary buffer is full. Bump inside the newest
  /// overflow block while it has room, else open a fresh one (geometric
  /// growth). Blocks coalesce into the primary buffer at the next reset(),
  /// so warm steady state never re-enters this path.
  void* alloc_overflow(std::size_t bytes, std::size_t align) {
    if (overflow_.empty() ||
        ((overflow_used_ + align - 1) & ~(align - 1)) + bytes >
            overflow_.back().size()) {
      if (const AllocProbe probe =
              alloc_probe_ref().load(std::memory_order_relaxed))
        probe(bytes);
      const std::size_t need = bytes + align;
      const std::size_t base =
          overflow_.empty() ? buf_.size() : overflow_.back().size();
      std::size_t grow = base == 0 ? 4096 : 2 * base;
      if (grow < need) grow = need;
      if (limit_ != 0 && total_capacity() + grow > limit_)
        throw CellError(
            FaultCategory::kAllocationLimit,
            "scratch arena byte budget exhausted: capacity " +
                std::to_string(total_capacity()) + " + growth " +
                std::to_string(grow) + " exceeds limit " +
                std::to_string(limit_));
      overflow_.emplace_back(grow);
      overflow_used_ = 0;
      ++growth_count_;
    }
    auto& block = overflow_.back();
    const std::size_t base = reinterpret_cast<std::uintptr_t>(block.data());
    const std::size_t off =
        ((base + overflow_used_ + align - 1) & ~(align - 1)) - base;
    overflow_used_ = off + bytes;
    return block.data() + off;
  }

  static std::atomic<AllocProbe>& alloc_probe_ref() {
    static std::atomic<AllocProbe> probe{nullptr};
    return probe;
  }

  std::vector<std::byte> buf_;
  std::vector<std::vector<std::byte>> overflow_;
  std::size_t overflow_used_ = 0;  // bump offset inside overflow_.back()
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t growth_count_ = 0;
  std::size_t limit_ = 0;  // 0 = unlimited
};

}  // namespace deltacolor
