// Word-parallel palette kernels: the inner loop of every list-coloring
// subroutine intersects a node's allowed palette with the colors its
// neighbors hold. PaletteSet is a fixed-capacity bitset over the color
// space [0, width) with popcount/ctz-based ops so that membership tests,
// free-color counts and k-th-free selection cost O(width/64) words instead
// of O(list) comparisons or a sort. ColorLists is the flat CSR-style
// storage for per-node color lists (one offsets array + one flat Color
// array) replacing std::vector<std::vector<Color>> — one allocation, no
// per-node heap vectors, cache-linear sweeps.
//
// Determinism contract: every enumeration (first_free, nth_free,
// sample_free, for_each) walks colors in ascending order, exactly matching
// the order a sorted std::vector<Color> scan would produce. Callers that
// must preserve an *arbitrary* list order (the deg+1 class-greedy picks the
// first color of the node's list, which tests exercise with unsorted
// lists) instead build the *taken* set as a PaletteSet and scan their list
// testing contains() — bit-identical to the previous binary_search code for
// any list order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace deltacolor {

/// Fixed-capacity bitset over colors [0, width). reset(width) reuses the
/// backing words (allocation only when the high-water capacity grows), so a
/// thread_local instance is allocation-free on the steady-state path.
class PaletteSet {
 public:
  PaletteSet() = default;
  explicit PaletteSet(int width) { reset(width); }

  /// Clears the set and (re)sizes it to `width` colors. Backing storage
  /// only ever grows; repeated reset at or below the high-water width
  /// performs no allocation.
  void reset(int width) {
    DC_DCHECK(width >= 0);
    width_ = width;
    const std::size_t need = words_needed(width);
    if (need > words_.size()) words_.resize(need);
    for (std::size_t w = 0; w < need; ++w) words_[w] = 0;
  }

  int width() const { return width_; }

  /// Turns every color of [0, width) on (the "full palette" start state the
  /// trial sampler carves neighbors out of).
  void fill() {
    const std::size_t need = words_needed(width_);
    for (std::size_t w = 0; w < need; ++w) words_[w] = ~std::uint64_t{0};
    if (width_ % 64 != 0 && need > 0)
      words_[need - 1] = (std::uint64_t{1} << (width_ % 64)) - 1;
  }

  void insert(Color c) {
    DC_DCHECK(c >= 0 && c < width_);
    words_[static_cast<std::size_t>(c) >> 6] |= bit(c);
  }

  void erase(Color c) {
    if (c < 0 || c >= width_) return;  // kNoColor and out-of-palette no-ops
    words_[static_cast<std::size_t>(c) >> 6] &= ~bit(c);
  }

  bool contains(Color c) const {
    if (c < 0 || c >= width_) return false;
    return (words_[static_cast<std::size_t>(c) >> 6] & bit(c)) != 0;
  }

  /// Word-parallel set difference: drops every color present in `other`.
  /// Wide palettes route through the runtime-dispatched SIMD kernels
  /// (common/simd.hpp) — bit-identical to the scalar loop at every level.
  void remove_all(const PaletteSet& other) {
    const std::size_t n =
        std::min(words_needed(width_), words_needed(other.width_));
    if (n >= simd::kMinWords) {
      simd::andnot_words(words_.data(), other.words_.data(), n);
      return;
    }
    for (std::size_t w = 0; w < n; ++w) words_[w] &= ~other.words_[w];
  }

  /// Convenience overload: erase each listed color (kNoColor entries and
  /// colors outside [0, width) are ignored).
  void remove_all(std::span<const Color> colors) {
    for (const Color c : colors) erase(c);
  }

  /// Popcount over all words.
  int count() const {
    const std::size_t n = words_needed(width_);
    if (n >= simd::kMinWords) return simd::popcount_words(words_.data(), n);
    int total = 0;
    for (std::size_t w = 0; w < n; ++w)
      total += __builtin_popcountll(words_[w]);
    return total;
  }

  /// Word-parallel |this AND other| via popcount.
  int intersect_count(const PaletteSet& other) const {
    const std::size_t n =
        std::min(words_needed(width_), words_needed(other.width_));
    if (n >= simd::kMinWords)
      return simd::popcount_and_words(words_.data(), other.words_.data(), n);
    int total = 0;
    for (std::size_t w = 0; w < n; ++w)
      total += __builtin_popcountll(words_[w] & other.words_[w]);
    return total;
  }

  /// Smallest member, or kNoColor when empty (word-skip scan to the first
  /// non-zero word, then ctz).
  Color first_free() const {
    const std::size_t n = words_needed(width_);
    std::size_t w;
    // The dispatch guard peeks at word 0: a set with any low color free
    // (the overwhelmingly common case after remove_all) resolves in the
    // scalar loop's first iteration, cheaper than any vector setup. The
    // kernel only earns its call when a zero prefix must be skipped.
    if (n >= simd::kMinWords && words_[0] == 0) {
      w = simd::first_nonzero_word(words_.data(), n);
    } else {
      w = 0;
      while (w < n && words_[w] == 0) ++w;
    }
    if (w == n) return kNoColor;
    return static_cast<Color>(
        w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w])));
  }

  /// k-th member (0-based) in ascending color order, or kNoColor when the
  /// set has at most k members. Skips whole words by popcount, then selects
  /// within the final word by clearing low bits.
  Color nth_free(int k) const {
    DC_DCHECK(k >= 0);
    const std::size_t n = words_needed(width_);
    std::size_t w;
    if (n >= simd::kMinWords) {
      w = simd::select_word(words_.data(), n, &k);
    } else {
      for (w = 0; w < n; ++w) {
        const int pop = __builtin_popcountll(words_[w]);
        if (k < pop) break;
        k -= pop;
      }
    }
    if (w == n) return kNoColor;
    std::uint64_t word = words_[w];
    while (k-- > 0) word &= word - 1;  // drop the k lowest set bits
    return static_cast<Color>(
        w * 64 + static_cast<std::size_t>(__builtin_ctzll(word)));
  }

  /// Uniform member pick from a raw 64-bit draw: nth_free(draw % count).
  /// The ascending enumeration makes this bit-identical to indexing into a
  /// sorted vector of the members. Checked non-empty.
  Color sample_free(std::uint64_t draw) const {
    const int c = count();
    DC_CHECK_MSG(c > 0, "sample_free on an empty palette");
    return nth_free(static_cast<int>(draw % static_cast<std::uint64_t>(c)));
  }

  /// fn(c) for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_needed(width_); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        fn(static_cast<Color>(
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(word))));
        word &= word - 1;
      }
    }
  }

 private:
  static std::size_t words_needed(int width) {
    return (static_cast<std::size_t>(width) + 63) / 64;
  }
  static std::uint64_t bit(Color c) {
    return std::uint64_t{1} << (static_cast<std::size_t>(c) & 63);
  }

  int width_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Flat CSR-style per-node color lists: offsets_[v] .. offsets_[v+1) index
/// into one contiguous Color array. Replaces std::vector<std::vector<Color>>
/// in the list-coloring API — construction is one (amortized) allocation,
/// and a node's list is a std::span over cache-linear storage. Tracks the
/// maximum color so callers can size PaletteSets without rescanning.
class ColorLists {
 public:
  ColorLists() = default;

  /// Implicit conversion from the nested-vector shape (tests and ad-hoc
  /// callers build small nested lists; pipelines build flat directly).
  ColorLists(const std::vector<std::vector<Color>>& nested) {
    std::size_t total = 0;
    for (const auto& list : nested) total += list.size();
    reserve(nested.size(), total);
    for (const auto& list : nested) add_list(list);
  }

  /// n identical lists {0, .., num_colors-1} — the (Delta+1)-coloring
  /// default palette.
  static ColorLists uniform(std::size_t num_nodes, int num_colors) {
    ColorLists lists;
    lists.reserve(num_nodes,
                  num_nodes * static_cast<std::size_t>(num_colors));
    for (std::size_t v = 0; v < num_nodes; ++v) {
      for (Color c = 0; c < num_colors; ++c) lists.push(c);
      lists.close_list();
    }
    return lists;
  }

  void reserve(std::size_t num_nodes, std::size_t total_colors) {
    offsets_.reserve(num_nodes + 1);
    flat_.reserve(total_colors);
  }

  /// Incremental building: push the current node's colors, then close its
  /// list. Lists must be closed in node order 0, 1, ...
  void push(Color c) {
    flat_.push_back(c);
    if (c > max_color_) max_color_ = c;
  }
  void close_list() { offsets_.push_back(static_cast<std::uint32_t>(flat_.size())); }

  void add_list(std::span<const Color> list) {
    for (const Color c : list) push(c);
    close_list();
  }

  /// Number of node lists.
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  std::span<const Color> operator[](std::size_t v) const {
    DC_DCHECK(v + 1 < offsets_.size());
    return {flat_.data() + offsets_[v],
            flat_.data() + offsets_[v + 1]};
  }

  std::size_t total_colors() const { return flat_.size(); }

  /// Largest color across all lists (kNoColor when every list is empty) —
  /// the PaletteSet width bound for these lists is max_color() + 1.
  Color max_color() const { return max_color_; }

  /// Raw storage accessors for shipping the lists into a shared-memory
  /// plane (local/sync_runner.hpp): offsets (size() + 1 entries, leading 0)
  /// and the flat color array they index.
  const std::vector<std::uint32_t>& raw_offsets() const { return offsets_; }
  const std::vector<Color>& raw_flat() const { return flat_; }

 private:
  std::vector<std::uint32_t> offsets_{0};
  std::vector<Color> flat_;
  Color max_color_ = kNoColor;
};

/// Non-owning trivially-copyable view of a ColorLists, suitable for
/// capture-by-value in closures shipped to shard pool workers (the two
/// pointers target plane-resident copies made by SyncRunner::ship).
struct ColorListsRef {
  const std::uint32_t* offsets = nullptr;  ///< size() + 1 entries, [0] == 0
  const Color* flat = nullptr;
  std::span<const Color> operator[](std::size_t v) const {
    return {flat + offsets[v], flat + offsets[v + 1]};
  }
};

}  // namespace deltacolor
