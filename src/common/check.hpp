// Internal invariant checking. DC_CHECK is always on (algorithm-correctness
// invariants are the product here); DC_DCHECK compiles out in release builds
// for hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace deltacolor::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace deltacolor::detail

#define DC_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::deltacolor::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define DC_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream dc_os_;                                           \
      dc_os_ << msg;                                                       \
      ::deltacolor::detail::check_failed(#expr, __FILE__, __LINE__,        \
                                         dc_os_.str());                    \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define DC_DCHECK(expr) ((void)0)
#else
#define DC_DCHECK(expr) DC_CHECK(expr)
#endif
