#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <map>

#include "common/check.hpp"

namespace deltacolor {

namespace {

std::atomic<int> g_default_workers{0};  // 0 = not yet overridden

int clamp_workers(long n) {
  if (n < 1) return 1;
  if (n > 256) return 256;
  return static_cast<int>(n);
}

/// Worker w's contiguous slice of [begin, end) among `workers` chunks.
std::pair<std::size_t, std::size_t> slice(std::size_t begin, std::size_t end,
                                          int worker, int workers) {
  const std::size_t len = end - begin;
  const std::size_t lo = begin + len * static_cast<std::size_t>(worker) /
                                     static_cast<std::size_t>(workers);
  const std::size_t hi = begin + len * static_cast<std::size_t>(worker + 1) /
                                     static_cast<std::size_t>(workers);
  return {lo, hi};
}

}  // namespace

ThreadPool::ThreadPool(int num_workers)
    : num_workers_(num_workers > 0 ? clamp_workers(num_workers)
                                   : default_workers()) {
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::for_range(std::size_t begin, std::size_t end,
                           const RangeFn& fn) {
  if (begin >= end) return;
  if (num_workers_ == 1 || end - begin == 1) {
    fn(0, begin, end);
    return;
  }
  run_job(fn, begin, end, nullptr);
}

void ThreadPool::for_chunks(const std::vector<std::size_t>& bounds,
                            const RangeFn& fn) {
  DC_CHECK_MSG(bounds.size() ==
                   static_cast<std::size_t>(num_workers_) + 1,
               "for_chunks needs num_workers()+1 bounds, got "
                   << bounds.size());
  if (bounds.front() >= bounds.back()) return;
  if (num_workers_ == 1) {
    fn(0, bounds.front(), bounds.back());
    return;
  }
  run_job(fn, bounds.front(), bounds.back(), bounds.data());
}

void ThreadPool::run_job(const RangeFn& fn, std::size_t begin,
                         std::size_t end, const std::size_t* bounds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_CHECK_MSG(job_ == nullptr, "ThreadPool jobs are not reentrant");
    errors_.assign(static_cast<std::size_t>(num_workers_), nullptr);
    job_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_bounds_ = bounds;
    pending_ = num_workers_ - 1;
    ++epoch_;
  }
  job_cv_.notify_all();
  const auto [lo, hi] = bounds == nullptr
                            ? slice(begin, end, 0, num_workers_)
                            : std::pair<std::size_t, std::size_t>{
                                  bounds[0], bounds[1]};
  try {
    fn(0, lo, hi);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  job_bounds_ = nullptr;
  // Rethrow the lowest-worker-index failure only after every chunk has
  // finished or failed — the pool is back in a clean state either way.
  for (std::exception_ptr& error : errors_)
    if (error) {
      const std::exception_ptr first = error;
      lock.unlock();
      std::rethrow_exception(first);
    }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const RangeFn* job = nullptr;
    std::size_t begin = 0, end = 0;
    const std::size_t* bounds = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
      begin = job_begin_;
      end = job_end_;
      bounds = job_bounds_;
    }
    const auto [lo, hi] =
        bounds == nullptr
            ? slice(begin, end, worker, num_workers_)
            : std::pair<std::size_t, std::size_t>{bounds[worker],
                                                  bounds[worker + 1]};
    try {
      (*job)(worker, lo, hi);
    } catch (...) {
      errors_[static_cast<std::size_t>(worker)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

int ThreadPool::default_workers() {
  const int overridden = g_default_workers.load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  if (const char* env = std::getenv("DELTACOLOR_THREADS")) {
    char* rest = nullptr;
    const long n = std::strtol(env, &rest, 10);
    if (rest != env && n > 0) return clamp_workers(n);
  }
  return clamp_workers(
      static_cast<long>(std::thread::hardware_concurrency()));
}

void ThreadPool::set_default_workers(int n) {
  g_default_workers.store(n > 0 ? clamp_workers(n) : 0,
                          std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_workers());
  return pool;
}

ThreadPool& ThreadPool::shared(int workers) {
  if (workers <= 0) return global();
  const int w = clamp_workers(workers);
  static std::mutex mu;
  static std::map<int, ThreadPool> pools;  // node-stable: refs stay valid
  std::lock_guard<std::mutex> lock(mu);
  return pools.try_emplace(w, w).first->second;
}

}  // namespace deltacolor
