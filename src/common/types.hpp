// Core scalar types shared across the deltacolor library.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace deltacolor {

/// Index of a node inside a Graph (0 .. n-1). Distinct from the node's
/// LOCAL-model identifier (see Graph::id), which is what symmetry-breaking
/// algorithms are allowed to use.
using NodeId = std::uint32_t;

/// Index of an undirected edge inside a Graph (0 .. m-1).
using EdgeId = std::uint32_t;

/// A color. Palettes are 0-based: a Delta-coloring uses {0, .., Delta-1}.
using Color = std::int32_t;

/// Sentinel for "not yet colored".
inline constexpr Color kNoColor = -1;

/// Per-node boolean mask (active / decided / banned sets). Deliberately a
/// byte vector, not std::vector<bool>: parallel engine workers write
/// disjoint *elements*, which must not share a word (vector<bool> packs 8
/// flags per byte — racy under the multi-worker engine and flagged by
/// TSan), and byte loads keep the hot membership tests branch-free.
using NodeMask = std::vector<std::uint8_t>;

/// Sentinel node / edge indices.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// The paper fixes epsilon = 1/63 for the almost-clique decomposition
/// (Lemma 2) and all downstream constants derive from it.
inline constexpr double kAcdEpsilon = 1.0 / 63.0;

/// Number of virtual sub-cliques each hard clique is partitioned into for
/// the hyperedge-grabbing instance (Section 3.3). Exposed as a default so
/// the ablation bench (E12) can sweep it.
inline constexpr int kSubCliqueCount = 28;

}  // namespace deltacolor
