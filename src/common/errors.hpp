// Structured error taxonomy for the robustness layer.
//
// The paper's guarantees only hold for runs that complete with their
// invariants intact, so the execution stack needs a vocabulary for the ways
// a run can fail that is richer than "some exception escaped": a sweep cell
// that blows its round budget is a different event from a corrupted
// coloring, and the recovery policy differs (re-run with a fresh seed vs
// quarantine and report). CellError is that vocabulary. Recoverable paths
// throw it instead of DC_CHECK-aborting; the SweepDriver catches it,
// classifies it, and applies the retry / quarantine policy (sweep.hpp).
// Anything else (std::exception) is wrapped as kEngineException, so the
// taxonomy is total over failures.
//
// ValidateMode lives here too: the opt-in oracle knob (off / end-of-run /
// between-pipeline-phases) shared by the CLI, the registry request, and the
// composed pipelines, which downgrade an invariant violation detected by
// the oracle into a structured CellError instead of a hard abort.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace deltacolor {

/// Failure taxonomy. kProcessKill, kWorkerHang and kTornSlab never appear
/// in a CellError — they are FaultInjector-only actions (simulating a
/// SIGKILL mid-sweep for the journal/--resume round-trip tests, killing or
/// hanging one shard worker when the spec carries round/shard coordinates,
/// or publishing a deliberately corrupt halo slab). A shard worker that
/// dies under the proc backend surfaces in the *coordinator* as
/// kWorkerDeath (control-channel EOF) or kWorkerStall (live process whose
/// barrier epoch stopped advancing past the watchdog deadline); both flow
/// through the pool's respawn/replay recovery first and only reach the
/// retry/quarantine policy once the respawn budget is exhausted with
/// degradation disabled.
enum class FaultCategory {
  kInvariantViolation,   ///< oracle found an improper partial/final coloring
  kRoundBudgetExceeded,  ///< cell consumed more simulated rounds than allowed
  kWallClockTimeout,     ///< cell exceeded its wall-clock deadline
  kAllocationLimit,      ///< scratch arena byte budget exhausted
  kEngineException,      ///< any other exception escaping the cell
  kProcessKill,          ///< injector-only: hard process exit (resume tests)
  kWorkerDeath,          ///< a shard worker process died mid-stage (EOF)
  kWorkerStall,          ///< a live shard worker stopped advancing its epoch
  kWorkerHang,           ///< injector-only: spin a shard worker forever
  kTornSlab,             ///< injector-only: publish a corrupt halo slab
};

constexpr std::string_view to_string(FaultCategory c) {
  switch (c) {
    case FaultCategory::kInvariantViolation: return "invariant-violation";
    case FaultCategory::kRoundBudgetExceeded: return "round-budget-exceeded";
    case FaultCategory::kWallClockTimeout: return "wall-clock-timeout";
    case FaultCategory::kAllocationLimit: return "allocation-limit";
    case FaultCategory::kEngineException: return "engine-exception";
    case FaultCategory::kProcessKill: return "process-kill";
    case FaultCategory::kWorkerDeath: return "worker-death";
    case FaultCategory::kWorkerStall: return "worker-stall";
    case FaultCategory::kWorkerHang: return "worker-hang";
    case FaultCategory::kTornSlab: return "torn-slab";
  }
  return "unknown";
}

/// Parses the names emitted by to_string(FaultCategory). Returns false and
/// leaves `out` untouched on unknown names.
inline bool parse_fault_category(std::string_view name, FaultCategory* out) {
  for (const FaultCategory c :
       {FaultCategory::kInvariantViolation, FaultCategory::kRoundBudgetExceeded,
        FaultCategory::kWallClockTimeout, FaultCategory::kAllocationLimit,
        FaultCategory::kEngineException, FaultCategory::kProcessKill,
        FaultCategory::kWorkerDeath, FaultCategory::kWorkerStall,
        FaultCategory::kWorkerHang, FaultCategory::kTornSlab}) {
    if (name == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// Opt-in validation oracle mode (see --validate in the dcolor CLI).
///  kOff:   no oracle checks beyond what algorithms already verify.
///  kEnd:   check the final object once and throw a structured CellError
///          (instead of setting a flag or CHECK-aborting) on violation.
///  kPhase: additionally run graph/checker partial-coloring invariants at
///          every composed-pipeline phase boundary.
enum class ValidateMode { kOff, kEnd, kPhase };

inline bool parse_validate_mode(std::string_view name, ValidateMode* out) {
  if (name == "off") *out = ValidateMode::kOff;
  else if (name == "end") *out = ValidateMode::kEnd;
  else if (name == "phase") *out = ValidateMode::kPhase;
  else return false;
  return true;
}

/// The coordinates recovery policies key on: which phase was active, which
/// node witnessed the violation (when known), and which seed the failing
/// attempt ran under (so a w.h.p. failure can be re-run with a perturbed
/// seed and the original remains reproducible). Namespace-scope (not
/// nested in CellError) so its member defaults are usable in CellError's
/// own signatures.
struct ErrorContext {
  std::string phase;        ///< innermost phase label ("" = unknown)
  std::int64_t node = -1;   ///< witness node (-1 = not node-specific)
  std::int64_t round = -1;  ///< engine round / ledger total (-1 = unknown)
  std::uint64_t seed = 0;   ///< seed of the failing attempt (0 = unknown)
};

/// A categorized cell failure.
class CellError : public std::runtime_error {
 public:
  using Context = ErrorContext;

  CellError(FaultCategory category, const std::string& detail,
            Context context = Context())
      : std::runtime_error(format(category, detail, context)),
        category_(category),
        context_(std::move(context)) {}

  FaultCategory category() const { return category_; }
  const Context& context() const { return context_; }

 private:
  static std::string format(FaultCategory category, const std::string& detail,
                            const Context& ctx) {
    std::ostringstream os;
    os << "CellError[" << to_string(category) << "]";
    if (!ctx.phase.empty()) os << " phase=" << ctx.phase;
    if (ctx.node >= 0) os << " node=" << ctx.node;
    if (ctx.round >= 0) os << " round=" << ctx.round;
    if (ctx.seed != 0) os << " seed=" << ctx.seed;
    if (!detail.empty()) os << ": " << detail;
    return os.str();
  }

  FaultCategory category_;
  Context context_;
};

}  // namespace deltacolor
