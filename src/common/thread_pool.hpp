// Small reusable thread pool with static chunked striping over index
// ranges, built for the synchronous round engine: one fork/join per round,
// contiguous node slices per worker, no work stealing (determinism comes
// from the fact that workers write disjoint slices of the shadow buffer,
// so the schedule cannot leak into results).
//
// Worker count resolution order: explicit constructor argument >
// set_default_workers() (CLI) > DELTACOLOR_THREADS env var >
// std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deltacolor {

class ThreadPool {
 public:
  /// fn(worker, begin, end): called once per worker with its contiguous
  /// slice of the range. Results must not depend on `worker`.
  using RangeFn = std::function<void(int worker, std::size_t begin,
                                     std::size_t end)>;

  /// `num_workers` <= 0 means default_workers().
  explicit ThreadPool(int num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Splits [begin, end) into num_workers() contiguous chunks and runs
  /// fn on each, blocking until every chunk has finished. The calling
  /// thread executes chunk 0 itself. Reentrant calls are not allowed.
  ///
  /// Exception safety: a chunk that throws does not terminate the process
  /// (worker threads catch into per-worker slots); after every chunk has
  /// finished or failed, the lowest-worker-index exception is rethrown on
  /// the calling thread. The pool itself stays usable — this is what lets
  /// a structured CellError thrown inside an engine round unwind to the
  /// sweep driver's retry/quarantine policy.
  void for_range(std::size_t begin, std::size_t end, const RangeFn& fn);

  /// Like for_range, but the caller fixes the chunk boundaries: worker w
  /// runs [bounds[w], bounds[w+1]). `bounds` must have num_workers() + 1
  /// ascending entries. This pins a *stable* worker -> index-range
  /// affinity across rounds (the round engine passes the same bounds
  /// every round, so each worker re-touches the same graph/state pages —
  /// cache- and NUMA-first-touch-friendly), and lets the caller balance
  /// by per-index weight (degrees) instead of index count. Same exception
  /// contract as for_range.
  void for_chunks(const std::vector<std::size_t>& bounds, const RangeFn& fn);

  /// Library-wide default worker count (see resolution order above).
  static int default_workers();

  /// Overrides the default (e.g. from a --threads CLI flag). Must be
  /// called before the first use of global() to affect the shared pool.
  static void set_default_workers(int n);

  /// Lazily constructed process-wide pool with default_workers() workers.
  static ThreadPool& global();

  /// Process-wide cached pool with exactly `workers` workers, shared by
  /// every caller requesting that count (`workers` <= 0 maps to global()).
  /// Engines are constructed per primitive call — composed pipelines build
  /// hundreds of short-lived runners — so an explicit worker count must not
  /// spawn (and join) fresh OS threads per runner.
  static ThreadPool& shared(int workers);

 private:
  void worker_loop(int worker);
  void run_job(const RangeFn& fn, std::size_t begin, std::size_t end,
               const std::size_t* bounds);

  int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  // Per-worker exception slots for the current job (disjoint writes; read
  // by the caller after the join barrier).
  std::vector<std::exception_ptr> errors_;
  const RangeFn* job_ = nullptr;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  // Non-null while a for_chunks job runs: worker w's slice is
  // [job_bounds_[w], job_bounds_[w+1]) instead of the uniform stripe.
  const std::size_t* job_bounds_ = nullptr;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace deltacolor
