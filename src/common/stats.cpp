#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  const std::size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  return s;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  DC_CHECK(x.size() == y.size());
  LinearFit f;
  const std::size_t n = x.size();
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double den = dn * sxx - sx * sx;
  if (den == 0) return f;
  f.slope = (dn * sxy - sx * sy) / den;
  f.intercept = (sy - f.slope * sx) / dn;
  double ss_res = 0;
  const double ybar = sy / dn;
  double ss_tot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = f.intercept + f.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LinearFit fit_log(const std::vector<double>& n,
                  const std::vector<double>& rounds) {
  std::vector<double> x(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) x[i] = std::log2(n[i]);
  return fit_linear(x, rounds);
}

LinearFit fit_loglog(const std::vector<double>& n,
                     const std::vector<double>& rounds) {
  std::vector<double> x(n.size());
  for (std::size_t i = 0; i < n.size(); ++i)
    x[i] = std::log2(std::max(2.0, std::log2(n[i])));
  return fit_linear(x, rounds);
}

int log_star(double n) {
  int k = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++k;
  }
  return k;
}

std::string format_summary(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " min=" << s.min << " med=" << s.median
     << " mean=" << s.mean << " max=" << s.max << " sd=" << s.stddev;
  return os.str();
}

}  // namespace deltacolor
