// Centralized Brooks' theorem [Bro41]: every connected graph with maximum
// degree Delta that is neither a (Delta+1)-clique nor an odd cycle admits a
// Delta-coloring. Used as ground truth for Delta-colorability and as the
// sequential-quality baseline in bench E7.
//
// Construction (per connected component):
//   * a vertex of degree < Delta: greedy in decreasing-BFS-distance order
//     rooted there (every other vertex keeps a closer uncolored neighbor);
//   * Delta-regular with an articulation point x: each block-side of x is
//     colored by the rooted method (x has degree < Delta inside it) and
//     its colors are permuted to agree on x;
//   * 2-connected Delta-regular non-complete: a Lovasz triple (v; u1, u2)
//     with u1, u2 non-adjacent neighbors of v whose removal keeps the rest
//     connected; u1 and u2 share a color and v is colored last.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace deltacolor {

struct BrooksResult {
  std::vector<Color> color;
  bool success = false;
  /// Set when some component is a (Delta+1)-clique or an odd cycle at
  /// Delta = 2 — the exceptions of Brooks' theorem.
  bool brooks_exception = false;
};

/// Delta-colors g with Delta = g.max_degree() colors (centralized).
BrooksResult brooks_coloring(const Graph& g);

}  // namespace deltacolor
