#include "baselines/brooks.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"
#include "graph/checker.hpp"
#include "graph/subgraph.hpp"

namespace deltacolor {

namespace {

// Greedy coloring of `members` in decreasing-BFS-distance order from
// `root` (root last): every non-root vertex still has an uncolored closer
// neighbor at its turn, so at most deg-1 <= Delta-1 colors are blocked.
// Colors are chosen from {0..delta-1}; requires deg(root) < delta inside
// the member set (or root pre-colored). Works in place on `color`.
void rooted_greedy(const Graph& g, const std::vector<NodeId>& members,
                   NodeId root, int delta, std::vector<Color>& color) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::vector<bool> in_comp(g.num_nodes(), false);
  for (const NodeId v : members) in_comp[v] = true;
  std::queue<NodeId> q;
  dist[root] = 0;
  q.push(root);
  std::vector<NodeId> order;
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    order.push_back(x);
    for (const NodeId y : g.neighbors(x)) {
      if (!in_comp[y] || dist[y] != -1) continue;
      dist[y] = dist[x] + 1;
      q.push(y);
    }
  }
  DC_CHECK_MSG(order.size() == members.size(),
               "rooted_greedy: member set is not connected");
  std::reverse(order.begin(), order.end());  // farthest first, root last
  for (const NodeId v : order) {
    if (color[v] != kNoColor) continue;  // pre-colored root
    std::vector<bool> banned(static_cast<std::size_t>(delta), false);
    for (const NodeId u : g.neighbors(v))
      if (color[u] != kNoColor && color[u] < delta)
        banned[static_cast<std::size_t>(color[u])] = true;
    Color c = 0;
    while (c < delta && banned[static_cast<std::size_t>(c)]) ++c;
    DC_CHECK_MSG(c < delta, "rooted_greedy ran out of colors at " << v);
    color[v] = c;
  }
}

// First articulation point of the induced subgraph on `members`, or
// kNoNode (Tarjan lowlink, iterative).
NodeId find_articulation(const Graph& g, const std::vector<NodeId>& members) {
  std::vector<bool> in_comp(g.num_nodes(), false);
  for (const NodeId v : members) in_comp[v] = true;
  std::vector<int> disc(g.num_nodes(), -1), low(g.num_nodes(), 0);
  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  int timer = 0;
  const NodeId root = members.front();

  struct Frame {
    NodeId v;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;
  disc[root] = low[root] = timer++;
  stack.push_back({root});
  int root_children = 0;
  NodeId articulation = kNoNode;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto nbrs = g.neighbors(f.v);
    if (f.next_child < nbrs.size()) {
      const NodeId y = nbrs[f.next_child++];
      if (!in_comp[y]) continue;
      if (disc[y] == -1) {
        parent[y] = f.v;
        if (f.v == root) ++root_children;
        disc[y] = low[y] = timer++;
        stack.push_back({y});
      } else if (y != parent[f.v]) {
        low[f.v] = std::min(low[f.v], disc[y]);
      }
    } else {
      const NodeId v = f.v;
      stack.pop_back();
      if (!stack.empty()) {
        const NodeId p = stack.back().v;
        low[p] = std::min(low[p], low[v]);
        if (p != root && low[v] >= disc[p] && articulation == kNoNode)
          articulation = p;
      }
    }
  }
  if (articulation == kNoNode && root_children >= 2) articulation = root;
  return articulation;
}

// Lovasz triple for a 2-connected, delta-regular, non-complete component:
// v with non-adjacent neighbors u1, u2 such that members \ {u1, u2} stays
// connected.
struct Triple {
  NodeId v = kNoNode, u1 = kNoNode, u2 = kNoNode;
};
Triple find_lovasz_triple(const Graph& g, const std::vector<NodeId>& members) {
  std::vector<bool> in_comp(g.num_nodes(), false);
  for (const NodeId v : members) in_comp[v] = true;
  auto connected_without = [&](NodeId a, NodeId b) {
    NodeId start = kNoNode;
    for (const NodeId v : members)
      if (v != a && v != b) {
        start = v;
        break;
      }
    if (start == kNoNode) return false;
    std::vector<bool> seen(g.num_nodes(), false);
    std::queue<NodeId> q;
    seen[start] = true;
    q.push(start);
    std::size_t reached = 1;
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      for (const NodeId y : g.neighbors(x)) {
        if (!in_comp[y] || seen[y] || y == a || y == b) continue;
        seen[y] = true;
        ++reached;
        q.push(y);
      }
    }
    return reached == members.size() - 2;
  };
  for (const NodeId v : members) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const NodeId u1 = nbrs[i], u2 = nbrs[j];
        if (!in_comp[u1] || !in_comp[u2] || g.has_edge(u1, u2)) continue;
        if (connected_without(u1, u2)) return {v, u1, u2};
      }
    }
  }
  return {};
}

}  // namespace

BrooksResult brooks_coloring(const Graph& g) {
  BrooksResult res;
  const NodeId n = g.num_nodes();
  res.color.assign(n, kNoColor);
  const int delta = g.max_degree();
  if (n == 0) {
    res.success = true;
    return res;
  }
  if (delta == 0) {  // isolated vertices: no palette at all
    res.brooks_exception = true;
    return res;
  }

  const Components comps = connected_components(g);
  for (const auto& members : component_node_lists(comps)) {
    if (members.size() == 1) {
      res.color[members.front()] = 0;
      continue;
    }
    // Exception 1: (delta+1)-clique.
    if (members.size() == static_cast<std::size_t>(delta) + 1) {
      bool complete = true;
      for (const NodeId v : members)
        if (g.degree(v) != delta) complete = false;
      if (complete && is_clique(g, members)) {
        res.brooks_exception = true;
        return res;
      }
    }
    // Exception 2: odd cycle when delta == 2.
    if (delta == 2) {
      bool cycle = true;
      for (const NodeId v : members)
        if (g.degree(v) != 2) cycle = false;
      if (cycle && members.size() % 2 == 1) {
        res.brooks_exception = true;
        return res;
      }
    }

    // A vertex of degree < delta: rooted greedy.
    NodeId low_deg = kNoNode;
    for (const NodeId v : members)
      if (g.degree(v) < delta) {
        low_deg = v;
        break;
      }
    if (low_deg != kNoNode) {
      rooted_greedy(g, members, low_deg, delta, res.color);
      continue;
    }

    // Even cycle at delta == 2: alternate by BFS parity (the Lovasz-triple
    // machinery needs delta >= 3).
    if (delta == 2) {
      std::vector<int> dist(g.num_nodes(), -1);
      std::queue<NodeId> q;
      dist[members.front()] = 0;
      q.push(members.front());
      while (!q.empty()) {
        const NodeId a = q.front();
        q.pop();
        res.color[a] = dist[a] % 2;
        for (const NodeId b : g.neighbors(a)) {
          if (dist[b] != -1) continue;
          dist[b] = dist[a] + 1;
          q.push(b);
        }
      }
      continue;
    }

    // delta-regular component. Articulation point?
    const NodeId x = find_articulation(g, members);
    if (x != kNoNode) {
      // Color each side of x independently (x has degree < delta inside
      // each side+x), permuting colors to agree on x.
      std::vector<bool> in_comp(g.num_nodes(), false);
      for (const NodeId v : members) in_comp[v] = true;
      std::vector<bool> done(g.num_nodes(), false);
      done[x] = true;
      Color x_color = kNoColor;
      for (const NodeId s0 : g.neighbors(x)) {
        if (!in_comp[s0] || done[s0]) continue;
        // Collect the side of s0 in members \ {x}.
        std::vector<NodeId> side{x};
        std::queue<NodeId> q;
        done[s0] = true;
        q.push(s0);
        while (!q.empty()) {
          const NodeId a = q.front();
          q.pop();
          side.push_back(a);
          for (const NodeId b : g.neighbors(a)) {
            if (!in_comp[b] || done[b]) continue;
            done[b] = true;
            q.push(b);
          }
        }
        // Color the side rooted at x on fresh scratch colors (sides touch
        // only at x, whose color is aligned below), then write back.
        std::vector<Color> scratch(g.num_nodes(), kNoColor);
        rooted_greedy(g, side, x, delta, scratch);
        if (x_color == kNoColor) {
          x_color = scratch[x];
        } else if (scratch[x] != x_color) {
          const Color other = scratch[x];
          for (const NodeId v : side) {
            if (scratch[v] == x_color)
              scratch[v] = other;
            else if (scratch[v] == other)
              scratch[v] = x_color;
          }
          DC_CHECK(scratch[x] == x_color);
        }
        for (const NodeId v : side) res.color[v] = scratch[v];
      }
      continue;
    }

    // 2-connected, regular, non-complete: Lovasz triple.
    const Triple t = find_lovasz_triple(g, members);
    DC_CHECK_MSG(t.v != kNoNode,
                 "no Lovasz triple in a 2-connected regular component");
    res.color[t.u1] = 0;
    res.color[t.u2] = 0;
    std::vector<NodeId> rest;
    for (const NodeId v : members)
      if (v != t.u1 && v != t.u2) rest.push_back(v);
    rooted_greedy(g, rest, t.v, delta, res.color);
    continue;
  }

  res.success = true;
  for (NodeId v = 0; v < n; ++v) DC_CHECK(res.color[v] != kNoColor);
  return res;
}

}  // namespace deltacolor
