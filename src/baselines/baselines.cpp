#include "baselines/baselines.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"
#include "core/easy_coloring.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/ruling_set.hpp"

namespace deltacolor {

std::vector<Color> greedy_delta_plus_one(const Graph& g, LocalContext& ctx) {
  DefaultPhase scope(ctx, "greedy");
  std::vector<Color> color(g.num_nodes(), kNoColor);
  NodeMask active(g.num_nodes(), 1);
  const auto lists = uniform_lists(g, g.max_degree() + 1);
  if (g.num_nodes() > 0)
    deg_plus_one_list_color(g, active, lists, color, ctx);
  return color;
}

LayeredBaselineResult layered_loophole_coloring(const Graph& g,
                                                const LoopholeSet& loopholes,
                                                RoundLedger& ledger) {
  LayeredBaselineResult res;
  const NodeId n = g.num_nodes();
  res.color.assign(n, kNoColor);
  if (n == 0) {
    res.success = true;
    return res;
  }
  const int delta = g.max_degree();

  // Select pairwise non-conflicting loopholes exactly as Algorithm 3 does,
  // but then layer the whole graph from them (no hard-clique machinery).
  if (loopholes.loopholes.empty()) {
    res.unreachable = n;
    return res;
  }

  // Simple selection: greedy independent subset of loopholes (centralized
  // stand-in for the ruling set; the baseline's cost driver is layering).
  NodeMask blocked(n, 0);
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < loopholes.loopholes.size(); ++i) {
    const auto& vs = loopholes.loopholes[i].vertices;
    bool ok = true;
    for (const NodeId v : vs) {
      if (blocked[v]) ok = false;
      for (const NodeId u : g.neighbors(v))
        if (blocked[u]) ok = false;
    }
    if (!ok) continue;
    chosen.push_back(i);
    for (const NodeId v : vs) blocked[v] = true;
  }
  ledger.charge("baseline-select", 4);

  std::vector<int> layer(n, -1);
  std::queue<NodeId> q;
  for (const std::size_t i : chosen)
    for (const NodeId v : loopholes.loopholes[i].vertices) {
      layer[v] = 0;
      q.push(v);
    }
  int max_layer = 0;
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    for (const NodeId y : g.neighbors(x)) {
      if (layer[y] != -1) continue;
      layer[y] = layer[x] + 1;
      max_layer = std::max(max_layer, layer[y]);
      q.push(y);
    }
  }
  res.layers = max_layer;
  for (NodeId v = 0; v < n; ++v)
    if (layer[v] == -1) ++res.unreachable;
  if (res.unreachable > 0) return res;  // hard region: baseline stalls

  const auto lists = uniform_lists(g, delta);
  for (int l = max_layer; l >= 1; --l) {
    NodeMask active(n, 0);
    for (NodeId v = 0; v < n; ++v) active[v] = layer[v] == l;
    deg_plus_one_list_color(g, active, lists, res.color, ledger,
                            "baseline-layers");
  }
  for (const std::size_t i : chosen)
    color_loophole(g, loopholes.loopholes[i], res.color);
  ledger.charge("baseline-loopholes", 3);
  res.success = true;
  return res;
}

}  // namespace deltacolor
