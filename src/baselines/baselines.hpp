// Distributed baselines for bench E7:
//
//  * greedy (Delta+1)-coloring — the "one extra color makes it a greedy
//    problem" contrast from the introduction: O(Delta^2 + log* n) rounds
//    via one deg+1-list instance, but it uses Delta+1 colors;
//  * layered loophole coloring — the prior-approach stand-in: BFS-layer
//    the *whole* graph from its loopholes and color inward. On graphs with
//    frequent loopholes this works, with round complexity proportional to
//    the distance to the nearest loophole; on hard (loophole-free) regions
//    it stalls — exactly the paper's motivation for slack triads.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/loopholes.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

/// (Delta+1)-coloring by one deg+1-list instance over the full palette
/// {0..Delta}. Always succeeds. Default phase "greedy".
std::vector<Color> greedy_delta_plus_one(const Graph& g, LocalContext& ctx);

/// RoundLedger-based compatibility wrapper (pre-LocalContext API).
inline std::vector<Color> greedy_delta_plus_one(
    const Graph& g, RoundLedger& ledger, const std::string& phase = "greedy") {
  LocalContext ctx(ledger);
  ScopedPhase scope(ctx, phase);
  return greedy_delta_plus_one(g, ctx);
}

struct LayeredBaselineResult {
  std::vector<Color> color;
  bool success = false;       ///< every vertex was reachable from a loophole
  std::size_t unreachable = 0;  ///< vertices no loophole chain reaches
  int layers = 0;             ///< ~ round cost driver (graph eccentricity)
};

/// Layered Delta-coloring from the given loopholes (no slack triads): BFS
/// layering over the whole graph, colored outside-in, loopholes last.
/// Fails (success = false) when some vertex is unreachable — e.g. on
/// loophole-free hard instances.
LayeredBaselineResult layered_loophole_coloring(const Graph& g,
                                                const LoopholeSet& loopholes,
                                                RoundLedger& ledger);

}  // namespace deltacolor
