// Immutable undirected simple graph in CSR form.
//
// Nodes are dense indices 0..n-1. Separately, every node carries a LOCAL
// identifier (Graph::id): distributed algorithms must break symmetry using
// these identifiers only, so test harnesses can permute them adversarially
// without touching the topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace deltacolor {

class ThreadPool;

/// What the caller already knows about an edge list handed to Graph's
/// builder. Generators that emit structured edge lists (clique blow-ups,
/// product graphs, G(n, p) in row-major order) declare it here so the
/// builder can skip normalization, per-node dedup, or the counting sort
/// entirely. Hints are promises: they are DCHECK-verified in debug builds,
/// and a wrong hint in a release build produces a malformed graph.
struct EdgeListHints {
  /// Every pair already satisfies u < v.
  bool normalized = false;
  /// No duplicate pairs (after normalization).
  bool unique = false;
  /// Lexicographically sorted by (u, v); implies `normalized`.
  bool sorted = false;
};

inline constexpr EdgeListHints kUnsortedEdges{};
inline constexpr EdgeListHints kNormalizedUniqueEdges{true, true, false};
inline constexpr EdgeListHints kSortedUniqueEdges{true, true, true};

class Graph {
 public:
  /// Borrowed CSR arrays — the zero-copy exchange shape between Graph and
  /// external storage (an mmap'd .dcsr file, a serializer). All pointers
  /// reference memory owned elsewhere; `edges` uses the in-memory pair
  /// layout, which csr_file static-asserts is exactly two packed u32s.
  struct ExternalCsr {
    const std::uint64_t* offsets = nullptr;            // size num_nodes + 1
    const NodeId* adjacency = nullptr;                 // size 2 * num_edges
    const EdgeId* arc_edge = nullptr;                  // size 2 * num_edges
    const std::pair<NodeId, NodeId>* edges = nullptr;  // size num_edges
    const std::uint64_t* ids = nullptr;                // size num_nodes
    NodeId num_nodes = 0;
    EdgeId num_edges = 0;
    int max_degree = 0;
  };

  Graph() = default;

  /// Builds from an edge list. Edges must be simple (no self loops); pairs
  /// are deduplicated. Node count is explicit so isolated nodes survive.
  ///
  /// The builder is sort-free: a two-pass counting sort (per-lower-endpoint
  /// degree histogram → prefix offsets → scatter) buckets the edges, each
  /// node's small bucket is sorted and deduplicated independently, and the
  /// CSR arcs are materialized per node — no global comparison sort ever
  /// runs. The result is bit-identical to the legacy sort+unique builder
  /// (`legacy_build`, kept as the test oracle): same edge ids, offsets,
  /// adjacency order, and arc/edge alignment.
  Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges);

  /// Same, with caller-declared structure (see EdgeListHints) and an
  /// optional thread pool. With a pool, the per-node stages (bucket
  /// sort/dedup, edge compaction, arc materialization) run on contiguous
  /// node ranges across the workers; every stage writes disjoint slots, so
  /// the CSR is bit-identical to the serial build for any worker count.
  Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges,
        EdgeListHints hints, ThreadPool* pool = nullptr);

  /// The pre-PR-4 sort+unique builder (global std::sort of the edge list,
  /// then a per-node arc sort). Kept only as the equivalence oracle for
  /// the counting-sort builder; do not use on hot paths.
  static Graph legacy_build(NodeId num_nodes,
                            std::vector<std::pair<NodeId, NodeId>> edges);

  /// Zero-copy adoption of externally owned CSR arrays (the mmap load
  /// path). `storage` is an opaque keep-alive: the Graph holds it for its
  /// lifetime so the mapping outlives every view handed out. The arrays
  /// are trusted — csr_file validates magic/version/checksums before
  /// calling this.
  static Graph from_external(const ExternalCsr& csr,
                             std::shared_ptr<const void> storage);

  /// This graph's arrays as borrowed views (the serialization path).
  ExternalCsr external_view() const;

  /// Copies rebind the hot-path views onto the copied buffers (or share the
  /// external mapping); moves are cheap — vector buffers are stable under
  /// move, so the views transfer as-is.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  ~Graph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }

  int degree(NodeId v) const {
    return static_cast<int>(off_[v + 1] - off_[v]);
  }

  int max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending by node index.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_ + off_[v], adj_ + off_[v + 1]};
  }

  /// Calls fn(u) for every neighbor u of v (ascending). Part of the
  /// GraphView concept (graph_view.hpp): a host Graph is itself a view of
  /// dilation 1, so view-generic subroutines run on it directly.
  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    for (const NodeId u : neighbors(v)) fn(u);
  }

  /// Real communication rounds per round on this graph (GraphView concept);
  /// the host graph is the network itself.
  static constexpr int dilation() { return 1; }

  /// Edge index of each arc out of v, aligned with neighbors(v).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return {arc_ + off_[v], arc_ + off_[v + 1]};
  }

  bool has_edge(NodeId u, NodeId v) const {
    return edge_between(u, v) != kNoEdge;
  }

  /// Edge index between u and v, or kNoEdge. O(log deg) via binary search.
  EdgeId edge_between(NodeId u, NodeId v) const;

  /// Endpoints of edge e with endpoints().first < endpoints().second.
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const { return edge_[e]; }

  /// Given edge e incident to v, the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const auto [a, b] = edge_[e];
    DC_DCHECK(v == a || v == b);
    return v == a ? b : a;
  }

  /// LOCAL-model identifier of node v (unique, not necessarily 0..n-1).
  std::uint64_t id(NodeId v) const { return id_[v]; }

  /// Installs a fresh identifier assignment (must be unique, size n).
  /// Works on mapped graphs too: the new ids become owned storage while
  /// every other section stays zero-copy.
  void set_ids(std::vector<std::uint64_t> ids);

  /// All edges as (u, v) pairs with u < v. On a mapped graph this view
  /// touches the file's edges section — hot paths should prefer adjacency
  /// iteration so those pages stay cold.
  std::span<const std::pair<NodeId, NodeId>> edges() const {
    return {edge_, static_cast<std::size_t>(num_edges_)};
  }

  /// True if u and v are within distance `radius` (BFS; intended for tests
  /// and small virtual graphs, not hot paths).
  bool within_distance(NodeId u, NodeId v, int radius) const;

  /// Number of connected components.
  std::size_t num_components() const;

 private:
  /// Points the hot-path views at this graph's own vectors and refreshes
  /// the cached counts (the tail step of every in-memory build).
  void rebind_owned();
  /// Copy-construction helper: for each section, rebind to this graph's
  /// freshly copied vector when `other` viewed its own buffer, else keep
  /// the external pointer (the shared mapping was copied via storage_).
  void rebind_after_copy(const Graph& other);

  // Owned storage. Empty for sections that live in an external mapping.
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, sorted per node
  std::vector<EdgeId> arc_edge_;        // size 2m, aligned with adjacency_
  std::vector<std::pair<NodeId, NodeId>> edges_;  // size m, u < v
  std::vector<std::uint64_t> ids_;      // size n

  // Hot-path views: every accessor reads through these. Each points into
  // the owned vector above or into storage_-backed external memory.
  const std::uint64_t* off_ = nullptr;
  const NodeId* adj_ = nullptr;
  const EdgeId* arc_ = nullptr;
  const std::pair<NodeId, NodeId>* edge_ = nullptr;
  const std::uint64_t* id_ = nullptr;

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  int max_degree_ = 0;

  /// Opaque keep-alive for external storage (e.g. the mmap'd file). Shared
  /// across copies so the mapping drops only when the last view dies.
  std::shared_ptr<const void> storage_;
};

/// Convenience: identity identifiers 0..n-1.
std::vector<std::uint64_t> identity_ids(NodeId n);

/// Random permutation identifiers (for adversarial/randomized ID tests).
std::vector<std::uint64_t> shuffled_ids(NodeId n, std::uint64_t seed);

}  // namespace deltacolor
