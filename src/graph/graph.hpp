// Immutable undirected simple graph in CSR form.
//
// Nodes are dense indices 0..n-1. Separately, every node carries a LOCAL
// identifier (Graph::id): distributed algorithms must break symmetry using
// these identifiers only, so test harnesses can permute them adversarially
// without touching the topology.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace deltacolor {

class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list. Edges must be simple (no self loops); pairs
  /// are deduplicated. Node count is explicit so isolated nodes survive.
  Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  int degree(NodeId v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  int max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending by node index.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Calls fn(u) for every neighbor u of v (ascending). Part of the
  /// GraphView concept (graph_view.hpp): a host Graph is itself a view of
  /// dilation 1, so view-generic subroutines run on it directly.
  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    for (const NodeId u : neighbors(v)) fn(u);
  }

  /// Real communication rounds per round on this graph (GraphView concept);
  /// the host graph is the network itself.
  static constexpr int dilation() { return 1; }

  /// Edge index of each arc out of v, aligned with neighbors(v).
  std::span<const EdgeId> incident_edges(NodeId v) const {
    return {arc_edge_.data() + offsets_[v], arc_edge_.data() + offsets_[v + 1]};
  }

  bool has_edge(NodeId u, NodeId v) const {
    return edge_between(u, v) != kNoEdge;
  }

  /// Edge index between u and v, or kNoEdge. O(log deg) via binary search.
  EdgeId edge_between(NodeId u, NodeId v) const;

  /// Endpoints of edge e with endpoints().first < endpoints().second.
  std::pair<NodeId, NodeId> endpoints(EdgeId e) const { return edges_[e]; }

  /// Given edge e incident to v, the other endpoint.
  NodeId other_endpoint(EdgeId e, NodeId v) const {
    const auto [a, b] = edges_[e];
    DC_DCHECK(v == a || v == b);
    return v == a ? b : a;
  }

  /// LOCAL-model identifier of node v (unique, not necessarily 0..n-1).
  std::uint64_t id(NodeId v) const { return ids_[v]; }

  /// Installs a fresh identifier assignment (must be unique, size n).
  void set_ids(std::vector<std::uint64_t> ids);

  /// All edges as (u, v) pairs with u < v.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

  /// True if u and v are within distance `radius` (BFS; intended for tests
  /// and small virtual graphs, not hot paths).
  bool within_distance(NodeId u, NodeId v, int radius) const;

  /// Number of connected components.
  std::size_t num_components() const;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m, sorted per node
  std::vector<EdgeId> arc_edge_;      // size 2m, aligned with adjacency_
  std::vector<std::pair<NodeId, NodeId>> edges_;  // size m, u < v
  std::vector<std::uint64_t> ids_;    // size n
  int max_degree_ = 0;
};

/// Convenience: identity identifiers 0..n-1.
std::vector<std::uint64_t> identity_ids(NodeId n);

/// Random permutation identifiers (for adversarial/randomized ID tests).
std::vector<std::uint64_t> shuffled_ids(NodeId n, std::uint64_t seed);

}  // namespace deltacolor
