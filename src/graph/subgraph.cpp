#include "graph/subgraph.hpp"

#include <algorithm>
#include <queue>

namespace deltacolor {

Subgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Subgraph s;
  s.orig_of = nodes;
  std::sort(s.orig_of.begin(), s.orig_of.end());
  s.orig_of.erase(std::unique(s.orig_of.begin(), s.orig_of.end()),
                  s.orig_of.end());
  s.sub_of.assign(g.num_nodes(), kNoNode);
  for (NodeId i = 0; i < s.orig_of.size(); ++i)
    s.sub_of[s.orig_of[i]] = i;

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < s.orig_of.size(); ++i) {
    const NodeId host = s.orig_of[i];
    for (const NodeId nbr : g.neighbors(host)) {
      const NodeId j = s.sub_of[nbr];
      if (j != kNoNode && i < j) edges.emplace_back(i, j);
    }
  }
  s.graph = Graph(static_cast<NodeId>(s.orig_of.size()), std::move(edges));
  std::vector<std::uint64_t> ids(s.orig_of.size());
  for (NodeId i = 0; i < s.orig_of.size(); ++i) ids[i] = g.id(s.orig_of[i]);
  s.graph.set_ids(std::move(ids));
  return s;
}

Graph power_graph(const Graph& g, int r) {
  DC_CHECK(r >= 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<int> dist(g.num_nodes(), -1);
  std::vector<NodeId> touched;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    // BFS to depth r from s; add edges s->t for t > s.
    std::queue<NodeId> q;
    dist[s] = 0;
    touched.push_back(s);
    q.push(s);
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      if (dist[x] >= r) continue;
      for (const NodeId y : g.neighbors(x)) {
        if (dist[y] != -1) continue;
        dist[y] = dist[x] + 1;
        touched.push_back(y);
        q.push(y);
      }
    }
    for (const NodeId t : touched)
      if (t > s) edges.emplace_back(s, t);
    for (const NodeId t : touched) dist[t] = -1;
    touched.clear();
  }
  Graph pg(g.num_nodes(), std::move(edges));
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = g.id(v);
  pg.set_ids(std::move(ids));
  return pg;
}

Graph line_graph(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto inc = g.incident_edges(v);
    for (std::size_t i = 0; i < inc.size(); ++i)
      for (std::size_t j = i + 1; j < inc.size(); ++j)
        edges.emplace_back(std::min(inc[i], inc[j]),
                           std::max(inc[i], inc[j]));
  }
  Graph lg(g.num_edges(), std::move(edges));
  // Unique edge identifier: position of the edge in the host graph's sorted
  // edge list is already unique; fold in endpoint ids to stay unique under
  // arbitrary host identifier permutations.
  std::vector<std::uint64_t> ids(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const std::uint64_t a = std::min(g.id(u), g.id(v));
    const std::uint64_t b = std::max(g.id(u), g.id(v));
    ids[e] = a * (2 * static_cast<std::uint64_t>(g.num_nodes()) + 1) + b;
  }
  lg.set_ids(std::move(ids));
  return lg;
}

Components connected_components(const Graph& g) {
  Components c;
  c.component_of.assign(g.num_nodes(), -1);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (c.component_of[s] != -1) continue;
    c.component_of[s] = c.count;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (const NodeId y : g.neighbors(x)) {
        if (c.component_of[y] == -1) {
          c.component_of[y] = c.count;
          stack.push_back(y);
        }
      }
    }
    ++c.count;
  }
  return c;
}

std::vector<std::vector<NodeId>> component_node_lists(const Components& c) {
  std::vector<std::vector<NodeId>> lists(c.count);
  for (NodeId v = 0; v < c.component_of.size(); ++v)
    lists[static_cast<std::size_t>(c.component_of[v])].push_back(v);
  return lists;
}

}  // namespace deltacolor
