#include "graph/graph_view.hpp"

namespace deltacolor {

InducedSubgraphView::InducedSubgraphView(const Graph& host,
                                         const std::vector<NodeId>& nodes)
    : host_(&host), orig_of_(nodes) {
  std::sort(orig_of_.begin(), orig_of_.end());
  orig_of_.erase(std::unique(orig_of_.begin(), orig_of_.end()),
                 orig_of_.end());
  sub_of_.assign(host.num_nodes(), kNoNode);
  for (NodeId i = 0; i < orig_of_.size(); ++i) {
    DC_CHECK(orig_of_[i] < host.num_nodes());
    sub_of_[orig_of_[i]] = i;
  }
  degree_.assign(orig_of_.size(), 0);
  for (NodeId i = 0; i < orig_of_.size(); ++i) {
    int d = 0;
    for (const NodeId u : host.neighbors(orig_of_[i]))
      if (sub_of_[u] != kNoNode) ++d;
    degree_[i] = d;
    max_degree_ = std::max(max_degree_, d);
  }
}

PowerGraphView::PowerGraphView(const Graph& host, int radius)
    : host_(&host), radius_(radius) {
  DC_CHECK(radius >= 1);
  const NodeId n = host.num_nodes();
  degree_.assign(n, 0);
  // Exact ball sizes via one bounded BFS per node (same work the eager
  // power_graph() spends, but nothing beyond the degree array is kept).
  std::vector<int> dist(n, -1);
  std::vector<NodeId> queue;
  std::vector<NodeId> touched;
  for (NodeId s = 0; s < n; ++s) {
    queue.clear();
    touched.clear();
    dist[s] = 0;
    touched.push_back(s);
    queue.push_back(s);
    int d = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      if (dist[x] >= radius_) continue;
      for (const NodeId y : host.neighbors(x)) {
        if (dist[y] != -1) continue;
        dist[y] = dist[x] + 1;
        touched.push_back(y);
        queue.push_back(y);
        ++d;
      }
    }
    for (const NodeId t : touched) dist[t] = -1;
    degree_[s] = d;
    max_degree_ = std::max(max_degree_, d);
  }
}

}  // namespace deltacolor
