// Graph generators.
//
// The dense-instance generators realize the paper's workload: graphs whose
// almost-clique decomposition has no sparse vertices (Definition 4), with a
// controllable mix of hard cliques (Definition 8) and easy almost cliques.
//
// Hard all-clique instances are built as clique blow-ups of a bipartite
// circulant "supergraph" R whose shift set is a Sidon set. Why this works
// (see DESIGN.md §workloads): any non-clique even cycle on <= 6 vertices of
// the blow-up must either (a) use only cross edges — excluded by making the
// cross-edge subgraph have girth > 6, (b) project to a 4-cycle of R —
// excluded by the Sidon property, or (c) project to a triangle or
// multi-edge of R — excluded since R is bipartite and simple. Vertices all
// have degree exactly Delta, so degree loopholes are absent too.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace deltacolor {

// --- elementary graphs -----------------------------------------------------

Graph path_graph(NodeId n);
Graph cycle_graph(NodeId n);
Graph complete_graph(NodeId n);
Graph complete_bipartite(NodeId a, NodeId b);
Graph star_graph(NodeId leaves);
/// 4-regular wrap-around grid.
Graph torus_grid(NodeId rows, NodeId cols);
Graph random_tree(NodeId n, std::uint64_t seed);
/// Erdos-Renyi G(n, p).
Graph random_graph(NodeId n, double p, std::uint64_t seed);
/// Random d-regular simple graph (pairing model with local repair).
Graph random_regular(NodeId n, int d, std::uint64_t seed);

// --- dense instances (the paper's workloads) --------------------------------

struct CliqueInstanceOptions {
  /// Number of cliques; rounded up to the generator's structural needs
  /// (even, and large enough for the Sidon-set supergraph).
  int num_cliques = 64;
  /// Maximum degree Delta of the produced graph.
  int delta = 16;
  /// Clique size s (<= delta). Every vertex has e = delta - s + 1 external
  /// ("cross") edges; s == delta is the paper's "extremely dense" case.
  int clique_size = 16;
  /// Fraction of cliques converted to easy almost cliques by deleting one
  /// intra-clique edge (creating two degree-(Delta-1) loophole vertices).
  double easy_fraction = 0.0;
  /// Seed for slot assignment, easification choice, and ID shuffling.
  std::uint64_t seed = 1;
  /// Install randomly permuted LOCAL identifiers (default) or identity.
  bool shuffle_ids = true;
};

struct CliqueInstance {
  Graph graph;
  int delta = 0;
  /// Ground-truth clusters, one vector of member nodes per clique.
  std::vector<std::vector<NodeId>> cliques;
  /// Clique index of each node.
  std::vector<int> clique_of;
  /// Which cliques were easified (had an intra edge removed).
  std::vector<bool> easified;
};

/// Dense instance made of cliques of size `clique_size`, every vertex of
/// degree exactly `delta` (except the two endpoints of each removed edge in
/// easified cliques). With easy_fraction == 0 every clique is hard.
CliqueInstance clique_blowup_instance(const CliqueInstanceOptions& options);

/// Ring of t s-cliques where only two designated vertices per clique carry a
/// cross edge (to the previous/next clique). Delta equals s; vertices with
/// no cross edge have degree s - 1 < Delta, so every clique is easy.
/// Exercises the loophole/easy-clique pipeline (Algorithm 3) in isolation.
CliqueInstance clique_ring(int num_cliques, int clique_size,
                           std::uint64_t seed = 1);

// --- supergraph helpers (exposed for tests) ---------------------------------

/// Greedy Sidon set modulo-safe: `count` nonnegative integers with pairwise
/// distinct differences, built from the Erdos-Turan quadratic construction.
std::vector<int> sidon_set(int count);

/// Smallest prime >= n.
int next_prime(int n);

/// Girth of g computed by BFS from every node, capped: returns the true
/// girth if it is <= cap, otherwise cap + 1.
int girth_at_most(const Graph& g, int cap);

}  // namespace deltacolor
