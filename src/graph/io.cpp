#include "graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace deltacolor {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  NodeId n = 0;
  EdgeId m = 0;
  DC_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge-list header");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    DC_CHECK_MSG(static_cast<bool>(is >> u >> v), "truncated edge list");
    edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DC_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_edge_list(os, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  return read_edge_list(is);
}

void write_dot(std::ostream& os, const Graph& g,
               const std::vector<Color>* colors) {
  os << "graph G {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v;
    if (colors != nullptr && (*colors)[v] != kNoColor)
      os << " [label=\"" << v << ":c" << (*colors)[v] << "\"]";
    os << ";\n";
  }
  for (const auto& [u, v] : g.edges()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
}

}  // namespace deltacolor
