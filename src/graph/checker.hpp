// Validity checkers for all solution objects. Every algorithm output in the
// library is checked against these in tests, and benches assert them before
// reporting a measurement.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

struct ColoringReport {
  bool proper = true;           ///< no monochromatic edge
  bool complete = true;         ///< every node colored (!= kNoColor)
  Color max_color = kNoColor;   ///< largest color used
  int colors_used = 0;          ///< number of distinct colors
  std::size_t conflicts = 0;    ///< count of monochromatic edges
  std::size_t uncolored = 0;    ///< count of uncolored nodes
  std::string describe() const;
};

ColoringReport check_coloring(const Graph& g, const std::vector<Color>& color);

/// First monochromatic edge of a *partial* coloring (edges with an
/// uncolored endpoint are ignored), or nullopt when the partial coloring
/// is proper. Every pipeline in the library keeps its partial coloring
/// proper between phases, which makes this the inter-phase invariant the
/// --validate=phase oracle enforces.
std::optional<std::pair<NodeId, NodeId>> find_partial_conflict(
    const Graph& g, const std::vector<Color>& color);

/// True iff `color` is a complete proper coloring with colors in
/// {0, .., num_colors-1}.
bool is_proper_coloring(const Graph& g, const std::vector<Color>& color,
                        int num_colors);

/// True iff `color` is a complete proper Delta-coloring of g.
bool is_delta_coloring(const Graph& g, const std::vector<Color>& color);

/// Matching checks: `in_matching` flags edges by EdgeId.
bool is_matching(const Graph& g, const std::vector<bool>& in_matching);
bool is_maximal_matching(const Graph& g, const std::vector<bool>& in_matching);

/// Independent-set checks: `in_set` flags nodes.
bool is_independent_set(const Graph& g, const std::vector<bool>& in_set);
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<bool>& in_set);

/// True iff every node of g is within distance `radius` of a flagged node.
bool dominates_within(const Graph& g, const std::vector<bool>& in_set,
                      int radius);

/// True iff flagged nodes are pairwise at distance > `min_distance`.
bool pairwise_distance_greater(const Graph& g, const std::vector<bool>& in_set,
                               int min_distance);

/// (alpha, beta)-ruling set: members pairwise at distance >= alpha, every
/// node within distance beta of a member.
bool is_ruling_set(const Graph& g, const std::vector<bool>& in_set, int alpha,
                   int beta);

/// True iff `nodes` induces a clique in g.
bool is_clique(const Graph& g, const std::vector<NodeId>& nodes);

/// List-coloring validity: proper and every node's color is in its list.
bool respects_lists(const Graph& g, const std::vector<Color>& color,
                    const std::vector<std::vector<Color>>& lists);

}  // namespace deltacolor
