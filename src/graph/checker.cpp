#include "graph/checker.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

std::string ColoringReport::describe() const {
  std::ostringstream os;
  os << (proper ? "proper" : "IMPROPER") << ", "
     << (complete ? "complete" : "INCOMPLETE") << ", colors_used="
     << colors_used << ", max_color=" << max_color
     << ", conflicts=" << conflicts << ", uncolored=" << uncolored;
  return os.str();
}

ColoringReport check_coloring(const Graph& g,
                              const std::vector<Color>& color) {
  DC_CHECK(color.size() == g.num_nodes());
  ColoringReport r;
  std::set<Color> used;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (color[v] == kNoColor) {
      r.complete = false;
      ++r.uncolored;
    } else {
      used.insert(color[v]);
      r.max_color = std::max(r.max_color, color[v]);
    }
  }
  // Adjacency iteration (each edge once, via its lower endpoint) instead of
  // the edge list: on a mapped graph this keeps the file's edges section
  // untouched, so verification stays within the offsets+adjacency pages.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (color[u] == kNoColor) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (v > u && color[u] == color[v]) {
        r.proper = false;
        ++r.conflicts;
      }
    }
  }
  r.colors_used = static_cast<int>(used.size());
  return r;
}

std::optional<std::pair<NodeId, NodeId>> find_partial_conflict(
    const Graph& g, const std::vector<Color>& color) {
  DC_CHECK(color.size() == g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (color[u] == kNoColor) continue;
    for (const NodeId v : g.neighbors(u))
      if (v > u && color[u] == color[v]) return {{u, v}};
  }
  return std::nullopt;
}

bool is_proper_coloring(const Graph& g, const std::vector<Color>& color,
                        int num_colors) {
  const auto r = check_coloring(g, color);
  return r.proper && r.complete && r.max_color < num_colors &&
         (g.num_nodes() == 0 ||
          *std::min_element(color.begin(), color.end()) >= 0);
}

bool is_delta_coloring(const Graph& g, const std::vector<Color>& color) {
  return is_proper_coloring(g, color, g.max_degree());
}

bool is_matching(const Graph& g, const std::vector<bool>& in_matching) {
  DC_CHECK(in_matching.size() == g.num_edges());
  std::vector<int> matched(g.num_nodes(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_matching[e]) continue;
    const auto [u, v] = g.endpoints(e);
    if (++matched[u] > 1 || ++matched[v] > 1) return false;
  }
  return true;
}

bool is_maximal_matching(const Graph& g,
                         const std::vector<bool>& in_matching) {
  if (!is_matching(g, in_matching)) return false;
  std::vector<bool> matched(g.num_nodes(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_matching[e]) continue;
    const auto [u, v] = g.endpoints(e);
    matched[u] = matched[v] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (!matched[u] && !matched[v]) return false;
  }
  return true;
}

bool is_independent_set(const Graph& g, const std::vector<bool>& in_set) {
  DC_CHECK(in_set.size() == g.num_nodes());
  for (const auto& [u, v] : g.edges())
    if (in_set[u] && in_set[v]) return false;
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<bool>& in_set) {
  if (!is_independent_set(g, in_set)) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (const NodeId u : g.neighbors(v)) {
      if (in_set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

namespace {

// Multi-source BFS distance from the flagged set, capped at `cap`.
std::vector<int> distance_from_set(const Graph& g,
                                   const std::vector<bool>& in_set, int cap) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<NodeId> q;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) {
      dist[v] = 0;
      q.push(v);
    }
  }
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    if (dist[x] >= cap) continue;
    for (const NodeId y : g.neighbors(x)) {
      if (dist[y] == -1) {
        dist[y] = dist[x] + 1;
        q.push(y);
      }
    }
  }
  return dist;
}

}  // namespace

bool dominates_within(const Graph& g, const std::vector<bool>& in_set,
                      int radius) {
  const auto dist = distance_from_set(g, in_set, radius);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (dist[v] == -1) return false;
  return true;
}

bool pairwise_distance_greater(const Graph& g, const std::vector<bool>& in_set,
                               int min_distance) {
  // BFS from each member to depth min_distance; reject if another member is
  // reached. Intended for verification, not hot paths.
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!in_set[s]) continue;
    std::vector<int> dist(g.num_nodes(), -1);
    std::queue<NodeId> q;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      if (dist[x] >= min_distance) continue;
      for (const NodeId y : g.neighbors(x)) {
        if (dist[y] != -1) continue;
        dist[y] = dist[x] + 1;
        if (in_set[y]) return false;
        q.push(y);
      }
    }
  }
  return true;
}

bool is_ruling_set(const Graph& g, const std::vector<bool>& in_set, int alpha,
                   int beta) {
  return pairwise_distance_greater(g, in_set, alpha - 1) &&
         dominates_within(g, in_set, beta);
}

bool is_clique(const Graph& g, const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      if (!g.has_edge(nodes[i], nodes[j])) return false;
  return true;
}

bool respects_lists(const Graph& g, const std::vector<Color>& color,
                    const std::vector<std::vector<Color>>& lists) {
  DC_CHECK(color.size() == g.num_nodes());
  DC_CHECK(lists.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (color[v] == kNoColor) return false;
    if (std::find(lists[v].begin(), lists[v].end(), color[v]) ==
        lists[v].end())
      return false;
  }
  for (const auto& [u, v] : g.edges())
    if (color[u] == color[v]) return false;
  return true;
}

}  // namespace deltacolor
