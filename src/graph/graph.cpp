#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <type_traits>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace deltacolor {

namespace {

/// Runs fn(begin, end) over contiguous slices of [0, size): one slice per
/// pool worker, or the whole range inline without a pool. Every builder
/// stage dispatched this way writes only slots derived from its own node
/// range, so the schedule cannot leak into the CSR.
template <typename Fn>
void for_node_ranges(ThreadPool* pool, std::size_t size, Fn&& fn) {
  if (pool == nullptr || pool->num_workers() == 1 || size <= 1) {
    fn(std::size_t{0}, size);
    return;
  }
  pool->for_range(0, size, [&](int, std::size_t begin, std::size_t end) {
    fn(begin, end);
  });
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges)
    : Graph(num_nodes, std::move(edges), EdgeListHints{}, nullptr) {}

Graph::Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges,
             EdgeListHints hints, ThreadPool* pool) {
  for (auto& [u, v] : edges) {
    DC_CHECK_MSG(u != v, "self loop at node " << u);
    DC_CHECK_MSG(u < num_nodes && v < num_nodes,
                 "edge (" << u << "," << v << ") out of range n=" << num_nodes);
    if (hints.normalized || hints.sorted) {
      DC_DCHECK(u < v);
    } else if (u > v) {
      std::swap(u, v);
    }
  }
  const std::size_t n = num_nodes;

  static_assert(sizeof(std::pair<NodeId, NodeId>) == 2 * sizeof(NodeId) &&
                    std::is_standard_layout_v<std::pair<NodeId, NodeId>>,
                "edge pairs must be two packed u32s (on-disk CSR layout)");

  if (hints.sorted) {
    DC_DCHECK(std::is_sorted(edges.begin(), edges.end()));
    if (!hints.unique)
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    else
      DC_DCHECK(std::adjacent_find(edges.begin(), edges.end()) ==
                edges.end());
    edges_ = std::move(edges);
  } else {
    // Counting sort by lower endpoint: histogram → prefix offsets →
    // scatter. Each node's bucket is then sorted and deduplicated
    // independently (buckets have at most deg(u) entries, so this is the
    // per-node merge — no global comparison sort).
    std::vector<std::size_t> bucket_start(n + 1, 0);
    for (const auto& [u, v] : edges) ++bucket_start[u + 1];
    std::partial_sum(bucket_start.begin(), bucket_start.end(),
                     bucket_start.begin());
    std::vector<NodeId> bucket(edges.size());
    {
      std::vector<std::size_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
      for (const auto& [u, v] : edges) bucket[cursor[u]++] = v;
    }
    edges.clear();
    edges.shrink_to_fit();
    // Sort + dedup each bucket in place; `uniq[u]` is the surviving count.
    std::vector<std::size_t> uniq(n + 1, 0);
    for_node_ranges(pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t u = begin; u < end; ++u) {
        const auto lo = bucket.begin() +
                        static_cast<std::ptrdiff_t>(bucket_start[u]);
        const auto hi = bucket.begin() +
                        static_cast<std::ptrdiff_t>(bucket_start[u + 1]);
        std::sort(lo, hi);
        if (hints.unique) {
          DC_DCHECK(std::adjacent_find(lo, hi) == hi);
          uniq[u + 1] = static_cast<std::size_t>(hi - lo);
        } else {
          uniq[u + 1] = static_cast<std::size_t>(std::unique(lo, hi) - lo);
        }
      }
    });
    std::partial_sum(uniq.begin(), uniq.end(), uniq.begin());
    edges_.resize(uniq[n]);
    for_node_ranges(pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t u = begin; u < end; ++u) {
        std::size_t out = uniq[u];
        const std::size_t lo = bucket_start[u];
        for (std::size_t i = 0; i < uniq[u + 1] - uniq[u]; ++i)
          edges_[out++] = {static_cast<NodeId>(u), bucket[lo + i]};
      }
    });
  }

  // CSR materialization. Edge ids are positions in the sorted-unique edge
  // list, so for every node the incident arcs in edge-id order are already
  // sorted by neighbor: in-arcs (u, v) with u < v come first (ascending u,
  // because the edge list is lexicographic), then the node's own out-arcs
  // (v, w), ascending w and contiguous in the edge list. No per-node arc
  // sort is needed — the legacy builder's was a stable no-op.
  offsets_.assign(n + 1, 0);
  std::vector<std::size_t> in_deg(n, 0);
  std::vector<std::size_t> out_start(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
    ++in_deg[v];
    ++out_start[u + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  std::partial_sum(out_start.begin(), out_start.end(), out_start.begin());

  adjacency_.resize(edges_.size() * 2);
  arc_edge_.resize(edges_.size() * 2);
  {
    // In-arcs: one serial cursor pass in edge-id order (slots per node are
    // filled front to back). Out-arcs: fully parallel, each node copies its
    // contiguous edge range behind its in-arc block.
    std::vector<std::size_t> cursor(n);
    for (std::size_t v = 0; v < n; ++v) cursor[v] = offsets_[v];
    for (EdgeId e = 0; e < edges_.size(); ++e) {
      const NodeId v = edges_[e].second;
      adjacency_[cursor[v]] = edges_[e].first;
      arc_edge_[cursor[v]++] = e;
    }
    for_node_ranges(pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t u = begin; u < end; ++u) {
        std::size_t pos = offsets_[u] + in_deg[u];
        for (std::size_t e = out_start[u]; e < out_start[u + 1]; ++e) {
          adjacency_[pos] = edges_[e].second;
          arc_edge_[pos++] = static_cast<EdgeId>(e);
        }
      }
    });
  }
  for (std::size_t v = 0; v < n; ++v)
    max_degree_ = std::max(max_degree_,
                           static_cast<int>(offsets_[v + 1] - offsets_[v]));
  ids_ = identity_ids(num_nodes);
  rebind_owned();
}

void Graph::rebind_owned() {
  off_ = offsets_.data();
  adj_ = adjacency_.data();
  arc_ = arc_edge_.data();
  edge_ = edges_.data();
  id_ = ids_.data();
  num_nodes_ =
      static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  num_edges_ = static_cast<EdgeId>(edges_.size());
  storage_.reset();
}

void Graph::rebind_after_copy(const Graph& other) {
  off_ = other.off_ == other.offsets_.data() ? offsets_.data() : other.off_;
  adj_ =
      other.adj_ == other.adjacency_.data() ? adjacency_.data() : other.adj_;
  arc_ =
      other.arc_ == other.arc_edge_.data() ? arc_edge_.data() : other.arc_;
  edge_ = other.edge_ == other.edges_.data() ? edges_.data() : other.edge_;
  id_ = other.id_ == other.ids_.data() ? ids_.data() : other.id_;
}

Graph::Graph(const Graph& other)
    : offsets_(other.offsets_),
      adjacency_(other.adjacency_),
      arc_edge_(other.arc_edge_),
      edges_(other.edges_),
      ids_(other.ids_),
      num_nodes_(other.num_nodes_),
      num_edges_(other.num_edges_),
      max_degree_(other.max_degree_),
      storage_(other.storage_) {
  rebind_after_copy(other);
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  offsets_ = other.offsets_;
  adjacency_ = other.adjacency_;
  arc_edge_ = other.arc_edge_;
  edges_ = other.edges_;
  ids_ = other.ids_;
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  max_degree_ = other.max_degree_;
  storage_ = other.storage_;
  rebind_after_copy(other);
  return *this;
}

Graph Graph::from_external(const ExternalCsr& csr,
                           std::shared_ptr<const void> storage) {
  Graph g;
  g.off_ = csr.offsets;
  g.adj_ = csr.adjacency;
  g.arc_ = csr.arc_edge;
  g.edge_ = csr.edges;
  g.id_ = csr.ids;
  g.num_nodes_ = csr.num_nodes;
  g.num_edges_ = csr.num_edges;
  g.max_degree_ = csr.max_degree;
  g.storage_ = std::move(storage);
  return g;
}

Graph::ExternalCsr Graph::external_view() const {
  ExternalCsr csr;
  csr.offsets = off_;
  csr.adjacency = adj_;
  csr.arc_edge = arc_;
  csr.edges = edge_;
  csr.ids = id_;
  csr.num_nodes = num_nodes_;
  csr.num_edges = num_edges_;
  csr.max_degree = max_degree_;
  return csr;
}

Graph Graph::legacy_build(NodeId num_nodes,
                          std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  for (auto& [u, v] : edges) {
    DC_CHECK_MSG(u != v, "self loop at node " << u);
    DC_CHECK_MSG(u < num_nodes && v < num_nodes,
                 "edge (" << u << "," << v << ") out of range n=" << num_nodes);
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.edges_ = std::move(edges);

  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : g.edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.adjacency_.resize(g.edges_.size() * 2);
  g.arc_edge_.resize(g.edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.adjacency_[cursor[u]] = v;
    g.arc_edge_[cursor[u]++] = e;
    g.adjacency_[cursor[v]] = u;
    g.arc_edge_[cursor[v]++] = e;
  }
  // Sort each node's arcs by neighbor index, keeping arc_edge_ aligned.
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::size_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
    std::vector<std::pair<NodeId, EdgeId>> arcs;
    arcs.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i)
      arcs.emplace_back(g.adjacency_[i], g.arc_edge_[i]);
    std::sort(arcs.begin(), arcs.end());
    for (std::size_t i = lo; i < hi; ++i) {
      g.adjacency_[i] = arcs[i - lo].first;
      g.arc_edge_[i] = arcs[i - lo].second;
    }
    g.max_degree_ = std::max(g.max_degree_, static_cast<int>(hi - lo));
  }
  g.ids_ = identity_ids(num_nodes);
  g.rebind_owned();
  return g;
}

EdgeId Graph::edge_between(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kNoEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

void Graph::set_ids(std::vector<std::uint64_t> ids) {
  DC_CHECK(ids.size() == num_nodes());
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  DC_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                   sorted.end(),
               "node identifiers must be unique");
  ids_ = std::move(ids);
  id_ = ids_.data();  // the new ids are owned even on a mapped graph
}

bool Graph::within_distance(NodeId u, NodeId v, int radius) const {
  if (u == v) return true;
  std::vector<int> dist(num_nodes(), -1);
  std::queue<NodeId> q;
  dist[u] = 0;
  q.push(u);
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    if (dist[x] >= radius) continue;
    for (const NodeId y : neighbors(x)) {
      if (dist[y] != -1) continue;
      dist[y] = dist[x] + 1;
      if (y == v) return true;
      q.push(y);
    }
  }
  return false;
}

std::size_t Graph::num_components() const {
  std::vector<bool> seen(num_nodes(), false);
  std::size_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (const NodeId y : neighbors(x)) {
        if (!seen[y]) {
          seen[y] = true;
          stack.push_back(y);
        }
      }
    }
  }
  return components;
}

std::vector<std::uint64_t> identity_ids(NodeId n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::uint64_t{0});
  return ids;
}

std::vector<std::uint64_t> shuffled_ids(NodeId n, std::uint64_t seed) {
  auto ids = identity_ids(n);
  Rng rng(seed);
  for (NodeId i = n; i > 1; --i) {
    const auto j = rng.below(i);
    std::swap(ids[i - 1], ids[j]);
  }
  return ids;
}

}  // namespace deltacolor
