#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/rng.hpp"

namespace deltacolor {

Graph::Graph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges) {
  for (auto& [u, v] : edges) {
    DC_CHECK_MSG(u != v, "self loop at node " << u);
    DC_CHECK_MSG(u < num_nodes && v < num_nodes,
                 "edge (" << u << "," << v << ") out of range n=" << num_nodes);
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_ = std::move(edges);

  offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  adjacency_.resize(edges_.size() * 2);
  arc_edge_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    adjacency_[cursor[u]] = v;
    arc_edge_[cursor[u]++] = e;
    adjacency_[cursor[v]] = u;
    arc_edge_[cursor[v]++] = e;
  }
  // Sort each node's arcs by neighbor index, keeping arc_edge_ aligned.
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::size_t lo = offsets_[v], hi = offsets_[v + 1];
    std::vector<std::pair<NodeId, EdgeId>> arcs;
    arcs.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i)
      arcs.emplace_back(adjacency_[i], arc_edge_[i]);
    std::sort(arcs.begin(), arcs.end());
    for (std::size_t i = lo; i < hi; ++i) {
      adjacency_[i] = arcs[i - lo].first;
      arc_edge_[i] = arcs[i - lo].second;
    }
    max_degree_ = std::max(max_degree_, static_cast<int>(hi - lo));
  }
  ids_ = identity_ids(num_nodes);
}

EdgeId Graph::edge_between(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kNoEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

void Graph::set_ids(std::vector<std::uint64_t> ids) {
  DC_CHECK(ids.size() == num_nodes());
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  DC_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                   sorted.end(),
               "node identifiers must be unique");
  ids_ = std::move(ids);
}

bool Graph::within_distance(NodeId u, NodeId v, int radius) const {
  if (u == v) return true;
  std::vector<int> dist(num_nodes(), -1);
  std::queue<NodeId> q;
  dist[u] = 0;
  q.push(u);
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    if (dist[x] >= radius) continue;
    for (const NodeId y : neighbors(x)) {
      if (dist[y] != -1) continue;
      dist[y] = dist[x] + 1;
      if (y == v) return true;
      q.push(y);
    }
  }
  return false;
}

std::size_t Graph::num_components() const {
  std::vector<bool> seen(num_nodes(), false);
  std::size_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (const NodeId y : neighbors(x)) {
        if (!seen[y]) {
          seen[y] = true;
          stack.push_back(y);
        }
      }
    }
  }
  return components;
}

std::vector<std::uint64_t> identity_ids(NodeId n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::uint64_t{0});
  return ids;
}

std::vector<std::uint64_t> shuffled_ids(NodeId n, std::uint64_t seed) {
  auto ids = identity_ids(n);
  Rng rng(seed);
  for (NodeId i = n; i > 1; --i) {
    const auto j = rng.below(i);
    std::swap(ids[i - 1], ids[j]);
  }
  return ids;
}

}  // namespace deltacolor
