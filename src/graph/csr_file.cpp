#include "graph/csr_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace deltacolor {

static_assert(std::endian::native == std::endian::little,
              "the .dcsr reader/writer assumes a little-endian host");
static_assert(sizeof(std::pair<NodeId, NodeId>) == 8 &&
                  std::is_standard_layout_v<std::pair<NodeId, NodeId>>,
              "edge pairs must map 1:1 onto the on-disk (u32,u32) records");
// Field offsets are part of the frozen v1 wire format, not an accident of
// the struct definition.
static_assert(offsetof(CsrFileHeader, magic) == 0);
static_assert(offsetof(CsrFileHeader, version) == 8);
static_assert(offsetof(CsrFileHeader, header_bytes) == 12);
static_assert(offsetof(CsrFileHeader, num_nodes) == 16);
static_assert(offsetof(CsrFileHeader, num_edges) == 24);
static_assert(offsetof(CsrFileHeader, max_degree) == 32);
static_assert(offsetof(CsrFileHeader, flags) == 36);
static_assert(offsetof(CsrFileHeader, sections) == 40);
static_assert(offsetof(CsrFileHeader, header_checksum) == 160);

namespace {

[[noreturn]] void fail(CsrErrorKind kind, const std::string& path,
                       const std::string& what) {
  throw CsrError(kind, "csr_file: " + path + ": " + what);
}

std::uint64_t align_up(std::uint64_t x) {
  return (x + (kCsrSectionAlign - 1)) & ~(std::uint64_t{kCsrSectionAlign} - 1);
}

/// Section placement for a graph with n nodes and m edges. Checksums are
/// left zero — the writer fills them, the reader compares them.
struct CsrLayout {
  CsrSection sections[kNumSections];
  std::uint64_t total_bytes = 0;
};

CsrLayout csr_layout(std::uint64_t n, std::uint64_t m) {
  const std::uint64_t sizes[kNumSections] = {
      8 * (n + 1),  // offsets
      4 * 2 * m,    // adjacency
      4 * 2 * m,    // arc_edge
      8 * m,        // edges
      8 * n,        // ids
  };
  CsrLayout layout;
  std::uint64_t pos = align_up(sizeof(CsrFileHeader));
  for (int s = 0; s < kNumSections; ++s) {
    layout.sections[s].offset = pos;
    layout.sections[s].bytes = sizes[s];
    pos = align_up(pos + sizes[s]);
  }
  layout.total_bytes = pos;
  return layout;
}

/// Every structural check shared by peek and load. `file_bytes` is the
/// real size on disk. Throws the most specific CsrError it can.
void validate_header(const CsrFileHeader& h, std::uint64_t file_bytes,
                     const std::string& path) {
  if (h.magic != kCsrMagic) fail(CsrErrorKind::kBadMagic, path, "bad magic (not a .dcsr file)");
  if (h.version != kCsrVersion)
    fail(CsrErrorKind::kBadVersion, path,
         "unsupported version " + std::to_string(h.version) +
             " (reader understands " + std::to_string(kCsrVersion) + ")");
  if (h.header_bytes < sizeof(CsrFileHeader))
    fail(CsrErrorKind::kBadHeader, path,
         "header_bytes " + std::to_string(h.header_bytes) + " too small");
  CsrFileHeader probe = h;
  probe.header_checksum = 0;
  if (csr_checksum(&probe, sizeof(probe)) != h.header_checksum)
    fail(CsrErrorKind::kBadHeader, path, "header checksum mismatch");
  if (h.flags != 0)
    fail(CsrErrorKind::kBadHeader, path, "unknown flags set");
  const CsrLayout want = csr_layout(h.num_nodes, h.num_edges);
  for (int s = 0; s < kNumSections; ++s) {
    if (h.sections[s].offset != want.sections[s].offset ||
        h.sections[s].bytes != want.sections[s].bytes)
      fail(CsrErrorKind::kBadHeader, path,
           "section " + std::to_string(s) + " geometry inconsistent with "
           "num_nodes/num_edges");
  }
  if (file_bytes < want.total_bytes)
    fail(CsrErrorKind::kTruncated, path,
         "file is " + std::to_string(file_bytes) + " bytes, sections need " +
             std::to_string(want.total_bytes));
}

CsrVerify verify_policy(CsrVerify requested) {
  const char* env = std::getenv("DELTACOLOR_CSR_VERIFY");
  if (env == nullptr) return requested;
  const std::string v(env);
  if (v == "always" || v == "1") return CsrVerify::kAlways;
  if (v == "never" || v == "0") return CsrVerify::kNever;
  if (v == "auto") return CsrVerify::kAuto;
  std::fprintf(stderr,
               "csr_file: ignoring unknown DELTACOLOR_CSR_VERIFY=%s "
               "(expected always|never|auto)\n",
               env);
  return requested;
}

}  // namespace

std::uint64_t csr_checksum(const void* data, std::size_t bytes,
                           std::uint64_t seed) {
  // FNV-1a-64. Byte-serial but runs at memory speed for the sizes kAuto
  // allows; giant files skip section verification entirely.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

CsrMapping::CsrMapping(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    fail(CsrErrorKind::kOpen, path,
         std::string("open failed: ") + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(CsrErrorKind::kOpen, path,
         std::string("stat failed: ") + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap rejects zero-length maps; a zero-byte file is simply too short.
    ::close(fd);
    fail(CsrErrorKind::kShortHeader, path, "file is empty");
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED)
    fail(CsrErrorKind::kOpen, path,
         std::string("mmap failed: ") + std::strerror(errno));
  data_ = static_cast<const std::byte*>(map);
}

CsrMapping::~CsrMapping() {
  if (data_ != nullptr)
    ::munmap(const_cast<std::byte*>(data_), size_);
}

CsrFileInfo peek_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    fail(CsrErrorKind::kOpen, path,
         std::string("open failed: ") + std::strerror(errno));
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  CsrFileInfo info;
  info.file_bytes = file_bytes;
  if (file_bytes < sizeof(CsrFileHeader))
    fail(CsrErrorKind::kShortHeader, path,
         "file is " + std::to_string(file_bytes) +
             " bytes, header needs " + std::to_string(sizeof(CsrFileHeader)));
  in.read(reinterpret_cast<char*>(&info.header), sizeof(info.header));
  if (!in)
    fail(CsrErrorKind::kOpen, path, "header read failed");
  validate_header(info.header, file_bytes, path);
  return info;
}

bool is_csr_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kCsrMagic;
}

Graph load_csr_file(const std::string& path, const CsrLoadOptions& options) {
  auto mapping = std::make_shared<CsrMapping>(path);
  if (mapping->size() < sizeof(CsrFileHeader))
    fail(CsrErrorKind::kShortHeader, path,
         "file is " + std::to_string(mapping->size()) +
             " bytes, header needs " + std::to_string(sizeof(CsrFileHeader)));
  CsrFileHeader header;
  std::memcpy(&header, mapping->data(), sizeof(header));
  validate_header(header, mapping->size(), path);

  const CsrVerify verify = verify_policy(options.verify);
  const bool check_sections =
      verify == CsrVerify::kAlways ||
      (verify == CsrVerify::kAuto && mapping->size() <= kAutoVerifyLimit);
  if (check_sections) {
    for (int s = 0; s < kNumSections; ++s) {
      const CsrSection& sec = header.sections[s];
      if (csr_checksum(mapping->data() + sec.offset, sec.bytes) !=
          sec.checksum)
        fail(CsrErrorKind::kChecksum, path,
             "section " + std::to_string(s) + " checksum mismatch");
    }
  }

  const std::byte* base = mapping->data();
  Graph::ExternalCsr csr;
  csr.offsets = reinterpret_cast<const std::uint64_t*>(
      base + header.sections[kSecOffsets].offset);
  csr.adjacency = reinterpret_cast<const NodeId*>(
      base + header.sections[kSecAdjacency].offset);
  csr.arc_edge = reinterpret_cast<const EdgeId*>(
      base + header.sections[kSecArcEdge].offset);
  csr.edges = reinterpret_cast<const std::pair<NodeId, NodeId>*>(
      base + header.sections[kSecEdges].offset);
  csr.ids = reinterpret_cast<const std::uint64_t*>(
      base + header.sections[kSecIds].offset);
  csr.num_nodes = static_cast<NodeId>(header.num_nodes);
  csr.num_edges = static_cast<EdgeId>(header.num_edges);
  csr.max_degree = static_cast<int>(header.max_degree);
  return Graph::from_external(csr, std::move(mapping));
}

void write_csr_file(const std::string& path, const Graph& g) {
  const Graph::ExternalCsr v = g.external_view();
  const std::uint64_t n = v.num_nodes;
  const std::uint64_t m = v.num_edges;
  CsrLayout layout = csr_layout(n, m);

  const void* payloads[kNumSections] = {v.offsets, v.adjacency, v.arc_edge,
                                        v.edges, v.ids};
  CsrFileHeader header;
  header.header_bytes = sizeof(CsrFileHeader);
  header.num_nodes = n;
  header.num_edges = m;
  header.max_degree = static_cast<std::uint32_t>(v.max_degree);
  for (int s = 0; s < kNumSections; ++s) {
    header.sections[s] = layout.sections[s];
    header.sections[s].checksum =
        csr_checksum(payloads[s], layout.sections[s].bytes);
  }
  header.header_checksum = 0;
  header.header_checksum = csr_checksum(&header, sizeof(header));

  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out)
    fail(CsrErrorKind::kOpen, tmp,
         std::string("open failed: ") + std::strerror(errno));
  const auto pad_to = [&out](std::uint64_t target) {
    static const char zeros[kCsrSectionAlign] = {};
    std::uint64_t at = static_cast<std::uint64_t>(out.tellp());
    while (at < target) {
      const std::uint64_t chunk = std::min<std::uint64_t>(
          target - at, sizeof(zeros));
      out.write(zeros, static_cast<std::streamsize>(chunk));
      at += chunk;
    }
  };
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (int s = 0; s < kNumSections; ++s) {
    pad_to(layout.sections[s].offset);
    out.write(static_cast<const char*>(payloads[s]),
              static_cast<std::streamsize>(layout.sections[s].bytes));
  }
  pad_to(layout.total_bytes);
  out.flush();
  if (!out)
    fail(CsrErrorKind::kOpen, tmp, "write failed");
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    fail(CsrErrorKind::kOpen, path,
         std::string("rename failed: ") + std::strerror(errno));
}

namespace {

/// Read-write mapping over a freshly created file of exactly `bytes`
/// bytes (used for the scratch bucket file and the output .dcsr).
class RwMapping {
 public:
  RwMapping(const std::string& path, std::uint64_t bytes) : path_(path) {
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
      fail(CsrErrorKind::kOpen, path,
           std::string("open failed: ") + std::strerror(errno));
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      const int err = errno;
      ::close(fd);
      fail(CsrErrorKind::kOpen, path,
           std::string("ftruncate failed: ") + std::strerror(err));
    }
    size_ = bytes;
    if (bytes > 0) {
      void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                         fd, 0);
      if (map == MAP_FAILED) {
        const int err = errno;
        ::close(fd);
        fail(CsrErrorKind::kOpen, path,
             std::string("mmap failed: ") + std::strerror(err));
      }
      data_ = static_cast<std::byte*>(map);
    }
    ::close(fd);
  }
  ~RwMapping() {
    if (data_ != nullptr) ::munmap(data_, size_);
    if (!keep_) ::unlink(path_.c_str());
  }
  RwMapping(const RwMapping&) = delete;
  RwMapping& operator=(const RwMapping&) = delete;

  std::byte* data() { return data_; }
  /// Unmaps and renames the file to `target` (the atomic publish step).
  void publish(const std::string& target) {
    ::munmap(data_, size_);
    data_ = nullptr;
    if (std::rename(path_.c_str(), target.c_str()) != 0)
      fail(CsrErrorKind::kOpen, target,
           std::string("rename failed: ") + std::strerror(errno));
    keep_ = true;
  }

 private:
  std::string path_;
  std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool keep_ = false;
};

}  // namespace

CsrBuildStats build_csr_file(EdgeSource& source, NodeId num_nodes,
                             const std::string& out_path) {
  const std::size_t n = num_nodes;
  constexpr std::size_t kBatch = 1 << 16;
  std::vector<std::pair<NodeId, NodeId>> batch(kBatch);

  // Pass 1: per-lower-endpoint histogram (the counting-sort key), plus the
  // total pair count that sizes the scratch bucket file.
  std::vector<std::uint64_t> bucket_start(n + 1, 0);
  std::uint64_t input_edges = 0;
  source.rewind();
  for (std::size_t got; (got = source.next(batch.data(), kBatch)) > 0;) {
    for (std::size_t i = 0; i < got; ++i) {
      auto [a, b] = batch[i];
      DC_CHECK_MSG(a != b, "self loop at node " << a);
      DC_CHECK_MSG(a < num_nodes && b < num_nodes,
                   "edge (" << a << "," << b << ") out of range n="
                            << num_nodes);
      ++bucket_start[std::min(a, b) + 1];
    }
    input_edges += got;
  }
  std::partial_sum(bucket_start.begin(), bucket_start.end(),
                   bucket_start.begin());

  // Pass 2: scatter upper endpoints into an mmap'd scratch bucket file —
  // the only place the full edge multiset ever materializes, and it lives
  // on disk. The classic cursor trick (advance bucket_start[u] while
  // scattering) avoids a second n-word cursor array: afterwards
  // bucket_start[u] is the *end* of u's bucket and bucket_start[u-1] its
  // start.
  std::optional<RwMapping> scratch(std::in_place, out_path + ".buckets.tmp",
                                   input_edges * sizeof(NodeId));
  auto* bucket = reinterpret_cast<NodeId*>(scratch->data());
  source.rewind();
  for (std::size_t got; (got = source.next(batch.data(), kBatch)) > 0;) {
    for (std::size_t i = 0; i < got; ++i) {
      const auto [a, b] = batch[i];
      const NodeId u = std::min(a, b);
      bucket[bucket_start[u]++] = std::max(a, b);
    }
  }

  // Sort + dedup each node's bucket in place (identical to the in-memory
  // builder's per-bucket stage), collecting the surviving count and the
  // in-degree each unique edge contributes to its upper endpoint.
  std::vector<std::uint64_t> uniq(n + 1, 0);
  std::vector<std::uint32_t> in_deg(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    NodeId* lo = bucket + (u == 0 ? 0 : bucket_start[u - 1]);
    NodeId* hi = bucket + bucket_start[u];
    std::sort(lo, hi);
    NodeId* end = std::unique(lo, hi);
    uniq[u + 1] = static_cast<std::uint64_t>(end - lo);
    for (NodeId* p = lo; p != end; ++p) ++in_deg[*p];
  }
  std::partial_sum(uniq.begin(), uniq.end(), uniq.begin());
  const std::uint64_t m = uniq[n];

  // Materialize the output sections directly in the mmap'd result file.
  const CsrLayout layout = csr_layout(n, m);
  RwMapping out(out_path + ".tmp", layout.total_bytes);
  std::byte* base = out.data();
  auto* offsets = reinterpret_cast<std::uint64_t*>(
      base + layout.sections[kSecOffsets].offset);
  auto* adjacency = reinterpret_cast<NodeId*>(
      base + layout.sections[kSecAdjacency].offset);
  auto* arc_edge = reinterpret_cast<EdgeId*>(
      base + layout.sections[kSecArcEdge].offset);
  auto* edges = reinterpret_cast<std::pair<NodeId, NodeId>*>(
      base + layout.sections[kSecEdges].offset);
  auto* ids = reinterpret_cast<std::uint64_t*>(
      base + layout.sections[kSecIds].offset);

  // Edges section: lexicographic (u, v) straight from the deduped buckets;
  // a pair's index is its edge id, exactly as in the in-memory builder.
  for (std::size_t u = 0; u < n; ++u) {
    const std::uint64_t lo = u == 0 ? 0 : bucket_start[u - 1];
    for (std::uint64_t i = 0; i < uniq[u + 1] - uniq[u]; ++i)
      edges[uniq[u] + i] = {static_cast<NodeId>(u), bucket[lo + i]};
  }

  // The buckets are folded into the edges section now; drop the scratch
  // file before the adjacency passes so peak disk usage stays low.
  scratch.reset();
  bucket = nullptr;

  // Offsets: deg(v) = in_deg[v] + out_deg(v).
  offsets[0] = 0;
  int max_degree = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t deg = in_deg[v] + (uniq[v + 1] - uniq[v]);
    offsets[v + 1] = offsets[v] + deg;
    max_degree = std::max(max_degree, static_cast<int>(deg));
  }

  // Adjacency + arc ids, replicating the in-memory materialization: a
  // serial in-arc cursor pass in edge-id order, then each node's own
  // out-arcs behind its in-arc block. bucket_start is re-used as the
  // in-arc cursor array.
  for (std::size_t v = 0; v < n; ++v) bucket_start[v] = offsets[v];
  for (std::uint64_t e = 0; e < m; ++e) {
    const NodeId v = edges[e].second;
    adjacency[bucket_start[v]] = edges[e].first;
    arc_edge[bucket_start[v]++] = static_cast<EdgeId>(e);
  }
  for (std::size_t u = 0; u < n; ++u) {
    std::uint64_t pos = offsets[u] + in_deg[u];
    for (std::uint64_t e = uniq[u]; e < uniq[u + 1]; ++e) {
      adjacency[pos] = edges[e].second;
      arc_edge[pos++] = static_cast<EdgeId>(e);
    }
  }

  for (std::size_t v = 0; v < n; ++v) ids[v] = v;

  CsrFileHeader header;
  header.header_bytes = sizeof(CsrFileHeader);
  header.num_nodes = n;
  header.num_edges = m;
  header.max_degree = static_cast<std::uint32_t>(max_degree);
  for (int s = 0; s < kNumSections; ++s) {
    header.sections[s] = layout.sections[s];
    header.sections[s].checksum = csr_checksum(
        base + layout.sections[s].offset, layout.sections[s].bytes);
  }
  header.header_checksum = 0;
  header.header_checksum = csr_checksum(&header, sizeof(header));
  std::memcpy(base, &header, sizeof(header));

  out.publish(out_path);

  CsrBuildStats stats;
  stats.input_edges = input_edges;
  stats.unique_edges = m;
  stats.file_bytes = layout.total_bytes;
  stats.max_degree = max_degree;
  return stats;
}

}  // namespace deltacolor
