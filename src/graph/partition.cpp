#include "graph/partition.hpp"

#include <algorithm>

namespace deltacolor {

int ShardManifest::owner(NodeId v) const {
  // First bound strictly greater than v, minus one: bounds are ascending
  // (possibly with equal entries for empty shards), and the owner is the
  // unique shard whose half-open range contains v.
  const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(),
                                   static_cast<std::size_t>(v));
  return static_cast<int>(it - bounds.begin()) - 1;
}

ShardManifest ShardManifest::build(const Graph& g, int shards) {
  DC_CHECK(shards >= 1);
  ShardManifest m;
  m.bounds = degree_balanced_bounds(g, shards);
  const std::size_t parts = static_cast<std::size_t>(shards);
  m.boundary.resize(parts);
  m.ghosts.resize(parts);
  m.sub_offsets.resize(parts);
  m.sub_targets.resize(parts);
  m.boundary_edges.assign(parts, 0);

  // Node -> owner without a per-neighbor binary search: walk the ascending
  // node range once per shard and compare neighbor ids against the shard's
  // own [lo, hi) window, falling back to owner() only for cut neighbors.
  std::vector<std::uint32_t> subs;  // scratch: subscriber shards of one node
  for (int s = 0; s < shards; ++s) {
    const std::size_t lo = m.bounds[static_cast<std::size_t>(s)];
    const std::size_t hi = m.bounds[static_cast<std::size_t>(s) + 1];
    auto& boundary = m.boundary[static_cast<std::size_t>(s)];
    auto& ghosts = m.ghosts[static_cast<std::size_t>(s)];
    auto& offsets = m.sub_offsets[static_cast<std::size_t>(s)];
    auto& targets = m.sub_targets[static_cast<std::size_t>(s)];
    offsets.push_back(0);
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = static_cast<NodeId>(i);
      subs.clear();
      for (const NodeId u : g.neighbors(v)) {
        if (u >= lo && u < hi) continue;  // interior edge
        ++m.boundary_edges[static_cast<std::size_t>(s)];
        ghosts.push_back(u);
        subs.push_back(static_cast<std::uint32_t>(m.owner(u)));
      }
      if (subs.empty()) continue;
      std::sort(subs.begin(), subs.end());
      subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
      boundary.push_back(v);
      targets.insert(targets.end(), subs.begin(), subs.end());
      offsets.push_back(static_cast<std::uint32_t>(targets.size()));
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  }
  // Interior runs: the gaps of [lo, hi) between consecutive boundary nodes.
  m.interior_runs.resize(parts);
  for (std::size_t s = 0; s < parts; ++s) {
    const std::size_t lo = m.bounds[s];
    const std::size_t hi = m.bounds[s + 1];
    auto& runs = m.interior_runs[s];
    std::size_t next = lo;
    for (const NodeId b : m.boundary[s]) {
      if (static_cast<std::size_t>(b) > next)
        runs.push_back(NodeRun{static_cast<NodeId>(next), b});
      next = static_cast<std::size_t>(b) + 1;
    }
    if (hi > next)
      runs.push_back(
          NodeRun{static_cast<NodeId>(next), static_cast<NodeId>(hi)});
  }
  // Ghost runs: sorted ghosts + contiguous ascending ownership ranges mean
  // one walk per shard splits the list into at most one run per peer.
  m.ghost_runs.resize(parts);
  for (std::size_t s = 0; s < parts; ++s) {
    const auto& ghosts = m.ghosts[s];
    auto& runs = m.ghost_runs[s];
    std::size_t i = 0;
    while (i < ghosts.size()) {
      const int peer = m.owner(ghosts[i]);
      const std::size_t peer_hi = m.bounds[static_cast<std::size_t>(peer) + 1];
      std::size_t j = i + 1;
      while (j < ghosts.size() && static_cast<std::size_t>(ghosts[j]) < peer_hi)
        ++j;
      runs.push_back(GhostRun{peer, static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j)});
      i = j;
    }
  }
  std::uint64_t incident = 0;
  for (const std::uint64_t e : m.boundary_edges) incident += e;
  m.cut_edges = incident / 2;  // every cut edge is incident to two shards
  return m;
}

int effective_shard_count(const Graph& g, int requested) {
  DC_CHECK(requested >= 1);
  const std::size_t n = g.num_nodes();
  int k = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(requested),
                            std::max<std::size_t>(n, 1)));
  // Degree-balanced bounds can still leave trailing parts empty when a few
  // heavy nodes absorb the whole weight budget; shrink to the non-empty
  // count and re-balance until stable (k strictly decreases, so this
  // terminates in <= requested iterations).
  for (;;) {
    const auto bounds = degree_balanced_bounds(g, k);
    int nonempty = 0;
    for (int p = 0; p < k; ++p)
      if (bounds[static_cast<std::size_t>(p) + 1] >
          bounds[static_cast<std::size_t>(p)])
        ++nonempty;
    if (nonempty == k || nonempty == 0) return k;
    k = nonempty;
  }
}

}  // namespace deltacolor
