#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace deltacolor {

// Generator fast paths: every builder below knows the structure of the
// edge list it emits (row-major enumeration is lexicographically sorted;
// distinct slots never repeat an edge), and declares it via EdgeListHints
// so the Graph builder can skip normalization, the counting sort, or the
// dedup pass. The hints never change the resulting CSR — only the work
// needed to reach it.

Graph path_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges), kSortedUniqueEdges);
}

Graph cycle_graph(NodeId n) {
  DC_CHECK(n >= 3);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.emplace_back(0, 1);
  edges.emplace_back(0, n - 1);  // the wrap edge, in sorted position
  for (NodeId i = 1; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges), kSortedUniqueEdges);
}

Graph complete_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return Graph(n, std::move(edges), kSortedUniqueEdges);
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b; ++j) edges.emplace_back(i, a + j);
  return Graph(a + b, std::move(edges), kSortedUniqueEdges);
}

Graph star_graph(NodeId leaves) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < leaves; ++i) edges.emplace_back(0, i + 1);
  return Graph(leaves + 1, std::move(edges), kSortedUniqueEdges);
}

Graph torus_grid(NodeId rows, NodeId cols) {
  DC_CHECK(rows >= 3 && cols >= 3);
  auto at = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      const auto right = at(r, (c + 1) % cols);
      const auto down = at((r + 1) % rows, c);
      edges.emplace_back(std::min(at(r, c), right),
                         std::max(at(r, c), right));
      edges.emplace_back(std::min(at(r, c), down),
                         std::max(at(r, c), down));
    }
  }
  return Graph(rows * cols, std::move(edges), kNormalizedUniqueEdges);
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v)
    edges.emplace_back(static_cast<NodeId>(rng.below(v)), v);
  // Each child v appears in exactly one (parent < v) pair.
  return Graph(n, std::move(edges), kNormalizedUniqueEdges);
}

Graph random_graph(NodeId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.chance(p)) edges.emplace_back(i, j);
  return Graph(n, std::move(edges), kSortedUniqueEdges);
}

Graph random_regular(NodeId n, int d, std::uint64_t seed) {
  DC_CHECK(d >= 1 && static_cast<std::uint64_t>(n) * d % 2 == 0);
  DC_CHECK(static_cast<int>(n) > d);
  Rng rng(seed);
  // Pairing (configuration) model: n*d points, random perfect pairing,
  // followed by swap repair of self loops and parallel edges.
  std::vector<NodeId> points(static_cast<std::size_t>(n) * d);
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i] = static_cast<NodeId>(i / d);
  for (std::size_t i = points.size(); i > 1; --i)
    std::swap(points[i - 1], points[rng.below(i)]);

  const std::size_t num_pairs = points.size() / 2;
  auto pair_of = [&](std::size_t k) {
    return std::pair<NodeId, NodeId>(points[2 * k], points[2 * k + 1]);
  };
  auto count_multi = [&]() {
    std::vector<std::pair<NodeId, NodeId>> sorted;
    sorted.reserve(num_pairs);
    for (std::size_t k = 0; k < num_pairs; ++k) {
      auto [a, b] = pair_of(k);
      sorted.emplace_back(std::min(a, b), std::max(a, b));
    }
    std::sort(sorted.begin(), sorted.end());
    std::size_t bad = 0;
    for (std::size_t k = 0; k < sorted.size(); ++k)
      if (sorted[k].first == sorted[k].second ||
          (k > 0 && sorted[k] == sorted[k - 1]))
        ++bad;
    return bad;
  };

  for (int attempt = 0; attempt < 500 && count_multi() > 0; ++attempt) {
    // Swap one endpoint of every currently-bad pair with a random point.
    std::vector<std::pair<NodeId, NodeId>> seen;
    for (std::size_t k = 0; k < num_pairs; ++k) {
      auto [a, b] = pair_of(k);
      const bool self = a == b;
      bool dup = false;
      const auto key = std::pair(std::min(a, b), std::max(a, b));
      if (!self) {
        dup = std::find(seen.begin(), seen.end(), key) != seen.end();
        if (!dup) seen.push_back(key);
      }
      if (self || dup) {
        const std::size_t other = rng.below(points.size());
        std::swap(points[2 * k + 1], points[other]);
      }
    }
  }
  DC_CHECK_MSG(count_multi() == 0,
               "random_regular failed to repair pairing; n=" << n
                                                             << " d=" << d);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_pairs);
  for (std::size_t k = 0; k < num_pairs; ++k) edges.push_back(pair_of(k));
  // count_multi() == 0 certifies the pairing is simple: no pair repeats
  // after normalization, so the builder can skip its dedup pass.
  return Graph(n, std::move(edges), EdgeListHints{false, true, false});
}

// --- number-theory helpers ---------------------------------------------------

int next_prime(int n) {
  auto is_prime = [](int x) {
    if (x < 2) return false;
    for (int d = 2; d * d <= x; ++d)
      if (x % d == 0) return false;
    return true;
  };
  while (!is_prime(n)) ++n;
  return n;
}

std::vector<int> sidon_set(int count) {
  DC_CHECK(count >= 1);
  // Erdos-Turan: for prime p the integers a_i = 2*p*i + (i^2 mod p),
  // i = 0..p-1, have pairwise distinct differences.
  const int p = next_prime(count);
  std::vector<int> a(count);
  for (int i = 0; i < count; ++i) a[i] = 2 * p * i + (i * i) % p;
  return a;
}

int girth_at_most(const Graph& g, int cap) {
  int best = cap + 1;
  std::vector<int> dist(g.num_nodes());
  std::vector<NodeId> parent(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> q;
    dist[s] = 0;
    parent[s] = kNoNode;
    q.push(s);
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      if (2 * dist[x] >= best) break;
      for (const NodeId y : g.neighbors(x)) {
        if (y == parent[x]) continue;
        if (dist[y] == -1) {
          dist[y] = dist[x] + 1;
          parent[y] = x;
          q.push(y);
        } else {
          best = std::min(best, dist[x] + dist[y] + 1);
        }
      }
    }
    if (best <= 3) break;  // girth cannot be smaller
  }
  return best;
}

// --- clique blow-up ----------------------------------------------------------

namespace {

struct Supergraph {
  int side = 0;                       // cliques per side; total 2*side
  std::vector<int> shifts;            // D distinct shifts mod side
};

// Bipartite circulant supergraph: left clique a is linked to right clique
// (a + shift_k) mod side for every shift. Simple and bipartite by
// construction; Sidon shifts additionally exclude 4-cycles.
Supergraph make_supergraph(int requested_cliques, int super_degree,
                           bool need_sidon) {
  Supergraph sg;
  std::vector<int> shifts;
  int min_side = 0;
  if (need_sidon) {
    shifts = sidon_set(super_degree);
    // Differences stay distinct mod m whenever m > 2 * max(shifts).
    min_side = 2 * shifts.back() + 1;
  } else {
    shifts.resize(super_degree);
    std::iota(shifts.begin(), shifts.end(), 0);
    min_side = super_degree;
  }
  sg.side = std::max((requested_cliques + 1) / 2, min_side);
  sg.shifts = std::move(shifts);
  return sg;
}

// One representative vertex per simple cycle of length <= cap found in g
// (deduplicated: each cycle is reported from its minimum vertex only).
// Intended for the low-degree cross subgraph: cost O(n * maxdeg^(cap-1)).
std::vector<NodeId> short_cycle_pivots(const Graph& g, int cap) {
  std::vector<NodeId> pivots;
  std::vector<NodeId> path;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool found = false;
    path.assign(1, v);
    // DFS over simple paths starting at v whose interior vertices are > v.
    auto dfs = [&](auto&& self, NodeId x) -> void {
      if (found) return;
      for (const NodeId y : g.neighbors(x)) {
        if (found) return;
        if (y == v) {
          if (path.size() >= 3) {  // cycle length = path.size()
            found = true;
            return;
          }
          continue;
        }
        if (y < v) continue;
        if (static_cast<int>(path.size()) >= cap) continue;
        if (std::find(path.begin(), path.end(), y) != path.end()) continue;
        path.push_back(y);
        self(self, y);
        path.pop_back();
      }
    };
    dfs(dfs, v);
    if (found) pivots.push_back(v);
  }
  return pivots;
}

}  // namespace

CliqueInstance clique_blowup_instance(const CliqueInstanceOptions& options) {
  const int s = options.clique_size;
  const int delta = options.delta;
  DC_CHECK_MSG(s >= 3 && s <= delta,
               "need 3 <= clique_size <= delta, got s=" << s
                                                        << " delta=" << delta);
  const int e = delta - s + 1;  // cross edges per vertex
  const int super_degree = s * e;
  Rng rng(options.seed);

  const Supergraph sg =
      make_supergraph(options.num_cliques, super_degree, /*need_sidon=*/e > 1);
  const int t = 2 * sg.side;  // total cliques
  const NodeId n = static_cast<NodeId>(t) * static_cast<NodeId>(s);

  CliqueInstance inst;
  inst.delta = delta;
  inst.cliques.resize(t);
  inst.clique_of.assign(n, -1);
  for (int c = 0; c < t; ++c) {
    for (int j = 0; j < s; ++j) {
      const NodeId v = static_cast<NodeId>(c) * s + j;
      inst.cliques[c].push_back(v);
      inst.clique_of[v] = c;
    }
  }

  // Edge ownership: clique c's k-th incident supergraph edge attaches to
  // local vertex owner[c][k]; every local vertex owns exactly e edges.
  //
  // The cross-edge subgraph is bipartite (edges always join a left clique to
  // a right clique), and the Sidon shifts exclude 4-cycles of R, hence
  // 4-cycles of the cross subgraph. The only possible short cycles are
  // 6-cycles arising from 6-cycles of R whose ownership coincides at all six
  // cliques; each such cycle is destroyed by one ownership swap at any of
  // its cliques (possible only when e >= 2). We repair until none remain.
  std::vector<std::vector<int>> owner(t);
  for (int c = 0; c < t; ++c) {
    owner[c].resize(super_degree);
    for (int k = 0; k < super_degree; ++k) owner[c][k] = k / e;
    for (std::size_t i = owner[c].size(); i > 1; --i)
      std::swap(owner[c][i - 1], owner[c][rng.below(i)]);
  }
  // For the repair step we need, per cross edge, the (clique, k) slots on
  // both sides. R-edge (a, k) joins left clique a and right clique
  // side + (a + shift_k) % side; its index in both cliques' owner arrays is
  // k (left) and k (right) — the right clique's incident edges are also
  // naturally indexed by shift index, since each shift contributes exactly
  // one incident edge to each right clique.
  auto vertex_at = [&](int clique, int local) {
    return static_cast<NodeId>(clique) * s + static_cast<NodeId>(local);
  };
  auto build_cross = [&]() {
    std::vector<std::pair<NodeId, NodeId>> ce;
    ce.reserve(static_cast<std::size_t>(sg.side) * super_degree);
    for (int a = 0; a < sg.side; ++a) {
      for (int k = 0; k < super_degree; ++k) {
        const int b = sg.side + (a + sg.shifts[k]) % sg.side;
        ce.emplace_back(vertex_at(a, owner[a][k]), vertex_at(b, owner[b][k]));
      }
    }
    return ce;
  };
  std::vector<std::pair<NodeId, NodeId>> cross_edges = build_cross();
  if (e > 1) {
    const int max_scans = 80;
    for (int scan = 0;; ++scan) {
      DC_CHECK_MSG(scan < max_scans,
                   "clique_blowup_instance: 6-cycle repair did not converge");
      // Cross edges always join a left clique (index < side) to a right
      // clique, so u < v holds and no pair repeats (one edge per R-slot).
      const Graph cross_only(n, cross_edges, kNormalizedUniqueEdges);
      const auto pivots = short_cycle_pivots(cross_only, 6);
      if (pivots.empty()) break;
      for (const NodeId pivot : pivots) {
        // Move one randomly chosen cross edge of the pivot vertex to a
        // different local vertex of the same clique.
        const int c = inst.clique_of[pivot];
        const int local = static_cast<int>(pivot % static_cast<NodeId>(s));
        std::vector<int> owned;  // slots owned by the pivot vertex
        for (int k = 0; k < super_degree; ++k)
          if (owner[c][k] == local) owned.push_back(k);
        DC_CHECK(!owned.empty());
        const int k = owned[rng.below(owned.size())];
        for (;;) {  // swap with a slot owned by a different vertex
          const int k2 = static_cast<int>(rng.below(super_degree));
          if (owner[c][k2] != local) {
            std::swap(owner[c][k], owner[c][k2]);
            break;
          }
        }
      }
      cross_edges = build_cross();
    }
  }

  std::vector<std::pair<NodeId, NodeId>> edges = cross_edges;
  // Intra-clique edges, with one edge removed in easified cliques.
  const int easy_count = static_cast<int>(options.easy_fraction * t);
  inst.easified.assign(t, false);
  {
    std::vector<int> order(t);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    for (int i = 0; i < easy_count; ++i) inst.easified[order[i]] = true;
  }
  for (int c = 0; c < t; ++c) {
    // The removed edge (if any) joins two random distinct local vertices.
    int skip_a = -1, skip_b = -1;
    if (inst.easified[c]) {
      skip_a = static_cast<int>(rng.below(s));
      skip_b = static_cast<int>(rng.below(s - 1));
      if (skip_b >= skip_a) ++skip_b;
      if (skip_a > skip_b) std::swap(skip_a, skip_b);
    }
    for (int i = 0; i < s; ++i) {
      for (int j = i + 1; j < s; ++j) {
        if (i == skip_a && j == skip_b) continue;
        edges.emplace_back(static_cast<NodeId>(c) * s + i,
                           static_cast<NodeId>(c) * s + j);
      }
    }
  }

  // Cross edges are normalized and unique (see the repair loop above);
  // intra edges are emitted with i < j within one clique and never collide
  // with cross edges (which join distinct cliques). The blow-up knows its
  // adjacency structure, so no global sort or dedup is needed.
  inst.graph = Graph(n, std::move(edges), kNormalizedUniqueEdges);
  DC_CHECK(inst.graph.max_degree() == delta);
  if (options.shuffle_ids)
    inst.graph.set_ids(shuffled_ids(n, options.seed ^ 0x5eedULL));
  return inst;
}

CliqueInstance clique_ring(int num_cliques, int clique_size,
                           std::uint64_t seed) {
  DC_CHECK(num_cliques >= 3 && clique_size >= 3);
  const int t = num_cliques;
  const int s = clique_size;
  const NodeId n = static_cast<NodeId>(t) * s;
  CliqueInstance inst;
  inst.delta = s;  // cross-edge endpoints have degree (s-1) + 1 = s
  inst.cliques.resize(t);
  inst.clique_of.assign(n, -1);
  inst.easified.assign(t, true);  // every clique has degree-(<Delta) vertices
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int c = 0; c < t; ++c) {
    for (int i = 0; i < s; ++i) {
      const NodeId v = static_cast<NodeId>(c) * s + i;
      inst.cliques[c].push_back(v);
      inst.clique_of[v] = c;
      for (int j = i + 1; j < s; ++j)
        edges.emplace_back(v, static_cast<NodeId>(c) * s + j);
    }
    // Local vertex 0 links forward to local vertex 1 of the next clique.
    const NodeId u = static_cast<NodeId>(c) * s;
    const NodeId w = static_cast<NodeId>((c + 1) % t) * s + 1;
    edges.emplace_back(std::min(u, w), std::max(u, w));
  }
  inst.graph = Graph(n, std::move(edges), kNormalizedUniqueEdges);
  DC_CHECK(inst.graph.max_degree() == s);
  inst.graph.set_ids(shuffled_ids(n, seed));
  return inst;
}

}  // namespace deltacolor
