// Lazy graph views: uniform read-only access to the host graph and to the
// derived graphs the paper's subroutines run on (induced subgraphs, power
// graphs G^r, line graphs), without materializing edge sets.
//
// The GraphView concept is the contract every view-generic subroutine
// (linial_reduce, kw_reduce, schedule_coloring, ruling_set, SyncRunner)
// compiles against:
//
//   num_nodes()              node count of the view
//   degree(v) / max_degree() degrees *in the view*
//   id(v)                    unique LOCAL identifier of view node v
//   for_each_neighbor(v, fn) fn(u) for every view-neighbor u of v,
//                            each exactly once, u != v
//   dilation()               real communication rounds needed to simulate
//                            one synchronous round of the view on the host
//                            network (1 for the host and induced subgraphs,
//                            r for G^r, 2 for the line graph)
//
// A host Graph models the concept itself (dilation 1), so subroutines take
// "const ViewT&" and run unchanged on real and virtual graphs. Laziness
// means no view stores an adjacency structure: neighbor enumeration walks
// the host CSR on demand (induced/line views) or runs a bounded BFS
// (power view). Construction is O(n) memory for the node-indexed arrays
// (mappings, exact degrees) — never O(edges-of-the-view).
//
// The eager materializers in graph/subgraph.hpp (induced_subgraph,
// power_graph, line_graph) survive as test oracles: tests assert that each
// view enumerates exactly the materialized adjacency.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

namespace detail {
struct NeighborProbe {
  void operator()(NodeId) const {}
};
}  // namespace detail

template <typename G>
concept GraphView =
    requires(const G& g, NodeId v, detail::NeighborProbe probe) {
      { g.num_nodes() } -> std::convertible_to<NodeId>;
      { g.degree(v) } -> std::convertible_to<int>;
      { g.max_degree() } -> std::convertible_to<int>;
      { g.id(v) } -> std::convertible_to<std::uint64_t>;
      { g.dilation() } -> std::convertible_to<int>;
      g.for_each_neighbor(v, probe);
    };

static_assert(GraphView<Graph>);

/// View of the subgraph induced by a node set. Nodes are re-indexed
/// 0..k-1 in ascending host order (the same mapping induced_subgraph()
/// produces, so schedules computed on the view are interchangeable with
/// the materialized oracle). Identifiers are inherited from the host.
class InducedSubgraphView {
 public:
  /// `nodes` need not be sorted or unique. O(n + sum of host degrees).
  InducedSubgraphView(const Graph& host, const std::vector<NodeId>& nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(orig_of_.size()); }
  int degree(NodeId i) const { return degree_[i]; }
  int max_degree() const { return max_degree_; }
  std::uint64_t id(NodeId i) const { return host_->id(orig_of_[i]); }
  static constexpr int dilation() { return 1; }

  /// View node -> host node (ascending in the view index).
  NodeId orig_of(NodeId i) const { return orig_of_[i]; }
  /// Host node -> view node, kNoNode if the host node is not in the view.
  NodeId sub_of(NodeId host_v) const { return sub_of_[host_v]; }

  template <typename Fn>
  void for_each_neighbor(NodeId i, Fn&& fn) const {
    for (const NodeId u : host_->neighbors(orig_of_[i])) {
      const NodeId j = sub_of_[u];
      if (j != kNoNode) fn(j);
    }
  }

 private:
  const Graph* host_;
  std::vector<NodeId> orig_of_;  // sorted ascending, unique
  std::vector<NodeId> sub_of_;   // size host n
  std::vector<int> degree_;      // exact view degrees
  int max_degree_ = 0;
};

static_assert(GraphView<InducedSubgraphView>);

/// View of the power graph G^r: same nodes as the host, u ~ v iff
/// 0 < dist_G(u, v) <= r. Neighbor enumeration is a depth-r BFS from the
/// query node (no edges are stored); exact view degrees are precomputed at
/// construction. One G^r round costs r host rounds, so dilation() == r.
class PowerGraphView {
 public:
  PowerGraphView(const Graph& host, int radius);

  NodeId num_nodes() const { return host_->num_nodes(); }
  int degree(NodeId v) const { return degree_[v]; }
  int max_degree() const { return max_degree_; }
  std::uint64_t id(NodeId v) const { return host_->id(v); }
  int dilation() const { return radius_; }
  int radius() const { return radius_; }

  /// BFS order; each ball member enumerated exactly once, source excluded.
  template <typename Fn>
  void for_each_neighbor(NodeId s, Fn&& fn) const {
    // Per-thread scratch so concurrent engine workers do not collide; the
    // touched-list reset keeps a query O(ball size), not O(n).
    thread_local std::vector<int> dist;
    thread_local std::vector<NodeId> queue;
    thread_local std::vector<NodeId> touched;
    if (dist.size() < host_->num_nodes())
      dist.assign(host_->num_nodes(), -1);
    queue.clear();
    touched.clear();
    dist[s] = 0;
    touched.push_back(s);
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      if (dist[x] >= radius_) continue;
      for (const NodeId y : host_->neighbors(x)) {
        if (dist[y] != -1) continue;
        dist[y] = dist[x] + 1;
        touched.push_back(y);
        queue.push_back(y);
        fn(y);
      }
    }
    for (const NodeId t : touched) dist[t] = -1;
  }

 private:
  const Graph* host_;
  int radius_;
  std::vector<int> degree_;  // exact ball sizes minus one
  int max_degree_ = 0;
};

static_assert(GraphView<PowerGraphView>);

/// View of the line graph L(G): one node per host EdgeId, adjacency iff
/// the edges share an endpoint. Identifiers match line_graph()'s encoding
/// of the endpoint identifier pair. max_degree() is the structural bound
/// 2*Delta(G) - 2 — computable without communication and the bound the
/// paper's dilation arguments (and the pre-existing edge-coloring palette
/// arithmetic) use; per-node degree(e) is exact. One line-graph round
/// dilates to 2 host rounds (the endpoints sync the edge state over the
/// edge), so dilation() == 2.
class LineGraphView {
 public:
  explicit LineGraphView(const Graph& host) : host_(&host) {}

  NodeId num_nodes() const { return static_cast<NodeId>(host_->num_edges()); }
  int degree(NodeId e) const {
    const auto [u, v] = host_->endpoints(static_cast<EdgeId>(e));
    return host_->degree(u) + host_->degree(v) - 2;
  }
  int max_degree() const { return std::max(0, 2 * host_->max_degree() - 2); }
  std::uint64_t id(NodeId e) const {
    const auto [u, v] = host_->endpoints(static_cast<EdgeId>(e));
    const std::uint64_t a = std::min(host_->id(u), host_->id(v));
    const std::uint64_t b = std::max(host_->id(u), host_->id(v));
    return a * (2 * static_cast<std::uint64_t>(host_->num_nodes()) + 1) + b;
  }
  static constexpr int dilation() { return 2; }

  /// Incident edges at both endpoints, excluding e itself. In a simple
  /// graph no other edge shares both endpoints, so each neighbor appears
  /// exactly once.
  template <typename Fn>
  void for_each_neighbor(NodeId e, Fn&& fn) const {
    const auto [u, v] = host_->endpoints(static_cast<EdgeId>(e));
    for (const EdgeId f : host_->incident_edges(u))
      if (f != static_cast<EdgeId>(e)) fn(static_cast<NodeId>(f));
    for (const EdgeId f : host_->incident_edges(v))
      if (f != static_cast<EdgeId>(e)) fn(static_cast<NodeId>(f));
  }

 private:
  const Graph* host_;
};

static_assert(GraphView<LineGraphView>);

}  // namespace deltacolor
