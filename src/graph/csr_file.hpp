// Versioned on-disk CSR container (".dcsr") with a zero-copy mmap loader.
//
// The file is the Graph's five arrays written verbatim in little-endian
// with a fixed header in front:
//
//   +--------------------+----------------+----------------+...
//   | header (168 bytes, | offsets        | adjacency      |
//   | zero-padded to 192)| u64 x (n+1)    | u32 x 2m       |
//   +--------------------+----------------+----------------+...
//      ...+----------------+----------------+----------------+
//         | arc_edge       | edges          | ids            |
//         | u32 x 2m       | (u32,u32) x m  | u64 x n        |
//      ...+----------------+----------------+----------------+
//
// Every section starts on a 64-byte boundary (cache-line / vector-load
// friendly once mapped) and carries an FNV-1a-64 checksum in the header's
// section table; the header itself is checksummed with its checksum field
// zeroed. Loading mmap's the file read-only and adopts the section
// pointers directly via Graph::from_external — no bytes are copied, so a
// coloring run over a mapped graph touches only the pages its access
// pattern actually reads (offsets + adjacency + ids for node algorithms;
// the edges/arc sections stay cold on disk).
//
// Versioning rules: `version` bumps on any layout change; readers reject
// versions they don't know. `header_bytes` lets a newer writer grow the
// header tail without breaking older readers of the same version (readers
// only require header_bytes >= sizeof(CsrFileHeader)). Section order and
// element encodings are frozen per version. All integers little-endian;
// the loader refuses to run on big-endian hosts rather than byte-swap.
//
// Checksum verification on load is lazy by default (CsrVerify::kAuto):
// verifying a section faults in all of its pages, which would defeat the
// point of mapping a 20 GB file, so kAuto verifies sections only when the
// file is at most kAutoVerifyLimit bytes. The header is always verified.
// DELTACOLOR_CSR_VERIFY=always|never|auto overrides the caller's choice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace deltacolor {

// The bytes "DCSRGRPH" read as a little-endian u64.
inline constexpr std::uint64_t kCsrMagic = 0x4850524752534344ull;
inline constexpr std::uint32_t kCsrVersion = 1;
inline constexpr std::size_t kCsrSectionAlign = 64;
/// kAuto verifies section checksums only up to this file size.
inline constexpr std::uint64_t kAutoVerifyLimit = 256ull << 20;

/// Section indices in the header's section table.
enum CsrSectionId : int {
  kSecOffsets = 0,
  kSecAdjacency = 1,
  kSecArcEdge = 2,
  kSecEdges = 3,
  kSecIds = 4,
  kNumSections = 5,
};

struct CsrSection {
  std::uint64_t offset = 0;    // absolute byte offset in the file
  std::uint64_t bytes = 0;     // section payload length
  std::uint64_t checksum = 0;  // FNV-1a-64 over the payload
};

struct CsrFileHeader {
  std::uint64_t magic = kCsrMagic;
  std::uint32_t version = kCsrVersion;
  std::uint32_t header_bytes = 0;  // sizeof(CsrFileHeader) at write time
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t max_degree = 0;
  std::uint32_t flags = 0;  // reserved, must be 0 in version 1
  CsrSection sections[kNumSections];
  std::uint64_t header_checksum = 0;  // FNV-1a-64, this field zeroed
};
static_assert(sizeof(CsrFileHeader) == 168, "on-disk header layout is frozen");

/// What went wrong, machine-readable (tests assert on the kind; the
/// message is the structured one-line human rendering).
enum class CsrErrorKind {
  kOpen,        // open/stat/mmap/write syscall failure
  kShortHeader, // file smaller than the fixed header
  kBadMagic,    // not a .dcsr file
  kBadVersion,  // a version this reader does not understand
  kBadHeader,   // header checksum mismatch or inconsistent geometry
  kTruncated,   // sections extend past the end of the file
  kChecksum,    // a section checksum mismatch
};

class CsrError : public std::runtime_error {
 public:
  CsrError(CsrErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  CsrErrorKind kind() const { return kind_; }

 private:
  CsrErrorKind kind_;
};

enum class CsrVerify { kAuto, kAlways, kNever };

struct CsrLoadOptions {
  CsrVerify verify = CsrVerify::kAuto;
};

/// RAII mmap of a whole file (read-only). Exposed so tests and tools can
/// hold mappings directly; load_csr_file wraps one as the Graph's storage.
class CsrMapping {
 public:
  /// Maps `path` read-only; throws CsrError(kOpen) on failure.
  explicit CsrMapping(const std::string& path);
  ~CsrMapping();
  CsrMapping(const CsrMapping&) = delete;
  CsrMapping& operator=(const CsrMapping&) = delete;

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Header + derived facts without mapping the payload (reads the first
/// 168 bytes only). Throws CsrError on anything malformed.
struct CsrFileInfo {
  CsrFileHeader header;
  std::uint64_t file_bytes = 0;
};
CsrFileInfo peek_csr_file(const std::string& path);

/// True when `path` exists, is readable, and starts with the CSR magic.
/// Never throws — any failure is "not a CSR file".
bool is_csr_file(const std::string& path);

/// Zero-copy load: validates the header (always) and section checksums
/// (per options/DELTACOLOR_CSR_VERIFY), then adopts the mapped sections.
/// The returned Graph keeps the mapping alive; copies share it.
Graph load_csr_file(const std::string& path,
                    const CsrLoadOptions& options = {});

/// Serializes an in-memory Graph to `path` (atomic: writes path + ".tmp"
/// then renames). Throws CsrError(kOpen) on I/O failure.
void write_csr_file(const std::string& path, const Graph& g);

/// A rewindable stream of undirected edges for the external builder.
/// Implementations may emit pairs in any orientation/order and may repeat
/// edges; the builder normalizes, sorts, and deduplicates — exactly like
/// the in-memory counting-sort builder. rewind() must restart the exact
/// same sequence.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;
  virtual void rewind() = 0;
  /// Fills out[0..cap) with up to cap edges; returns how many were
  /// produced, 0 when exhausted.
  virtual std::size_t next(std::pair<NodeId, NodeId>* out,
                           std::size_t cap) = 0;
};

struct CsrBuildStats {
  std::uint64_t input_edges = 0;   // pairs read from the source
  std::uint64_t unique_edges = 0;  // m after normalize+dedup
  std::uint64_t file_bytes = 0;
  int max_degree = 0;
};

/// External-memory CSR build: streams `source` twice (histogram, then
/// scatter into an mmap'd scratch bucket file next to `out_path`), sorts
/// and dedups each node's bucket in place, and materializes the .dcsr
/// sections straight into the mmap'd output file — the full edge list is
/// never resident in RAM. Identifiers are written as identity. The
/// resulting file is bit-identical to write_csr_file(Graph(n, edges))
/// for the same edge multiset. Throws CsrError on I/O failure and
/// DC_CHECKs on malformed edges (self loops, endpoints >= num_nodes).
CsrBuildStats build_csr_file(EdgeSource& source, NodeId num_nodes,
                             const std::string& out_path);

/// FNV-1a-64 (the section checksum primitive; exposed for tests).
std::uint64_t csr_checksum(const void* data, std::size_t bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace deltacolor
