// Vertex partitioner and shard manifest for the sharded execution backend.
//
// A shard split assigns every node to exactly one of `parts` contiguous
// ranges whose (deg + 1)-weight sums are balanced — the same weighting the
// engine's stable worker chunks use (sync_runner.hpp), shared here so one
// definition serves both. On top of the ranges, ShardManifest precomputes
// the halo-exchange tables a multi-process run needs at every round
// barrier:
//
//   boundary[s]  owned nodes of shard s with at least one neighbor owned
//                elsewhere — the only nodes whose state anyone else ever
//                needs (ascending, so workers can emit changed-state
//                records in a single ordered boundary scan);
//   ghosts[s]    nodes owned elsewhere that some node of shard s reads —
//                the slots a worker refreshes from incoming records each
//                barrier (ascending, deduplicated);
//   subscriber CSR  for boundary[s][i], the sorted shard ids that ghost
//                that node; the coordinator routes a changed-state record
//                to exactly these shards, so exchange volume is the cut,
//                not the graph.
//
// Everything is a pure function of (degree sequence, adjacency, parts):
// manifests are deterministic, and a 1-shard manifest has empty boundary /
// ghost tables (the whole graph is interior).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

/// Degree-balanced contiguous bounds over [0, n): part p owns nodes
/// [bounds[p], bounds[p+1]) whose (deg + 1)-weight sums to ~1/parts of the
/// total (2m + n). Boundaries round up to `align`-node groups (the engine
/// uses 64 so a cache line of word-sized state never straddles workers;
/// shard manifests use 1 — pure balance). Parts may exceed n; trailing
/// parts are then empty. O(n).
template <typename GraphT>
std::vector<std::size_t> degree_balanced_bounds(const GraphT& g, int parts,
                                                std::size_t align = 1) {
  DC_CHECK(parts >= 1);
  DC_CHECK(align >= 1);
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1, n);
  bounds[0] = 0;
  const std::uint64_t total = 2ull * g.num_edges() + n;  // sum of deg(v) + 1
  std::uint64_t seen = 0;
  std::size_t v = 0;
  for (int p = 1; p < parts; ++p) {
    const std::uint64_t target = total * static_cast<std::uint64_t>(p) /
                                 static_cast<std::uint64_t>(parts);
    while (v < n && seen < target) {
      seen += static_cast<std::uint64_t>(g.degree(static_cast<NodeId>(v))) + 1;
      ++v;
    }
    const std::size_t aligned = std::min(n, (v + align - 1) / align * align);
    while (v < aligned) {
      seen += static_cast<std::uint64_t>(g.degree(static_cast<NodeId>(v))) + 1;
      ++v;
    }
    bounds[static_cast<std::size_t>(p)] = v;
  }
  return bounds;
}

/// A maximal contiguous range of nodes, [begin, end). ShardManifest uses
/// runs to describe each shard's interior (owned nodes with no off-shard
/// neighbor) so workers can schedule boundary nodes first and sweep the
/// interior as a handful of dense ranges afterwards.
struct NodeRun {
  NodeId begin = 0;
  NodeId end = 0;
};

/// A maximal run of one shard's ghost list owned by a single peer shard:
/// ghosts[s][begin..end) all live in `peer`'s contiguous ownership range.
/// Because ownership ranges are contiguous and ascending, a sorted ghost
/// list splits into at most one run per peer — each run is one slab a
/// worker reads from the shared halo plane per round.
struct GhostRun {
  int peer = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// The static halo-exchange tables for one (graph, shard count) pair. Host
/// graphs only: lazy views have no cheap global edge scan, and the proc
/// backend runs host-graph stages anyway (everything else stays in-process).
struct ShardManifest {
  /// Contiguous ownership ranges: shard s owns [bounds[s], bounds[s+1]).
  std::vector<std::size_t> bounds;
  /// Per shard: owned nodes with an off-shard neighbor, ascending.
  std::vector<std::vector<NodeId>> boundary;
  /// Per shard: maximal contiguous runs of owned non-boundary nodes,
  /// ascending and disjoint. boundary[s] and interior_runs[s] together
  /// cover exactly [bounds[s], bounds[s+1]) — the boundary-first schedule:
  /// a worker steps boundary[s], publishes its halo slab, then sweeps the
  /// interior runs while peers already consume the slab.
  std::vector<std::vector<NodeRun>> interior_runs;
  /// Per shard: off-shard nodes read by this shard, ascending, unique.
  std::vector<std::vector<NodeId>> ghosts;
  /// Per shard: ghosts[s] partitioned into per-owner runs, ascending by
  /// peer — a worker's per-round read set over the peers' halo slabs.
  std::vector<std::vector<GhostRun>> ghost_runs;
  /// Subscriber CSR aligned with boundary[s]: the shards ghosting
  /// boundary[s][i] are sub_targets[s][sub_offsets[s][i] ..
  /// sub_offsets[s][i+1]), sorted ascending.
  std::vector<std::vector<std::uint32_t>> sub_offsets;
  std::vector<std::vector<std::uint32_t>> sub_targets;
  /// Per shard: edges with exactly one endpoint in the shard. Sums to
  /// 2 * cut_edges across shards.
  std::vector<std::uint64_t> boundary_edges;
  /// Edges whose endpoints live in different shards, each counted once.
  std::uint64_t cut_edges = 0;

  int num_shards() const { return static_cast<int>(bounds.size()) - 1; }
  std::size_t shard_size(int s) const {
    return bounds[static_cast<std::size_t>(s) + 1] -
           bounds[static_cast<std::size_t>(s)];
  }
  /// Owning shard of `v` (binary search over the contiguous bounds).
  int owner(NodeId v) const;

  /// Builds the manifest for `shards` degree-balanced contiguous ranges.
  static ShardManifest build(const Graph& g, int shards);
};

/// Largest shard count <= `requested` for which every shard owns at least
/// one node of `g` under degree-balanced bounds. Forking workers for empty
/// shards wastes processes and skews accounting, so callers clamp before
/// building a manifest. Always >= 1 (an empty graph still gets one shard).
int effective_shard_count(const Graph& g, int requested);

}  // namespace deltacolor
