// Plain-text graph serialization: a header line "n m" followed by one "u v"
// line per edge, plus Graphviz export for small illustrations.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace deltacolor {

void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

/// Graphviz "graph { .. }" output; nodes can carry color labels.
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<Color>* colors = nullptr);

}  // namespace deltacolor
