// Derived graphs: induced subgraphs (with node maps), power graphs, and the
// line graph. These back the paper's virtual-graph constructions and the
// class-greedy primitives.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace deltacolor {

/// An induced subgraph together with the mapping to/from the host graph.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> orig_of;  ///< sub node -> host node
  std::vector<NodeId> sub_of;   ///< host node -> sub node (kNoNode if absent)
};

/// Subgraph of `g` induced by `nodes` (need not be sorted/unique).
/// Identifiers are inherited from the host graph.
Subgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Power graph G^r: same nodes, edge between u != v iff dist_G(u, v) <= r.
/// Intended for small r on bounded-degree graphs (used by ruling sets).
Graph power_graph(const Graph& g, int r);

/// The line graph L(G): one node per edge of g, adjacency iff the edges
/// share an endpoint. Node i of the line graph corresponds to EdgeId i.
/// Identifiers are derived from endpoint identifiers (unique per edge).
Graph line_graph(const Graph& g);

/// Connected components: returns component index per node and the count.
struct Components {
  std::vector<int> component_of;  ///< per node
  int count = 0;
};
Components connected_components(const Graph& g);

/// Nodes of one component.
std::vector<std::vector<NodeId>> component_node_lists(const Components& c);

}  // namespace deltacolor
