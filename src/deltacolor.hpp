// Umbrella header: the public API of the deltacolor library.
//
// deltacolor is a LOCAL-model implementation of
//   "Towards Optimal Distributed Delta Coloring" (Jakob & Maus, PODC 2025):
// a deterministic min{O~(log^{5/3} n), O(Delta + log n)}-round and a
// randomized min{O~(log^{5/3} log n), O(Delta + log log n)}-round
// Delta-coloring algorithm for dense graphs, together with every substrate
// they rely on (ACD, loophole detection, maximal matching, hyperedge
// grabbing, degree splitting, deg+1-list coloring, ruling sets) and
// baselines (centralized Brooks, distributed greedy Delta+1, layered
// loophole coloring).
//
// Entry points:
//   delta_color_dense()        — Theorem 1 (deterministic)
//   randomized_delta_color()   — Theorem 2 (randomized)
//   brooks_coloring()          — centralized ground truth
#pragma once

#include "acd/acd.hpp"
#include "baselines/baselines.hpp"
#include "baselines/brooks.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/delta_coloring.hpp"
#include "core/easy_coloring.hpp"
#include "core/hard_coloring.hpp"
#include "core/hardness.hpp"
#include "core/loopholes.hpp"
#include "graph/checker.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"
#include "common/thread_pool.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"
#include "local/message_passing.hpp"
#include "local/sync_runner.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/degree_splitting.hpp"
#include "primitives/forest_coloring.hpp"
#include "primitives/heg.hpp"
#include "primitives/linial.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/maximal_matching.hpp"
#include "primitives/mis.hpp"
#include "primitives/ruling_set.hpp"
#include "randomized/randomized_coloring.hpp"
#include "registry/registry.hpp"
