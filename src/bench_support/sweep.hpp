// Concurrent sweep driver for the experiment suite.
//
// A bench is a grid of independent *cells* — (instance, algorithm, seed)
// points — whose results go into a table in grid order. SweepDriver runs
// the cells concurrently on the process-wide ThreadPool and returns the
// rows index-addressed, so output order (and content: every cell is
// seed-deterministic) is identical to the serial loop it replaces.
//
// Determinism and accounting rules (see DESIGN.md §sweep-driver):
//  * Cells are claimed dynamically (atomic counter) for load balance, but
//    each cell writes only rows[i] / ledgers[i]; after the pool joins, the
//    per-cell ledgers are merged in cell-index order. Round counts are
//    schedule-independent; wall-clock phases are measurement metadata.
//  * The engine handed to cells depends on the sweep shape: with a single
//    sweep worker, cells receive the caller's EngineOptions unchanged (the
//    cell itself may parallelize rounds); with multiple sweep workers,
//    cells are forced to num_threads = 1, because ThreadPool::for_range is
//    not reentrant — a cell stepping rounds on the pool that is running the
//    sweep would deadlock-check. One layer parallelizes, never both.
//    Always route the engine through CellContext::engine().
//  * A throwing cell does not tear down the pool: exceptions are captured
//    per cell and the lowest-index one is rethrown after the sweep joins,
//    matching the serial loop's failure order.
//  * Sweep workers resolve like engine workers: explicit SweepOptions >
//    --threads / DELTACOLOR_THREADS (ThreadPool::default_workers()).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/instance_cache.hpp"
#include "common/thread_pool.hpp"
#include "local/ledger.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor::bench {

struct SweepOptions {
  /// Concurrent cells. <= 0 means ThreadPool::default_workers().
  int workers = 0;
  /// Engine options cells receive when the sweep itself is serial.
  EngineOptions cell_engine;
};

/// Per-cell view handed to the cell function.
class CellContext {
 public:
  /// This cell's private ledger. Merged into SweepDriver::ledger() in
  /// cell-index order after the sweep; also the ledger to pass to
  /// InstanceCache so a cache miss charges its "graph-build" phase here.
  RoundLedger& ledger() { return ledger_; }

  /// Engine options for every algorithm run inside this cell (serial when
  /// the sweep is parallel — see header comment).
  EngineOptions engine() const { return engine_; }

  /// Sweep worker executing this cell (0 when serial).
  int worker() const { return worker_; }

 private:
  friend class SweepDriver;
  CellContext(RoundLedger& ledger, EngineOptions engine, int worker)
      : ledger_(ledger), engine_(engine), worker_(worker) {}

  RoundLedger& ledger_;
  EngineOptions engine_;
  int worker_;
};

class SweepDriver {
 public:
  explicit SweepDriver(SweepOptions options = {}) : options_(options) {}

  /// Runs fn(i, ctx) for every cell i in [0, num_cells) and returns the
  /// rows in cell-index order. Row must be default-constructible.
  template <typename Row, typename Fn>
  std::vector<Row> run(std::size_t num_cells, Fn&& fn) {
    std::vector<Row> rows(num_cells);
    std::vector<RoundLedger> ledgers(num_cells);
    const auto cache_before = InstanceCache::global().stats();
    const double start_ms = steady_ms();

    int workers = options_.workers > 0 ? options_.workers
                                       : ThreadPool::default_workers();
    if (static_cast<std::size_t>(workers) > num_cells)
      workers = static_cast<int>(num_cells == 0 ? 1 : num_cells);

    // Each cell's wall-clock lands in its ledger's "cell" phase, minus
    // whatever a cache miss charged to "graph-build" inside the cell, so
    // instance generation and algorithm time stay separate phases.
    const auto timed_cell = [&](std::size_t i, CellContext& ctx) {
      const double build_before = ledgers[i].phase_time("graph-build");
      const double cell_start = steady_ms();
      rows[i] = fn(i, ctx);
      const double elapsed = steady_ms() - cell_start;
      const double built =
          ledgers[i].phase_time("graph-build") - build_before;
      ledgers[i].charge_time("cell", elapsed - built);
    };

    if (workers <= 1) {
      for (std::size_t i = 0; i < num_cells; ++i) {
        CellContext ctx(ledgers[i], options_.cell_engine, 0);
        timed_cell(i, ctx);
      }
    } else {
      // One pool slot per sweep worker; inside a slot, cells are claimed
      // off a shared counter so a slow cell does not idle the other
      // workers. Cell i only ever writes rows[i] / ledgers[i] / errors[i].
      const EngineOptions serial{1, options_.cell_engine.frontier};
      std::vector<std::exception_ptr> errors(num_cells);
      std::atomic<std::size_t> next{0};
      ThreadPool::shared(workers).for_range(
          0, static_cast<std::size_t>(workers),
          [&](int worker, std::size_t, std::size_t) {
            for (;;) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= num_cells) break;
              CellContext ctx(ledgers[i], serial, worker);
              try {
                timed_cell(i, ctx);
              } catch (...) {
                errors[i] = std::current_exception();
              }
            }
          });
      for (auto& error : errors)
        if (error) std::rethrow_exception(error);
    }

    wall_ms_ = steady_ms() - start_ms;
    cells_ = num_cells;
    workers_used_ = workers;
    ledger_.clear();
    for (const auto& ledger : ledgers) ledger_.merge(ledger);
    const auto cache_after = InstanceCache::global().stats();
    cache_hits_ = cache_after.hits - cache_before.hits;
    cache_misses_ = cache_after.misses - cache_before.misses;
    return rows;
  }

  /// Per-cell ledgers of the last run, merged in cell-index order.
  const RoundLedger& ledger() const { return ledger_; }

  /// Wall-clock of the last run (pool dispatch to join), milliseconds.
  double wall_ms() const { return wall_ms_; }

  /// One "SWEEP ..." summary line for the last run: cell/worker counts,
  /// wall-clock, instance-cache hit/miss delta, and graph-build ms.
  std::string report() const;

 private:
  static double steady_ms();

  SweepOptions options_;
  RoundLedger ledger_;
  double wall_ms_ = 0;
  std::size_t cells_ = 0;
  int workers_used_ = 1;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
};

}  // namespace deltacolor::bench
