// Concurrent sweep driver for the experiment suite.
//
// A bench is a grid of independent *cells* — (instance, algorithm, seed)
// points — whose results go into a table in grid order. SweepDriver runs
// the cells concurrently on the process-wide ThreadPool and returns the
// rows index-addressed, so output order (and content: every cell is
// seed-deterministic) is identical to the serial loop it replaces.
//
// Determinism and accounting rules (see DESIGN.md §sweep-driver):
//  * Cells are claimed dynamically (atomic counter) for load balance, but
//    each cell writes only rows[i] / ledgers[i]; after the pool joins, the
//    per-cell ledgers are merged in cell-index order. Round counts are
//    schedule-independent; wall-clock phases are measurement metadata.
//  * The engine handed to cells depends on the sweep shape: with a single
//    sweep worker, cells receive the caller's EngineOptions unchanged (the
//    cell itself may parallelize rounds); with multiple sweep workers,
//    cells are forced to num_threads = 1, because ThreadPool::for_range is
//    not reentrant — a cell stepping rounds on the pool that is running the
//    sweep would deadlock-check. One layer parallelizes, never both.
//    Always route the engine through CellContext::engine().
//  * A throwing cell does not tear down the pool: exceptions are captured
//    per cell and the lowest-index one is rethrown after the sweep joins,
//    matching the serial loop's failure order. That all-or-nothing default
//    is the *legacy* policy; see the robustness layer below.
//
// Robustness layer (see DESIGN.md §fault-tolerance): SweepOptions::retry
// configures per-cell round budgets, wall-clock deadlines, arena byte
// limits, bounded retry with seed perturbation, and quarantine. With
// quarantine enabled a persistently failing cell keeps its default row,
// its CellOutcome records status/category/error, and every other cell's
// row survives — partial-result tables instead of a torn-down sweep. A
// SweepJournal checkpoints each finished cell (JSONL, keyed by the
// caller's key_fn: instance-cache key + algorithm + seed) so a killed
// sweep resumes from completed cells. Everything is off by default and
// env-configurable (sweep_options_from_env), so fault-free default runs
// stay bit-identical to the pre-robustness driver.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/instance_cache.hpp"
#include "bench_support/journal.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "local/faults.hpp"
#include "local/ledger.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor::bench {

/// Per-cell failure-handling policy. The default is the legacy contract:
/// one attempt, no budgets, failures rethrow (lowest cell index first).
struct RetryPolicy {
  /// Attempts per cell (>= 1). Retries re-run the cell with the same
  /// inputs; randomized cells draw a perturbed seed via
  /// CellContext::seed_for, faithful to the w.h.p. semantics (a failed
  /// trial re-runs with fresh randomness). Each retry charges one round
  /// to the cell's "retry" phase.
  int max_attempts = 1;
  /// Max simulated rounds one attempt may charge (ledger total delta);
  /// 0 = unlimited. Exceeding it fails the attempt with
  /// kRoundBudgetExceeded.
  std::int64_t round_budget = 0;
  /// Max wall-clock per attempt, milliseconds; 0 = unlimited. Exceeding it
  /// fails the attempt with kWallClockTimeout.
  double deadline_ms = 0;
  /// ScratchArena byte budget installed on the cell thread for the
  /// attempt; 0 = unlimited. (Covers the cell thread's arena — i.e. the
  /// whole cell under a parallel sweep, where cell engines are serial.)
  std::size_t arena_limit_bytes = 0;
  /// After max_attempts failures: true = quarantine the cell (default row,
  /// status recorded, other cells unaffected); false = legacy rethrow.
  bool quarantine = false;

  bool is_default() const {
    return max_attempts <= 1 && round_budget == 0 && deadline_ms == 0 &&
           arena_limit_bytes == 0 && !quarantine;
  }
};

struct SweepOptions {
  /// Concurrent cells. <= 0 means ThreadPool::default_workers().
  int workers = 0;
  /// Engine options cells receive when the sweep itself is serial.
  EngineOptions cell_engine;
  /// Failure handling (budgets, retry, quarantine). Default = legacy.
  RetryPolicy retry;
  /// Optional checkpoint journal (shared so env-built options can be
  /// copied into several drivers of one binary).
  std::shared_ptr<SweepJournal> journal;
};

/// Overlays DELTACOLOR_SWEEP_* environment variables on `base`, so every
/// bench binary is retry/journal-capable without per-binary flags:
///   DELTACOLOR_SWEEP_RETRIES      max attempts per cell
///   DELTACOLOR_SWEEP_ROUND_BUDGET per-attempt simulated-round budget
///   DELTACOLOR_SWEEP_DEADLINE_MS  per-attempt wall-clock deadline
///   DELTACOLOR_SWEEP_ARENA_LIMIT  per-cell scratch-arena byte budget
///   DELTACOLOR_SWEEP_QUARANTINE   1 = quarantine instead of rethrow
///   DELTACOLOR_SWEEP_JOURNAL      JSONL journal path
///   DELTACOLOR_SWEEP_RESUME      1 = load the journal and skip done cells
SweepOptions sweep_options_from_env(SweepOptions base = {});

/// Terminal record of one cell. `category`/`error` are meaningful only
/// when status is kQuarantined.
struct CellOutcome {
  CellStatus status = CellStatus::kOk;
  int attempts = 1;
  bool resumed = false;  ///< row served from the journal, not executed
  FaultCategory category = FaultCategory::kEngineException;
  std::string error;
};

/// Row serialization for journal checkpointing. Encode may use any
/// line-safe format (the journal JSON-escapes it); decode returns false on
/// a foreign/stale payload, which simply re-runs the cell.
template <typename Row>
struct CellCodec {
  std::function<std::string(const Row&)> encode;
  std::function<bool(std::string_view, Row*)> decode;
};

template <typename Row>
struct SweepResult {
  std::vector<Row> rows;
  std::vector<CellOutcome> outcomes;

  bool all_ok() const {
    return std::all_of(outcomes.begin(), outcomes.end(),
                       [](const CellOutcome& oc) {
                         return oc.status != CellStatus::kQuarantined;
                       });
  }
  std::size_t quarantined() const {
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const CellOutcome& oc) {
                        return oc.status == CellStatus::kQuarantined;
                      }));
  }
};

/// Per-cell view handed to the cell function.
class CellContext {
 public:
  /// This cell's private ledger. Merged into SweepDriver::ledger() in
  /// cell-index order after the sweep; also the ledger to pass to
  /// InstanceCache so a cache miss charges its "graph-build" phase here.
  RoundLedger& ledger() { return ledger_; }

  /// Engine options for every algorithm run inside this cell (serial when
  /// the sweep is parallel — see header comment).
  EngineOptions engine() const { return engine_; }

  /// Sweep worker executing this cell (0 when serial).
  int worker() const { return worker_; }

  /// This cell's index in the sweep grid.
  std::size_t cell() const { return cell_; }

  /// Attempt number under the retry policy (0 = first run).
  int attempt() const { return attempt_; }

  /// The seed a randomized cell should run under: `base` on the first
  /// attempt, a deterministic perturbation keyed by (cell, attempt) on
  /// retries — the w.h.p. re-run gets fresh randomness, and the failing
  /// attempt stays reproducible from its recorded attempt index.
  std::uint64_t seed_for(std::uint64_t base) const {
    if (attempt_ == 0) return base;
    return hash_mix(base, static_cast<std::uint64_t>(cell_) + 1,
                    static_cast<std::uint64_t>(attempt_));
  }

 private:
  friend class SweepDriver;
  CellContext(RoundLedger& ledger, EngineOptions engine, int worker,
              std::size_t cell)
      : ledger_(ledger), engine_(engine), worker_(worker), cell_(cell) {}

  RoundLedger& ledger_;
  EngineOptions engine_;
  int worker_;
  std::size_t cell_ = 0;
  int attempt_ = 0;
};

class SweepDriver {
 public:
  using KeyFn = std::function<std::string(std::size_t)>;

  explicit SweepDriver(SweepOptions options = {})
      : options_(std::move(options)) {}

  /// Runs fn(i, ctx) for every cell i in [0, num_cells) and returns the
  /// rows in cell-index order. Row must be default-constructible. Honors
  /// the retry policy; in quarantine mode no exception escapes and callers
  /// needing per-cell status should use run_cells instead.
  template <typename Row, typename Fn>
  std::vector<Row> run(std::size_t num_cells, Fn&& fn) {
    return run_cells<Row>(num_cells, std::forward<Fn>(fn)).rows;
  }

  /// The full-fidelity entry point: rows plus per-cell outcomes. `key_fn`
  /// names cells for the journal (instance-cache key + algorithm + seed);
  /// `codec` serializes rows for checkpoint/resume. Both optional — without
  /// them the journal records status lines only and resume re-runs.
  template <typename Row, typename Fn>
  SweepResult<Row> run_cells(std::size_t num_cells, Fn&& fn,
                             const KeyFn& key_fn = {},
                             const CellCodec<Row>* codec = nullptr) {
    SweepResult<Row> out;
    out.rows.resize(num_cells);
    out.outcomes.resize(num_cells);
    std::vector<RoundLedger> ledgers(num_cells);
    const auto cache_before = InstanceCache::global().stats();
    const double start_ms = steady_ms();

    int workers = options_.workers > 0 ? options_.workers
                                       : ThreadPool::default_workers();
    if (static_cast<std::size_t>(workers) > num_cells)
      workers = static_cast<int>(num_cells == 0 ? 1 : num_cells);

    SweepJournal* journal = options_.journal.get();
    const RetryPolicy& policy = options_.retry;
    hardened_ = !policy.is_default() || journal != nullptr;

    // Each cell's wall-clock lands in its ledger's "cell" phase, minus
    // whatever a cache miss charged to "graph-build" inside the cell, so
    // instance generation and algorithm time stay separate phases.
    const auto timed_cell = [&](std::size_t i, CellContext& ctx) {
      const double build_before = ledgers[i].phase_time("graph-build");
      const double cell_start = steady_ms();
      out.rows[i] = fn(i, ctx);
      const double elapsed = steady_ms() - cell_start;
      const double built =
          ledgers[i].phase_time("graph-build") - build_before;
      ledgers[i].charge_time("cell", elapsed - built);
    };

    // Full per-cell protocol: resume lookup, attempt loop with budget
    // checks, quarantine or deferred rethrow, journal checkpoint. Returns
    // non-null only in legacy rethrow mode.
    const auto exec_cell = [&](std::size_t i,
                               CellContext& ctx) -> std::exception_ptr {
      const std::string key = key_fn ? key_fn(i) : std::string();
      if (journal != nullptr && journal->resuming() && !key.empty()) {
        if (const JournalEntry* done = journal->lookup(key)) {
          // ok/retried entries are served from their checkpoint;
          // quarantined cells re-run (a resume wants another shot at the
          // failures, not a cached failure report).
          if (done->status != CellStatus::kQuarantined &&
              (codec == nullptr ||
               codec->decode(done->payload, &out.rows[i]))) {
            out.outcomes[i].status = done->status;
            out.outcomes[i].attempts = done->attempts;
            out.outcomes[i].resumed = true;
            return nullptr;
          }
        }
      }
      CellOutcome& oc = out.outcomes[i];
      std::exception_ptr fatal;
      for (int attempt = 0;; ++attempt) {
        ctx.attempt_ = attempt;
        FaultInjector::CellScope scope(static_cast<std::int64_t>(i),
                                       attempt);
        ScratchArena::local().set_limit(policy.arena_limit_bytes);
        const std::int64_t rounds_before = ctx.ledger().total();
        const double attempt_start = steady_ms();
        bool failed = false;
        FaultCategory category = FaultCategory::kEngineException;
        std::string error;
        std::exception_ptr raw;
        try {
          if (FaultInjector::armed())
            FaultInjector::global().on_cell_start();
          timed_cell(i, ctx);
        } catch (const CellError& e) {
          failed = true;
          category = e.category();
          error = e.what();
          raw = std::current_exception();
        } catch (const std::exception& e) {
          failed = true;
          error = e.what();
          raw = std::current_exception();
        } catch (...) {
          failed = true;
          error = "unknown exception";
          raw = std::current_exception();
        }
        ScratchArena::local().set_limit(0);
        if (!failed) {
          const std::int64_t used = ctx.ledger().total() - rounds_before;
          if (policy.round_budget > 0 && used > policy.round_budget) {
            failed = true;
            category = FaultCategory::kRoundBudgetExceeded;
            error = "cell charged " + std::to_string(used) +
                    " rounds (budget " +
                    std::to_string(policy.round_budget) + ")";
            raw = nullptr;
          } else if (policy.deadline_ms > 0 &&
                     steady_ms() - attempt_start > policy.deadline_ms) {
            failed = true;
            category = FaultCategory::kWallClockTimeout;
            error = "cell exceeded its wall-clock deadline (" +
                    std::to_string(policy.deadline_ms) + " ms)";
            raw = nullptr;
          }
        }
        if (!failed) {
          oc.status = attempt == 0 ? CellStatus::kOk : CellStatus::kRetried;
          oc.attempts = attempt + 1;
          break;
        }
        if (attempt + 1 >= std::max(1, policy.max_attempts)) {
          oc.attempts = attempt + 1;
          oc.category = category;
          oc.error = error;
          if (policy.quarantine) {
            oc.status = CellStatus::kQuarantined;
            out.rows[i] = Row{};  // partial-result table: default row
            break;
          }
          fatal = raw ? raw
                      : std::make_exception_ptr(CellError(category, error));
          break;
        }
        // Bounded retry: the re-run coordination costs one simulated round
        // (charged so the ledger shows the w.h.p. re-run); the next
        // attempt sees a fresh seed via CellContext::seed_for.
        ctx.ledger().charge("retry", 1);
      }
      if (fatal == nullptr && journal != nullptr && !key.empty()) {
        JournalEntry entry;
        entry.key = key;
        entry.status = oc.status;
        entry.attempts = oc.attempts;
        if (oc.status == CellStatus::kQuarantined) {
          entry.category = std::string(to_string(oc.category));
          entry.error = oc.error;
        } else if (codec != nullptr && codec->encode) {
          entry.payload = codec->encode(out.rows[i]);
        }
        journal->record(entry);
      }
      return fatal;
    };

    if (workers <= 1) {
      for (std::size_t i = 0; i < num_cells; ++i) {
        CellContext ctx(ledgers[i], options_.cell_engine, 0, i);
        // Legacy rethrow mode propagates from the failing cell
        // immediately, matching the serial loop the driver replaced.
        if (auto err = exec_cell(i, ctx)) std::rethrow_exception(err);
      }
    } else {
      // One pool slot per sweep worker; inside a slot, cells are claimed
      // off a shared counter so a slow cell does not idle the other
      // workers. Cell i only ever writes rows[i] / ledgers[i] / errors[i].
      EngineOptions serial = options_.cell_engine;  // keeps backend etc.
      serial.num_threads = 1;
      std::vector<std::exception_ptr> errors(num_cells);
      std::atomic<std::size_t> next{0};
      ThreadPool::shared(workers).for_range(
          0, static_cast<std::size_t>(workers),
          [&](int worker, std::size_t, std::size_t) {
            for (;;) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= num_cells) break;
              CellContext ctx(ledgers[i], serial, worker, i);
              errors[i] = exec_cell(i, ctx);
            }
          });
      for (auto& error : errors)
        if (error) std::rethrow_exception(error);
    }

    wall_ms_ = steady_ms() - start_ms;
    cells_ = num_cells;
    workers_used_ = workers;
    retried_ = quarantined_ = resumed_ = 0;
    for (const CellOutcome& oc : out.outcomes) {
      retried_ += oc.status == CellStatus::kRetried && !oc.resumed;
      quarantined_ += oc.status == CellStatus::kQuarantined;
      resumed_ += oc.resumed;
    }
    ledger_.clear();
    for (const auto& ledger : ledgers) ledger_.merge(ledger);
    const auto cache_after = InstanceCache::global().stats();
    cache_hits_ = cache_after.hits - cache_before.hits;
    cache_misses_ = cache_after.misses - cache_before.misses;
    return out;
  }

  /// Per-cell ledgers of the last run, merged in cell-index order.
  const RoundLedger& ledger() const { return ledger_; }

  /// Wall-clock of the last run (pool dispatch to join), milliseconds.
  double wall_ms() const { return wall_ms_; }

  /// One "SWEEP ..." summary line for the last run: cell/worker counts,
  /// wall-clock, instance-cache hit/miss delta, and graph-build ms. When
  /// the robustness layer is active (non-default retry policy or a
  /// journal), also retried/quarantined/resumed counts — never otherwise,
  /// so fault-free default reports stay byte-identical.
  std::string report() const;

 private:
  static double steady_ms();

  SweepOptions options_;
  RoundLedger ledger_;
  double wall_ms_ = 0;
  std::size_t cells_ = 0;
  int workers_used_ = 1;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  bool hardened_ = false;
  std::size_t retried_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t resumed_ = 0;
};

}  // namespace deltacolor::bench
