#include "bench_support/sweep.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>

namespace deltacolor::bench {

namespace {

bool env_int64(const char* name, std::int64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* rest = nullptr;
  const long long n = std::strtoll(v, &rest, 10);
  if (rest == v || *rest != '\0') return false;
  *out = n;
  return true;
}

bool env_double(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* rest = nullptr;
  const double x = std::strtod(v, &rest);
  if (rest == v || *rest != '\0') return false;
  *out = x;
  return true;
}

}  // namespace

SweepOptions sweep_options_from_env(SweepOptions base) {
  std::int64_t n = 0;
  if (env_int64("DELTACOLOR_SWEEP_RETRIES", &n) && n >= 1)
    base.retry.max_attempts = static_cast<int>(n);
  if (env_int64("DELTACOLOR_SWEEP_ROUND_BUDGET", &n) && n >= 0)
    base.retry.round_budget = n;
  double ms = 0;
  if (env_double("DELTACOLOR_SWEEP_DEADLINE_MS", &ms) && ms >= 0)
    base.retry.deadline_ms = ms;
  if (env_int64("DELTACOLOR_SWEEP_ARENA_LIMIT", &n) && n >= 0)
    base.retry.arena_limit_bytes = static_cast<std::size_t>(n);
  if (env_int64("DELTACOLOR_SWEEP_QUARANTINE", &n))
    base.retry.quarantine = n != 0;
  if (const char* path = std::getenv("DELTACOLOR_SWEEP_JOURNAL");
      path != nullptr && *path != '\0') {
    std::int64_t resume = 0;
    env_int64("DELTACOLOR_SWEEP_RESUME", &resume);
    base.journal = std::make_shared<SweepJournal>(path, resume != 0);
  }
  return base;
}

double SweepDriver::steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string SweepDriver::report() const {
  std::ostringstream out;
  out << "SWEEP cells=" << cells_ << " workers=" << workers_used_
      << " wall_ms=" << wall_ms_ << " cache_hits=" << cache_hits_
      << " cache_misses=" << cache_misses_
      << " graph_build_ms=" << ledger_.phase_time("graph-build");
  if (hardened_)
    out << " retried=" << retried_ << " quarantined=" << quarantined_
        << " resumed=" << resumed_;
  return out.str();
}

}  // namespace deltacolor::bench
