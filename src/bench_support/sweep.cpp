#include "bench_support/sweep.hpp"

#include <chrono>
#include <sstream>

namespace deltacolor::bench {

double SweepDriver::steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string SweepDriver::report() const {
  std::ostringstream out;
  out << "SWEEP cells=" << cells_ << " workers=" << workers_used_
      << " wall_ms=" << wall_ms_ << " cache_hits=" << cache_hits_
      << " cache_misses=" << cache_misses_
      << " graph_build_ms=" << ledger_.phase_time("graph-build");
  return out.str();
}

}  // namespace deltacolor::bench
