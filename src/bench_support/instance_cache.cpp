#include "bench_support/instance_cache.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bench_support/workloads.hpp"

namespace deltacolor::bench {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

InstanceCache& InstanceCache::global() {
  static InstanceCache cache;
  return cache;
}

template <typename T, typename BuildFn>
std::shared_ptr<const T> InstanceCache::get_or_build(
    std::unordered_map<std::string, std::shared_ptr<Slot<T>>>& map,
    const std::string& key, RoundLedger* ledger, BuildFn&& build) {
  using State = typename Slot<T>::State;
  std::shared_ptr<Slot<T>> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = map[key];
    if (!entry) entry = std::make_shared<Slot<T>>();
    slot = entry;
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  // Wait out an in-flight build. Waking on kEmpty means the builder's
  // generator threw — loop around and claim the build ourselves.
  while (slot->state == State::kBuilding)
    slot->cv.wait(lock,
                  [&] { return slot->state != State::kBuilding; });
  if (slot->state == State::kReady) {
    std::shared_ptr<const T> value = slot->value;
    lock.unlock();
    std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.hits;
    return value;
  }
  slot->state = State::kBuilding;
  lock.unlock();
  const double start = now_ms();
  std::shared_ptr<const T> value;
  try {
    value = std::make_shared<const T>(build());
  } catch (...) {
    // Exception-safe single-flight: the slot returns to empty and every
    // waiter wakes; the next requester rebuilds, only we see the throw.
    lock.lock();
    slot->state = State::kEmpty;
    lock.unlock();
    slot->cv.notify_all();
    throw;
  }
  const double elapsed = now_ms() - start;
  lock.lock();
  slot->value = value;
  slot->state = State::kReady;
  lock.unlock();
  slot->cv.notify_all();
  if (ledger != nullptr) ledger->charge_time("graph-build", elapsed);
  std::lock_guard<std::mutex> stats_lock(mu_);
  ++stats_.misses;
  stats_.build_ms += elapsed;
  return value;
}

std::shared_ptr<const CliqueInstance> InstanceCache::blowup(
    const CliqueInstanceOptions& options, RoundLedger* ledger) {
  std::ostringstream key;
  key << "blowup/t=" << options.num_cliques << "/d=" << options.delta
      << "/s=" << options.clique_size << "/easy=" << options.easy_fraction
      << "/seed=" << options.seed << "/shuffle=" << options.shuffle_ids;
  return get_or_build(cliques_, key.str(), ledger,
                      [&] { return clique_blowup_instance(options); });
}

std::shared_ptr<const CliqueInstance> InstanceCache::ring(
    int num_cliques, int clique_size, std::uint64_t seed,
    RoundLedger* ledger) {
  std::ostringstream key;
  key << "ring/t=" << num_cliques << "/s=" << clique_size << "/seed=" << seed;
  return get_or_build(cliques_, key.str(), ledger, [&] {
    return clique_ring(num_cliques, clique_size, seed);
  });
}

std::shared_ptr<const Graph> InstanceCache::regular(NodeId n, int d,
                                                    std::uint64_t seed,
                                                    RoundLedger* ledger) {
  std::ostringstream key;
  key << "regular/n=" << n << "/d=" << d << "/seed=" << seed;
  return get_or_build(graphs_, key.str(), ledger,
                      [&] { return random_regular(n, d, seed); });
}

std::shared_ptr<const Hypergraph> InstanceCache::hypergraph(
    int num_vertices, int delta, int rank, std::uint64_t seed,
    RoundLedger* ledger) {
  std::ostringstream key;
  key << "hypergraph/n=" << num_vertices << "/d=" << delta << "/r=" << rank
      << "/seed=" << seed;
  return get_or_build(hypergraphs_, key.str(), ledger, [&] {
    return random_hypergraph(num_vertices, delta, rank, seed);
  });
}

std::shared_ptr<const Graph> InstanceCache::custom_graph(
    const std::string& key, const std::function<Graph()>& build,
    RoundLedger* ledger) {
  return get_or_build(graphs_, "custom/" + key, ledger,
                      [&] { return build(); });
}

std::shared_ptr<const Graph> InstanceCache::file_graph(
    const std::string& path, const std::function<Graph()>& load,
    RoundLedger* ledger) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0)
    throw std::runtime_error("file_graph: cannot stat " + path + ": " +
                             std::strerror(errno));
  std::ostringstream key;
  key << "file/" << path << "?size=" << st.st_size
      << "&mtime=" << st.st_mtime;
  return get_or_build(graphs_, key.str(), ledger, [&] { return load(); });
}

InstanceCache::Stats InstanceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InstanceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cliques_.clear();
  graphs_.clear();
  hypergraphs_.clear();
  stats_ = Stats{};
}

}  // namespace deltacolor::bench
