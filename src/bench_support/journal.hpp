// JSONL sweep journal: the checkpoint-resume substrate for long sweeps.
//
// Every completed cell appends one line — flushed immediately, so a killed
// process loses at most the cell that was mid-flight — of the form
//
//   {"key":"<cache-key/alg/seed>","status":"ok|retried|quarantined",
//    "attempts":N,"category":"<fault-category>","error":"<what()>",
//    "payload":"<codec-encoded row>"}
//
// `key` identifies the cell across processes: instance-cache key +
// algorithm name + seed (the caller's key_fn builds it), never the cell
// index, so a regridded sweep still resumes the cells it recognizes. A
// resumed run (`--resume`) loads the journal first and serves ok/retried
// entries from their recorded payload; quarantined entries are re-run (the
// operator re-running a sweep wants another shot at the failures, not a
// cached failure report).
//
// The writer is append-only and line-atomic under a mutex; the parser
// accepts exactly what the writer emits (string fields JSON-escaped,
// unknown fields ignored) and skips torn trailing lines, which is what a
// SIGKILL mid-write leaves behind.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace deltacolor::bench {

/// Terminal status of a sweep cell (the `status` table column).
enum class CellStatus { kOk, kRetried, kQuarantined };

constexpr std::string_view to_string(CellStatus s) {
  switch (s) {
    case CellStatus::kOk: return "ok";
    case CellStatus::kRetried: return "retried";
    case CellStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

inline bool parse_cell_status(std::string_view name, CellStatus* out) {
  if (name == "ok") *out = CellStatus::kOk;
  else if (name == "retried") *out = CellStatus::kRetried;
  else if (name == "quarantined") *out = CellStatus::kQuarantined;
  else return false;
  return true;
}

struct JournalEntry {
  std::string key;
  CellStatus status = CellStatus::kOk;
  int attempts = 1;
  std::string category;  ///< fault-category name; empty unless quarantined
  std::string error;     ///< final failure message; empty when ok
  std::string payload;   ///< codec-encoded row; empty when quarantined
};

class SweepJournal {
 public:
  /// Opens `path` for appending. With resume=true the existing file (the
  /// journal of the interrupted run) is parsed first and its entries
  /// served via lookup(); without resume an existing file is truncated.
  /// Throws std::runtime_error when the path cannot be opened for writing.
  SweepJournal(const std::string& path, bool resume);

  bool resuming() const { return resume_; }
  const std::string& path() const { return path_; }
  /// Entries loaded from the pre-existing journal (resume mode only).
  std::size_t loaded() const { return loaded_.size(); }

  /// The loaded entry for `key`, or nullptr. Stable for the journal's
  /// lifetime (the loaded map is never mutated after construction).
  const JournalEntry* lookup(const std::string& key) const;

  /// Appends one line and flushes it. Thread-safe.
  void record(const JournalEntry& entry);

  // Exposed for tests and the parser's reuse in tools.
  static std::string escape_json(std::string_view raw);
  static std::string format_line(const JournalEntry& entry);
  /// Parses one journal line; false on torn/foreign lines.
  static bool parse_line(std::string_view line, JournalEntry* out);

 private:
  std::string path_;
  bool resume_ = false;
  std::unordered_map<std::string, JournalEntry> loaded_;
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace deltacolor::bench
