// Field codecs for sweep-journal checkpointing.
//
// A bench that wants kill/--resume coverage serializes its Row through a
// CellCodec (see sweep.hpp). Rows are flat records of scalars plus,
// usually, a RoundLedger, so this header provides the three pieces every
// such codec needs: a writer/reader pair over unit-separated fields, and a
// RoundLedger round-trip that preserves per-phase rounds and wall-clock
// (merge-compatible: decoding re-plays charge()/charge_time() in
// first-charge order).
//
// The wire format is text with ASCII separators — US (\x1f) between row
// fields, RS (\x1e) between ledger entries, GS (\x1d) between the ledger's
// rounds and time sections — none of which appear in phase labels or
// numeric fields. The journal JSON-escapes the payload, so the separators
// survive the JSONL file intact. Decoders return false on any malformed
// or foreign payload; the sweep driver treats that as a cache miss and
// simply re-runs the cell.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

#include "local/ledger.hpp"

namespace deltacolor::bench {

/// Appends '\x1f'-separated fields; streams anything ostream-printable.
class FieldWriter {
 public:
  template <typename T>
  FieldWriter& add(const T& value) {
    if (!first_) os_ << '\x1f';
    first_ = false;
    os_ << value;
    return *this;
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  bool first_ = true;
};

/// Splits '\x1f'-separated fields back out. Every next_* returns false on
/// exhaustion or a non-numeric field, so decoders can chain with &&.
class FieldReader {
 public:
  explicit FieldReader(std::string_view text) : text_(text) {}

  bool next(std::string_view* field) {
    if (done_) return false;
    const std::size_t sep = text_.find('\x1f', pos_);
    if (sep == std::string_view::npos) {
      *field = text_.substr(pos_);
      done_ = true;
    } else {
      *field = text_.substr(pos_, sep - pos_);
      pos_ = sep + 1;
    }
    return true;
  }

  bool next_int(std::int64_t* out) {
    std::string_view field;
    if (!next(&field) || field.empty()) return false;
    char* rest = nullptr;
    const std::string buf(field);
    *out = std::strtoll(buf.c_str(), &rest, 10);
    return rest != nullptr && *rest == '\0';
  }

  bool next_bool(bool* out) {
    std::int64_t n = 0;
    if (!next_int(&n)) return false;
    *out = n != 0;
    return true;
  }

  bool next_double(double* out) {
    std::string_view field;
    if (!next(&field) || field.empty()) return false;
    char* rest = nullptr;
    const std::string buf(field);
    *out = std::strtod(buf.c_str(), &rest);
    return rest != nullptr && *rest == '\0';
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool done_ = false;
};

/// Serializes per-phase rounds and wall-clock in first-charge order:
///   name=rounds \x1e ... \x1d name=ms \x1e ...
inline std::string encode_ledger(const RoundLedger& ledger) {
  std::ostringstream os;
  os << std::setprecision(17);
  bool first = true;
  for (const auto& [phase, rounds] : ledger.phases()) {
    if (!first) os << '\x1e';
    first = false;
    os << phase << '=' << rounds;
  }
  os << '\x1d';
  first = true;
  for (const auto& [phase, ms] : ledger.times()) {
    if (!first) os << '\x1e';
    first = false;
    os << phase << '=' << ms;
  }
  return os.str();
}

/// Re-plays an encode_ledger payload into `out` (which is clear()ed
/// first). Returns false — leaving `out` in an unspecified but valid
/// state — on malformed input.
inline bool decode_ledger(std::string_view text, RoundLedger* out) {
  out->clear();
  const std::size_t gs = text.find('\x1d');
  if (gs == std::string_view::npos) return false;
  const auto each = [](std::string_view section, const auto& apply) {
    while (!section.empty()) {
      const std::size_t rs = section.find('\x1e');
      const std::string_view entry = section.substr(0, rs);
      section = rs == std::string_view::npos ? std::string_view{}
                                             : section.substr(rs + 1);
      const std::size_t eq = entry.rfind('=');
      if (eq == std::string_view::npos) return false;
      if (!apply(entry.substr(0, eq), entry.substr(eq + 1))) return false;
    }
    return true;
  };
  const bool rounds_ok =
      each(text.substr(0, gs),
           [&](std::string_view phase, std::string_view value) {
             char* rest = nullptr;
             const std::string buf(value);
             const std::int64_t rounds = std::strtoll(buf.c_str(), &rest, 10);
             if (rest == nullptr || *rest != '\0') return false;
             out->charge(phase, rounds);
             return true;
           });
  if (!rounds_ok) return false;
  return each(text.substr(gs + 1),
              [&](std::string_view phase, std::string_view value) {
                char* rest = nullptr;
                const std::string buf(value);
                const double ms = std::strtod(buf.c_str(), &rest);
                if (rest == nullptr || *rest != '\0') return false;
                out->charge_time(phase, ms);
                return true;
              });
}

}  // namespace deltacolor::bench
