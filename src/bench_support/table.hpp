// Table printing for the experiment benches: aligned columns with a
// markdown-ish layout, plus claimed-vs-measured verdict helpers and the
// machine-readable BENCH_JSON emitter (one JSON object per line, prefixed
// "BENCH_JSON ", with rounds and per-phase wall-clock from the ledger).
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "local/ledger.hpp"

namespace deltacolor::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
      }
      os << '\n';
    };
    line(headers_);
    {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
      os << '\n';
    }
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_same_v<T, std::string>) {
      return value;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os.precision(3);
      os << std::fixed << value;
      return os.str();
    } else {
      return std::to_string(value);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline const char* verdict(bool ok) { return ok ? "OK" : "VIOLATED"; }

/// Builder for one machine-readable result line. Usage:
///   BenchJson("E6").field("n", n).field("valid", ok)
///       .ledger(res.ledger).print();
/// emits
///   BENCH_JSON {"bench":"E6","n":4096,"valid":true,"rounds":...,...}
/// so downstream tooling can collect BENCH_*.json records with both the
/// simulated round counts and the measured per-phase milliseconds.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench) {
    os_ << "{\"bench\":\"" << bench << '"';
  }

  BenchJson& field(const std::string& key, double value) {
    os_ << ",\"" << key << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& key, std::int64_t value) {
    os_ << ",\"" << key << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  BenchJson& field(const std::string& key, unsigned value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  BenchJson& field(const std::string& key, bool value) {
    os_ << ",\"" << key << "\":" << (value ? "true" : "false");
    return *this;
  }
  BenchJson& field(const std::string& key, const std::string& value) {
    os_ << ",\"" << key << "\":\"" << value << '"';
    return *this;
  }
  BenchJson& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }

  /// Inlines the ledger's {"rounds":..,"ms":..,"phases":{..}} members.
  BenchJson& ledger(const RoundLedger& l) {
    const std::string j = l.json();  // "{...}" — splice without the braces
    os_ << ',' << j.substr(1, j.size() - 2);
    return *this;
  }

  void print(std::ostream& os = std::cout) {
    os << "BENCH_JSON " << os_.str() << "}\n";
  }

 private:
  std::ostringstream os_;
};

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n\n";
}

}  // namespace deltacolor::bench
