// Table printing for the experiment benches: aligned columns with a
// markdown-ish layout, plus claimed-vs-measured verdict helpers.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace deltacolor::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
      }
      os << '\n';
    };
    line(headers_);
    {
      os << "|";
      for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
      os << '\n';
    }
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_same_v<T, std::string>) {
      return value;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os.precision(3);
      os << std::fixed << value;
      return os.str();
    } else {
      return std::to_string(value);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline const char* verdict(bool ok) { return ok ? "OK" : "VIOLATED"; }

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n\n";
}

}  // namespace deltacolor::bench
