// Keyed instance cache for the experiment suite.
//
// Multi-algorithm benches (E7's head-to-head, E11's subroutine columns,
// E12's ablations) evaluate several algorithms — or several option sets —
// on the *same* generated instance, and sweep drivers re-run the same
// (family, options, seed) point across cells. Generating a clique blow-up
// is not cheap (the 6-cycle ownership repair rebuilds the cross graph per
// scan), so the cache generates each keyed instance exactly once and hands
// out shared read-only pointers.
//
// Keying and ownership rules (see DESIGN.md §instance-cache):
//  * The key is the full generator input: family name + every generator
//    option + seed. Two requests with equal keys see the same object.
//  * Cached instances are immutable (`shared_ptr<const T>`). Callers that
//    need to mutate (e.g. install fresh LOCAL ids) must copy; the
//    generators already install shuffled ids keyed by seed, so benches
//    never need to.
//  * Generation is single-flight: under concurrent SweepDriver cells the
//    first requester builds while the rest block on the slot's condition
//    variable, so a key is never generated twice and never observed
//    half-built. Single-flight is *exception-safe*: a generator that
//    throws wakes every waiter, the slot returns to empty, and the next
//    requester rebuilds — the exception propagates only to the requester
//    whose call ran the generator. (The previous std::once_flag latch
//    could not do this: on libstdc++ an exception inside call_once leaves
//    concurrent waiters blocked in pthread_once forever.)
//  * Wall-clock spent generating is charged to the "graph-build" phase of
//    the ledger passed by the *building* requester (cache hits charge
//    nothing), keeping instance cost separated from per-cell algorithm
//    cost in sweep ledgers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/generators.hpp"
#include "local/ledger.hpp"
#include "primitives/hypergraph.hpp"

namespace deltacolor::bench {

class InstanceCache {
 public:
  /// Process-wide cache shared by every bench and the dcolor CLI.
  static InstanceCache& global();

  /// Clique blow-up keyed by every CliqueInstanceOptions field.
  std::shared_ptr<const CliqueInstance> blowup(
      const CliqueInstanceOptions& options, RoundLedger* ledger = nullptr);

  /// Ring of easy cliques (clique_ring).
  std::shared_ptr<const CliqueInstance> ring(int num_cliques, int clique_size,
                                             std::uint64_t seed,
                                             RoundLedger* ledger = nullptr);

  /// Random d-regular graph (random_regular).
  std::shared_ptr<const Graph> regular(NodeId n, int d, std::uint64_t seed,
                                       RoundLedger* ledger = nullptr);

  /// Lemma-5 random multihypergraph (bench::random_hypergraph).
  std::shared_ptr<const Hypergraph> hypergraph(int num_vertices, int delta,
                                               int rank, std::uint64_t seed,
                                               RoundLedger* ledger = nullptr);

  /// Arbitrary keyed graph with a caller-supplied generator, under the
  /// same single-flight slot discipline as the named families (the key is
  /// namespaced "custom/<key>"). Used by benches with bespoke instances,
  /// dcolor's file loader, and the exception-safety regression tests
  /// (`build` may throw; see the single-flight rules above).
  std::shared_ptr<const Graph> custom_graph(
      const std::string& key, const std::function<Graph()>& build,
      RoundLedger* ledger = nullptr);

  /// File-backed graph keyed by file *identity* — path plus size and mtime
  /// from stat(2), so sweeps over the same on-disk instance share one load
  /// (for a .dcsr file: one mmap), while overwriting the file invalidates
  /// the cached entry naturally. `load` performs the actual read (mmap or
  /// text parse); it runs single-flight like every other family. Throws
  /// std::runtime_error when `path` cannot be stat'ed.
  std::shared_ptr<const Graph> file_graph(
      const std::string& path, const std::function<Graph()>& load,
      RoundLedger* ledger = nullptr);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    double build_ms = 0;  ///< total wall-clock spent generating (misses)
  };
  Stats stats() const;

  /// Drops every cached instance (outstanding shared_ptrs stay valid).
  void clear();

 private:
  /// Single-flight build slot: a small state machine instead of a
  /// std::once_flag, because the latch must survive a throwing generator
  /// (kBuilding -> kEmpty + notify_all; the next requester rebuilds).
  template <typename T>
  struct Slot {
    enum class State { kEmpty, kBuilding, kReady };
    std::mutex mu;
    std::condition_variable cv;
    State state = State::kEmpty;
    std::shared_ptr<const T> value;  // set exactly once, before kReady
  };

  template <typename T, typename BuildFn>
  std::shared_ptr<const T> get_or_build(
      std::unordered_map<std::string, std::shared_ptr<Slot<T>>>& map,
      const std::string& key, RoundLedger* ledger, BuildFn&& build);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot<CliqueInstance>>>
      cliques_;
  std::unordered_map<std::string, std::shared_ptr<Slot<Graph>>> graphs_;
  std::unordered_map<std::string, std::shared_ptr<Slot<Hypergraph>>>
      hypergraphs_;
  Stats stats_;
};

}  // namespace deltacolor::bench
