#include "bench_support/journal.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace deltacolor::bench {

namespace {

/// Unescapes the JSON string starting at line[pos] (just past the opening
/// quote), writing into *out and leaving pos just past the closing quote.
/// False on a torn line (unterminated string / bad escape).
bool unescape_json(std::string_view line, std::size_t& pos,
                   std::string* out) {
  out->clear();
  while (pos < line.size()) {
    const char c = line[pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (pos >= line.size()) return false;
    const char e = line[pos++];
    switch (e) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (pos + 4 > line.size()) return false;
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = line[pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // The writer only emits \u00XX (control bytes); anything wider is
        // foreign input we pass through byte-truncated.
        out->push_back(static_cast<char>(code & 0xff));
        break;
      }
      default: return false;
    }
  }
  return false;
}

/// Finds `"name":"<string>"` in line; false when absent or torn.
bool extract_string(std::string_view line, std::string_view name,
                    std::string* out) {
  const std::string pattern = "\"" + std::string(name) + "\":\"";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return false;
  std::size_t pos = at + pattern.size();
  return unescape_json(line, pos, out);
}

/// Finds `"name":<int>` in line; false when absent or malformed.
bool extract_int(std::string_view line, std::string_view name, int* out) {
  const std::string pattern = "\"" + std::string(name) + "\":";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return false;
  std::size_t pos = at + pattern.size();
  bool any = false;
  int value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + (line[pos++] - '0');
    any = true;
  }
  if (!any) return false;
  *out = value;
  return true;
}

}  // namespace

std::string SweepJournal::escape_json(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string SweepJournal::format_line(const JournalEntry& entry) {
  std::ostringstream os;
  os << "{\"key\":\"" << escape_json(entry.key) << "\",\"status\":\""
     << to_string(entry.status) << "\",\"attempts\":" << entry.attempts
     << ",\"category\":\"" << escape_json(entry.category)
     << "\",\"error\":\"" << escape_json(entry.error) << "\",\"payload\":\""
     << escape_json(entry.payload) << "\"}";
  return os.str();
}

bool SweepJournal::parse_line(std::string_view line, JournalEntry* out) {
  JournalEntry entry;
  std::string status;
  if (!extract_string(line, "key", &entry.key) || entry.key.empty())
    return false;
  if (!extract_string(line, "status", &status) ||
      !parse_cell_status(status, &entry.status))
    return false;
  if (!extract_int(line, "attempts", &entry.attempts)) return false;
  extract_string(line, "category", &entry.category);
  extract_string(line, "error", &entry.error);
  if (!extract_string(line, "payload", &entry.payload)) return false;
  *out = entry;
  return true;
}

SweepJournal::SweepJournal(const std::string& path, bool resume)
    : path_(path), resume_(resume) {
  if (resume_) {
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      JournalEntry entry;
      if (parse_line(line, &entry)) loaded_[entry.key] = std::move(entry);
      // Torn or foreign lines (a SIGKILL mid-write) are skipped; the cell
      // simply re-runs.
    }
  }
  out_.open(path_, resume_ ? std::ios::app : std::ios::trunc);
  if (!out_)
    throw std::runtime_error("cannot open sweep journal for writing: " +
                             path_);
}

const JournalEntry* SweepJournal::lookup(const std::string& key) const {
  const auto it = loaded_.find(key);
  return it == loaded_.end() ? nullptr : &it->second;
}

void SweepJournal::record(const JournalEntry& entry) {
  const std::string line = format_line(entry);
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace deltacolor::bench
