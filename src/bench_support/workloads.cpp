#include "bench_support/workloads.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace deltacolor::bench {

AlgorithmResult run_registered(std::string_view name, const Graph& g,
                               const AlgorithmRequest& req) {
  const AlgorithmEntry* entry = find_algorithm(name);
  DC_CHECK_MSG(entry != nullptr,
               "bench requested unregistered algorithm '" << name << "'");
  return entry->run(g, req);
}

Hypergraph random_hypergraph(int num_vertices, int delta, int rank,
                             std::uint64_t seed) {
  Rng rng(seed);
  Hypergraph h;
  h.num_vertices = num_vertices;
  const int num_edges =
      (num_vertices * delta) / std::max(1, rank / 2) + 1;
  for (int f = 0; f < num_edges; ++f) {
    std::vector<int> members;
    const int size = 1 + static_cast<int>(rng.below(rank));
    for (int i = 0; i < size; ++i)
      members.push_back(static_cast<int>(rng.below(num_vertices)));
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    h.edges.push_back(std::move(members));
  }
  // Patch deficient vertices with private singleton edges.
  std::vector<int> deg(num_vertices, 0);
  for (const auto& e : h.edges)
    for (const int v : e) ++deg[v];
  for (int v = 0; v < num_vertices; ++v)
    while (deg[v] < delta) {
      h.edges.push_back({v});
      ++deg[v];
    }
  h.build_incidence();
  return h;
}

}  // namespace deltacolor::bench
