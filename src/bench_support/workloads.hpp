// Shared workload builders for the experiment benches.
#pragma once

#include <cstdint>

#include "graph/generators.hpp"
#include "primitives/hypergraph.hpp"

namespace deltacolor::bench {

/// Hard dense instance: t cliques of size delta, vertex degree exactly
/// delta, no loopholes anywhere.
inline CliqueInstance hard_instance(int cliques, int delta,
                                    std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Mixed instance with a fraction of easy cliques.
inline CliqueInstance mixed_instance(int cliques, int delta, double easy,
                                     std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Random multihypergraph with min degree >= `delta` and rank <= `rank`
/// (the Lemma 5 workload for bench E8).
Hypergraph random_hypergraph(int num_vertices, int delta, int rank,
                             std::uint64_t seed);

}  // namespace deltacolor::bench
