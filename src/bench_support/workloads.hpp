// Shared workload builders for the experiment benches, plus the bench-side
// entry into the algorithm registry (benches and the dcolor CLI resolve
// algorithms from the same catalog).
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/generators.hpp"
#include "primitives/hypergraph.hpp"
#include "registry/registry.hpp"

namespace deltacolor::bench {

/// Resolves `name` from the shared algorithm registry and runs it under
/// the request's seed / engine options. Throws on unknown names (benches
/// hardcode registered names; a typo should abort loudly).
AlgorithmResult run_registered(std::string_view name, const Graph& g,
                               const AlgorithmRequest& req = {});

/// Hard dense instance: t cliques of size delta, vertex degree exactly
/// delta, no loopholes anywhere.
inline CliqueInstance hard_instance(int cliques, int delta,
                                    std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Mixed instance with a fraction of easy cliques.
inline CliqueInstance mixed_instance(int cliques, int delta, double easy,
                                     std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Random multihypergraph with min degree >= `delta` and rank <= `rank`
/// (the Lemma 5 workload for bench E8).
Hypergraph random_hypergraph(int num_vertices, int delta, int rank,
                             std::uint64_t seed);

}  // namespace deltacolor::bench
