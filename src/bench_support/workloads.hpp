// Shared workload builders for the experiment benches, plus the bench-side
// entry into the algorithm registry (benches and the dcolor CLI resolve
// algorithms from the same catalog).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "bench_support/instance_cache.hpp"
#include "graph/generators.hpp"
#include "primitives/hypergraph.hpp"
#include "registry/registry.hpp"

namespace deltacolor::bench {

/// Resolves `name` from the shared algorithm registry and runs it under
/// the request's seed / engine options. Throws on unknown names (benches
/// hardcode registered names; a typo should abort loudly).
AlgorithmResult run_registered(std::string_view name, const Graph& g,
                               const AlgorithmRequest& req = {});

/// Hard dense instance: t cliques of size delta, vertex degree exactly
/// delta, no loopholes anywhere.
inline CliqueInstance hard_instance(int cliques, int delta,
                                    std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Mixed instance with a fraction of easy cliques.
inline CliqueInstance mixed_instance(int cliques, int delta, double easy,
                                     std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

/// Random multihypergraph with min degree >= `delta` and rank <= `rank`
/// (the Lemma 5 workload for bench E8).
Hypergraph random_hypergraph(int num_vertices, int delta, int rank,
                             std::uint64_t seed);

// --- cached variants ---------------------------------------------------------
//
// Same workloads routed through the process-wide InstanceCache: the first
// request with a given parameter tuple generates (charging its wall-clock
// to `ledger`'s "graph-build" phase); every later request — another table
// column, another algorithm in a head-to-head, another sweep cell — shares
// the immutable instance. Use these in benches; the eager builders above
// remain for tests that need to own and mutate an instance.

inline std::shared_ptr<const CliqueInstance> cached_hard(
    int cliques, int delta, std::uint64_t seed, RoundLedger* ledger = nullptr) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.seed = seed;
  return InstanceCache::global().blowup(opt, ledger);
}

inline std::shared_ptr<const CliqueInstance> cached_mixed(
    int cliques, int delta, double easy, std::uint64_t seed,
    RoundLedger* ledger = nullptr) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return InstanceCache::global().blowup(opt, ledger);
}

inline std::shared_ptr<const CliqueInstance> cached_ring(
    int num_cliques, int clique_size, std::uint64_t seed,
    RoundLedger* ledger = nullptr) {
  return InstanceCache::global().ring(num_cliques, clique_size, seed, ledger);
}

inline std::shared_ptr<const Graph> cached_regular(
    NodeId n, int d, std::uint64_t seed, RoundLedger* ledger = nullptr) {
  return InstanceCache::global().regular(n, d, seed, ledger);
}

inline std::shared_ptr<const Hypergraph> cached_hypergraph(
    int num_vertices, int delta, int rank, std::uint64_t seed,
    RoundLedger* ledger = nullptr) {
  return InstanceCache::global().hypergraph(num_vertices, delta, rank, seed,
                                            ledger);
}

}  // namespace deltacolor::bench
