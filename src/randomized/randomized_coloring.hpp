// Randomized Delta-coloring of dense graphs (Theorem 2 / Algorithm 4):
// shattering with randomly placed T-nodes (slack triads), the modified
// deterministic algorithm on the shattered components, and post-processing.
//
//   1. ACD, loophole detection, hard/easy classification (as Theorem 1).
//   2. Guard: for Delta = omega(log^21 n) the paper delegates to the
//      O(log* n) algorithm of [FHM23]; unreachable at simulation scale, so
//      the branch is detected and reported only.
//   3. Pre-shattering: every hard clique repeatedly (O(log Delta) retry
//      rounds with fresh randomness) attempts to place a T-node — a slack
//      triad whose pair is colored with the reserved color 0. Accepted
//      pairs are pairwise non-adjacent and triads keep distance >= b from
//      each other, bounding the "useless" vertices per clique (Section 4).
//   4. Post-shattering: cliques that failed all retries form components in
//      the clique-adjacency graph; each component is colored by the
//      modified deterministic pipeline (extended pseudo-loopholes =
//      vertices with an uncolored neighbor outside the component or two
//      same-colored neighbors; slack-pair color space {1..Delta-1};
//      tolerated useless vertices). Components run in parallel in LOCAL:
//      the round cost charged is the maximum over components.
//   5. Post-processing: bodies of successful cliques (deg+1 instances
//      exploiting the uncolored slack vertex), then the slack vertices
//      (two same-colored neighbors), then easy cliques and loopholes via
//      Algorithm 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acd/acd.hpp"
#include "common/errors.hpp"
#include "core/delta_coloring.hpp"
#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct RandomizedOptions {
  AcdParams acd;
  HardColoringParams hard;  ///< used for the post-shattering components
  /// Execution-layer knobs (worker threads, frontier sweeps) threaded into
  /// every engine-stepped subroutine; results are bit-identical across
  /// settings.
  EngineOptions engine;
  std::uint64_t seed = 1;
  /// T-node spacing parameter b (Section 4): future pair vertices keep
  /// this distance from accepted pairs, bounding useless vertices per
  /// clique. Constant, adjustable.
  int spacing = 0;
  /// Retry rounds for T-node placement; failure probability decays
  /// geometrically per round.
  int placement_rounds = 6;
  /// Constant BFS depth of the coverage layers around slack vertices; the
  /// uncovered remainder forms the shattered components.
  int layer_depth = 3;
  bool verify = true;
  /// Opt-in validation oracle (errors.hpp): kEnd turns a final-checker
  /// failure into a structured invariant-violation CellError; kPhase
  /// additionally checks the partial coloring after pre-shattering,
  /// post-shattering, post-processing, and the easy phase (the partial
  /// coloring stays proper throughout — T-node pairs are non-adjacent).
  ValidateMode validate = ValidateMode::kOff;
};

struct RandomizedStats {
  int num_hard = 0, num_easy = 0;
  int tnodes_placed = 0;
  int failed_cliques = 0;
  int components = 0;
  int max_component_vertices = 0;
  int max_component_rounds = 0;  ///< post-shattering cost (parallel max)
  bool fhm23_branch = false;     ///< Delta = omega(log^21 n) guard fired
};

struct RandomizedResult {
  std::vector<Color> color;
  RoundLedger ledger;
  bool dense = false;
  bool valid = false;
  int delta = 0;
  RandomizedStats stats;
};

RandomizedResult randomized_delta_color(const Graph& g,
                                        const RandomizedOptions& options = {});

/// Options with epsilon/eta scaled for moderate Delta (like
/// scaled_options() for the deterministic algorithm).
RandomizedOptions scaled_randomized_options(int delta, std::uint64_t seed = 1);

}  // namespace deltacolor
