#include "randomized/randomized_coloring.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <queue>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/easy_coloring.hpp"
#include "core/hardness.hpp"
#include "core/loopholes.hpp"
#include "graph/checker.hpp"
#include "graph/subgraph.hpp"
#include "local/oracle.hpp"
#include "primitives/list_coloring.hpp"

namespace deltacolor {

namespace {

/// Reserved same-color for all T-node slack pairs (Section 4 uses "the
/// first color").
constexpr Color kTnodeColor = 0;

struct Triad {
  NodeId slack = kNoNode;
  NodeId pair_in = kNoNode;
  NodeId pair_out = kNoNode;
};

// Marks all vertices within `radius` of v.
void mark_ball(const Graph& g, NodeId v, int radius, NodeMask& mark) {
  std::queue<std::pair<NodeId, int>> q;
  q.emplace(v, 0);
  mark[v] = 1;
  while (!q.empty()) {
    const auto [x, d] = q.front();
    q.pop();
    if (d == radius) continue;
    for (const NodeId y : g.neighbors(x)) {
      if (!mark[y]) {
        mark[y] = 1;
        q.emplace(y, d + 1);
      }
    }
  }
}

}  // namespace

RandomizedOptions scaled_randomized_options(int delta, std::uint64_t seed) {
  RandomizedOptions opt;
  opt.acd.epsilon = std::max(kAcdEpsilon, 2.5 / delta);
  opt.hard.epsilon = opt.acd.epsilon;
  opt.seed = seed;
  return opt;
}

RandomizedResult randomized_delta_color(const Graph& g,
                                        const RandomizedOptions& options) {
  RandomizedResult res;
  res.delta = g.max_degree();
  res.color.assign(g.num_nodes(), kNoColor);
  if (g.num_nodes() == 0) {
    res.dense = res.valid = true;
    return res;
  }
  DC_CHECK_MSG(res.delta >= 3, "randomized_delta_color requires Delta >= 3");
  const int delta = res.delta;
  LocalContext lctx(res.ledger, options.engine, options.seed);
  Rng rng(options.seed);

  // Algorithm 4 line 1 guard: Delta = omega(log^21 n) would delegate to
  // the O(log* n) algorithm of [FHM23]; at any simulable scale the branch
  // never fires (log2(n)^21 is astronomical), so it is detected only.
  res.stats.fhm23_branch =
      std::pow(std::log2(std::max<double>(4.0, g.num_nodes())), 21.0) <
      static_cast<double>(delta);

  const Acd acd = [&] {
    ScopedPhaseTimer timer(res.ledger, "acd");
    return compute_acd(g, res.ledger, options.acd);
  }();
  res.dense = acd.is_dense();
  DC_CHECK_MSG(res.dense, "input graph is not dense (Definition 4)");
  LoopholeSet loopholes = [&] {
    ScopedPhaseTimer timer(res.ledger, "loopholes");
    return find_loopholes_dense(g, acd, res.ledger);
  }();
  const Hardness hardness = classify_hardness(g, acd, loopholes);
  res.stats.num_hard = hardness.num_hard;
  res.stats.num_easy = hardness.num_easy;

  std::vector<int> hard_acs;
  for (std::size_t c = 0; c < acd.cliques.size(); ++c)
    if (hardness.is_hard[c]) hard_acs.push_back(static_cast<int>(c));

  // ------------------------------------------------------ Pre-shattering
  // Randomized T-node placement with O(log Delta) retry rounds; accepted
  // pairs are colored kTnodeColor, accepted triads keep distance >=
  // `spacing` from each other.
  std::vector<Triad> triad_of_clique(acd.cliques.size());
  NodeMask placed(acd.cliques.size(), 0);
  // Slack vertices must stay uncolored and unshared; future *pair*
  // vertices keep distance `spacing` from accepted pairs (the paper's b,
  // limiting useless vertices per clique). Blocking whole balls around all
  // three triad vertices would forbid neighboring cliques entirely.
  NodeMask slack_used(g.num_nodes(), 0);
  NodeMask pair_blocked(g.num_nodes(), 0);
  auto phase_t0 = std::chrono::steady_clock::now();
  const auto end_phase = [&](const char* phase) {
    res.ledger.charge_time(
        phase, std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - phase_t0)
                   .count());
    phase_t0 = std::chrono::steady_clock::now();
  };
  for (int round = 0; round < options.placement_rounds; ++round) {
    // Random processing priority simulates the local conflict resolution.
    std::vector<std::pair<std::uint64_t, int>> order;
    for (const int c : hard_acs)
      if (!placed[static_cast<std::size_t>(c)])
        order.emplace_back(hash_mix(options.seed, c, round), c);
    std::sort(order.begin(), order.end());
    for (const auto& [prio, c] : order) {
      const auto& members = acd.cliques[static_cast<std::size_t>(c)];
      for (int attempt = 0; attempt < 20; ++attempt) {
        const NodeId u = members[rng.below(members.size())];
        if (slack_used[u] || res.color[u] != kNoColor) continue;
        // External neighbor of u, not a loophole member (its easy clique
        // must keep its loophole intact), unblocked, uncolored.
        std::vector<NodeId> ext;
        for (const NodeId x : g.neighbors(u))
          if (acd.clique_of[x] != c && !pair_blocked[x] && !slack_used[x] &&
              res.color[x] == kNoColor && !loopholes.vertex_in_loophole(x))
            ext.push_back(x);
        if (ext.empty()) continue;
        const NodeId w = ext[rng.below(ext.size())];
        // Pair partner inside the clique, non-adjacent to w.
        std::vector<NodeId> inner;
        for (const NodeId x : members)
          if (x != u && !pair_blocked[x] && !slack_used[x] &&
              res.color[x] == kNoColor && g.has_edge(u, x) &&
              !g.has_edge(x, w))
            inner.push_back(x);
        if (inner.empty()) continue;
        const NodeId v = inner[rng.below(inner.size())];
        // Pair independence: all pairs share kTnodeColor, so neither v nor
        // w may touch an existing pair vertex.
        bool clash = false;
        for (const NodeId x : {v, w})
          for (const NodeId y : g.neighbors(x))
            if (res.color[y] == kTnodeColor) clash = true;
        if (clash) continue;
        res.color[v] = kTnodeColor;
        res.color[w] = kTnodeColor;
        triad_of_clique[static_cast<std::size_t>(c)] = Triad{u, v, w};
        placed[static_cast<std::size_t>(c)] = 1;
        slack_used[u] = 1;
        mark_ball(g, v, options.spacing, pair_blocked);
        mark_ball(g, w, options.spacing, pair_blocked);
        break;
      }
    }
    res.ledger.charge("rand-preshattering", 2 * options.spacing + 3);
  }
  end_phase("rand-preshattering");
  validate_partial_coloring(g, res.color, "rand-preshattering",
                            options.validate);
  for (const int c : hard_acs)
    if (placed[static_cast<std::size_t>(c)]) ++res.stats.tnodes_placed;
  res.stats.failed_cliques =
      static_cast<int>(hard_acs.size()) - res.stats.tnodes_placed;

  // ------------------------------------------------- Layering (coverage)
  // Constant-depth BFS balls around the slack vertices, through uncolored
  // hard vertices: everything covered is colored in post-processing
  // (outer layer first, slack vertex last). Vertices covered by no ball
  // form the shattered components.
  std::vector<int> layer(g.num_nodes(), -1);
  {
    std::queue<NodeId> q;
    for (const int c : hard_acs) {
      if (!placed[static_cast<std::size_t>(c)]) continue;
      const NodeId u = triad_of_clique[static_cast<std::size_t>(c)].slack;
      layer[u] = 0;
      q.push(u);
    }
    while (!q.empty()) {
      const NodeId x = q.front();
      q.pop();
      if (layer[x] >= options.layer_depth) continue;
      for (const NodeId y : g.neighbors(x)) {
        if (layer[y] != -1 || res.color[y] != kNoColor ||
            !hardness.in_hard[y])
          continue;
        layer[y] = layer[x] + 1;
        q.push(y);
      }
    }
    res.ledger.charge("rand-layering", options.layer_depth + 1);
    end_phase("rand-layering");
  }

  // ----------------------------------------------------- Post-shattering
  // Vertex-level components of the uncovered, uncolored hard vertices,
  // each colored by the modified deterministic pipeline. Components are
  // independent, so the (parallel) round cost is the maximum.
  {
    std::vector<int> comp_of(g.num_nodes(), -1);
    int num_comp = 0;
    std::vector<std::vector<NodeId>> comp_nodes_list;
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (comp_of[s] != -1 || !hardness.in_hard[s] ||
          res.color[s] != kNoColor || layer[s] != -1)
        continue;
      comp_nodes_list.emplace_back();
      std::queue<NodeId> q;
      comp_of[s] = num_comp;
      q.push(s);
      while (!q.empty()) {
        const NodeId x = q.front();
        q.pop();
        comp_nodes_list.back().push_back(x);
        for (const NodeId y : g.neighbors(x)) {
          if (comp_of[y] != -1 || !hardness.in_hard[y] ||
              res.color[y] != kNoColor || layer[y] != -1)
            continue;
          comp_of[y] = num_comp;
          q.push(y);
        }
      }
      ++num_comp;
    }
    res.stats.components = num_comp;

    std::int64_t max_comp_rounds = 0;
    for (int k = 0; k < num_comp; ++k) {
      RoundLedger comp_ledger;
      const std::vector<NodeId>& nodes =
          comp_nodes_list[static_cast<std::size_t>(k)];
      // Deliberate materialization (not a lazy view): each shattered
      // component — size poly(Delta) * log n by the shattering lemma —
      // hosts a full nested pipeline (component ACD, Algorithm 2, BFS
      // layering) that needs a first-class Graph with its own id space.
      const Subgraph sub = induced_subgraph(g, nodes);
      const NodeId nn = sub.graph.num_nodes();
      res.stats.max_component_vertices = std::max(
          res.stats.max_component_vertices, static_cast<int>(nn));

      // Pseudo-loopholes: slack through an uncolored outside neighbor or
      // two same-colored neighbors (T-node pairs seen twice).
      NodeMask pseudo(nn, 0);
      for (NodeId i = 0; i < nn; ++i) {
        const NodeId v = sub.orig_of[i];
        int tnode_nbrs = 0;
        for (const NodeId y : g.neighbors(v)) {
          if (sub.sub_of[y] != kNoNode) continue;
          if (res.color[y] == kNoColor)
            pseudo[i] = 1;
          else if (res.color[y] == kTnodeColor)
            ++tnode_nbrs;
        }
        if (tnode_nbrs >= 2) pseudo[i] = 1;
      }

      // Component-local ACD: group the component's vertices by their
      // global almost clique.
      Acd acd_c;
      acd_c.epsilon = options.acd.epsilon;
      acd_c.clique_of.assign(nn, -1);
      {
        std::map<int, int> local_index;  // global AC -> local AC
        for (NodeId i = 0; i < nn; ++i) {
          const int c = acd.clique_of[sub.orig_of[i]];
          DC_CHECK(c != -1);
          const auto [it, inserted] =
              local_index.try_emplace(c, static_cast<int>(acd_c.cliques.size()));
          if (inserted) acd_c.cliques.emplace_back();
          acd_c.clique_of[i] = it->second;
          acd_c.cliques[static_cast<std::size_t>(it->second)].push_back(i);
        }
      }
      Hardness hard_c;
      hard_c.is_hard.assign(acd_c.cliques.size(), true);
      hard_c.in_hard.assign(nn, false);
      for (NodeId i = 0; i < nn; ++i)
        if (pseudo[i] && acd_c.clique_of[i] != -1)
          hard_c.is_hard[static_cast<std::size_t>(acd_c.clique_of[i])] = false;
      for (NodeId i = 0; i < nn; ++i) {
        const int c = acd_c.clique_of[i];
        if (c != -1 && hard_c.is_hard[static_cast<std::size_t>(c)])
          hard_c.in_hard[i] = true;
      }
      for (const bool ishard : hard_c.is_hard)
        ishard ? ++hard_c.num_hard : ++hard_c.num_easy;

      // Per-node lists: the full palette minus colors of outside
      // neighbors (only kTnodeColor can be present at this stage). Built
      // directly into flat CSR storage.
      ColorLists lists;
      lists.reserve(nn, static_cast<std::size_t>(nn) *
                            static_cast<std::size_t>(delta));
      PaletteSet avail(delta);
      for (NodeId i = 0; i < nn; ++i) {
        avail.reset(delta);
        avail.fill();
        for (const NodeId y : g.neighbors(sub.orig_of[i]))
          if (sub.sub_of[y] == kNoNode) avail.erase(res.color[y]);
        avail.for_each([&](Color c) { lists.push(c); });
        lists.close_list();
      }

      std::vector<Color> comp_color(nn, kNoColor);
      HardColoringParams hp = options.hard;
      hp.palette_floor = 1;  // pair color space {1..Delta-1} (Section 4)
      hp.delta_override = delta;
      hp.allow_useless = true;
      hp.node_lists = lists;
      hp.seed = hash_mix(options.seed, 77, k);
      LocalContext comp_ctx(comp_ledger, options.engine, hp.seed);
      const HardColoringOutcome outcome = color_hard_cliques(
          sub.graph, acd_c, hard_c, comp_color, hp, comp_ctx);
      DC_CHECK_MSG(outcome.demotions.empty(),
                   "unexpected demotion inside a shattered component");

      // Easy-in-component: BFS layering from pseudo-loopholes through the
      // still-uncolored component vertices, colored outside-in, then the
      // pseudo-loophole vertices themselves (their slack lives outside).
      {
        std::vector<int> layer(nn, -1);
        std::queue<NodeId> q;
        for (NodeId i = 0; i < nn; ++i) {
          if (pseudo[i] && comp_color[i] == kNoColor) {
            layer[i] = 0;
            q.push(i);
          }
        }
        int max_layer = 0;
        while (!q.empty()) {
          const NodeId x = q.front();
          q.pop();
          for (const NodeId y : sub.graph.neighbors(x)) {
            if (layer[y] != -1 || comp_color[y] != kNoColor) continue;
            layer[y] = layer[x] + 1;
            max_layer = std::max(max_layer, layer[y]);
            q.push(y);
          }
        }
        for (NodeId i = 0; i < nn; ++i)
          DC_CHECK_MSG(comp_color[i] != kNoColor || layer[i] != -1,
                       "component vertex unreachable from any slack source");
        for (int l = max_layer; l >= 0; --l) {
          NodeMask active(nn, 0);
          for (NodeId i = 0; i < nn; ++i)
            active[i] = layer[i] == l && comp_color[i] == kNoColor;
          ScopedPhase phase(comp_ctx, "rand-component-layers");
          deg_plus_one_list_color(sub.graph, active, lists, comp_color,
                                  comp_ctx);
        }
      }
      for (NodeId i = 0; i < nn; ++i) {
        DC_CHECK(comp_color[i] != kNoColor);
        res.color[sub.orig_of[i]] = comp_color[i];
      }
      max_comp_rounds = std::max(max_comp_rounds, comp_ledger.total());
    }
    res.stats.max_component_rounds = static_cast<int>(max_comp_rounds);
    res.ledger.charge("rand-postshattering", max_comp_rounds);
    end_phase("rand-postshattering");
    validate_partial_coloring(g, res.color, "rand-postshattering",
                              options.validate);
  }

  // ------------------------------------------------------ Post-processing
  // The covered region, outer layer first (each layer-i vertex keeps its
  // uncolored layer-(i-1) neighbor as slack), slack vertices last (their
  // same-colored pair grants permanent slack); then easy cliques and
  // loopholes (Algorithm 3).
  const auto full_lists = uniform_lists(g, delta);
  for (int l = options.layer_depth; l >= 1; --l) {
    NodeMask active(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      active[v] = layer[v] == l && res.color[v] == kNoColor;
    ScopedPhase phase(lctx, "rand-postprocessing");
    deg_plus_one_list_color(g, active, full_lists, res.color, lctx);
  }
  {
    NodeMask active(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      active[v] = layer[v] == 0 && res.color[v] == kNoColor;
    ScopedPhase phase(lctx, "rand-postprocessing");
    deg_plus_one_list_color(g, active, full_lists, res.color, lctx);
  }
  end_phase("rand-postprocessing");
  validate_partial_coloring(g, res.color, "rand-postprocessing",
                            options.validate);
  color_easy_and_loopholes(g, loopholes, res.color, lctx, "rand-easy");
  end_phase("rand-easy");
  validate_partial_coloring(g, res.color, "rand-easy", options.validate);

  if (options.verify || options.validate != ValidateMode::kOff) {
    if (options.validate != ValidateMode::kOff && FaultInjector::armed())
      FaultInjector::global().maybe_corrupt_coloring("final", g, res.color);
    res.valid = is_delta_coloring(g, res.color);
    if (options.validate != ValidateMode::kOff) {
      validate_final_coloring(g, res.color, res.valid, "final",
                              options.validate);
    } else {
      DC_CHECK_MSG(res.valid, "randomized coloring invalid: "
                                  << check_coloring(g, res.color).describe());
    }
  }
  return res;
}

}  // namespace deltacolor
