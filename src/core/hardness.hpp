// Hard/easy almost-clique classification (Definition 8) and the structural
// consequences of hardness (Lemma 9), verified at runtime.
#pragma once

#include <string>
#include <vector>

#include "acd/acd.hpp"
#include "core/loopholes.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

struct Hardness {
  /// Per AC: true iff no detected loophole intersects it.
  std::vector<bool> is_hard;
  /// Per node: member of a hard clique.
  std::vector<bool> in_hard;
  int num_hard = 0;
  int num_easy = 0;
};

/// Classifies ACs. When `verify_lemma9` is set (default), every hard clique
/// is checked against Lemma 9: it is a clique, every member has degree
/// exactly Delta, and no outsider has two neighbors inside — violations
/// throw, since they would certify a loophole the detector missed.
Hardness classify_hardness(const Graph& g, const Acd& acd,
                           const LoopholeSet& loopholes,
                           bool verify_lemma9 = true);

}  // namespace deltacolor
