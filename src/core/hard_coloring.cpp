#include "core/hard_coloring.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "graph/checker.hpp"
#include "primitives/degree_splitting.hpp"
#include "primitives/heg.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/maximal_matching.hpp"

namespace deltacolor {

namespace {

struct Context {
  const Graph& g;
  const Acd& acd;
  const Hardness& hardness;
  const HardColoringParams& params;
  int delta;

  std::vector<int> hard_rank;  // AC index -> dense rank among hard, -1
  std::vector<int> hard_acs;   // rank -> AC index
  NodeMask in_heg_clique;      // per AC (by index): member of C_HEG
  int k_eff = 0;
  int levels_eff = 0;
};

// Oriented F2/F3 edge: tail in the grabbing clique, head outside.
struct OrientedEdge {
  NodeId tail = kNoNode;
  NodeId head = kNoNode;
};

}  // namespace

HardColoringOutcome color_hard_cliques(const Graph& g, const Acd& acd,
                                       const Hardness& hardness,
                                       std::vector<Color>& color,
                                       const HardColoringParams& params,
                                       LocalContext& lctx) {
  RoundLedger& ledger = lctx.ledger();
  HardColoringOutcome out;
  HardColoringStats& st = out.stats;
  st.num_hard = hardness.num_hard;
  if (hardness.num_hard == 0) return out;

  Context ctx{g,
              acd,
              hardness,
              params,
              params.delta_override > 0 ? params.delta_override
                                        : g.max_degree(),
              {},
              {},
              {},
              0,
              0};
  ctx.hard_rank.assign(acd.cliques.size(), -1);
  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    if (!hardness.is_hard[c]) continue;
    ctx.hard_rank[c] = static_cast<int>(ctx.hard_acs.size());
    ctx.hard_acs.push_back(static_cast<int>(c));
  }
  for (const int c : ctx.hard_acs)
    for (const NodeId v : acd.cliques[static_cast<std::size_t>(c)])
      DC_CHECK_MSG(color[v] == kNoColor,
                   "hard vertex " << v << " pre-colored");

  // ---------------------------------------------------------------- Phase 1
  // Maximal matching F1 on edges between hard cliques.
  std::vector<NodeId> hard_nodes;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (hardness.in_hard[v]) hard_nodes.push_back(v);
  std::vector<NodeId> sub_of(g.num_nodes(), kNoNode);
  for (NodeId i = 0; i < hard_nodes.size(); ++i) sub_of[hard_nodes[i]] = i;
  std::vector<std::pair<NodeId, NodeId>> cross_pairs;
  for (const NodeId v : hard_nodes) {
    for (const NodeId u : g.neighbors(v)) {
      if (u < v || !hardness.in_hard[u]) continue;
      if (acd.clique_of[u] == acd.clique_of[v]) continue;
      cross_pairs.emplace_back(sub_of[v], sub_of[u]);
    }
  }
  Graph hx(static_cast<NodeId>(hard_nodes.size()), std::move(cross_pairs));
  {
    std::vector<std::uint64_t> ids(hard_nodes.size());
    for (NodeId i = 0; i < hard_nodes.size(); ++i) ids[i] = g.id(hard_nodes[i]);
    hx.set_ids(std::move(ids));
  }
  // T_MM realized by the Panconesi-Rizzi O(Delta + log* n) matcher [PR01].
  const auto f1_flags = [&] {
    ScopedPhase phase(lctx, "phase1-matching");
    return maximal_matching_pr(hx, lctx);
  }();
  std::vector<std::pair<NodeId, NodeId>> f1;  // host endpoints
  std::vector<int> f1_at(g.num_nodes(), -1);  // host vertex -> F1 edge index
  for (EdgeId e = 0; e < hx.num_edges(); ++e) {
    if (!f1_flags[e]) continue;
    const auto [a, b] = hx.endpoints(e);
    const NodeId u = hard_nodes[a], v = hard_nodes[b];
    f1_at[u] = f1_at[v] = static_cast<int>(f1.size());
    f1.emplace_back(u, v);
  }
  st.f1_edges = static_cast<int>(f1.size());
  if (params.trace != nullptr) params.trace->f1 = f1;

  // C_HEG: hard cliques where every member has a neighbor in another hard
  // clique.
  ctx.in_heg_clique.assign(acd.cliques.size(), 0);
  NodeMask useful(g.num_nodes(), 0);
  for (const int c : ctx.hard_acs) {
    int useful_members = 0;
    const auto& members = acd.cliques[static_cast<std::size_t>(c)];
    for (const NodeId v : members) {
      for (const NodeId u : g.neighbors(v)) {
        if (hardness.in_hard[u] && acd.clique_of[u] != c) {
          useful[v] = true;
          ++useful_members;
          break;
        }
      }
    }
    // Deterministic rule (Section 3.2): every member must reach another
    // hard clique. The randomized variant tolerates "useless" members
    // (Section 4) as long as enough proposals remain.
    const bool in_heg =
        params.allow_useless
            ? useful_members >= std::min<int>(4, static_cast<int>(members.size()))
            : useful_members == static_cast<int>(members.size());
    ctx.in_heg_clique[static_cast<std::size_t>(c)] = in_heg;
    if (in_heg)
      ++st.num_heg_cliques;
    else
      ++st.type2;
  }
  st.type1 = st.num_heg_cliques;

  // Sub-clique count: the paper's constant 28 presumes |C| >= 56; smaller
  // cliques scale it down so that sub-cliques keep >= 2 members (Lemma 11's
  // slack) — recorded for the ablation bench.
  int min_heg_clique = ctx.delta + 2;
  for (const int c : ctx.hard_acs)
    if (ctx.in_heg_clique[static_cast<std::size_t>(c)])
      min_heg_clique = std::min(
          min_heg_clique,
          static_cast<int>(acd.cliques[static_cast<std::size_t>(c)].size()));
  // Sub-cliques need >= 3 members so that delta_H = |Q| clears 1.1 * r_H
  // even on e_C = 1 instances where every F1 edge draws exactly two
  // proposals (mirroring the paper's 63/28 >= 2.25 > 2.2 arithmetic).
  ctx.k_eff = params.subclique_count;
  if (params.scale_for_delta)
    ctx.k_eff = std::max(
        2, std::min(params.subclique_count, min_heg_clique / 3));
  ctx.levels_eff = ctx.k_eff >= 16 ? params.split_levels : 1;

  // f(v) and phi(v) for members of C_HEG cliques (Section 3.3).
  std::vector<NodeId> f_of(g.num_nodes(), kNoNode);
  std::vector<int> phi_of(g.num_nodes(), -1);
  std::vector<int> subclique_of(g.num_nodes(), -1);
  for (const int c : ctx.hard_acs) {
    if (!ctx.in_heg_clique[static_cast<std::size_t>(c)]) continue;
    const auto& members = acd.cliques[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < members.size(); ++i) {
      const NodeId v = members[i];
      subclique_of[v] = static_cast<int>(i) % ctx.k_eff;
      if (!useful[v]) {
        DC_CHECK_MSG(params.allow_useless,
                     "C_HEG member without cross neighbor");
        continue;  // a useless member sends no proposal (Section 4)
      }
      if (f1_at[v] != -1) {
        f_of[v] = v;
      } else {
        NodeId best = kNoNode;
        for (const NodeId u : g.neighbors(v)) {
          if (!hardness.in_hard[u] || acd.clique_of[u] == c) continue;
          if (best == kNoNode || g.id(u) < g.id(best)) best = u;
        }
        DC_CHECK_MSG(best != kNoNode, "C_HEG member without cross neighbor");
        DC_CHECK_MSG(f1_at[best] != -1,
                     "maximality violated: unmatched cross neighbor");
        f_of[v] = best;
      }
      phi_of[v] = f1_at[f_of[v]];
    }
    // Lemma 10 (clique-level): members request distinct edges. A collision
    // certifies a 4-cycle loophole (u, f(u), f(v), v) — report for retry.
    std::map<int, NodeId> seen;
    for (const NodeId v : members) {
      if (phi_of[v] == -1) continue;
      const auto [it, inserted] = seen.try_emplace(phi_of[v], v);
      if (!inserted) {
        const NodeId u = it->second;
        Loophole witness{{u, f_of[u], f_of[v], v}};
        DC_CHECK_MSG(is_valid_loophole(g, witness),
                     "phi collision without certifying loophole");
        out.demotions.push_back(std::move(witness));
      }
    }
  }
  if (!out.demotions.empty()) return out;

  // Hypergraph H: one vertex per sub-clique, one hyperedge per requested F1
  // edge (Section 3.3).
  Hypergraph h;
  h.num_vertices = st.num_heg_cliques * ctx.k_eff;
  std::vector<int> heg_rank_of(acd.cliques.size(), -1);
  {
    int r = 0;
    for (const int c : ctx.hard_acs)
      if (ctx.in_heg_clique[static_cast<std::size_t>(c)])
        heg_rank_of[static_cast<std::size_t>(c)] = r++;
  }
  std::vector<std::vector<std::pair<int, NodeId>>> proposals(f1.size());
  for (const int c : ctx.hard_acs) {
    if (!ctx.in_heg_clique[static_cast<std::size_t>(c)]) continue;
    for (const NodeId v : acd.cliques[static_cast<std::size_t>(c)]) {
      if (phi_of[v] == -1) continue;  // useless member, no proposal
      const int sq = heg_rank_of[static_cast<std::size_t>(c)] * ctx.k_eff +
                     subclique_of[v];
      proposals[static_cast<std::size_t>(phi_of[v])].emplace_back(sq, v);
    }
  }
  // Compact away sub-cliques that sent no proposal (possible only with
  // tolerated useless members): they cannot grab and must not count as
  // HEG vertices.
  std::vector<int> compact_of(static_cast<std::size_t>(st.num_heg_cliques) *
                                  ctx.k_eff,
                              -1);
  {
    int next = 0;
    for (const auto& plist : proposals)
      for (const auto& [sq, v] : plist)
        if (compact_of[static_cast<std::size_t>(sq)] == -1)
          compact_of[static_cast<std::size_t>(sq)] = next++;
    h.num_vertices = next;
  }
  std::vector<int> hyperedge_f1;  // hyperedge index -> F1 edge index
  for (std::size_t e = 0; e < f1.size(); ++e) {
    if (proposals[e].empty()) continue;
    std::vector<int> members;
    for (const auto& [sq, v] : proposals[e])
      members.push_back(compact_of[static_cast<std::size_t>(sq)]);
    std::sort(members.begin(), members.end());
    DC_CHECK_MSG(std::adjacent_find(members.begin(), members.end()) ==
                     members.end(),
                 "sub-clique proposes twice to one edge (Lemma 10)");
    h.edges.push_back(std::move(members));
    hyperedge_f1.push_back(static_cast<int>(e));
  }
  h.build_incidence();
  st.heg_vertices = h.num_vertices;
  st.heg_hyperedges = static_cast<int>(h.edges.size());
  if (h.num_vertices > 0 && !h.edges.empty()) {
    st.heg_min_degree = h.min_degree();
    st.heg_rank = h.rank();
    st.heg_ratio = st.heg_rank > 0 ? static_cast<double>(st.heg_min_degree) /
                                         st.heg_rank
                                   : 0.0;
    st.lemma11_ok = st.heg_min_degree > 1.1 * st.heg_rank;
  }

  std::vector<OrientedEdge> f2;
  std::vector<std::vector<int>> outgoing_f2(ctx.hard_acs.size());
  if (!h.edges.empty()) {
    const HegResult heg = [&] {
      ScopedPhase phase(lctx, "phase1-heg");
      return solve_heg(h, lctx);
    }();
    st.heg_complete = heg.complete;
    st.heg_rounds = heg.rounds;
    // F2: the grabbing sub-clique's proposer v_e re-points the edge to
    // {v_e, f(v_e)}, oriented out of the grabbing clique.
    std::vector<int> f2_at(g.num_nodes(), -1);
    for (std::size_t he = 0; he < h.edges.size(); ++he) {
      const int grabber_sq = heg.grabber[he];
      if (grabber_sq == -1) continue;
      NodeId ve = kNoNode;
      for (const auto& [sq, v] :
           proposals[static_cast<std::size_t>(hyperedge_f1[he])]) {
        if (compact_of[static_cast<std::size_t>(sq)] == grabber_sq) {
          ve = v;
          break;
        }
      }
      DC_CHECK(ve != kNoNode);
      OrientedEdge oe;
      oe.tail = ve;
      if (f_of[ve] == ve) {
        // v_e owns the F1 edge; F2 keeps it, oriented outward.
        const auto [a, b] = f1[static_cast<std::size_t>(hyperedge_f1[he])];
        oe.head = a == ve ? b : a;
      } else {
        oe.head = f_of[ve];
      }
      DC_CHECK(g.has_edge(oe.tail, oe.head));
      // Lemma 12: F2 is a matching.
      DC_CHECK_MSG(f2_at[oe.tail] == -1 && f2_at[oe.head] == -1,
                   "F2 is not a matching at edge (" << oe.tail << ","
                                                    << oe.head << ")");
      f2_at[oe.tail] = f2_at[oe.head] = static_cast<int>(f2.size());
      const int rank =
          ctx.hard_rank[static_cast<std::size_t>(acd.clique_of[oe.tail])];
      outgoing_f2[static_cast<std::size_t>(rank)].push_back(
          static_cast<int>(f2.size()));
      f2.push_back(oe);
    }
  }
  st.f2_edges = static_cast<int>(f2.size());
  if (params.trace != nullptr) {
    params.trace->f2.clear();
    for (const OrientedEdge& oe : f2)
      params.trace->f2.emplace_back(oe.tail, oe.head);
  }
  st.min_outgoing_f2 = ctx.delta + 1;
  for (const int c : ctx.hard_acs) {
    if (!ctx.in_heg_clique[static_cast<std::size_t>(c)]) continue;
    const int rank = ctx.hard_rank[static_cast<std::size_t>(c)];
    st.min_outgoing_f2 = std::min(
        st.min_outgoing_f2,
        static_cast<int>(outgoing_f2[static_cast<std::size_t>(rank)].size()));
  }
  if (st.num_heg_cliques == 0) st.min_outgoing_f2 = 0;

  // ---------------------------------------------------------------- Phase 2
  // Degree splitting on the virtual multigraph G_Q (Q+ and Q- per hard
  // clique), keeping the first of 2^levels parts; then discard outgoing
  // edges beyond two per clique (Lemma 13).
  std::vector<int> chosen(f2.size(), 0);  // 1 = retained in F3
  {
    std::vector<std::pair<int, int>> gq_edges(f2.size());
    for (std::size_t k = 0; k < f2.size(); ++k) {
      const int tc =
          ctx.hard_rank[static_cast<std::size_t>(acd.clique_of[f2[k].tail])];
      const int hc =
          ctx.hard_rank[static_cast<std::size_t>(acd.clique_of[f2[k].head])];
      gq_edges[k] = {2 * tc, 2 * hc + 1};
    }
    if (!gq_edges.empty()) {
      RoundLedger split_ledger;
      LocalContext split_ctx(split_ledger, lctx.engine(), params.seed);
      const auto split = degree_split_edges(
          2 * static_cast<int>(ctx.hard_acs.size()), gq_edges,
          ctx.levels_eff, params.split_segment_length, params.seed,
          split_ctx);
      // One virtual G_Q round costs <= 3 real rounds (clique diameter 1 +
      // crossing edge).
      ledger.charge("phase2-split", split_ledger.total(), 3);
      for (std::size_t k = 0; k < f2.size(); ++k)
        chosen[k] = split.part[k] == 0 ? 1 : 0;
    }
  }
  // Per clique: exactly two outgoing edges survive.
  std::vector<std::vector<int>> final_out(ctx.hard_acs.size());
  st.min_outgoing_f3 = 2;
  for (std::size_t r = 0; r < ctx.hard_acs.size(); ++r) {
    auto& result = final_out[r];
    for (const int k : outgoing_f2[r])
      if (chosen[static_cast<std::size_t>(k)] && result.size() < 2)
        result.push_back(k);
    if (result.size() < 2 && outgoing_f2[r].size() >= 2) {
      // Splitter fell short (possible: its guarantee is epsilon*deg + O(1)
      // and K/2^levels must clear 2); top back up from F2 — diagnosed, and
      // accounted in the incoming bound check below.
      for (const int k : outgoing_f2[r]) {
        if (result.size() >= 2) break;
        if (!chosen[static_cast<std::size_t>(k)]) result.push_back(k);
      }
      ++st.split_fallbacks;
    }
    if (ctx.in_heg_clique[static_cast<std::size_t>(ctx.hard_acs[r])])
      st.min_outgoing_f3 =
          std::min(st.min_outgoing_f3, static_cast<int>(result.size()));
  }
  // Final F3 flags + incoming counts.
  std::vector<int> incoming(ctx.hard_acs.size(), 0);
  st.f3_edges = 0;
  {
    NodeMask in_f3(f2.size(), 0);
    for (const auto& result : final_out)
      for (const int k : result) in_f3[static_cast<std::size_t>(k)] = 1;
    for (std::size_t k = 0; k < f2.size(); ++k) {
      if (!in_f3[k]) continue;
      ++st.f3_edges;
      ++incoming[static_cast<std::size_t>(ctx.hard_rank[static_cast<
          std::size_t>(acd.clique_of[f2[k].head])])];
    }
  }
  if (params.trace != nullptr) {
    params.trace->f3_of_f2.clear();
    for (const auto& result : final_out)
      for (const int k : result) params.trace->f3_of_f2.push_back(k);
  }
  st.max_incoming_f3 = 0;
  for (const int inc : incoming) st.max_incoming_f3 = std::max(st.max_incoming_f3, inc);
  st.lemma13_ok =
      st.max_incoming_f3 <
      0.5 * (ctx.delta - 2 * params.epsilon * ctx.delta - 1) + 1e-9;

  // ---------------------------------------------------------------- Phase 3
  // Slack triads (Definition 14, Lemma 15).
  struct Triad {
    NodeId slack = kNoNode;  // u
    NodeId pair_in = kNoNode;   // v, inside the clique
    NodeId pair_out = kNoNode;  // w, outside
    int clique_rank = -1;
  };
  std::vector<Triad> triads;
  NodeMask used(g.num_nodes(), 0);
  NodeMask has_triad(ctx.hard_acs.size(), 0);
  for (std::size_t r = 0; r < ctx.hard_acs.size(); ++r) {
    if (final_out[r].size() < 2) continue;
    const OrientedEdge& e1 = f2[static_cast<std::size_t>(final_out[r][0])];
    const OrientedEdge& e2 = f2[static_cast<std::size_t>(final_out[r][1])];
    Triad t;
    t.slack = e1.tail;
    t.pair_out = e1.head;
    t.pair_in = e2.tail;
    t.clique_rank = static_cast<int>(r);
    DC_CHECK(t.slack != t.pair_in);
    DC_CHECK(g.has_edge(t.slack, t.pair_in));
    DC_CHECK_MSG(!g.has_edge(t.pair_in, t.pair_out),
                 "slack pair adjacent — Lemma 9.3 should have excluded this");
    for (const NodeId x : {t.slack, t.pair_in, t.pair_out}) {
      DC_CHECK_MSG(!used[x], "slack triads overlap at vertex " << x);
      used[x] = 1;
    }
    has_triad[r] = 1;
    triads.push_back(t);
  }
  st.num_triads = static_cast<int>(triads.size());
  ledger.charge("phase3-triads", 2);
  {
    std::vector<int> pairs_per_clique(ctx.hard_acs.size(), 0);
    for (const Triad& t : triads) {
      ++pairs_per_clique[static_cast<std::size_t>(t.clique_rank)];
      const int hc = ctx.hard_rank[static_cast<std::size_t>(
          acd.clique_of[t.pair_out])];
      if (hc != -1) ++pairs_per_clique[static_cast<std::size_t>(hc)];
    }
    for (const int k : pairs_per_clique)
      st.max_slack_pairs_per_clique = std::max(st.max_slack_pairs_per_clique, k);
  }

  // --------------------------------------------------------------- Phase 4A
  // Virtual conflict graph G_V over slack pairs; deg+1-list coloring with
  // palette {palette_floor, .., Delta-1}; both pair members same-colored.
  std::vector<int> triad_of(g.num_nodes(), -1);
  for (std::size_t t = 0; t < triads.size(); ++t) {
    triad_of[triads[t].pair_in] = static_cast<int>(t);
    triad_of[triads[t].pair_out] = static_cast<int>(t);
  }
  NodeMask dropped(triads.size(), 0);
  auto gv_degree = [&](std::size_t t) {
    std::vector<int> nbrs;
    for (const NodeId x : {triads[t].pair_in, triads[t].pair_out}) {
      for (const NodeId y : g.neighbors(x)) {
        const int o = triad_of[y];
        if (o != -1 && o != static_cast<int>(t) &&
            !dropped[static_cast<std::size_t>(o)])
          nbrs.push_back(o);
      }
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    return static_cast<int>(nbrs.size());
  };
  st.max_gv_degree = -1;
  for (std::size_t t = 0; t < triads.size(); ++t)
    st.max_gv_degree = std::max(st.max_gv_degree, gv_degree(t));
  st.lemma16_ok = st.max_gv_degree <= ctx.delta - 2;
  // Drop pairs that cannot be list-colored (only possible if Lemma 16's
  // bound failed, e.g. under non-paper parameters).
  const int palette_size = ctx.delta - params.palette_floor;
  for (bool again = true; again;) {
    again = false;
    for (std::size_t t = 0; t < triads.size(); ++t) {
      if (dropped[t]) continue;
      if (gv_degree(t) + 1 > palette_size) {
        dropped[t] = 1;
        has_triad[static_cast<std::size_t>(triads[t].clique_rank)] = 0;
        triad_of[triads[t].pair_in] = -1;
        triad_of[triads[t].pair_out] = -1;
        for (const NodeId x :
             {triads[t].slack, triads[t].pair_in, triads[t].pair_out})
          used[x] = 0;
        ++st.dropped_triads;
        again = true;
      }
    }
  }
  {
    // Materialize G_V on the surviving pairs.
    std::vector<int> gv_index(triads.size(), -1);
    std::vector<std::size_t> live;
    for (std::size_t t = 0; t < triads.size(); ++t) {
      if (dropped[t]) continue;
      gv_index[t] = static_cast<int>(live.size());
      live.push_back(t);
    }
    std::vector<std::pair<NodeId, NodeId>> gv_edges;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::size_t t = live[i];
      for (const NodeId x : {triads[t].pair_in, triads[t].pair_out}) {
        for (const NodeId y : g.neighbors(x)) {
          const int o = triad_of[y];
          if (o == -1 || o == static_cast<int>(t)) continue;
          const int j = gv_index[static_cast<std::size_t>(o)];
          if (j > static_cast<int>(i))
            gv_edges.emplace_back(static_cast<NodeId>(i),
                                  static_cast<NodeId>(j));
        }
      }
    }
    Graph gv(static_cast<NodeId>(live.size()), std::move(gv_edges));
    std::vector<std::uint64_t> ids(live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
      ids[i] = std::min(g.id(triads[live[i]].pair_in),
                        g.id(triads[live[i]].pair_out));
    gv.set_ids(std::move(ids));

    ColorLists lists;
    lists.reserve(live.size(),
                  live.size() * static_cast<std::size_t>(ctx.delta));
    PaletteSet avail(ctx.delta);
    for (std::size_t i = 0; i < live.size(); ++i) {
      // Palette minus the colors already present on real neighbors of
      // either pair member (relevant in the randomized post-shattering
      // variant where T-node pairs are pre-colored).
      avail.reset(ctx.delta);
      avail.fill();
      const std::size_t t = live[i];
      for (const NodeId x : {triads[t].pair_in, triads[t].pair_out})
        for (const NodeId y : g.neighbors(x)) avail.erase(color[y]);
      for (Color c = params.palette_floor; c < ctx.delta; ++c)
        if (avail.contains(c)) lists.push(c);
      lists.close_list();
    }
    std::vector<Color> gv_color(live.size(), kNoColor);
    NodeMask active(live.size(), 1);
    RoundLedger gv_ledger;
    if (!live.empty()) {
      LocalContext gv_ctx(gv_ledger, lctx.engine(), params.seed);
      ScopedPhase phase(gv_ctx, "phase4a-pairs");
      deg_plus_one_list_color(gv, active, lists, gv_color, gv_ctx);
    }
    ledger.charge("phase4a-pairs", gv_ledger.total(), 3);  // dilation 3
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::size_t t = live[i];
      color[triads[t].pair_in] = gv_color[i];
      color[triads[t].pair_out] = gv_color[i];
    }
  }

  if (params.trace != nullptr) {
    params.trace->triads.clear();
    for (std::size_t t = 0; t < triads.size(); ++t) {
      PipelineTrace::TriadRecord rec;
      rec.slack = triads[t].slack;
      rec.pair_in = triads[t].pair_in;
      rec.pair_out = triads[t].pair_out;
      rec.clique = ctx.hard_acs[static_cast<std::size_t>(
          triads[t].clique_rank)];
      rec.dropped = dropped[t];
      rec.pair_color = dropped[t] ? kNoColor : color[triads[t].pair_in];
      params.trace->triads.push_back(rec);
    }
  }

  // --------------------------------------------------------------- Phase 4B
  // Two deg+1-list instances (Lemma 17).
  NodeMask second_wave(g.num_nodes(), 0);
  for (std::size_t t = 0; t < triads.size(); ++t)
    if (!dropped[t]) second_wave[triads[t].slack] = 1;
  // Cliques without a triad designate one member with a non-hard neighbor
  // (Type II: the adjacent easy clique is colored later and grants slack).
  for (std::size_t r = 0; r < ctx.hard_acs.size(); ++r) {
    if (has_triad[r]) continue;
    const auto& members =
        acd.cliques[static_cast<std::size_t>(ctx.hard_acs[r])];
    NodeId designated = kNoNode;
    for (const NodeId v : members) {
      if (color[v] != kNoColor) continue;  // pair member of a foreign triad
      for (const NodeId u : g.neighbors(v)) {
        if (!hardness.in_hard[u] && color[u] == kNoColor) {
          designated = v;
          break;
        }
      }
      if (designated != kNoNode) break;
    }
    DC_CHECK_MSG(designated != kNoNode,
                 "triadless hard clique " << ctx.hard_acs[r]
                                          << " has no easy-adjacent member");
    second_wave[designated] = 1;
  }

  ColorLists uniform_storage;
  if (params.node_lists.empty())
    uniform_storage = uniform_lists(g, ctx.delta);
  const ColorLists& full_lists =
      params.node_lists.empty() ? uniform_storage : params.node_lists;
  {
    NodeMask active(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      active[v] = hardness.in_hard[v] && color[v] == kNoColor &&
                  !second_wave[v];
    ScopedPhase phase(lctx, "phase4b-rest");
    deg_plus_one_list_color(g, active, full_lists, color, lctx);
  }
  {
    NodeMask active(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      active[v] = second_wave[v] && color[v] == kNoColor;
    ScopedPhase phase(lctx, "phase4b-rest");
    deg_plus_one_list_color(g, active, full_lists, color, lctx);
  }
  for (const NodeId v : hard_nodes)
    DC_CHECK_MSG(color[v] != kNoColor, "hard vertex " << v << " uncolored");
  return out;
}

}  // namespace deltacolor
