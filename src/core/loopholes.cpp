#include "core/loopholes.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace deltacolor {

bool is_valid_loophole(const Graph& g, const Loophole& l) {
  const auto& vs = l.vertices;
  if (vs.empty()) return false;
  for (const NodeId v : vs)
    if (v >= g.num_nodes()) return false;
  if (vs.size() == 1) return g.degree(vs[0]) < g.max_degree();
  // Even cycle of distinct vertices...
  if (vs.size() % 2 != 0 || vs.size() < 4) return false;
  auto sorted = vs;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    return false;
  for (std::size_t i = 0; i < vs.size(); ++i)
    if (!g.has_edge(vs[i], vs[(i + 1) % vs.size()])) return false;
  // ...that does not induce a clique.
  for (std::size_t i = 0; i < vs.size(); ++i)
    for (std::size_t j = i + 1; j < vs.size(); ++j)
      if (!g.has_edge(vs[i], vs[j])) return true;
  return false;
}

void LoopholeSet::add(const Graph& g, Loophole l) {
  DC_CHECK(is_valid_loophole(g, l));
  const int idx = static_cast<int>(loopholes.size());
  for (const NodeId v : l.vertices)
    if (vote_of[v] == -1) vote_of[v] = idx;
  loopholes.push_back(std::move(l));
}

std::optional<Loophole> find_loophole_through(const Graph& g, NodeId v,
                                              int max_vertices) {
  DC_CHECK(max_vertices <= 8);
  if (g.degree(v) < g.max_degree()) return Loophole{{v}};
  // DFS over simple paths from v; a neighbor closing back to v forms a
  // cycle, accepted if even, length >= 4, and non-clique.
  std::vector<NodeId> path{v};
  std::optional<Loophole> found;
  auto dfs = [&](auto&& self, NodeId x) -> void {
    if (found) return;
    for (const NodeId y : g.neighbors(x)) {
      if (found) return;
      if (y == v && path.size() >= 4 && path.size() % 2 == 0) {
        Loophole cand{path};
        if (is_valid_loophole(g, cand)) {
          found = std::move(cand);
          return;
        }
      }
      if (y == v) continue;
      if (static_cast<int>(path.size()) >= max_vertices) continue;
      if (std::find(path.begin(), path.end(), y) != path.end()) continue;
      path.push_back(y);
      self(self, y);
      path.pop_back();
    }
  };
  dfs(dfs, v);
  return found;
}

namespace {

// Deduplicating accumulator for detected loopholes + votes.
class Accumulator {
 public:
  Accumulator(const Graph& g, LoopholeSet& out) : g_(g), out_(out) {
    out_.vote_of.assign(g.num_nodes(), -1);
  }

  void add(Loophole l) {
    DC_CHECK_MSG(is_valid_loophole(g_, l),
                 "constructed witness is not a loophole");
    auto key = l.vertices;
    std::sort(key.begin(), key.end());
    const auto [it, inserted] =
        index_.try_emplace(std::move(key), out_.loopholes.size());
    if (inserted) out_.loopholes.push_back(std::move(l));
    const int idx = static_cast<int>(it->second);
    for (const NodeId v : out_.loopholes[static_cast<std::size_t>(idx)]
             .vertices)
      if (out_.vote_of[v] == -1) out_.vote_of[v] = idx;
  }

 private:
  const Graph& g_;
  LoopholeSet& out_;
  std::map<std::vector<NodeId>, std::size_t> index_;
};

}  // namespace

LoopholeSet find_loopholes_bruteforce(const Graph& g, int max_vertices) {
  LoopholeSet res;
  Accumulator acc(g, res);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (res.vote_of[v] != -1) continue;
    if (auto l = find_loophole_through(g, v, max_vertices)) acc.add(*l);
  }
  return res;
}

namespace {

// Common neighbors of u1, u2 restricted to clique `members`, excluding the
// given vertices; returns up to `want`.
std::vector<NodeId> common_in(const Graph& g, const std::vector<NodeId>& pool,
                              NodeId u1, NodeId u2,
                              const std::vector<NodeId>& exclude, int want) {
  std::vector<NodeId> out;
  for (const NodeId w : pool) {
    if (std::find(exclude.begin(), exclude.end(), w) != exclude.end())
      continue;
    if (g.has_edge(w, u1) && g.has_edge(w, u2)) {
      out.push_back(w);
      if (static_cast<int>(out.size()) == want) break;
    }
  }
  return out;
}

}  // namespace

LoopholeSet find_loopholes_dense(const Graph& g, const Acd& acd,
                                 RoundLedger& ledger,
                                 const std::string& phase) {
  LoopholeSet res;
  Accumulator acc(g, res);
  const int delta = g.max_degree();
  const NodeId n = g.num_nodes();

  // (a) degree loopholes.
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) < delta) acc.add(Loophole{{v}});

  // Internal degrees (needed by (b)); cliques flagged per AC.
  std::vector<bool> ac_is_clique(acd.cliques.size(), true);
  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    const auto& members = acd.cliques[c];
    for (const NodeId v : members) {
      int internal = 0;
      for (const NodeId u : g.neighbors(v))
        if (acd.clique_of[u] == static_cast<int>(c)) ++internal;
      if (internal != static_cast<int>(members.size()) - 1) {
        ac_is_clique[c] = false;
      }
    }
  }
  // (b) non-clique ACs: witness 4-cycle u1-u3-u2-u4 around a missing pair.
  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    if (ac_is_clique[c]) continue;
    const auto& members = acd.cliques[c];
    bool added = false;
    for (std::size_t i = 0; i < members.size() && !added; ++i) {
      for (std::size_t j = i + 1; j < members.size() && !added; ++j) {
        const NodeId u1 = members[i], u2 = members[j];
        if (g.has_edge(u1, u2)) continue;
        const auto mids = common_in(g, members, u1, u2, {u1, u2}, 2);
        if (mids.size() < 2) continue;
        acc.add(Loophole{{u1, mids[0], u2, mids[1]}});
        added = true;
      }
    }
    // If no witness closes, the AC is left to the runtime checks; with a
    // valid ACD (Lemma 2) the witness always exists (Lemma 9.1's proof).
  }

  // (c) outsiders with two neighbors in a foreign AC:
  // witness 4-cycle w-u1-c1-u2 with c1 in the AC non-adjacent to w.
  for (NodeId w = 0; w < n; ++w) {
    // Group neighbors by foreign AC.
    std::vector<std::pair<int, NodeId>> by_ac;
    for (const NodeId u : g.neighbors(w)) {
      const int c = acd.clique_of[u];
      if (c == -1 || c == acd.clique_of[w]) continue;
      by_ac.emplace_back(c, u);
    }
    std::sort(by_ac.begin(), by_ac.end());
    for (std::size_t i = 0; i + 1 < by_ac.size(); ++i) {
      if (by_ac[i].first != by_ac[i + 1].first) continue;
      const NodeId u1 = by_ac[i].second, u2 = by_ac[i + 1].second;
      const auto& members = acd.cliques[static_cast<std::size_t>(
          by_ac[i].first)];
      bool added = false;
      for (const NodeId c1 : members) {
        if (c1 == u1 || c1 == u2 || g.has_edge(c1, w)) continue;
        if (g.has_edge(c1, u1) && g.has_edge(c1, u2)) {
          acc.add(Loophole{{w, u1, c1, u2}});
          added = true;
          break;
        }
      }
      if (added) break;  // one witness per w suffices
    }
  }

  // Cross-edge bookkeeping for (d), (e), (f): up to two witnesses per AC
  // pair.
  std::map<std::pair<int, int>, std::vector<EdgeId>> pair_edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const int cu = acd.clique_of[u], cv = acd.clique_of[v];
    if (cu == -1 || cv == -1 || cu == cv) continue;
    auto& lst = pair_edges[{std::min(cu, cv), std::max(cu, cv)}];
    if (lst.size() < 2) lst.push_back(e);
  }

  // (d) doubly-linked AC pairs: 4-cycle across the two cross edges.
  for (const auto& [key, lst] : pair_edges) {
    if (lst.size() < 2) continue;
    auto [a1, b1] = g.endpoints(lst[0]);
    auto [a2, b2] = g.endpoints(lst[1]);
    // Normalize sides: a* in key.first's AC.
    if (acd.clique_of[a1] != key.first) std::swap(a1, b1);
    if (acd.clique_of[a2] != key.first) std::swap(a2, b2);
    if (a1 == a2 || b1 == b2) continue;            // case (c) territory
    if (!g.has_edge(a1, a2) || !g.has_edge(b1, b2)) continue;
    if (g.has_edge(a1, b2) || g.has_edge(a2, b1)) continue;  // (c) catches
    acc.add(Loophole{{a1, b1, b2, a2}});
  }

  // (e) AC triangles: assemble an even cycle from the three witness cross
  // edges if the connector parity works out (always does when every vertex
  // has a single cross edge).
  {
    // AC adjacency lists.
    std::vector<std::vector<int>> ac_nbrs(acd.cliques.size());
    for (const auto& [key, lst] : pair_edges) {
      (void)lst;
      ac_nbrs[static_cast<std::size_t>(key.first)].push_back(key.second);
      ac_nbrs[static_cast<std::size_t>(key.second)].push_back(key.first);
    }
    auto linked = [&](int x, int y) {
      return pair_edges.count({std::min(x, y), std::max(x, y)}) > 0;
    };
    for (std::size_t c1 = 0; c1 < acd.cliques.size(); ++c1) {
      const auto& nb = ac_nbrs[c1];
      for (std::size_t i = 0; i < nb.size(); ++i) {
        for (std::size_t j = i + 1; j < nb.size(); ++j) {
          const int c2 = std::min(nb[i], nb[j]), c3 = std::max(nb[i], nb[j]);
          if (static_cast<int>(c1) > c2) continue;  // canonical: c1 < c2 < c3
          if (!linked(c2, c3)) continue;
          // Try the stored witness combinations for an even assembly.
          const auto& e12 =
              pair_edges[{std::min<int>(c1, c2), std::max<int>(c1, c2)}];
          const auto& e23 = pair_edges[{c2, c3}];
          const auto& e31 =
              pair_edges[{std::min<int>(c1, c3), std::max<int>(c1, c3)}];
          bool added = false;
          for (const EdgeId f12 : e12) {
            for (const EdgeId f23 : e23) {
              for (const EdgeId f31 : e31) {
                if (added) break;
                auto [a, b] = g.endpoints(f12);  // a in C1, b in C2
                if (acd.clique_of[a] != static_cast<int>(c1))
                  std::swap(a, b);
                auto [cc, d] = g.endpoints(f23);  // cc in C2, d in C3
                if (acd.clique_of[cc] != c2) std::swap(cc, d);
                auto [x, y] = g.endpoints(f31);  // x in C3, y in C1
                if (acd.clique_of[x] != c3) std::swap(x, y);
                std::vector<NodeId> cyc{a, b};
                if (cc != b) cyc.push_back(cc);
                cyc.push_back(d);
                if (x != d) cyc.push_back(x);
                if (y != a) cyc.push_back(y);
                if (cyc.size() % 2 != 0) continue;
                Loophole cand{cyc};
                if (is_valid_loophole(g, cand)) {
                  acc.add(std::move(cand));
                  added = true;
                }
              }
              if (added) break;
            }
            if (added) break;
          }
        }
      }
    }
  }

  // (f) short cycles of the cross-edge subgraph (only possible when
  // vertices carry two or more cross edges).
  {
    std::vector<std::pair<NodeId, NodeId>> cross;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      const int cu = acd.clique_of[u], cv = acd.clique_of[v];
      if (cu != -1 && cv != -1 && cu != cv) cross.emplace_back(u, v);
    }
    const Graph cross_graph(n, std::move(cross));
    if (cross_graph.max_degree() >= 2) {
      std::vector<NodeId> path;
      for (NodeId v = 0; v < n; ++v) {
        if (res.vote_of[v] != -1) continue;
        path.assign(1, v);
        bool found = false;
        auto dfs = [&](auto&& self, NodeId x) -> void {
          if (found) return;
          for (const NodeId y : cross_graph.neighbors(x)) {
            if (found) return;
            if (y == v && path.size() >= 4 && path.size() % 2 == 0) {
              Loophole cand{path};
              if (is_valid_loophole(g, cand)) {
                acc.add(cand);
                found = true;
                return;
              }
            }
            if (y == v || static_cast<int>(path.size()) >= 6) continue;
            if (std::find(path.begin(), path.end(), y) != path.end())
              continue;
            path.push_back(y);
            self(self, y);
            path.pop_back();
          }
        };
        dfs(dfs, v);
      }
    }
  }

  // Every case inspects a bounded-radius neighborhood: O(1) rounds.
  ledger.charge(phase, 6);
  return res;
}

}  // namespace deltacolor
