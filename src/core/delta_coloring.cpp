#include "core/delta_coloring.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "core/hardness.hpp"
#include "core/loopholes.hpp"
#include "graph/checker.hpp"
#include "local/oracle.hpp"

namespace deltacolor {

std::string DeltaColoringResult::summary() const {
  std::ostringstream os;
  os << "delta=" << delta << " dense=" << dense << " valid=" << valid
     << " cliques=" << num_cliques << " (hard=" << num_hard
     << ", easy=" << num_easy << ") triads=" << hard_stats.num_triads
     << " heg_ratio=" << hard_stats.heg_ratio
     << " rounds=" << ledger.total();
  return os.str();
}

DeltaColoringOptions scaled_options(int delta) {
  DeltaColoringOptions opt;
  opt.acd.epsilon = std::max(kAcdEpsilon, 2.5 / delta);
  opt.hard.epsilon = opt.acd.epsilon;
  return opt;
}

DeltaColoringResult delta_color_dense(const Graph& g,
                                      const DeltaColoringOptions& options) {
  DeltaColoringResult res;
  res.delta = g.max_degree();
  res.color.assign(g.num_nodes(), kNoColor);
  if (g.num_nodes() == 0) {
    res.dense = res.valid = true;
    return res;
  }
  DC_CHECK_MSG(res.delta >= 3,
               "delta_color_dense requires Delta >= 3 (got " << res.delta
                                                             << ")");
  LocalContext lctx(res.ledger, options.engine, options.hard.seed);

  // Step 1: almost-clique decomposition (Lemma 2).
  const Acd acd = compute_acd(g, res.ledger, options.acd);
  res.dense = acd.is_dense();
  res.num_cliques = acd.num_cliques();
  DC_CHECK_MSG(res.dense,
               "input graph is not dense (Definition 4): "
                   << acd.sparse.size() << " sparse vertices under epsilon="
                   << options.acd.epsilon);

  // Loophole detection and hard/easy classification (Definitions 6, 8),
  // with constructive demotion retries.
  LoopholeSet loopholes = find_loopholes_dense(g, acd, res.ledger);
  for (int attempt = 0;; ++attempt) {
    const Hardness hardness = classify_hardness(g, acd, loopholes);
    res.num_hard = hardness.num_hard;
    res.num_easy = hardness.num_easy;

    std::fill(res.color.begin(), res.color.end(), kNoColor);
    // Step 2: color vertices in hard cliques (Algorithm 2).
    const HardColoringOutcome outcome = color_hard_cliques(
        g, acd, hardness, res.color, options.hard, lctx);
    res.hard_stats = outcome.stats;
    if (!outcome.retry_needed()) break;
    DC_CHECK_MSG(attempt < options.max_retries,
                 "demotion retries exceeded (" << options.max_retries << ")");
    for (const Loophole& l : outcome.demotions) loopholes.add(g, l);
    ++res.demotion_retries;
  }
  validate_partial_coloring(g, res.color, "hard-cliques", options.validate);

  // Step 3: color easy almost cliques and loopholes (Algorithm 3).
  res.easy_stats =
      color_easy_and_loopholes(g, loopholes, res.color, lctx);
  validate_partial_coloring(g, res.color, "easy", options.validate);

  if (options.verify || options.validate != ValidateMode::kOff) {
    if (options.validate != ValidateMode::kOff && FaultInjector::armed())
      FaultInjector::global().maybe_corrupt_coloring("final", g, res.color);
    res.valid = is_delta_coloring(g, res.color);
    if (options.validate != ValidateMode::kOff) {
      validate_final_coloring(g, res.color, res.valid, "final",
                              options.validate);
    } else {
      DC_CHECK_MSG(res.valid, "final coloring invalid: "
                                  << check_coloring(g, res.color).describe());
    }
  }
  return res;
}

}  // namespace deltacolor
