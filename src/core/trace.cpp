#include "core/trace.hpp"

#include <ostream>
#include <sstream>

namespace deltacolor {

std::string PipelineTrace::summary() const {
  std::ostringstream os;
  int live = 0, dropped_count = 0;
  for (const auto& t : triads) (t.dropped ? dropped_count : live)++;
  os << "F1=" << f1.size() << " F2=" << f2.size() << " F3="
     << f3_of_f2.size() << " triads=" << live << " (dropped="
     << dropped_count << ")";
  return os.str();
}

void PipelineTrace::write_dot(std::ostream& os, const Graph& g,
                              const Acd& acd,
                              const std::vector<Color>* final_colors) const {
  os << "graph deltacolor {\n  layout=neato;\n  node [shape=circle, "
        "fontsize=9];\n";
  // Role markers.
  std::vector<int> role(g.num_nodes(), 0);  // 1=slack 2=pair
  for (const auto& t : triads) {
    if (t.dropped) continue;
    role[t.slack] = 1;
    role[t.pair_in] = 2;
    role[t.pair_out] = 2;
  }
  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    os << "  subgraph cluster_" << c << " {\n    label=\"C" << c << "\";\n";
    for (const NodeId v : acd.cliques[c]) {
      os << "    " << v << " [";
      if (role[v] == 1) os << "shape=doublecircle, ";
      if (role[v] == 2) os << "style=filled, fillcolor=orange, ";
      if (final_colors != nullptr && (*final_colors)[v] != kNoColor)
        os << "label=\"" << v << "\\nc" << (*final_colors)[v] << "\"";
      else
        os << "label=\"" << v << "\"";
      os << "];\n";
    }
    os << "  }\n";
  }
  // F3 (kept) edges bold, other F2 edges dashed, remaining graph edges
  // faint.
  std::vector<bool> in_f2(g.num_edges(), false), in_f3(g.num_edges(), false);
  for (const auto& [a, b] : f2) {
    const EdgeId e = g.edge_between(a, b);
    if (e != kNoEdge) in_f2[e] = true;
  }
  for (const int k : f3_of_f2) {
    const auto [a, b] = f2[static_cast<std::size_t>(k)];
    const EdgeId e = g.edge_between(a, b);
    if (e != kNoEdge) in_f3[e] = true;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    os << "  " << u << " -- " << v;
    if (in_f3[e])
      os << " [penwidth=3, color=red]";
    else if (in_f2[e])
      os << " [style=dashed, color=blue]";
    else
      os << " [color=gray80]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace deltacolor
