#include "core/easy_coloring.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/ruling_set.hpp"

namespace deltacolor {

bool color_even_cycle_from_lists(const std::vector<std::vector<Color>>& lists,
                                 std::vector<Color>& out) {
  const std::size_t k = lists.size();
  if (k < 3) return false;
  for (const auto& list : lists)
    if (list.size() < 2) return false;
  out.assign(k, kNoColor);

  auto contains = [](const std::vector<Color>& list, Color c) {
    return std::find(list.begin(), list.end(), c) != list.end();
  };
  // Seed: adjacent pair (i, i+1) with a color in list(i) \ list(i+1).
  std::size_t seed = k;
  Color seed_color = kNoColor;
  for (std::size_t i = 0; i < k && seed == k; ++i) {
    for (const Color c : lists[i]) {
      if (!contains(lists[(i + 1) % k], c)) {
        seed = i;
        seed_color = c;
        break;
      }
    }
  }
  if (seed == k) {
    // Every list contains its successor's colors; with sizes >= 2 and the
    // minimal tight case (all lists equal, size 2) this means all lists
    // share the same two colors: alternate them — possible iff k is even.
    if (k % 2 != 0) {
      // Fall back: some list has > 2 colors; color greedily starting
      // after a vertex with a spare color, ending at it.
      std::size_t big = k;
      for (std::size_t i = 0; i < k && big == k; ++i)
        if (lists[i].size() >= 3) big = i;
      if (big == k) return false;  // odd cycle, all lists of size 2: no
      for (std::size_t step = 1; step <= k; ++step) {
        const std::size_t v = (big + step) % k;
        for (const Color c : lists[v]) {
          const Color prev = out[(v + k - 1) % k];
          const Color next = out[(v + 1) % k];
          if (c != prev && c != next) {
            out[v] = c;
            break;
          }
        }
        if (out[v] == kNoColor) return false;
      }
      return true;
    }
    // No seed means list(i) ⊆ list(i+1) around the cycle, i.e. all lists
    // are equal as sets; alternate two of their shared colors.
    const Color a = lists[0][0], b = lists[0][1];
    for (std::size_t i = 0; i < k; ++i) out[i] = i % 2 == 0 ? a : b;
    return true;
  }
  // Color the seed, then sweep around the cycle away from (seed+1); each
  // vertex sees one colored neighbor; the final vertex (seed+1) sees two,
  // but the seed's color is absent from its list.
  out[seed] = seed_color;
  for (std::size_t step = 1; step <= k - 1; ++step) {
    const std::size_t v = (seed + k - step) % k;  // walk backwards
    const Color prev = out[(v + 1) % k];          // already colored side
    const Color other = out[(v + k - 1) % k];     // colored only at the end
    for (const Color c : lists[v]) {
      if (c != prev && c != other) {
        out[v] = c;
        break;
      }
    }
    if (out[v] == kNoColor) return false;
  }
  return true;
}

void color_loophole(const Graph& g, const Loophole& l,
                    std::vector<Color>& color) {
  const int delta = g.max_degree();
  const auto& vs = l.vertices;
  // Effective lists: full palette minus colored neighbors outside l.
  std::vector<std::vector<Color>> lists(vs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    DC_CHECK_MSG(color[vs[i]] == kNoColor,
                 "loophole vertex " << vs[i] << " already colored");
    PaletteSet free(delta);
    free.fill();
    for (const NodeId u : g.neighbors(vs[i])) free.erase(color[u]);
    free.for_each([&](Color c) { lists[i].push_back(c); });
  }
  // Fast path (Lemma 7 constructive): a chordless even cycle with lists of
  // size >= 2 is colored directly.
  if (vs.size() >= 4) {
    bool chordless = true;
    for (std::size_t i = 0; i < vs.size() && chordless; ++i)
      for (std::size_t j = i + 2; j < vs.size() && chordless; ++j) {
        if (i == 0 && j == vs.size() - 1) continue;  // cycle edge
        if (g.has_edge(vs[i], vs[j])) chordless = false;
      }
    if (chordless) {
      std::vector<Color> out;
      if (color_even_cycle_from_lists(lists, out)) {
        for (std::size_t i = 0; i < vs.size(); ++i) color[vs[i]] = out[i];
        return;
      }
    }
  }

  // Backtracking over the (<= 6 vertex) induced subgraph, most-constrained
  // vertex first. Lemma 7 guarantees a solution exists for genuine
  // loopholes, and the search space is tiny.
  std::vector<Color> assign(vs.size(), kNoColor);
  NodeMask done(vs.size(), 0);
  long budget = 4'000'000;
  auto solve = [&](auto&& self) -> bool {
    // Pick the unassigned vertex with the fewest remaining options.
    int best = -1;
    std::size_t best_options = ~std::size_t{0};
    std::vector<Color> best_list;
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (done[i]) continue;
      std::vector<Color> remaining;
      for (const Color c : lists[i]) {
        bool ok = true;
        for (std::size_t j = 0; j < vs.size(); ++j)
          if (done[j] && assign[j] == c && g.has_edge(vs[i], vs[j]))
            ok = false;
        if (ok) remaining.push_back(c);
      }
      if (remaining.size() < best_options) {
        best = static_cast<int>(i);
        best_options = remaining.size();
        best_list = std::move(remaining);
      }
    }
    if (best == -1) return true;  // all assigned
    for (const Color c : best_list) {
      if (--budget < 0) return false;
      assign[static_cast<std::size_t>(best)] = c;
      done[static_cast<std::size_t>(best)] = 1;
      if (self(self)) return true;
      done[static_cast<std::size_t>(best)] = 0;
    }
    return false;
  };
  DC_CHECK_MSG(solve(solve),
               "loophole brute-force coloring failed (not deg-list "
               "satisfiable?) — loophole size "
                   << vs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) color[vs[i]] = assign[i];
}

EasyColoringStats color_easy_and_loopholes(const Graph& g,
                                           const LoopholeSet& loopholes,
                                           std::vector<Color>& color,
                                           LocalContext& lctx,
                                           const std::string& phase) {
  RoundLedger& ledger = lctx.ledger();
  EasyColoringStats stats;
  const int delta = g.max_degree();
  const NodeId n = g.num_nodes();

  // Only loopholes that are still fully uncolored can serve as slack
  // reservoirs (all are, when hard cliques were colored first).
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < loopholes.loopholes.size(); ++i) {
    bool ok = true;
    for (const NodeId v : loopholes.loopholes[i].vertices)
      if (color[v] != kNoColor) ok = false;
    if (ok) live.push_back(i);
  }
  stats.voted_loopholes = static_cast<int>(live.size());

  bool anything_uncolored = false;
  for (NodeId v = 0; v < n; ++v)
    if (color[v] == kNoColor) anything_uncolored = true;
  if (!anything_uncolored) return stats;
  DC_CHECK_MSG(!live.empty(),
               "uncolored vertices remain but no loophole is available");

  // Virtual graph G_L: one node per live loophole; edges between loopholes
  // that intersect or touch via a graph edge.
  std::vector<std::vector<int>> member_of(n);
  for (std::size_t k = 0; k < live.size(); ++k)
    for (const NodeId v : loopholes.loopholes[live[k]].vertices)
      member_of[v].push_back(static_cast<int>(k));
  std::vector<std::pair<NodeId, NodeId>> gl_edges;
  for (std::size_t k = 0; k < live.size(); ++k) {
    for (const NodeId v : loopholes.loopholes[live[k]].vertices) {
      auto link = [&](NodeId u) {
        for (const int o : member_of[u])
          if (o != static_cast<int>(k))
            gl_edges.emplace_back(
                static_cast<NodeId>(std::min<std::size_t>(k, o)),
                static_cast<NodeId>(std::max<std::size_t>(k, o)));
      };
      link(v);
      for (const NodeId u : g.neighbors(v)) link(u);
    }
  }
  Graph gl(static_cast<NodeId>(live.size()), std::move(gl_edges));
  {
    // In LOCAL a loophole is identified by its full member-id list; we
    // compress those lists to their lexicographic ranks (unique, and
    // consistent under identifier permutations).
    std::vector<std::pair<std::vector<std::uint64_t>, std::size_t>> keys;
    keys.reserve(live.size());
    for (std::size_t k = 0; k < live.size(); ++k) {
      std::vector<std::uint64_t> key;
      for (const NodeId v : loopholes.loopholes[live[k]].vertices)
        key.push_back(g.id(v));
      std::sort(key.begin(), key.end());
      keys.emplace_back(std::move(key), k);
    }
    std::sort(keys.begin(), keys.end());
    std::vector<std::uint64_t> ids(live.size());
    for (std::size_t rank = 0; rank < keys.size(); ++rank)
      ids[keys[rank].second] = rank;
    gl.set_ids(std::move(ids));
  }

  // Ruling set on G_L: the selected loopholes are pairwise non-adjacent
  // and non-intersecting. One G_L round costs <= 7 real rounds (loophole
  // diameter <= 3, plus the connecting edge).
  RoundLedger gl_ledger;
  LocalContext gl_ctx(gl_ledger, lctx.engine(), lctx.seed());
  const RulingSetResult rs = ruling_set(gl, gl_ctx);
  ledger.charge(phase + "-ruling", gl_ledger.total(), 7);
  stats.ruling_domination_radius = rs.domination_radius;

  NodeMask in_chosen_loophole(n, 0);
  for (std::size_t k = 0; k < live.size(); ++k) {
    if (!rs.in_set[k]) continue;
    ++stats.ruling_loopholes;
    for (const NodeId v : loopholes.loopholes[live[k]].vertices)
      in_chosen_loophole[v] = true;
  }

  // BFS layering from the chosen loopholes through uncolored vertices.
  std::vector<int> layer(n, -1);
  std::queue<NodeId> q;
  for (NodeId v = 0; v < n; ++v) {
    if (in_chosen_loophole[v]) {
      layer[v] = 0;
      q.push(v);
    }
  }
  int max_layer = 0;
  while (!q.empty()) {
    const NodeId x = q.front();
    q.pop();
    for (const NodeId y : g.neighbors(x)) {
      if (layer[y] != -1 || color[y] != kNoColor) continue;
      layer[y] = layer[x] + 1;
      max_layer = std::max(max_layer, layer[y]);
      q.push(y);
    }
  }
  for (NodeId v = 0; v < n; ++v)
    DC_CHECK_MSG(color[v] != kNoColor || layer[v] != -1,
                 "uncolored vertex " << v
                                     << " unreachable from any loophole");
  stats.layers = max_layer;
  ledger.charge(phase + "-bfs", max_layer + 1);

  // Color layers outside-in; each layer-i vertex has an uncolored
  // layer-(i-1) neighbor, so each layer is a deg+1-list instance.
  const auto lists = uniform_lists(g, delta);
  for (int i = max_layer; i >= 1; --i) {
    NodeMask active(n, 0);
    for (NodeId v = 0; v < n; ++v)
      active[v] = layer[v] == i && color[v] == kNoColor;
    ScopedPhase layer_phase(lctx, phase + "-layers");
    deg_plus_one_list_color(g, active, lists, color, lctx);
  }

  // Finally the chosen loopholes, by brute force (Lemma 7). They are
  // pairwise non-adjacent, so all complete in parallel in O(1) rounds.
  for (std::size_t k = 0; k < live.size(); ++k)
    if (rs.in_set[k]) color_loophole(g, loopholes.loopholes[live[k]], color);
  ledger.charge(phase + "-loopholes", 3);
  return stats;
}

}  // namespace deltacolor
