// Coloring the vertices of hard cliques (Algorithm 2, Sections 3.2-3.8).
//
// Phase 1 (balanced matching): maximal matching F1 on the edges between
//   hard cliques; every clique of C_HEG partitions into K sub-cliques, each
//   member proposes to grab a nearby F1 edge (the function f / phi of
//   Section 3.3), and a hyperedge-grabbing instance assigns each sub-clique
//   one exclusive edge, which is rearranged into the oriented matching F2
//   (Lemma 12: >= K outgoing edges per C_HEG clique).
// Phase 2 (sparsification): degree splitting on the virtual multigraph G_Q
//   thins F2 to F3 with exactly 2 outgoing edges per clique and bounded
//   incoming edges (Lemma 13).
// Phase 3 (slack triads): the two outgoing edges of each clique define a
//   slack triad (u, {v, w}) — slack vertex u, non-adjacent slack pair
//   (Lemma 15: triads are vertex disjoint).
// Phase 4A (slack pairs): the virtual conflict graph G_V over slack pairs
//   has maximum degree <= Delta - 2 (Lemma 16) and is colored by one
//   deg+1-list instance; both pair members receive the pair's color,
//   granting the slack vertex permanent slack.
// Phase 4B: the remaining hard vertices are colored by two deg+1-list
//   instances (Lemma 17), exploiting the uncolored slack vertex (Type I+),
//   a designated vertex with an easy neighbor (Type II), and the easy
//   cliques being colored later.
//
// Every structural lemma consumed by the phases is re-checked at runtime;
// a check that fails *constructively* (it certifies a loophole the
// detector missed, possible only for multi-cross-edge instances) is
// reported through `demotions` so the caller can reclassify and retry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acd/acd.hpp"
#include "common/palette.hpp"
#include "core/hardness.hpp"
#include "core/loopholes.hpp"
#include "core/trace.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct HardColoringParams {
  /// Sub-cliques per C_HEG clique (paper: 28). Scaled down automatically
  /// for small cliques when scale_for_delta is set.
  int subclique_count = kSubCliqueCount;
  /// Degree-splitting recursion depth i (paper: 2, i.e. 4 parts).
  int split_levels = 2;
  /// Segment length ~ 1/epsilon' of the splitter (paper: epsilon' = 1/100).
  int split_segment_length = 100;
  std::uint64_t seed = 1;
  /// Smallest color slack pairs may use (0 deterministic; 1 in the
  /// randomized algorithm where color 0 is reserved for T-node pairs).
  Color palette_floor = 0;
  bool scale_for_delta = true;
  /// ACD epsilon used for the Lemma 13 / 16 bound checks.
  double epsilon = kAcdEpsilon;
  /// Palette size; -1 = use g.max_degree(). The randomized post-shattering
  /// phase colors induced components whose local maximum degree is below
  /// the global Delta.
  int delta_override = -1;
  /// Section 4 ("useless vertices"): tolerate members without a cross
  /// neighbor in a hard clique — they simply send no proposal — instead of
  /// demoting the clique to Type II. Used by the randomized variant where
  /// such members' external neighbors are pre-colored T-node pairs.
  bool allow_useless = false;
  /// Optional per-node allowed lists for the Phase 4B instances (empty =
  /// the full palette {0..Delta-1}). The randomized variant bans colors of
  /// neighbors outside the component here. Flat CSR storage; nested
  /// vectors convert implicitly.
  ColorLists node_lists;
  /// Optional artifact capture (F1/F2/F3, triads, pair colors).
  PipelineTrace* trace = nullptr;
};

struct HardColoringStats {
  int num_hard = 0;
  int num_heg_cliques = 0;  ///< |C_HEG|
  int type1 = 0;            ///< Lemma 12 Type I  (>= K outgoing in F2)
  int type2 = 0;            ///< Lemma 12 Type II (adjacent easy AC)
  int f1_edges = 0, f2_edges = 0, f3_edges = 0;
  // HEG instance shape (Lemma 11 / bench E3).
  int heg_vertices = 0, heg_hyperedges = 0;
  int heg_min_degree = 0, heg_rank = 0;
  double heg_ratio = 0.0;  ///< delta_H / r_H
  bool heg_complete = false;
  int heg_rounds = 0;
  // Matching balance (Lemma 12 / 13; bench E4).
  int min_outgoing_f2 = 0;  ///< over C_HEG cliques
  int min_outgoing_f3 = 0, max_incoming_f3 = 0;
  int split_fallbacks = 0;  ///< cliques topped back up from F2
  // Slack triads (Lemma 15 / 16; bench E5).
  int num_triads = 0;
  int dropped_triads = 0;
  int max_slack_pairs_per_clique = 0;
  int max_gv_degree = -1;
  bool lemma11_ok = false, lemma13_ok = false, lemma16_ok = false;
};

struct HardColoringOutcome {
  HardColoringStats stats;
  /// Constructive loopholes discovered by runtime checks; when non-empty
  /// the coloring was aborted and the caller must merge these, reclassify
  /// hardness, and call again.
  std::vector<Loophole> demotions;
  bool retry_needed() const { return !demotions.empty(); }
};

/// Colors every hard-clique vertex of g into `color` (entries must be
/// kNoColor on entry for hard vertices). Easy-clique vertices are left
/// uncolored — Algorithm 1 line 3 colors them afterwards. Rounds charged
/// to the context's ledger under "phase1".."phase4" labels; the context's
/// EngineOptions propagate into every nested engine-stepped primitive.
HardColoringOutcome color_hard_cliques(const Graph& g, const Acd& acd,
                                       const Hardness& hardness,
                                       std::vector<Color>& color,
                                       const HardColoringParams& params,
                                       LocalContext& lctx);

/// RoundLedger-based compatibility wrapper (pre-LocalContext API).
inline HardColoringOutcome color_hard_cliques(
    const Graph& g, const Acd& acd, const Hardness& hardness,
    std::vector<Color>& color, const HardColoringParams& params,
    RoundLedger& ledger) {
  LocalContext lctx(ledger, {}, params.seed);
  return color_hard_cliques(g, acd, hardness, color, params, lctx);
}

}  // namespace deltacolor
