#include "core/hardness.hpp"

#include "common/check.hpp"

namespace deltacolor {

Hardness classify_hardness(const Graph& g, const Acd& acd,
                           const LoopholeSet& loopholes, bool verify_lemma9) {
  Hardness h;
  h.is_hard.assign(acd.cliques.size(), true);
  h.in_hard.assign(g.num_nodes(), false);

  for (const auto& l : loopholes.loopholes) {
    for (const NodeId v : l.vertices) {
      const int c = acd.clique_of[v];
      if (c != -1) h.is_hard[static_cast<std::size_t>(c)] = false;
    }
  }
  // A loophole vertex also certifies easiness of adjacent... no: Definition
  // 8 only demands the clique *contain* a loophole vertex; detected
  // loopholes list their member vertices explicitly, handled above.

  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    if (h.is_hard[c]) {
      ++h.num_hard;
      for (const NodeId v : acd.cliques[c]) h.in_hard[v] = true;
    } else {
      ++h.num_easy;
    }
  }

  if (verify_lemma9) {
    const int delta = g.max_degree();
    for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
      if (!h.is_hard[c]) continue;
      const auto& members = acd.cliques[c];
      // Lemma 9.1/9.2: clique, and every member has degree exactly Delta
      // (internal |C|-1 plus e_C = Delta - |C| + 1 external).
      for (const NodeId v : members) {
        DC_CHECK_MSG(g.degree(v) == delta,
                     "hard clique member " << v << " has degree "
                                           << g.degree(v) << " != " << delta);
        int internal = 0;
        for (const NodeId u : g.neighbors(v))
          if (acd.clique_of[u] == static_cast<int>(c)) ++internal;
        DC_CHECK_MSG(internal == static_cast<int>(members.size()) - 1,
                     "hard AC " << c << " is not a clique at member " << v);
      }
    }
    // Lemma 9.3: no vertex outside a hard clique has two neighbors in it.
    // last_seen[c] = last w that had a neighbor in clique c; since w
    // ascends, a repeat within one w's scan means two neighbors in c.
    std::vector<int> last_seen(acd.cliques.size(), -1);
    for (NodeId w = 0; w < g.num_nodes(); ++w) {
      for (const NodeId u : g.neighbors(w)) {
        const int c = acd.clique_of[u];
        if (c == -1 || c == acd.clique_of[w] ||
            !h.is_hard[static_cast<std::size_t>(c)])
          continue;
        DC_CHECK_MSG(last_seen[static_cast<std::size_t>(c)] !=
                         static_cast<int>(w),
                     "outsider " << w << " has two neighbors in hard clique "
                                 << c << " (undetected loophole)");
        last_seen[static_cast<std::size_t>(c)] = static_cast<int>(w);
      }
    }
  }
  return h;
}

}  // namespace deltacolor
