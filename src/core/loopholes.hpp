// Loopholes (Definition 6) and their detection.
//
// A loophole is a subgraph through which a partial Delta-coloring can
// always be completed (it is deg-list colorable, Lemma 7):
//   1. a single vertex of degree < Delta, or
//   2. a non-clique even cycle; the algorithm only uses loopholes of at
//      most 6 vertices (Definition 8), i.e. 4- and 6-cycles.
//
// Two detectors are provided:
//   * a brute-force reference (exact, exponential in the size budget; for
//     tests and small graphs), and
//   * a structure-aware detector for clique-ACD dense graphs that runs the
//     case analysis of Lemma 9: degree deficits (a), non-clique ACs (b),
//     outsiders with two neighbors in an AC (c), doubly-linked AC pairs
//     (d), AC triangles whose connector parity yields an even cycle (e),
//     and short cycles of the cross-edge subgraph (f). Every detected
//     loophole is constructive (an explicit witness subgraph), and the
//     phase machinery re-checks all structural consequences of hardness at
//     runtime, so an exotic missed pattern can only cost work, never
//     correctness.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "acd/acd.hpp"
#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct Loophole {
  /// Singleton {v} with deg(v) < Delta, or the vertices of a non-clique
  /// even cycle in cyclic order (4 or 6 of them).
  std::vector<NodeId> vertices;

  bool is_degree_loophole() const { return vertices.size() == 1; }
};

/// Checks that `l` really is a loophole of g (witness validation).
bool is_valid_loophole(const Graph& g, const Loophole& l);

struct LoopholeSet {
  /// Detected loopholes (the voted set L of Algorithm 3 line 1).
  std::vector<Loophole> loopholes;
  /// Per node: index of one loophole containing it, or -1.
  std::vector<int> vote_of;

  bool vertex_in_loophole(NodeId v) const { return vote_of[v] != -1; }

  /// Appends a (validated) loophole and registers votes for its members.
  void add(const Graph& g, Loophole l);
};

/// Exact reference detector: for every vertex, searches a loophole of at
/// most `max_vertices` (<= 6) vertices through it. Exponential in Delta;
/// use on small graphs only.
LoopholeSet find_loopholes_bruteforce(const Graph& g, int max_vertices = 6);

/// Loophole through one vertex (brute force; nullopt if none).
std::optional<Loophole> find_loophole_through(const Graph& g, NodeId v,
                                              int max_vertices = 6);

/// Structure-aware detector for dense graphs with a computed ACD.
/// O(1) LOCAL rounds (every case looks at a bounded-radius neighborhood);
/// charged to `ledger`.
LoopholeSet find_loopholes_dense(const Graph& g, const Acd& acd,
                                 RoundLedger& ledger,
                                 const std::string& phase = "loopholes");

}  // namespace deltacolor
