// Pipeline trace: optional capture of Algorithm 2's intermediate
// artifacts — the matchings F1/F2/F3, the slack triads, and the slack-pair
// colors — for inspection, debugging, and visualization (Figures 2-4 of
// the paper as concrete data).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "acd/acd.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

struct PipelineTrace {
  /// Maximal matching on the hard cross edges (Step 1).
  std::vector<std::pair<NodeId, NodeId>> f1;
  /// Rearranged oriented matching (Step 3/4): (tail, head), tail in the
  /// grabbing clique.
  std::vector<std::pair<NodeId, NodeId>> f2;
  /// Sparsified matching (Step 5/6): indices into f2 that survived.
  std::vector<int> f3_of_f2;

  struct TriadRecord {
    NodeId slack = kNoNode;
    NodeId pair_in = kNoNode;
    NodeId pair_out = kNoNode;
    int clique = -1;       ///< AC index of the owning clique
    Color pair_color = kNoColor;
    bool dropped = false;  ///< removed by the Phase 4A feasibility filter
  };
  std::vector<TriadRecord> triads;

  std::string summary() const;

  /// Graphviz export of the instance: cliques as clusters, F3 edges bold,
  /// slack triads highlighted (slack vertex double circle, pair vertices
  /// filled), vertices labeled with final colors if provided.
  void write_dot(std::ostream& os, const Graph& g, const Acd& acd,
                 const std::vector<Color>* final_colors = nullptr) const;
};

}  // namespace deltacolor
