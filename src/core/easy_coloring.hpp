// Coloring easy almost cliques and loopholes (Algorithm 3, Section 3.9).
//
//   1. Every loophole vertex votes for one of its loopholes -> set L.
//   2. Virtual graph G_L over L (edges between intersecting/adjacent
//      loopholes).
//   3. Ruling set on G_L selects pairwise non-adjacent loopholes.
//   4. BFS layering (through still-uncolored vertices) from the selected
//      loopholes; depth is adaptive (the paper's constant 25 presumes the
//      exact SEW13 ruling set; our bit-peeling ruling set has an
//      O(log Delta) domination radius, so the layer count follows it).
//   5. Layers are colored outside-in with one deg+1-list instance each —
//      a layer-i vertex keeps slack through its uncolored layer-(i-1)
//      neighbor.
//   6. The selected loopholes themselves are deg-list colorable (Lemma 7)
//      and are completed by the constructive solver below.
#pragma once

#include <string>
#include <vector>

#include "core/loopholes.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct EasyColoringStats {
  int voted_loopholes = 0;
  int ruling_loopholes = 0;
  int layers = 0;
  int ruling_domination_radius = 0;
};

/// Completes the coloring of all still-uncolored vertices. Requires: every
/// uncolored vertex can reach a loophole of `loopholes` through uncolored
/// vertices (guaranteed when hard cliques are colored and every easy AC
/// intersects a detected loophole). Rounds charged to the context's ledger
/// under `phase`-prefixed labels; the context's EngineOptions propagate
/// into the nested ruling-set and deg+1-list engines.
EasyColoringStats color_easy_and_loopholes(const Graph& g,
                                           const LoopholeSet& loopholes,
                                           std::vector<Color>& color,
                                           LocalContext& lctx,
                                           const std::string& phase = "easy");

/// RoundLedger-based compatibility wrapper (pre-LocalContext API).
inline EasyColoringStats color_easy_and_loopholes(
    const Graph& g, const LoopholeSet& loopholes, std::vector<Color>& color,
    RoundLedger& ledger, const std::string& phase = "easy") {
  LocalContext lctx(ledger);
  return color_easy_and_loopholes(g, loopholes, color, lctx, phase);
}

/// Constructive deg-list coloring of one loophole: every vertex of `l` gets
/// a color from {0..Delta-1} avoiding its already-colored neighbors.
/// Guaranteed to succeed by Lemma 7 (ERT79/Viz76) given the loophole
/// invariants; throws if the instance is not deg-list satisfiable.
/// Chordless even cycles take the constructive Lemma 7 route below;
/// chorded loopholes fall back to exhaustive search over the (<= 6 vertex)
/// subgraph.
void color_loophole(const Graph& g, const Loophole& l,
                    std::vector<Color>& color);

/// Constructive proof of Lemma 7 for chordless even cycles: colors vertex
/// i of a cycle (indices in cyclic order) from lists[i], every list of
/// size >= 2. Identical lists alternate their first two colors; otherwise
/// a color in list(u) \ list(next(u)) seeds a greedy sweep that ends at
/// next(u), whose conflict budget the seed color cannot touch. Returns
/// false only if some list has fewer than 2 colors or the length is odd
/// and all lists are identical of size 2 (the genuinely infeasible cases).
bool color_even_cycle_from_lists(const std::vector<std::vector<Color>>& lists,
                                 std::vector<Color>& out);

}  // namespace deltacolor
