// The deterministic Delta-coloring algorithm for dense graphs (Theorem 1 /
// Algorithm 1): ACD -> loophole detection -> hard/easy classification ->
// hard cliques (Algorithm 2) -> easy cliques and loopholes (Algorithm 3).
//
// This is the library's primary public entry point.
#pragma once

#include <string>
#include <vector>

#include "acd/acd.hpp"
#include "common/errors.hpp"
#include "core/easy_coloring.hpp"
#include "core/hard_coloring.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct DeltaColoringOptions {
  AcdParams acd;
  HardColoringParams hard;
  /// Execution-layer knobs (worker threads, frontier sweeps) threaded into
  /// every engine-stepped subroutine via LocalContext. Purely about *how*
  /// the simulation executes — the coloring is bit-identical across
  /// settings.
  EngineOptions engine;
  /// Run the final validity checker and record the outcome.
  bool verify = true;
  /// Opt-in validation oracle (errors.hpp): kEnd turns a final-checker
  /// failure into a structured invariant-violation CellError (instead of
  /// the legacy CHECK abort); kPhase additionally checks the partial
  /// coloring at every pipeline phase boundary. kOff is bit-identical to
  /// the pre-oracle behavior.
  ValidateMode validate = ValidateMode::kOff;
  /// Maximum demotion retries (phi-collision witnesses re-classifying a
  /// clique as easy; only reachable on multi-cross-edge instances).
  int max_retries = 8;
};

struct DeltaColoringResult {
  std::vector<Color> color;
  RoundLedger ledger;

  bool dense = false;  ///< ACD found no sparse vertices (Definition 4)
  bool valid = false;  ///< final coloring is a proper Delta-coloring
  int delta = 0;
  int num_cliques = 0;
  int num_hard = 0, num_easy = 0;
  int demotion_retries = 0;
  HardColoringStats hard_stats;
  EasyColoringStats easy_stats;

  std::string summary() const;
};

/// Runs Algorithm 1 end to end. Throws std::logic_error if the graph is
/// not dense under the configured epsilon (use the ACD first to check) or
/// if a structural invariant fails without a constructive repair.
DeltaColoringResult delta_color_dense(const Graph& g,
                                      const DeltaColoringOptions& options = {});

/// Convenience: options tuned for moderate Delta (epsilon and eta scaled so
/// that Delta-clique blow-up instances at Delta in [8, 63) classify dense;
/// the paper's constants assume Delta >= 63).
DeltaColoringOptions scaled_options(int delta);

}  // namespace deltacolor
