// Round and wall-clock accounting for the LOCAL model.
//
// Every distributed subroutine charges the rounds it consumed, tagged with a
// phase label, so benches can report both the total round complexity and the
// per-phase breakdown of Lemma 18. Virtual-graph subroutines charge
// dilation * virtual_rounds, where the dilation is the number of real
// communication rounds needed to simulate one round of the virtual graph
// (<= 6 for every virtual graph in the paper).
//
// Alongside the (machine-independent, seed-reproducible) round counts the
// ledger also accumulates per-phase wall-clock milliseconds
// (charge_time / time_report), so benches can emit a machine-readable line
// with both dimensions. Phase lookup is O(1) via a name index; phases()
// preserves first-charge order.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace deltacolor {

class RoundLedger {
 public:
  /// Charges `rounds` real rounds against `phase`.
  void charge(const std::string& phase, std::int64_t rounds,
              std::int64_t dilation = 1);

  /// Charges `ms` wall-clock milliseconds against `phase`. Wall-clock is
  /// measurement metadata, not simulated rounds: it never affects total().
  void charge_time(const std::string& phase, double ms);

  /// Total rounds across all phases.
  std::int64_t total() const { return total_; }

  /// Total wall-clock milliseconds across all phases.
  double time_total() const { return time_total_; }

  /// Rounds charged against one phase label (0 if absent). O(1).
  std::int64_t phase_total(const std::string& phase) const;

  /// Milliseconds charged against one phase label (0 if absent). O(1).
  double phase_time(const std::string& phase) const;

  /// (phase, rounds) in first-charge order.
  const std::vector<std::pair<std::string, std::int64_t>>& phases() const {
    return phases_;
  }

  /// (phase, milliseconds) in first-charge order.
  const std::vector<std::pair<std::string, double>>& times() const {
    return times_;
  }

  /// Adds every phase (rounds and wall-clock) of `other` into this ledger.
  void merge(const RoundLedger& other);

  /// Human-readable multi-line breakdown (rounds, plus ms when charged).
  std::string report() const;

  /// Human-readable per-phase wall-clock breakdown.
  std::string time_report() const;

  /// One-line JSON object with both dimensions:
  /// {"rounds":N,"ms":X,"phases":{"p":{"rounds":N,"ms":X},...}}
  std::string json() const;

  void clear();

 private:
  std::vector<std::pair<std::string, std::int64_t>> phases_;
  std::vector<std::pair<std::string, double>> times_;
  std::unordered_map<std::string, std::size_t> phase_index_;
  std::unordered_map<std::string, std::size_t> time_index_;
  std::int64_t total_ = 0;
  double time_total_ = 0.0;
};

/// RAII helper: charges the elapsed wall-clock of its scope to a phase.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(RoundLedger& ledger, std::string phase);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  RoundLedger& ledger_;
  std::string phase_;
  std::int64_t start_ns_;
};

}  // namespace deltacolor
