// Round accounting for the LOCAL model.
//
// Every distributed subroutine charges the rounds it consumed, tagged with a
// phase label, so benches can report both the total round complexity and the
// per-phase breakdown of Lemma 18. Virtual-graph subroutines charge
// dilation * virtual_rounds, where the dilation is the number of real
// communication rounds needed to simulate one round of the virtual graph
// (<= 6 for every virtual graph in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace deltacolor {

class RoundLedger {
 public:
  /// Charges `rounds` real rounds against `phase`.
  void charge(const std::string& phase, std::int64_t rounds,
              std::int64_t dilation = 1);

  /// Total rounds across all phases.
  std::int64_t total() const { return total_; }

  /// Rounds charged against one phase label (0 if absent).
  std::int64_t phase_total(const std::string& phase) const;

  /// (phase, rounds) in first-charge order.
  const std::vector<std::pair<std::string, std::int64_t>>& phases() const {
    return phases_;
  }

  /// Adds every phase of `other` into this ledger.
  void merge(const RoundLedger& other);

  /// Human-readable multi-line breakdown.
  std::string report() const;

  void clear();

 private:
  std::vector<std::pair<std::string, std::int64_t>> phases_;
  std::int64_t total_ = 0;
};

}  // namespace deltacolor
