// Round and wall-clock accounting for the LOCAL model.
//
// Every distributed subroutine charges the rounds it consumed, tagged with a
// phase label, so benches can report both the total round complexity and the
// per-phase breakdown of Lemma 18. Virtual-graph subroutines charge
// dilation * virtual_rounds, where the dilation is the number of real
// communication rounds needed to simulate one round of the virtual graph
// (<= 6 for every virtual graph in the paper).
//
// Alongside the (machine-independent, seed-reproducible) round counts the
// ledger also accumulates per-phase wall-clock milliseconds
// (charge_time / time_report), so benches can emit a machine-readable line
// with both dimensions. Phase labels are interned: charge() takes a
// std::string_view and resolves it against the phase-id map with a
// heterogeneous (allocation-free) lookup, so per-round charges on hot paths
// never construct a temporary std::string — a label is copied exactly once,
// on its first charge. phases() preserves first-charge order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace deltacolor {

namespace detail {

/// Transparent hash so unordered_map lookups accept std::string_view
/// without materializing a std::string (C++20 heterogeneous lookup).
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

using PhaseIndex =
    std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>;

}  // namespace detail

class RoundLedger {
 public:
  /// Charges `rounds` real rounds against `phase`.
  void charge(std::string_view phase, std::int64_t rounds,
              std::int64_t dilation = 1);

  /// Charges `ms` wall-clock milliseconds against `phase`. Wall-clock is
  /// measurement metadata, not simulated rounds: it never affects total().
  void charge_time(std::string_view phase, double ms);

  /// Total rounds across all phases.
  std::int64_t total() const { return total_; }

  /// Total wall-clock milliseconds across all phases.
  double time_total() const { return time_total_; }

  /// Rounds charged against one phase label (0 if absent). O(1).
  std::int64_t phase_total(std::string_view phase) const;

  /// Milliseconds charged against one phase label (0 if absent). O(1).
  double phase_time(std::string_view phase) const;

  /// (phase, rounds) in first-charge order.
  const std::vector<std::pair<std::string, std::int64_t>>& phases() const {
    return phases_;
  }

  /// (phase, milliseconds) in first-charge order.
  const std::vector<std::pair<std::string, double>>& times() const {
    return times_;
  }

  /// Adds every phase (rounds and wall-clock) of `other` into this ledger.
  void merge(const RoundLedger& other);

  /// Human-readable multi-line breakdown (rounds, plus ms when charged).
  std::string report() const;

  /// Human-readable per-phase wall-clock breakdown.
  std::string time_report() const;

  /// One-line JSON object with both dimensions:
  /// {"rounds":N,"ms":X,"phases":{"p":{"rounds":N,"ms":X},...}}
  std::string json() const;

  void clear();

 private:
  std::vector<std::pair<std::string, std::int64_t>> phases_;
  std::vector<std::pair<std::string, double>> times_;
  detail::PhaseIndex phase_index_;
  detail::PhaseIndex time_index_;
  std::int64_t total_ = 0;
  double time_total_ = 0.0;
};

/// RAII helper: charges the elapsed wall-clock of its scope to a phase.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(RoundLedger& ledger, std::string_view phase);
  ~ScopedPhaseTimer();

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  RoundLedger& ledger_;
  std::string phase_;
  std::int64_t start_ns_;
};

}  // namespace deltacolor
