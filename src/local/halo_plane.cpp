#include "local/halo_plane.hpp"

#include <sys/mman.h>
#include <time.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <cstring>
#include <new>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "local/transport.hpp"

namespace deltacolor {

namespace {

constexpr std::size_t kLine = 64;

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

HaloPlane::HaloPlane(const ShardManifest& mf, std::size_t num_nodes,
                     std::size_t aux_capacity) {
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "cross-process epoch stamps require address-free atomics");
  num_shards_ = mf.num_shards();
  const std::size_t parts = static_cast<std::size_t>(num_shards_);
  const std::size_t record_cap = 4 + kMaxShardStateBytes;

  std::size_t off = 0;
  finals_off_ = off;
  off += parts * sizeof(FinalCell);
  barrier_off_ = off;
  off += parts * sizeof(BarrierCell) + sizeof(BarrierSeq);
  slab_offs_.resize(parts * 2);
  slab_caps_.resize(parts);
  for (std::size_t s = 0; s < parts; ++s) {
    slab_caps_[s] = round_up(mf.boundary[s].size() * record_cap, kLine);
    for (int parity = 0; parity < 2; ++parity) {
      slab_offs_[s * 2 + static_cast<std::size_t>(parity)] = off;
      off += sizeof(SlabHdr) + slab_caps_[s];
    }
  }
  state_off_ = off;
  state_cap_ = round_up(num_nodes * kMaxShardStateBytes, kLine);
  off += state_cap_;
  for (std::size_t parity = 0; parity < 2; ++parity) {
    snap_offs_[parity] = off;
    off += state_cap_;
  }
  aux_off_ = off;
  aux_cap_ = round_up(aux_capacity, kLine);
  off += aux_cap_;
  total_bytes_ = round_up(off, 4096);

  // Anonymous + shared: no shm_open name to leak, unlinked automatically
  // with the last process, and inherited by fork at the same address (the
  // offsets above stay valid in every worker). NORESERVE keeps the mostly
  // -untouched capacity regions free until first write.
  void* base = ::mmap(nullptr, total_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED)
    throw TransportError("mmap of " + std::to_string(total_bytes_) +
                         "-byte halo plane failed");
  base_ = static_cast<std::uint8_t*>(base);
  // The mapping is zero-filled, but atomics begin their lifetime here so
  // every later cross-process load/store is on a live object.
  for (int s = 0; s < num_shards_; ++s) {
    new (final_cell(s)) FinalCell{};
    new (barrier_cell(s)) BarrierCell{};
    new (hdr(s, 0)) SlabHdr{};
    new (hdr(s, 1)) SlabHdr{};
  }
  new (barrier_word()) BarrierSeq{};
}

HaloPlane::HaloPlane(HaloPlane&& other) noexcept { *this = std::move(other); }

HaloPlane& HaloPlane::operator=(HaloPlane&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) ::munmap(base_, total_bytes_);
  base_ = std::exchange(other.base_, nullptr);
  total_bytes_ = std::exchange(other.total_bytes_, 0);
  num_shards_ = std::exchange(other.num_shards_, 0);
  finals_off_ = other.finals_off_;
  barrier_off_ = other.barrier_off_;
  slab_offs_ = std::move(other.slab_offs_);
  slab_caps_ = std::move(other.slab_caps_);
  state_off_ = other.state_off_;
  state_cap_ = std::exchange(other.state_cap_, 0);
  snap_offs_[0] = other.snap_offs_[0];
  snap_offs_[1] = other.snap_offs_[1];
  aux_off_ = other.aux_off_;
  aux_cap_ = std::exchange(other.aux_cap_, 0);
  aux_used_ = std::exchange(other.aux_used_, 0);
  return *this;
}

HaloPlane::~HaloPlane() {
  if (base_ != nullptr) ::munmap(base_, total_bytes_);
}

HaloPlane::SlabHdr* HaloPlane::hdr(int shard, int parity) const {
  return reinterpret_cast<SlabHdr*>(
      base_ + slab_offs_[static_cast<std::size_t>(shard) * 2 +
                         static_cast<std::size_t>(parity)]);
}

HaloPlane::FinalCell* HaloPlane::final_cell(int shard) const {
  return reinterpret_cast<FinalCell*>(base_ + finals_off_) + shard;
}

HaloPlane::BarrierCell* HaloPlane::barrier_cell(int shard) const {
  return reinterpret_cast<BarrierCell*>(base_ + barrier_off_) + shard;
}

HaloPlane::BarrierSeq* HaloPlane::barrier_word() const {
  return reinterpret_cast<BarrierSeq*>(
      base_ + barrier_off_ +
      static_cast<std::size_t>(num_shards_) * sizeof(BarrierCell));
}

std::uint8_t* HaloPlane::slab_records(int shard, int parity) {
  return reinterpret_cast<std::uint8_t*>(hdr(shard, parity)) +
         sizeof(SlabHdr);
}

void HaloPlane::publish(int shard, int parity, std::uint64_t epoch,
                        std::uint32_t count) {
  SlabHdr* h = hdr(shard, parity);
  h->count = count;
  h->epoch.store(epoch, std::memory_order_release);
}

HaloPlane::SlabView HaloPlane::open(int shard, int parity,
                                    std::uint64_t epoch,
                                    std::size_t record_size) const {
  const SlabHdr* h = hdr(shard, parity);
  const std::uint64_t got = h->epoch.load(std::memory_order_acquire);
  if (got != epoch)
    throw TransportError("halo slab shard=" + std::to_string(shard) +
                         " parity=" + std::to_string(parity) +
                         " holds epoch " + std::to_string(got) +
                         ", expected " + std::to_string(epoch));
  const std::uint32_t count = h->count;
  if (static_cast<std::size_t>(count) * record_size >
      slab_caps_[static_cast<std::size_t>(shard)])
    throw TransportError("halo slab shard=" + std::to_string(shard) +
                         " publishes " + std::to_string(count) +
                         " records past its capacity");
  return SlabView{
      reinterpret_cast<const std::uint8_t*>(h) + sizeof(SlabHdr), count};
}

bool HaloPlane::try_open(int shard, int parity, std::uint64_t epoch,
                         std::size_t record_size, SlabView* out) const {
  const SlabHdr* h = hdr(shard, parity);
  if (h->epoch.load(std::memory_order_acquire) != epoch) return false;
  const std::uint32_t count = h->count;
  if (static_cast<std::size_t>(count) * record_size >
      slab_caps_[static_cast<std::size_t>(shard)])
    throw TransportError("halo slab shard=" + std::to_string(shard) +
                         " publishes " + std::to_string(count) +
                         " records past its capacity");
  *out = SlabView{reinterpret_cast<const std::uint8_t*>(h) + sizeof(SlabHdr),
                  count};
  return true;
}

void HaloPlane::barrier_arrive(int shard, std::uint64_t value) {
  barrier_cell(shard)->value.store(value, std::memory_order_release);
  // The release fetch_add orders the cell store before the word bump: a
  // waiter that acquire-loads the bumped word before scanning is guaranteed
  // to observe the arrival, so a futex sleep against the pre-bump value can
  // never miss the last arrival (and every arrival wakes all sleepers).
  BarrierSeq* w = barrier_word();
  w->seq.fetch_add(1, std::memory_order_seq_cst);
#if defined(__linux__)
  // seq_cst on the bump and the waiters load keeps them ordered against
  // the sleeper's (waiters increment, kernel seq re-check) pair: either
  // this load sees the sleeper and wakes it, or the sleeper's kernel-side
  // seq check sees the bump and never sleeps.
  if (w->waiters.load(std::memory_order_seq_cst) != 0)
    ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&w->seq),
              FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
#endif
}

std::uint64_t HaloPlane::barrier_raw(int shard) const {
  return barrier_cell(shard)->value.load(std::memory_order_acquire);
}

std::uint32_t HaloPlane::barrier_seq() const {
  return barrier_word()->seq.load(std::memory_order_acquire);
}

void HaloPlane::barrier_block(std::uint32_t seen) const {
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free &&
                    sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t),
                "futex word must alias the atomic's storage");
#if defined(__linux__)
  // Bounded wait so a worker whose peers all died (or whose coordinator
  // vanished) resurfaces to re-check liveness instead of sleeping forever.
  // FUTEX_WAIT (not _PRIVATE): the word is shared across processes. The
  // waiters increment must precede the wait (see barrier_arrive's wake
  // gate); the kernel's atomic seq-vs-`seen` check closes the race.
  BarrierSeq* w = barrier_word();
  w->waiters.fetch_add(1, std::memory_order_seq_cst);
  struct timespec timeout = {0, 50 * 1000 * 1000};
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&w->seq), FUTEX_WAIT,
            seen, &timeout, nullptr, 0);
  w->waiters.fetch_sub(1, std::memory_order_seq_cst);
#else
  (void)seen;
  struct timespec nap = {0, 1 * 1000 * 1000};
  ::nanosleep(&nap, nullptr);
#endif
}

void HaloPlane::publish_final(int shard, std::uint64_t epoch) {
  final_cell(shard)->epoch.store(epoch, std::memory_order_release);
}

bool HaloPlane::check_final(int shard, std::uint64_t epoch) const {
  return final_cell(shard)->epoch.load(std::memory_order_acquire) == epoch;
}

void* HaloPlane::aux_alloc(std::size_t bytes, std::size_t align) {
  DC_CHECK(align >= 1 && (align & (align - 1)) == 0);
  const std::size_t at = round_up(aux_used_, align);
  if (at + bytes > aux_cap_ || at + bytes < at) return nullptr;
  aux_used_ = at + bytes;
  return base_ + aux_off_ + at;
}

}  // namespace deltacolor
