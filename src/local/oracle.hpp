// Phase-boundary validation oracle for the composed coloring pipelines.
//
// Under --validate=phase, the deterministic and randomized pipelines call
// validate_partial_coloring() at each phase boundary: the partial coloring
// must be proper at every boundary (uncolored nodes ignored) — T-node
// pairs are placed non-adjacent, layers color against already-final
// neighbors, so a monochromatic edge mid-pipeline is always a bug, never a
// transient. A violation throws a structured invariant-violation CellError
// carrying the phase label and a witness node, which the sweep driver's
// retry / quarantine policy can act on — instead of surfacing only at the
// final DC_CHECK, n phases later and with the witness long gone.
//
// The oracle site doubles as the FaultInjector's corruption hook: an armed
// invariant-violation spec flips one edge monochromatic *here*, so the
// recovery test exercises the real detection path end to end.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/errors.hpp"
#include "graph/checker.hpp"
#include "graph/graph.hpp"
#include "local/faults.hpp"

namespace deltacolor {

/// Checks the partial-coloring invariant at a phase boundary when `mode`
/// is kPhase (no-op otherwise). Throws CellError(kInvariantViolation) on a
/// monochromatic edge. `color` is non-const only for the fault-injection
/// corruption hook; an unarmed run never mutates it.
inline void validate_partial_coloring(const Graph& g,
                                      std::vector<Color>& color,
                                      std::string_view phase,
                                      ValidateMode mode) {
  if (mode != ValidateMode::kPhase) return;
  if (FaultInjector::armed())
    FaultInjector::global().maybe_corrupt_coloring(phase, g, color);
  if (const auto edge = find_partial_conflict(g, color))
    throw CellError(
        FaultCategory::kInvariantViolation,
        "monochromatic edge (" + std::to_string(edge->first) + ", " +
            std::to_string(edge->second) + ") color " +
            std::to_string(color[edge->first]),
        {.phase = std::string(phase),
         .node = static_cast<std::int64_t>(edge->first)});
}

/// Final-coloring oracle for kEnd and kPhase: `valid` is the pipeline's
/// own checker verdict; a violation becomes a structured CellError instead
/// of the legacy DC_CHECK abort.
inline void validate_final_coloring(const Graph& g,
                                    const std::vector<Color>& color,
                                    bool valid, std::string_view phase,
                                    ValidateMode mode) {
  if (mode == ValidateMode::kOff || valid) return;
  throw CellError(FaultCategory::kInvariantViolation,
                  "final coloring invalid: " +
                      check_coloring(g, color).describe(),
                  {.phase = std::string(phase)});
}

}  // namespace deltacolor
