// Reference message-passing implementations on the SyncRunner engine.
//
// The library's primitives are written as explicit per-round loops with
// the same information discipline; these SyncRunner versions make the
// discipline *structural* (a node's transition function literally cannot
// read anything but its neighbors' previous-round states) and serve as
// cross-checks: the test suite verifies they deliver the same guarantees
// as the direct implementations.
//
// Both algorithms accept EngineOptions: results are bit-identical across
// worker counts (per-node randomness keys on (seed, id, round), so the
// schedule cannot leak in) and across frontier vs. full-sweep execution
// (decided/committed nodes return their state unchanged, so the frontier
// soundness condition holds). Wall-clock is charged to the ledger next to
// the round count (RoundLedger::charge_time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/ledger.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {

/// Luby's MIS, each iteration as two SyncRunner rounds (draw-compare,
/// then neighbor elimination). Returns the independent-set flags.
std::vector<bool> mis_message_passing(const Graph& g, std::uint64_t seed,
                                      RoundLedger& ledger,
                                      const std::string& phase = "mis-mp",
                                      const EngineOptions& engine = {});

/// Randomized (Delta+1)-coloring by color trials, one trial per two
/// SyncRunner rounds (try, then commit-if-unique).
std::vector<Color> color_trial_message_passing(
    const Graph& g, std::uint64_t seed, RoundLedger& ledger,
    const std::string& phase = "color-trial-mp",
    const EngineOptions& engine = {});

}  // namespace deltacolor
