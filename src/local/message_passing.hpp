// Reference message-passing implementations on the SyncRunner engine.
//
// The library's primitives are written as explicit per-round loops with
// the same information discipline; these SyncRunner versions make the
// discipline *structural* (a node's transition function literally cannot
// read anything but its neighbors' previous-round states) and serve as
// cross-checks: the test suite verifies they deliver the same guarantees
// as the direct implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

/// Luby's MIS, each iteration as two SyncRunner rounds (draw-compare,
/// then neighbor elimination). Returns the independent-set flags.
std::vector<bool> mis_message_passing(const Graph& g, std::uint64_t seed,
                                      RoundLedger& ledger,
                                      const std::string& phase = "mis-mp");

/// Randomized (Delta+1)-coloring by color trials, one trial per two
/// SyncRunner rounds (try, then commit-if-unique).
std::vector<Color> color_trial_message_passing(
    const Graph& g, std::uint64_t seed, RoundLedger& ledger,
    const std::string& phase = "color-trial-mp");

}  // namespace deltacolor
