#include "local/message_passing.hpp"

#include "common/check.hpp"
#include "common/palette.hpp"
#include "common/rng.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {

namespace {

enum class MisStatus : std::uint8_t { kUndecided, kCandidate, kIn, kOut };

struct MisState {
  MisStatus status = MisStatus::kUndecided;
  std::uint64_t draw = 0;

  bool operator==(const MisState&) const = default;
};

}  // namespace

std::vector<bool> mis_message_passing(const Graph& g, std::uint64_t seed,
                                      RoundLedger& ledger,
                                      const std::string& phase,
                                      const EngineOptions& engine) {
  const NodeId n = g.num_nodes();
  SyncRunner<MisState> runner(g, std::vector<MisState>(n), engine);
  const int max_rounds = 128 * (32 - __builtin_clz(n + 2));

  // Value seed + pre-prepare host graph reference: dispatchable to the
  // persistent shard pool.
  const auto step = shard_safe([seed, &g](const SyncRunner<MisState>::View&
                                              view) {
    MisState s = view.self();
    if (s.status == MisStatus::kIn || s.status == MisStatus::kOut) return s;
    if (view.round() % 2 == 0) {
      // Draw phase: publish a fresh random value and become a candidate.
      s.draw = hash_mix(seed, view.id(),
                        static_cast<std::uint64_t>(view.round())) |
               1;
      s.status = MisStatus::kCandidate;
      return s;
    }
    // Resolution phase: join if the own draw is the strict local maximum
    // among undecided neighbors; drop out if a neighbor joined earlier.
    bool is_max = true;
    for (const NodeId u : view.neighbors()) {
      const MisState& nb = view.neighbor(u);
      if (nb.status == MisStatus::kIn) {
        s.status = MisStatus::kOut;
        return s;
      }
      if (nb.status != MisStatus::kCandidate) continue;
      if (nb.draw > s.draw || (nb.draw == s.draw && g.id(u) > view.id()))
        is_max = false;
    }
    if (is_max) {
      s.status = MisStatus::kIn;
    } else {
      s.status = MisStatus::kUndecided;
    }
    return s;
  });
  // A candidate may still need its resolution round, so halting requires
  // every node In or Out. Node-decomposed (run_until) so the proc backend
  // can evaluate it with one AND-bit per shard.
  const auto done_node = [](NodeId, const MisState& s) {
    return s.status == MisStatus::kIn || s.status == MisStatus::kOut;
  };
  // One extra sweep after the last join lets neighbors observe it.
  int rounds;
  {
    ScopedPhaseTimer timer(ledger, phase);
    rounds = runner.run_until(max_rounds, step, done_node);
  }
  // Post-pass: neighbors of IN nodes that were still undecided at halt.
  std::vector<bool> in_set(n, false);
  for (NodeId v = 0; v < n; ++v)
    in_set[v] = runner.states()[v].status == MisStatus::kIn;
  DC_CHECK_MSG(rounds < max_rounds, "mis_message_passing did not converge");
  ledger.charge(phase, rounds);
  return in_set;
}

namespace {

struct TrialState {
  Color color = kNoColor;   // committed color
  Color trial = kNoColor;   // this round's attempt

  bool operator==(const TrialState&) const = default;
};

}  // namespace

std::vector<Color> color_trial_message_passing(const Graph& g,
                                               std::uint64_t seed,
                                               RoundLedger& ledger,
                                               const std::string& phase,
                                               const EngineOptions& engine) {
  const NodeId n = g.num_nodes();
  const int palette = g.max_degree() + 1;
  SyncRunner<TrialState> runner(g, std::vector<TrialState>(n), engine);
  const int max_rounds = 128 * (32 - __builtin_clz(n + 2));

  const auto step = shard_safe([seed, palette](
                                   const SyncRunner<TrialState>::View& view) {
    TrialState s = view.self();
    if (s.color != kNoColor) return s;
    if (view.round() % 2 == 0) {
      // Trial phase: sample uniformly among the colors unused by committed
      // neighbors. For palettes up to 64 (Delta <= 63) the free set lives
      // in one 64-bit mask — no allocation in the hot path; the k-th set
      // bit enumerates free colors in the same ascending order as the
      // vector fallback, so both paths draw identical trials.
      const std::uint64_t draw = hash_mix(
          seed, view.id(), static_cast<std::uint64_t>(view.round()));
      if (palette <= 64) {
        std::uint64_t used = 0;
        for (const NodeId u : view.neighbors()) {
          const Color cu = view.neighbor(u).color;
          if (cu != kNoColor) used |= std::uint64_t{1} << cu;
        }
        const std::uint64_t all =
            palette == 64 ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << palette) - 1;
        std::uint64_t free_mask = all & ~used;
        DC_CHECK(free_mask != 0);
        int k = static_cast<int>(
            draw % static_cast<std::uint64_t>(
                       __builtin_popcountll(free_mask)));
        while (k-- > 0) free_mask &= free_mask - 1;  // drop k lowest bits
        s.trial = static_cast<Color>(__builtin_ctzll(free_mask));
        return s;
      }
      // Wide palettes (Delta >= 64): the same mask dance on a multi-word
      // PaletteSet. sample_free enumerates set bits ascending — the same
      // order the old materialized free-vector had — so the drawn trial is
      // bit-identical, without the per-step heap allocations.
      thread_local PaletteSet free_set;
      free_set.reset(palette);
      free_set.fill();
      for (const NodeId u : view.neighbors()) {
        const Color cu = view.neighbor(u).color;
        if (cu != kNoColor) free_set.erase(cu);
      }
      s.trial = free_set.sample_free(draw);  // checked non-empty inside
      return s;
    }
    // Commit phase: keep the trial unless a neighbor tried or holds it.
    bool clash = false;
    for (const NodeId u : view.neighbors()) {
      const TrialState& nb = view.neighbor(u);
      if (nb.trial == s.trial || nb.color == s.trial) clash = true;
    }
    if (!clash) s.color = s.trial;
    s.trial = kNoColor;
    return s;
  });
  const auto done_node = [](NodeId, const TrialState& s) {
    return s.color != kNoColor;
  };
  int rounds;
  {
    ScopedPhaseTimer timer(ledger, phase);
    rounds = runner.run_until(max_rounds, step, done_node);
  }
  DC_CHECK_MSG(rounds < max_rounds,
               "color_trial_message_passing did not converge");
  std::vector<Color> color(n);
  for (NodeId v = 0; v < n; ++v) color[v] = runner.states()[v].color;
  ledger.charge(phase, rounds);
  return color;
}

}  // namespace deltacolor
