#include "local/context.hpp"

#include <chrono>

namespace deltacolor {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScopedContextTimer::ScopedContextTimer(LocalContext& ctx)
    : ctx_(ctx), phase_(ctx.phase()), start_ns_(now_ns()) {}

ScopedContextTimer::~ScopedContextTimer() {
  ctx_.ledger().charge_time(
      phase_, static_cast<double>(now_ns() - start_ns_) / 1e6);
}

}  // namespace deltacolor
