// Deterministic, seeded fault injection for the engine and sweep stack.
//
// The recovery paths of the robustness layer (CellError taxonomy, sweep
// retry / quarantine, journal + --resume) are only trustworthy if they are
// exercised — in CI, not just in theory. The FaultInjector plants failures
// at chosen (cell, attempt, round, phase) coordinates:
//
//   kEngineException    — throw from inside the cell (cell start, a phase
//                         charge, or an exact engine round)
//   kAllocationLimit    — fail the next ScratchArena growth with a
//                         structured allocation-limit CellError
//   kRoundBudgetExceeded— inflate a phase charge by `extra_rounds` so the
//                         driver's round-budget enforcement trips naturally
//   kWallClockTimeout   — sleep `sleep_ms` inside the cell so the driver's
//                         deadline check trips naturally
//   kInvariantViolation — corrupt the partial coloring at a validation
//                         oracle site so the --validate checker detects a
//                         genuine monochromatic edge
//   kProcessKill        — std::_Exit(137) at cell start, simulating a
//                         SIGKILL mid-sweep for journal/--resume round-trips;
//                         with round= (and optionally shard=) coordinates it
//                         instead fires inside a proc-backend shard worker's
//                         round loop, killing that worker process — the
//                         coordinator detects the control-channel EOF and
//                         runs the respawn/replay recovery (round=-1 specs
//                         never match worker sites, and round>=0 specs never
//                         match cell start)
//   kWorkerHang         — spin a proc-backend shard worker forever at the
//                         matched (round, shard) coordinate: the process
//                         stays alive but its barrier epoch stops advancing,
//                         exercising the coordinator's stall watchdog (the
//                         spin sleeps in 1ms slices so it burns no CPU and
//                         dies instantly to the watchdog's SIGKILL)
//   kTornSlab           — publish a deliberately corrupt halo slab (bogus
//                         record count) at the matched (round, shard), so a
//                         peer's seqlock open() detects the tear and the
//                         structured TransportError path is exercised end
//                         to end
//
// Determinism: a spec fires iff its coordinates match the thread-local
// (cell, attempt) installed by the SweepDriver plus the probe-site (round,
// phase), and fires at most once per (cell, attempt) — so the set of fired
// faults is a function of the plan and the sweep grid, independent of the
// worker schedule. Free choices (which node to corrupt) are drawn from
// hash_mix(seed, cell, ...), never from shared mutable RNG state.
//
// Cost when disarmed: every probe site is guarded by `if
// (FaultInjector::armed())` — one relaxed atomic load — so production runs
// pay nothing measurable.
//
// Arming: programmatically via arm(), or from the environment
// (DELTACOLOR_FAULTS="spec;spec", DELTACOLOR_FAULT_SEED=N), parsed on first
// use so every binary — benches, dcolor, tests — is injectable with zero
// per-binary wiring. Spec grammar:
//   category@key=value,key=value,...
// with category one of the to_string(FaultCategory) names and keys
//   cell= round= phase= node= shard= attempts= extra_rounds= sleep_ms=
// (attempts=N fires on the first N attempts of a cell, default 1, so a
// retried cell succeeds; attempts=0 means every attempt, forcing
// quarantine — or, for worker faults, exhausting the respawn budget).
// A malformed DELTACOLOR_FAULTS value — unknown category, unknown key,
// or a bad pair — is a hard error: the injector prints the offending
// spec with a did-you-mean suggestion to stderr and exits with status 2,
// because an armed fault plan that silently half-parses is worse than no
// plan at all (the chaos test believes it is injecting and isn't).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/errors.hpp"
#include "common/types.hpp"

namespace deltacolor {

class Graph;

struct FaultSpec {
  FaultCategory category = FaultCategory::kEngineException;
  // Coordinates (-1 / empty = wildcard).
  std::int64_t cell = -1;   ///< sweep cell index
  std::int64_t round = -1;  ///< exact engine round (engine-round site only)
  std::string phase;        ///< ledger phase label (charge/oracle sites)
  std::int64_t node = -1;   ///< corruption target (invariant faults)
  std::int64_t shard = -1;  ///< proc-backend shard id (worker-round site)
  /// Fire while the cell's attempt index is < attempts (0 = every attempt).
  int attempts = 1;
  // Payloads.
  std::int64_t extra_rounds = 1'000'000'000;  ///< round-budget inflation
  double sleep_ms = 20.0;                     ///< timeout stall
};

/// Parses one spec string ("category@k=v,..."). Returns false on grammar
/// errors (unknown category / key, malformed pair).
bool parse_fault_spec(std::string_view text, FaultSpec* out);

/// As above, but on failure fills `error` with a one-line description of
/// what was wrong — including a did-you-mean suggestion when the unknown
/// category or key is within edit distance 3 of a real one (mirroring the
/// algorithm registry's suggestion behavior).
bool parse_fault_spec(std::string_view text, FaultSpec* out,
                      std::string* error);

/// Wire image of the injector's armed state plus the calling thread's
/// (cell, attempt) coordinates. Persistent shard workers are forked once
/// per plan, so an arm() that happens after the fork (every sweep-driver
/// arming does) reaches them only as this snapshot inside each STAGE_BEGIN
/// frame; the worker re-arms from it per stage, which also resets the
/// fire-once markers exactly like the old fork-per-stage inheritance did.
struct FaultWire {
  bool armed = false;
  std::uint64_t seed = 1;
  std::int64_t cell = -1;
  int attempt = 0;
  std::vector<FaultSpec> specs;
};

/// Captures the global injector's plan and the calling thread's cell scope.
FaultWire snapshot_fault_wire();
/// Appends the byte encoding of `w` to `out`.
void encode_fault_wire(const FaultWire& w, std::vector<std::uint8_t>* out);
/// Decodes one FaultWire from `data`, returning bytes consumed; throws
/// std::runtime_error on a torn or truncated buffer.
std::size_t decode_fault_wire(const std::uint8_t* data, std::size_t size,
                              FaultWire* out);

class FaultInjector {
 public:
  /// Process-wide injector. First call parses DELTACOLOR_FAULTS (if set).
  static FaultInjector& global();

  void arm(std::vector<FaultSpec> plan, std::uint64_t seed = 1);
  void disarm();
  /// Fast disarmed-path guard: call before any probe method. Touches
  /// global() exactly once so a DELTACOLOR_FAULTS plan in the environment
  /// arms the injector before the first probe (otherwise nothing would
  /// ever construct the singleton that parses it); after that the guard
  /// is an initialized-check plus one relaxed atomic load.
  static bool armed() {
    static const bool env_checked = (global(), true);
    (void)env_checked;
    return armed_flag().load(std::memory_order_relaxed);
  }

  /// Total faults fired since the last arm() (all categories).
  std::size_t fired() const;

  /// Installs the sweep-cell coordinates on the calling thread for the
  /// scope's duration. Engine probes run on this thread too (a parallel
  /// sweep serializes cell engines), so (cell, attempt) reach every site.
  class CellScope {
   public:
    CellScope(std::int64_t cell, int attempt);
    ~CellScope();
    CellScope(const CellScope&) = delete;
    CellScope& operator=(const CellScope&) = delete;

   private:
    std::int64_t prev_cell_;
    int prev_attempt_;
  };
  static std::int64_t current_cell();
  static int current_attempt();

  // --- probe sites -------------------------------------------------------
  /// SweepDriver, immediately after installing the CellScope: fires
  /// process-kill, cell-coordinate engine exceptions, and timeout stalls.
  void on_cell_start();

  /// LocalContext::charge: fires phase-coordinate engine exceptions and
  /// timeout stalls; returns extra rounds to charge (round-budget specs).
  std::int64_t on_phase_charge(std::string_view phase);

  /// SyncRunner round loop: fires exact-round engine exceptions and
  /// timeout stalls.
  void on_engine_round(int round);

  /// Proc-backend shard worker round loop (runs in the pool worker, which
  /// re-armed from the FaultWire shipped in its STAGE_BEGIN frame): fires
  /// process-kill specs with round (and optionally shard) coordinates via
  /// std::_Exit(137), so the coordinator's worker-death detection is
  /// exercised against a genuinely dead process; fires worker-hang specs
  /// as an infinite 1ms-sleep loop, so the stall watchdog is exercised
  /// against a genuinely live-but-stuck process.
  void on_shard_round(int shard, int round);

  /// Proc-backend halo publish site (runs in the pool worker just before
  /// it publishes its round-`round` boundary slab): returns true when a
  /// torn-slab spec matches, telling the caller to publish a deliberately
  /// corrupt slab (bogus record count) so a peer's seqlock open() trips.
  bool on_slab_publish(int shard, int round);

  /// ScratchArena growth (installed as the arena's alloc probe while
  /// armed): throws an allocation-limit CellError on match.
  void on_alloc_growth(std::size_t bytes);

  /// Validation-oracle site in the composed pipelines: corrupts the
  /// partial coloring (creates a monochromatic edge) on match, so the
  /// oracle detects a genuine violation.
  void maybe_corrupt_coloring(std::string_view phase, const Graph& g,
                              std::vector<Color>& color);

  /// The armed plan and seed, for shipping to pool workers (FaultWire).
  void snapshot(std::vector<FaultSpec>* specs, std::uint64_t* seed) const;

 private:
  FaultInjector();

  static std::atomic<bool>& armed_flag();

  struct ArmedSpec {
    FaultSpec spec;
    // Fire-once-per-(cell, attempt) marker.
    std::int64_t fired_cell = -2;
    int fired_attempt = -1;
  };

  /// Returns the first matching, not-yet-fired spec of `category` for the
  /// current (cell, attempt) and the given site coordinates, marking it
  /// fired. nullptr when none. Caller holds no lock.
  bool claim(FaultCategory category, std::int64_t round,
             std::string_view phase, FaultSpec* out,
             std::int64_t shard = -1);

  mutable std::mutex mu_;
  std::vector<ArmedSpec> plan_;
  std::uint64_t seed_ = 1;
  std::size_t fired_ = 0;
};

}  // namespace deltacolor
