#include "local/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace deltacolor {

namespace {

// Frames are engine state for one round of one shard's boundary; anything
// approaching this bound indicates a corrupted length prefix, not a real
// payload.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

std::string errno_text(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

}  // namespace

FrameChannel::FrameChannel(int fd) : fd_(fd) {
  if (fd_ >= 0) FdRegistry::global().add(fd_);
}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

FrameChannel::~FrameChannel() { close(); }

void FrameChannel::close() {
  if (fd_ < 0) return;
  FdRegistry::global().remove(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::pair<FrameChannel, FrameChannel> FrameChannel::open_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw TransportError(errno_text("socketpair"));
  return {FrameChannel(fds[0]), FrameChannel(fds[1])};
}

void FrameChannel::send(FrameType type, const void* payload,
                        std::size_t len) {
  if (fd_ < 0) throw TransportError("send on a closed channel");
  if (len + 1 > kMaxFrameBytes) throw TransportError("frame too large");
  const std::uint32_t framed = static_cast<std::uint32_t>(len) + 1;
  std::uint8_t header[5];
  std::memcpy(header, &framed, 4);
  header[4] = static_cast<std::uint8_t>(type);
  const std::uint8_t* parts[2] = {header,
                                  static_cast<const std::uint8_t*>(payload)};
  const std::size_t sizes[2] = {sizeof(header), len};
  for (int p = 0; p < 2; ++p) {
    const std::uint8_t* data = parts[p];
    std::size_t left = sizes[p];
    while (left > 0) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE here instead of killing the
      // coordinator with SIGPIPE.
      const ssize_t wrote = ::send(fd_, data, left, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        throw TransportError(errno_text("send"));
      }
      data += wrote;
      left -= static_cast<std::size_t>(wrote);
    }
  }
}

bool FrameChannel::recv(Frame* out) {
  if (fd_ < 0) throw TransportError("recv on a closed channel");
  const auto read_exact = [&](std::uint8_t* data, std::size_t len,
                              bool eof_ok) -> bool {
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::read(fd_, data + got, len - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(errno_text("read"));
      }
      if (n == 0) {
        if (eof_ok && got == 0) return false;  // clean close at a boundary
        throw TransportError("peer closed mid-frame");
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  };
  std::uint32_t framed = 0;
  if (!read_exact(reinterpret_cast<std::uint8_t*>(&framed), 4,
                  /*eof_ok=*/true))
    return false;
  if (framed == 0 || framed > kMaxFrameBytes)
    throw TransportError("malformed frame length");
  std::uint8_t type = 0;
  read_exact(&type, 1, /*eof_ok=*/false);
  out->type = static_cast<FrameType>(type);
  out->payload.resize(framed - 1);
  read_exact(out->payload.data(), out->payload.size(), /*eof_ok=*/false);
  return true;
}

FdRegistry& FdRegistry::global() {
  static FdRegistry* registry = new FdRegistry();  // never destroyed
  return *registry;
}

void FdRegistry::add(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.push_back(fd);
}

void FdRegistry::remove(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
}

pid_t FdRegistry::fork_with_only(const int* keep, std::size_t keep_count) {
  // The lock spans the fork so no other thread can register a new channel
  // fd between the snapshot the child sees and the fork itself.
  std::lock_guard<std::mutex> lock(mu_);
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const int fd : fds_) {
      bool kept = false;
      for (std::size_t i = 0; i < keep_count; ++i) kept |= keep[i] == fd;
      if (!kept) ::close(fd);
    }
    // The child's view of the registry only matters for nested forks,
    // which never happen (workers are leaf processes).
  }
  return pid;
}

}  // namespace deltacolor
