// ShardWorkerPool: persistent worker processes under a prepared shard plan.
//
// Execution model: fork-once-per-plan. ProcShardedBackend::prepare(g)
// constructs the pool, which maps the shared-memory HaloPlane
// (halo_plane.hpp) and — for persistent pools — forks one worker per shard
// immediately, while the coordinator's heap still holds nothing but the
// graph and the manifest. Each worker parks in shard_worker_loop() reading
// control frames; every shardable SyncRunner stage is then *dispatched* to
// the live pool with a STAGE_BEGIN frame instead of paying fork + COW
// warm-up + teardown per stage, so a 40-stage pipeline costs one fork per
// shard, not 40.
//
// Because workers fork before the stages exist, a stage's closures cannot
// be inherited; they are shipped by value. STAGE_BEGIN carries
//
//   [u64 entry][u64 stage_id][i32 max_rounds][u32 state_size]
//   [u32 step_size][u32 done_size][u8 frames][u8 snap_parity]
//   [fault wire][step bytes][done bytes]
//
// where `entry` is the address of the templated trampoline
// shard_stage_entry<State, Step, Done> (sync_runner.hpp) — valid in every
// worker because fork preserves the process image — and the step/done
// bytes are the functors' trivially-copyable object representations. The
// engine only ships functors explicitly marked shard_safe() whose captures
// are values, the pre-prepare host graph, or plane-resident views
// (ShardSpan / ShardFlag), so no shipped byte ever decodes to a
// coordinator-only address. The fault wire re-arms the worker's injector
// per stage (faults.hpp), preserving the fork-per-stage fault semantics
// the fault-matrix suite pins.
//
// Round protocol per stage (data plane entirely in the HaloPlane; frames
// carry no records). Two barrier modes, selected per pool (BarrierMode in
// backend.hpp; DELTACOLOR_BARRIER=frames is the escape hatch):
//
// kShm (default) — peer-to-peer shared-memory epoch barrier; the
// coordinator leaves the round loop entirely:
//
//   worker, on STAGE_BEGIN:  load state image; publish empty slab epoch(0)
//   worker, per round r:     barrier_arrive(epoch(r) | done vote), then
//                            wait until every peer's cell reaches epoch(r)
//                            (spin-then-futex; eagerly applying any peer
//                            slab already published at epoch(r) while
//                            waiting). Every worker computes the identical
//                            halt decision from the shared cells — all
//                            done votes set, or r == max_rounds — with no
//                            frames: a peer cell already at epoch(r+1)
//                            proves the decision was "continue" (a halting
//                            worker never arrives again). To execute round
//                            r: apply remaining peer slabs at epoch(r);
//                            step *boundary nodes first*, appending
//                            changed-state records inline; publish the
//                            slab at epoch(r+1) immediately; then sweep
//                            the interior runs while peers consume the
//                            slab; refresh ghost shadow slots; swap.
//   worker, on halt:         write own state slice; publish_final;
//                            STAGE_END{rounds, totals, timing samples}
//   coordinator:             sends STAGE_BEGIN, then poll(2)s all control
//                            sockets for the STAGE_ENDs — per-round cost
//                            is zero syscalls and zero frames.
//
// kFrames (PR 8 baseline) — coordinator-mediated:
//
//   worker, on STAGE_BEGIN:  load state image; publish empty slab epoch(0);
//                            BARRIER{done, published=0, applied=0}
//   coordinator, per barrier: all done, or rounds == max? -> HALT to all
//                             else STEP to all; ++rounds
//   worker, per STEP:        apply peers' slabs at epoch(r); step own
//                            range; refresh ghost shadow slots; swap;
//                            publish changed boundary records at
//                            epoch(r+1); BARRIER{done, published, applied}
//   worker, on HALT:         write own state slice; publish_final;
//                            STAGE_END{...}; return to the control loop
//
// Either way, no worker starts round r before every peer finished round
// r-1, which is what makes the double-buffered slabs safe: the epoch(r+1)
// publish overwrites the parity buddy epoch(r-1), which every reader
// consumed before arriving at barrier r — and round r's publish happens
// only after barrier r completes. The early (pre-interior) publish
// tightens nothing here: it still sits after barrier r.
//
// Failure and recovery (the self-healing layer). Two recoverable failure
// classes, both detected by the coordinator while it waits for STAGE_ENDs:
//
//   worker-death — EOF/EPIPE on the control socket (crash, OOM-kill,
//                  injected process-kill);
//   worker-stall — the process is alive but its barrier epoch cell (shm
//                  mode) or control-frame flow (frames mode) stopped
//                  advancing past the watchdog deadline (`stall_ms`,
//                  0 = watchdog off). The coordinator SIGKILLs the hung
//                  worker; only shards at the *minimum* pending epoch are
//                  stall candidates, because peers waiting on a straggler
//                  stop advancing their own cells too and must not be
//                  flagged.
//
// Recovery replays the stage from its entry snapshot: every STAGE_BEGIN
// stamps the caller's state into one of the plane's two snapshot regions
// (parity alternates per logical stage), and workers load their initial
// state from the snapshot — never from the mutable `states` image — so a
// replay needs zero restore copies. The protocol is
//
//   1. SIGKILL + reap the failed worker; close its channel.
//   2. Quiesce survivors: send kStageAbort to each; a worker mid-stage
//      observes it at its next barrier timeout (shm; <=50ms futex bound)
//      or blocking recv (frames), throws StageAbortSignal out of the
//      trampoline, acks with kAbortAck, and parks in the control loop. A
//      worker that already finished acks from the loop directly. Stale
//      frames queued before the ack (barriers, STAGE_ENDs) are drained
//      and dropped; a survivor that misses the quiesce deadline or EOFs
//      is SIGKILLed and respawned too.
//   3. Re-fork the dead workers (valid because the coordinator's image
//      still holds the graph, manifest, plane and ship arena at the same
//      addresses the trampoline expects) and re-dispatch the stage with a
//      *fresh* stage_id and the same closure bytes, snapshot parity, and
//      fault wire — with the wire's attempt index bumped per replay, so
//      default attempts=1 faults fire once and the replay runs clean
//      while attempts=0 faults re-fire and deterministically exhaust the
//      budget. The fresh stage_id is what makes replay safe with zero
//      cell resets: barrier cells and slab epochs are monotonic across a
//      pool's lifetime, so everything the aborted attempt left behind
//      reads as "not yet arrived" to the replay.
//
// Replays are bounded by the pool's respawn budget (default 2 per
// dispatched stage, env DELTACOLOR_SHARD_RESPAWNS); deterministic
// closures make a recovered stage bit-identical to a fault-free run.
// Budget exhausted (or a non-recoverable failure: a worker-reported
// exception or protocol violation, which would deterministically re-fire)
// -> teardown + CellError(kWorkerDeath / kWorkerStall); the engine's
// run_sharded then degrades the stage to in-process execution when the
// backend allows it (DELTACOLOR_SHARD_DEGRADE, default on), so the cell
// completes instead of quarantining. The next dispatch reforks the pool.
// A worker whose *coordinator* dies notices via a zero-timeout poll of
// its control socket on every futex timeout and exits.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "local/backend.hpp"
#include "local/halo_plane.hpp"
#include "local/transport.hpp"

namespace deltacolor {

/// Everything a stage trampoline needs inside the worker: the plan tables,
/// the shared plane, the control channel, and the raw closure bytes.
struct WorkerStageCtx {
  const ShardPlan* plan = nullptr;
  HaloPlane* plane = nullptr;
  FrameChannel* ch = nullptr;
  int shard = 0;
  std::uint64_t stage_id = 0;
  int max_rounds = 0;
  std::size_t state_size = 0;
  const std::uint8_t* step_bytes = nullptr;
  std::size_t step_size = 0;
  const std::uint8_t* done_bytes = nullptr;
  std::size_t done_size = 0;
  /// True = legacy coordinator frame barrier; false = shm epoch barrier.
  bool frames = false;
  /// Which of the plane's two stage-entry snapshot regions holds this
  /// stage's initial state (stable across replays of the same stage).
  int snap_parity = 0;

  /// Slab epoch of round `round` within this stage: stage ids start at 1,
  /// so no epoch ever collides with the plane's zero-initialized stamps or
  /// with any other stage's rounds. The same encoding fills the barrier
  /// cells' low 63 bits, which keeps them monotonic across stages — a new
  /// stage's round-0 target is above every value the previous stage left
  /// behind, so cells never need resetting at stage boundaries.
  std::uint64_t epoch(int round) const {
    return (stage_id << 32) | static_cast<std::uint32_t>(round);
  }
};

/// Per-stage summary a worker ships home in its STAGE_END frame (both
/// barrier modes): executed rounds, halo record totals, and per-round
/// timing samples feeding the SHARDS barrier_wait_ns / halo_publish_ns
/// accounting columns.
struct WorkerStageEnd {
  std::uint32_t rounds = 0;
  std::uint64_t published = 0;  ///< changed-boundary records published
  std::uint64_t applied = 0;    ///< ghost records applied
  std::vector<std::uint32_t> barrier_wait_ns;  ///< one sample per barrier
  std::vector<std::uint32_t> publish_ns;       ///< one sample per round
};

std::vector<std::uint8_t> encode_stage_end(const WorkerStageEnd& e);
bool decode_stage_end(const std::uint8_t* p, std::size_t size,
                      WorkerStageEnd* out);

/// Zero-timeout poll of the control socket for EOF/error — a barrier
/// waiter checks this on every futex timeout so a worker never outlives a
/// dead coordinator (the only way frames reach a worker mid-stage in shm
/// mode is pool teardown).
bool control_channel_dead(const FrameChannel& ch);

/// Thrown by a worker's stage trampoline when the coordinator aborts the
/// in-flight stage (kStageAbort: a peer died or stalled and the stage will
/// be replayed). Deliberately not a std::exception: the worker loop's
/// error handlers must never mistake an orderly abort for a stage failure.
struct StageAbortSignal {};

/// Mid-stage control check, run by a worker on every barrier futex
/// timeout: nothing readable -> return (keep waiting); kStageAbort ->
/// throw StageAbortSignal (the worker loop acks and parks for the
/// replay); kShutdown -> exit 0; EOF or anything else -> exit 1 (the
/// coordinator is gone or the protocol is broken).
void worker_poll_control(FrameChannel& ch);

/// Pause-friendly spin hint for the barrier's pre-futex phase.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Cell scans before the waiter falls back to a futex sleep when every
/// worker can hold its own core. Arrival skew between balanced shards is
/// typically well under this; the futex path is for genuinely lagging
/// peers (or dead ones — see barrier_block).
inline constexpr int kBarrierSpinScans = 4096;

/// Spin budget for one barrier wait. Spinning only pays when the machine
/// has more cores than workers: on an oversubscribed box the spinners
/// burn the very cycles the lagging peer needs to arrive, so the waiter
/// must sleep immediately and let the kernel run whoever is still
/// stepping (one eager scan still happens before the sleep).
inline int barrier_spin_scans(int shards) {
  static const unsigned cores = std::thread::hardware_concurrency();
  return (cores != 0 && cores > static_cast<unsigned>(shards))
             ? kBarrierSpinScans
             : 1;
}

/// Arrive-and-wait at the stage's round-`round` barrier (the caller has
/// already barrier_arrive()d its own cell). Returns the peers' collective
/// done vote: true iff every shard arrived at epoch(round) voting done —
/// the caller ANDs in its own vote implicitly because it arrived with it,
/// and halts iff the result is true or round == max_rounds. A peer cell
/// already one round ahead forces "continue" (it proves the global
/// decision at this barrier was continue); a cell more than one round
/// ahead, or in a future stage, is a torn epoch -> TransportError.
/// `eager` runs once per scan while waiting — the compute/communication
/// overlap hook that applies peer slabs the moment they are published.
template <typename EagerFn>
bool epoch_barrier_wait(const WorkerStageCtx& ctx, int round, EagerFn&& eager) {
  HaloPlane& plane = *ctx.plane;
  const int shards = ctx.plan->manifest.num_shards();
  const std::uint64_t target = ctx.epoch(round);
  const int spin_limit = barrier_spin_scans(shards);
  int scans = 0;
  for (;;) {
    // Snapshot the futex word *before* scanning: if the scan misses an
    // arrival that bumps the word afterwards, barrier_block(seq) returns
    // immediately instead of sleeping through the wakeup.
    const std::uint32_t seq = plane.barrier_seq();
    bool all_arrived = true;
    bool all_done = true;
    bool advanced = false;
    for (int s = 0; s < shards; ++s) {
      if (s == ctx.shard) continue;
      const std::uint64_t raw = plane.barrier_raw(s);
      const std::uint64_t at = raw & ~kBarrierDoneBit;
      if (at < target) {
        all_arrived = false;  // not there yet (or still in a prior stage)
      } else if (at == target) {
        all_done &= (raw & kBarrierDoneBit) != 0;
      } else if (at == target + 1) {
        advanced = true;  // peer already executing round + 1
      } else {
        throw TransportError(
            "torn barrier epoch: shard " + std::to_string(s) + " cell at " +
            std::to_string(at) + ", shard " + std::to_string(ctx.shard) +
            " waiting for " + std::to_string(target));
      }
    }
    if (all_arrived) return all_done && !advanced;
    eager();
    if (++scans < spin_limit) {
      cpu_relax();
      continue;
    }
    plane.barrier_block(seq);
    worker_poll_control(*ctx.ch);
  }
}

/// The templated trampoline (instantiated per State/Step/Done in
/// sync_runner.hpp) whose address travels in STAGE_BEGIN.
using StageEntryFn = void (*)(const WorkerStageCtx&);

/// One stage's dispatch payload, composed by SyncRunner::run_sharded.
struct StageWire {
  StageEntryFn entry = nullptr;
  std::size_t state_size = 0;
  std::vector<std::uint8_t> step_bytes;
  std::vector<std::uint8_t> done_bytes;
};

class ShardWorkerPool {
 public:
  /// `plan` must outlive the pool (the pool is a member of it, constructed
  /// by ProcShardedBackend::prepare). Non-persistent pools fork per
  /// dispatch and tear down after each stage — the fork-per-stage baseline
  /// kept for the bench_shard A/B comparison. `barrier` (kAuto resolves
  /// DELTACOLOR_BARRIER) picks the round-barrier protocol; workers learn
  /// it per stage from the STAGE_BEGIN mode byte. `stall_ms` is the
  /// watchdog deadline (0 = off, -1 = resolve DELTACOLOR_SHARD_STALL_MS,
  /// default off); `respawn_budget` bounds replays per dispatched stage
  /// (-1 = resolve DELTACOLOR_SHARD_RESPAWNS, default 2).
  ShardWorkerPool(const ShardPlan& plan, bool persistent,
                  BarrierMode barrier = BarrierMode::kAuto,
                  int stall_ms = -1, int respawn_budget = -1);
  ~ShardWorkerPool();
  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  bool persistent() const { return persistent_; }
  BarrierMode barrier_mode() const { return barrier_; }

  /// Forks the workers now (called at prepare() for persistent pools so
  /// the fork happens before any stage state exists on the heap).
  void spawn_now();

  struct StageResult {
    int rounds = 0;
    ShardStageStats stats;
  };

  /// Dispatches one stage to the pool (forking it first if it is not
  /// live), drives the barrier protocol, and copies the final state image
  /// back into `states`. A worker that dies or stalls mid-stage is
  /// respawned and the stage replayed from its entry snapshot, up to the
  /// respawn budget (see the header comment's recovery protocol). Throws
  /// CellError (kWorkerDeath / kWorkerStall once the budget is exhausted,
  /// kEngineException for a worker-reported exception or protocol
  /// violation); on a thrown failure the pool is torn down and the next
  /// dispatch reforks. Caller must hold the stage slot. `states` is only
  /// written on success, so a caller catching the CellError still holds
  /// its intact pre-stage state (what makes in-process degradation safe).
  StageResult run_stage(const StageWire& wire, int max_rounds, void* states,
                        std::size_t state_bytes);

  int stall_ms() const { return stall_ms_; }
  int respawn_budget() const { return respawn_budget_; }

  /// The stage slot serializes whole stages (and their shipped aux data)
  /// across concurrent sweep cells sharing one plan. Recursive: a runner
  /// holds the slot from its first ship()/dispatch until destruction, and
  /// nested runners on the same thread re-enter freely. Releasing the
  /// outermost hold resets the plane's aux arena.
  void slot_acquire();
  void slot_release();

  /// Bump-allocates ship arena bytes in the shared plane (nullptr = full).
  /// Caller must hold the stage slot.
  void* aux_alloc(std::size_t bytes, std::size_t align);

  struct Stats {
    std::uint64_t forks = 0;       ///< worker processes ever forked
    std::uint64_t dispatches = 0;  ///< stages dispatched
    std::uint64_t reused = 0;      ///< dispatches served by a live pool
    std::uint64_t shm_bytes = 0;   ///< mapped halo-plane bytes
    std::uint64_t ctl_frames = 0;  ///< control frames sent + received
    std::uint64_t respawns = 0;    ///< workers re-forked after death/stall
    std::uint64_t stalls = 0;      ///< watchdog-detected hung workers
    std::uint64_t replayed_rounds = 0;  ///< rounds discarded by replays
  };
  Stats stats() const;

 private:
  /// A recoverable mid-stage worker failure (death or stall), thrown
  /// inside run_stage's recovery loop; never escapes the pool.
  struct WorkerFailure {
    int shard = -1;
    int round = -1;
    FaultCategory category = FaultCategory::kWorkerDeath;
    std::string detail;
  };

  void spawn_locked();
  /// Forks (or re-forks) shard `s`'s worker on a fresh channel pair.
  void spawn_worker_locked(int s);
  void teardown_locked();
  /// SIGKILL + reap shard `s`'s worker (no-ops if already gone) and close
  /// its control channel.
  void kill_worker_locked(int s);
  [[noreturn]] void die_worker(int shard, int round, const char* what);
  /// One dispatch attempt: send STAGE_BEGINs, drive the barrier protocol,
  /// gather STAGE_ENDs. Throws WorkerFailure on a recoverable failure.
  void dispatch_attempt_locked(const std::vector<std::uint8_t>& begin,
                               std::uint64_t stage_id,
                               std::size_t record_size, int max_rounds,
                               StageResult* res);
  /// Recovery step between attempts: kill the failed worker, quiesce the
  /// survivors (kStageAbort / kAbortAck, draining stale frames; a
  /// survivor that EOFs or misses the deadline is killed too), and
  /// respawn every dead worker.
  void recover_locked(int failed_shard);
  /// Frame-barrier round loop (kFrames): gather BARRIERs, send STEP/HALT.
  void drive_frames_locked(int max_rounds, StageResult* res);
  /// Both modes: poll(2) every control socket until each worker delivers
  /// its STAGE_END, then fold the workers' round counts, record totals and
  /// timing samples into `res` and verify the final-state stamps. Runs
  /// the shm-mode stall watchdog while waiting.
  void await_ends_locked(std::uint64_t stage_id, std::size_t record_size,
                         int max_rounds, StageResult* res);
  /// Best-effort round coordinate of a (possibly dead) worker from its
  /// barrier cell; -1 if the cell is not in this stage.
  int barrier_round_of(int shard, std::uint64_t stage_id) const;

  const ShardPlan& plan_;
  const bool persistent_;
  const BarrierMode barrier_;
  const int stall_ms_;
  const int respawn_budget_;
  HaloPlane plane_;
  mutable std::recursive_mutex mu_;
  int slot_depth_ = 0;
  std::vector<FrameChannel> chans_;
  std::vector<pid_t> pids_;
  bool live_ = false;
  std::uint64_t next_stage_id_ = 1;
  int snap_parity_ = 1;
  Stats stats_;
};

/// Worker-process control loop: parks on the channel, runs one stage per
/// STAGE_BEGIN via its trampoline, acks kStageAbort (whether it lands
/// mid-stage as a StageAbortSignal or while parked) and keeps parking,
/// exits 0 on kShutdown/EOF and 1 (after a best-effort kError frame) on
/// any exception. Runs in the forked child; never returns.
[[noreturn]] void shard_worker_loop(const ShardPlan& plan, HaloPlane& plane,
                                    int shard, FrameChannel& ch);

}  // namespace deltacolor
