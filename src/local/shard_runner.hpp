// ShardStage: the process-level machinery under one sharded engine stage.
//
// Execution model: fork-per-stage. The coordinator (the process running the
// pipeline) reaches a shardable SyncRunner stage and forks one worker per
// shard *inside* run — the workers inherit the graph (mmap'd .dcsr pages
// stay shared; in-memory CSR is copy-on-write and read-only), the state
// vectors, and the step/done closures, which is what makes arbitrary C++
// step functors sharded-executable without any serialization of code.
// Workers step only their owned contiguous node range, serially; the
// coordinator never steps, it drives barriers and routes boundary state.
//
// Barrier protocol (bit-identical to the in-process loop
// `while (rounds < max && !done(cur)) { step; swap; ++rounds; }`):
//
//   worker, once after fork:    BARRIER{done(initial own range), no records}
//   coordinator, per barrier:   all workers done, or rounds == max_rounds?
//                                 -> HALT to all; rounds = STEPs issued
//                               else STEP{ghost records for that shard} to
//                                 all; ++rounds
//   worker, per STEP:           apply ghost records to cur; step own range
//                               into nxt; refresh nxt[ghost] = cur[ghost]
//                               (so the shadow buffer's ghost slots survive
//                               the swap); swap; BARRIER{done(own range),
//                               changed boundary records ascending}
//   worker, on HALT:            FINAL{raw own-range state bytes}; _Exit(0)
//   worker, on exception:       ERROR{what()}; _Exit(1)
//
// The done bits accompanying round-r state make the coordinator's halt
// decision exactly the oracle's done-before-each-round check, so round
// counts match; routing only *changed* boundary records is sound because
// every ghost copy starts identical (same initial vector) and every change
// is delivered at the barrier it happened.
//
// Failure: a worker that dies (crash, SIGKILL, injected process-kill)
// closes its socket; the coordinator sees EOF or EPIPE at the next barrier
// and throws CellError(kWorkerDeath) with the round coordinate — the sweep
// driver's retry/quarantine taxonomy handles it like any other structured
// cell failure. The ShardStage destructor SIGKILLs and reaps any remaining
// workers, so a failed stage never leaks processes or hangs.
//
// This class is deliberately type-agnostic: records are (u32 node,
// state_size raw bytes), so the coordinator logic lives in one .cpp and
// SyncRunner's templated worker body (sync_runner.hpp) is the only code
// instantiated per State type.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "local/backend.hpp"
#include "local/transport.hpp"

namespace deltacolor {

class ShardStage {
 public:
  /// `plan` must outlive the stage; `state_size` = sizeof(State).
  ShardStage(const ShardPlan& plan, std::size_t state_size);
  ~ShardStage();
  ShardStage(const ShardStage&) = delete;
  ShardStage& operator=(const ShardStage&) = delete;

  /// Forks one worker per shard. `worker_main(shard, channel)` runs in the
  /// child and must never return (it exits via _Exit). Throws on fork
  /// failure (already-forked workers are cleaned up by the destructor).
  void spawn(const std::function<void(int, FrameChannel&)>& worker_main);

  struct Result {
    int rounds = 0;
    ShardStageStats stats;
  };

  /// Drives the barrier protocol to completion and returns the round count
  /// plus exchange accounting. Throws CellError (kWorkerDeath for a dead
  /// worker, kEngineException for a worker-reported exception or protocol
  /// violation).
  Result drive(int max_rounds);

  /// Collects the FINAL frames, invoking sink(shard, data, bytes) in shard
  /// order; bytes is exactly shard_size * state_size. Call once, after
  /// drive().
  void collect(
      const std::function<void(int, const std::uint8_t*, std::size_t)>& sink);

 private:
  [[noreturn]] void die_worker(int shard, int round, const char* what);

  const ShardPlan& plan_;
  const std::size_t state_size_;
  const std::size_t record_size_;  // 4-byte node id + state bytes
  std::vector<FrameChannel> chans_;
  std::vector<pid_t> pids_;
};

}  // namespace deltacolor
