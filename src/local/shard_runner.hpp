// ShardWorkerPool: persistent worker processes under a prepared shard plan.
//
// Execution model: fork-once-per-plan. ProcShardedBackend::prepare(g)
// constructs the pool, which maps the shared-memory HaloPlane
// (halo_plane.hpp) and — for persistent pools — forks one worker per shard
// immediately, while the coordinator's heap still holds nothing but the
// graph and the manifest. Each worker parks in shard_worker_loop() reading
// control frames; every shardable SyncRunner stage is then *dispatched* to
// the live pool with a STAGE_BEGIN frame instead of paying fork + COW
// warm-up + teardown per stage, so a 40-stage pipeline costs one fork per
// shard, not 40.
//
// Because workers fork before the stages exist, a stage's closures cannot
// be inherited; they are shipped by value. STAGE_BEGIN carries
//
//   [u64 entry][u64 stage_id][i32 max_rounds][u32 state_size]
//   [u32 step_size][u32 done_size][fault wire][step bytes][done bytes]
//
// where `entry` is the address of the templated trampoline
// shard_stage_entry<State, Step, Done> (sync_runner.hpp) — valid in every
// worker because fork preserves the process image — and the step/done
// bytes are the functors' trivially-copyable object representations. The
// engine only ships functors explicitly marked shard_safe() whose captures
// are values, the pre-prepare host graph, or plane-resident views
// (ShardSpan / ShardFlag), so no shipped byte ever decodes to a
// coordinator-only address. The fault wire re-arms the worker's injector
// per stage (faults.hpp), preserving the fork-per-stage fault semantics
// the fault-matrix suite pins.
//
// Round protocol per stage (data plane entirely in the HaloPlane; frames
// carry no records):
//
//   worker, on STAGE_BEGIN:  load state image; publish empty slab epoch(0);
//                            BARRIER{done, published=0, applied=0}
//   coordinator, per barrier: all done, or rounds == max? -> HALT to all
//                             else STEP to all; ++rounds
//   worker, per STEP:        apply peers' slabs at epoch(r) (ghost-run
//                            merge); step own range; refresh ghost shadow
//                            slots; swap; publish changed boundary records
//                            at epoch(r+1); BARRIER{done, published, applied}
//   worker, on HALT:         write own state slice; publish_final(stage_id);
//                            STAGE_END; return to the control loop
//
// Gathering every shard's barrier before releasing any STEP is unchanged
// from the fork-per-stage design, and it is also what makes the
// double-buffered slabs safe: the epoch(r) publish overwrites the parity
// buddy epoch(r-2), which every reader finished with before the barrier
// that gated this worker's STEP (see halo_plane.hpp).
//
// Failure: a dead worker (crash, SIGKILL, injected process-kill) surfaces
// as EOF/EPIPE on its control socket; the coordinator throws
// CellError(kWorkerDeath) with the round coordinate and tears the pool
// down (SIGKILL + reap — a failed stage never leaks processes or hangs).
// The next dispatch simply forks a fresh pool, so one dead worker
// quarantines one cell, not the plan.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "local/backend.hpp"
#include "local/halo_plane.hpp"
#include "local/transport.hpp"

namespace deltacolor {

/// Everything a stage trampoline needs inside the worker: the plan tables,
/// the shared plane, the control channel, and the raw closure bytes.
struct WorkerStageCtx {
  const ShardPlan* plan = nullptr;
  HaloPlane* plane = nullptr;
  FrameChannel* ch = nullptr;
  int shard = 0;
  std::uint64_t stage_id = 0;
  int max_rounds = 0;
  std::size_t state_size = 0;
  const std::uint8_t* step_bytes = nullptr;
  std::size_t step_size = 0;
  const std::uint8_t* done_bytes = nullptr;
  std::size_t done_size = 0;

  /// Slab epoch of round `round` within this stage: stage ids start at 1,
  /// so no epoch ever collides with the plane's zero-initialized stamps or
  /// with any other stage's rounds.
  std::uint64_t epoch(int round) const {
    return (stage_id << 32) | static_cast<std::uint32_t>(round);
  }
};

/// The templated trampoline (instantiated per State/Step/Done in
/// sync_runner.hpp) whose address travels in STAGE_BEGIN.
using StageEntryFn = void (*)(const WorkerStageCtx&);

/// One stage's dispatch payload, composed by SyncRunner::run_sharded.
struct StageWire {
  StageEntryFn entry = nullptr;
  std::size_t state_size = 0;
  std::vector<std::uint8_t> step_bytes;
  std::vector<std::uint8_t> done_bytes;
};

class ShardWorkerPool {
 public:
  /// `plan` must outlive the pool (the pool is a member of it, constructed
  /// by ProcShardedBackend::prepare). Non-persistent pools fork per
  /// dispatch and tear down after each stage — the fork-per-stage baseline
  /// kept for the bench_shard A/B comparison.
  ShardWorkerPool(const ShardPlan& plan, bool persistent);
  ~ShardWorkerPool();
  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  bool persistent() const { return persistent_; }

  /// Forks the workers now (called at prepare() for persistent pools so
  /// the fork happens before any stage state exists on the heap).
  void spawn_now();

  struct StageResult {
    int rounds = 0;
    ShardStageStats stats;
  };

  /// Dispatches one stage to the pool (forking it first if it is not
  /// live), drives the barrier protocol, and copies the final state image
  /// back into `states`. Throws CellError (kWorkerDeath for a dead worker,
  /// kEngineException for a worker-reported exception or protocol
  /// violation); on any failure the pool is torn down and the next
  /// dispatch reforks. Caller must hold the stage slot.
  StageResult run_stage(const StageWire& wire, int max_rounds, void* states,
                        std::size_t state_bytes);

  /// The stage slot serializes whole stages (and their shipped aux data)
  /// across concurrent sweep cells sharing one plan. Recursive: a runner
  /// holds the slot from its first ship()/dispatch until destruction, and
  /// nested runners on the same thread re-enter freely. Releasing the
  /// outermost hold resets the plane's aux arena.
  void slot_acquire();
  void slot_release();

  /// Bump-allocates ship arena bytes in the shared plane (nullptr = full).
  /// Caller must hold the stage slot.
  void* aux_alloc(std::size_t bytes, std::size_t align);

  struct Stats {
    std::uint64_t forks = 0;       ///< worker processes ever forked
    std::uint64_t dispatches = 0;  ///< stages dispatched
    std::uint64_t reused = 0;      ///< dispatches served by a live pool
    std::uint64_t shm_bytes = 0;   ///< mapped halo-plane bytes
  };
  Stats stats() const;

 private:
  void spawn_locked();
  void teardown_locked();
  [[noreturn]] void die_worker(int shard, int round, const char* what);
  StageResult drive_locked(int max_rounds, std::size_t record_size);
  void finish_locked(std::uint64_t stage_id);

  const ShardPlan& plan_;
  const bool persistent_;
  HaloPlane plane_;
  mutable std::recursive_mutex mu_;
  int slot_depth_ = 0;
  std::vector<FrameChannel> chans_;
  std::vector<pid_t> pids_;
  bool live_ = false;
  std::uint64_t next_stage_id_ = 1;
  Stats stats_;
};

/// Worker-process control loop: parks on the channel, runs one stage per
/// STAGE_BEGIN via its trampoline, exits 0 on kShutdown/EOF and 1 (after a
/// best-effort kError frame) on any exception. Runs in the forked child;
/// never returns.
[[noreturn]] void shard_worker_loop(const ShardPlan& plan, HaloPlane& plane,
                                    int shard, FrameChannel& ch);

}  // namespace deltacolor
