// Double-buffered synchronous execution engine for LOCAL-model node
// programs, with optional multi-threaded stepping and sparse activation.
//
// Fidelity contract: in round t, a node's transition function sees only its
// own round-(t-1) state and the round-(t-1) states of its direct neighbors
// (unbounded messages in LOCAL make "publish full state" the most general
// message). The engine enforces this structurally: transitions write into a
// shadow buffer that becomes visible only after every node has stepped.
//
// Execution engine. `run()` is a template over the step functor, so the
// per-node call is devirtualized and inlined (no std::function in the hot
// loop). Nodes are partitioned into contiguous chunks across a thread pool
// each round; because every transition writes only its own slot of the
// shadow buffer, the schedule cannot affect results — states are
// bit-identical across worker counts and to the serial engine.
//
// Frontier mode (opt-in, EngineOptions::frontier) re-steps only nodes whose
// *closed neighborhood* changed state in the previous round. This is sound
// whenever the transition is a function of the closed neighborhood's
// previous states (plus node identity and the global round number, provided
// quiesced states are fixpoints for every later round — true for all
// engine algorithms in this library, whose decided/committed nodes return
// their state unchanged regardless of the round). Unchanged closed
// neighborhood => unchanged output, so skipped nodes already hold the right
// state. Many phases (color trials, MIS elimination, color reduction)
// quiesce region-by-region, so late rounds touch a small frontier; round
// counts and fixpoints are identical to full sweeps. The engine is
// adaptive: while the changed set is wide it keeps sweeping everyone
// (list bookkeeping would cost more than it saves) and drops to the
// sparse active list once the frontier shrinks below a degree-aware
// cutoff, switching back if it re-widens.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "graph/graph.hpp"
#include "local/backend.hpp"
#include "local/faults.hpp"
#include "local/shard_runner.hpp"
#include "local/transport.hpp"

namespace deltacolor {

/// Execution options for SyncRunner (and the engine algorithms built on
/// it). The defaults reproduce the library-wide default worker count
/// (DELTACOLOR_THREADS / hardware_concurrency) with full sweeps.
struct EngineOptions {
  /// Worker threads stepping nodes each round. 0 = library default
  /// (ThreadPool::default_workers()), 1 = serial in the calling thread.
  int num_threads = 0;
  /// Re-step only nodes whose closed neighborhood changed last round.
  /// Requires State to be equality-comparable; results and round counts
  /// are identical to full sweeps (see header comment for the soundness
  /// argument).
  bool frontier = false;
  /// Stage placement (backend.hpp). Non-owning; nullptr = in-process. Only
  /// run_until / run_rounds stages on prepared host graphs with
  /// trivially-copyable equality-comparable State can shard; everything
  /// else silently runs in-process, so results never depend on this field.
  ExecutionBackend* backend = nullptr;
};

/// `GraphT` is any type modeling the GraphView concept (graph_view.hpp):
/// the host Graph (the default), or a lazy InducedSubgraphView /
/// PowerGraphView / LineGraphView — the engine itself never materializes
/// virtual-graph adjacency.
template <typename State, typename GraphT = Graph>
class SyncRunner {
 public:
  /// The per-node view a transition function receives.
  class View {
   public:
    View(const GraphT& g, NodeId v, const std::vector<State>& prev,
         int round)
        : g_(g), v_(v), prev_(prev), round_(round) {}

    NodeId node() const { return v_; }
    std::uint64_t id() const { return g_.id(v_); }
    int degree() const { return g_.degree(v_); }

    /// Contiguous sorted neighbor span — host graphs only; lazy views
    /// enumerate via for_each_neighbor instead.
    std::span<const NodeId> neighbors() const
      requires requires(const GraphT& g, NodeId v) { g.neighbors(v); }
    {
      return g_.neighbors(v_);
    }

    /// fn(u) for every neighbor u of this node in the (possibly virtual)
    /// graph — the view-generic way to read the neighborhood.
    template <typename Fn>
    void for_each_neighbor(Fn&& fn) const {
      g_.for_each_neighbor(v_, fn);
    }

    /// The round being computed's predecessor index: 0 in the first
    /// executed round. Global lockstep round counters are shared knowledge
    /// in a synchronous network, so exposing this does not weaken the
    /// LOCAL fidelity contract.
    int round() const { return round_; }

    const State& self() const { return prev_[v_]; }

    /// Round-(t-1) state of a *neighbor* u. Adjacency is checked in debug
    /// builds when the graph type supports the query — reading a
    /// non-neighbor's state would break the LOCAL model.
    const State& neighbor(NodeId u) const {
      if constexpr (requires(const GraphT& g) { g.has_edge(v_, u); }) {
        DC_DCHECK(g_.has_edge(v_, u));
      }
      return prev_[u];
    }

   private:
    const GraphT& g_;
    NodeId v_;
    const std::vector<State>& prev_;
    int round_;
  };

  /// Transition: given the view of round t-1, produce the round-t state.
  /// (Type-erased alias for storage; run() itself is a template so direct
  /// lambdas are devirtualized.)
  using Step = std::function<State(const View&)>;
  /// Global halting predicate, evaluated between rounds by the harness.
  /// (This is a simulation-harness convenience, not node knowledge; all
  /// algorithms in the library also have explicit round bounds.)
  using Done = std::function<bool(const std::vector<State>&)>;

  SyncRunner(const GraphT& g, std::vector<State> initial,
             EngineOptions options = {})
      : g_(g), options_(options), cur_(std::move(initial)) {
    DC_CHECK(cur_.size() == g_.num_nodes());
    nxt_.resize(cur_.size());
    if (options_.num_threads == 1) {
      pool_ = nullptr;  // serial: no pool, step inline
    } else if (options_.num_threads <= 0) {
      pool_ = &ThreadPool::global();
    } else {
      // Cached process-wide pool for this worker count: runners are
      // constructed per primitive call, and spawning/joining OS threads
      // per runner would swamp the per-round parallel gains in composed
      // pipelines (see ThreadPool::shared).
      pool_ = &ThreadPool::shared(options_.num_threads);
    }
  }

  /// Runs until `done` or `max_rounds`; returns rounds executed.
  /// StepFn: State(const View&). DoneFn: bool(const std::vector<State>&).
  template <typename StepFn, typename DoneFn>
  int run(int max_rounds, StepFn&& step, DoneFn&& done) {
    if (options_.frontier) {
      if constexpr (std::equality_comparable<State>) {
        return run_frontier(max_rounds, step, done);
      } else {
        DC_CHECK_MSG(false,
                     "frontier mode requires an equality-comparable State");
      }
    }
    return run_full(max_rounds, step, done);
  }

  /// Runs until every node satisfies `done_node(v, state_v)` — a halting
  /// predicate that decomposes as a conjunction over nodes, which is what
  /// every engine algorithm in the library actually checks — or until
  /// `max_rounds`. Semantically identical to run() with the equivalent
  /// vector predicate; the decomposed form is what lets a sharded backend
  /// evaluate halting with one AND-bit per shard instead of gathering full
  /// state every round. DoneNodeFn: bool(NodeId, const State&).
  template <typename StepFn, typename DoneNodeFn>
  int run_until(int max_rounds, StepFn&& step, DoneNodeFn&& done_node) {
    if constexpr (kShardable) {
      if (const ShardPlan* plan = shard_plan())
        return run_sharded(*plan, max_rounds, step, done_node);
    } else {
      note_unshardable();
    }
    return run(max_rounds, step, [&](const std::vector<State>& states) {
      for (std::size_t v = 0; v < states.size(); ++v)
        if (!done_node(static_cast<NodeId>(v), states[v])) return false;
      return true;
    });
  }

  /// Runs exactly `max_rounds` rounds (schedule-driven stages: class
  /// sweeps, KW offset schedules, bit peeling). Equivalent to run() with a
  /// constant-false predicate, and shardable like run_until.
  template <typename StepFn>
  int run_rounds(int max_rounds, StepFn&& step) {
    if constexpr (kShardable) {
      const auto never_node = [](NodeId, const State&) { return false; };
      if (const ShardPlan* plan = shard_plan())
        return run_sharded(*plan, max_rounds, step, never_node);
    } else {
      note_unshardable();
    }
    return run(max_rounds, step,
               [](const std::vector<State>&) { return false; });
  }

  const std::vector<State>& states() const { return cur_; }
  std::vector<State> take_states() { return std::move(cur_); }

  /// Zero-round local relabeling: every node applies `fn` to its own state
  /// with no communication (e.g. KW palette compaction between stages).
  /// Runs on the worker pool; slots are disjoint, so results are
  /// schedule-independent like regular rounds.
  template <typename Fn>
  void mutate_states(Fn&& fn) {
    each_chunk(cur_.size(), [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        cur_[i] = fn(std::move(cur_[i]));
    });
  }

 private:
  /// Static gates for the sharded path: a concrete host graph (lazy views
  /// have no cheap partition/cut scan and per-component work stays local
  /// anyway), raw-byte-copyable state (records ship state as bytes), and
  /// equality (changed-boundary detection).
  static constexpr bool kShardable = std::same_as<GraphT, Graph> &&
                                     std::is_trivially_copyable_v<State> &&
                                     std::equality_comparable<State>;

  /// The backend's plan for this runner's graph, or nullptr to stay
  /// in-process. Only compiled into shardable instantiations.
  const ShardPlan* shard_plan() {
    if (options_.backend == nullptr) return nullptr;
    return options_.backend->plan_for(g_);
  }

  /// Fallback accounting for instantiations whose State/graph type cannot
  /// shard (the backend, if any, still learns a stage passed it by).
  void note_unshardable() {
    if (options_.backend != nullptr) options_.backend->note_fallback();
  }

  /// Fork-per-stage sharded execution (see shard_runner.hpp for the
  /// protocol and why results are bit-identical to run_full). The calling
  /// process becomes the coordinator; each forked worker inherits g_,
  /// cur_/nxt_, and the step/done closures copy-on-write and steps only
  /// its own contiguous node range, serially. Frontier mode is ignored
  /// here — sharded stages are full sweeps — which is sound because
  /// frontier runs are bit-identical to full sweeps by contract.
  template <typename StepFn, typename DoneNodeFn>
  int run_sharded(const ShardPlan& plan, int max_rounds, StepFn& step,
                  DoneNodeFn& done_node) {
    DC_CHECK(plan.graph == &g_);
    ShardStage stage(plan, sizeof(State));
    stage.spawn([&](int shard, FrameChannel& ch) {
      shard_worker_main(plan.manifest, shard, ch, step, done_node);
    });
    const typename ShardStage::Result res = stage.drive(max_rounds);
    stage.collect([&](int s, const std::uint8_t* data, std::size_t bytes) {
      std::memcpy(cur_.data() + plan.manifest.bounds[static_cast<
                      std::size_t>(s)],
                  data, bytes);
    });
    options_.backend->note_stage(plan, res.stats);
    return res.rounds;
  }

  /// Worker-process body: the round loop of run_full restricted to the
  /// owned range [lo, hi), with ghost slots of cur_ refreshed from STEP
  /// records at each barrier and re-pinned into nxt_ before the swap (a
  /// ghost's shadow slot would otherwise be two rounds stale). Exits the
  /// process; never returns.
  template <typename StepFn, typename DoneNodeFn>
  [[noreturn]] void shard_worker_main(const ShardManifest& mf, int shard,
                                      FrameChannel& ch, StepFn& step,
                                      DoneNodeFn& done_node) {
    try {
      const std::size_t lo = mf.bounds[static_cast<std::size_t>(shard)];
      const std::size_t hi = mf.bounds[static_cast<std::size_t>(shard) + 1];
      const auto& boundary = mf.boundary[static_cast<std::size_t>(shard)];
      const auto& ghosts = mf.ghosts[static_cast<std::size_t>(shard)];
      std::vector<std::uint8_t> payload;
      const auto own_done = [&]() -> std::uint8_t {
        for (std::size_t i = lo; i < hi; ++i)
          if (!done_node(static_cast<NodeId>(i), cur_[i])) return 0;
        return 1;
      };
      const auto send_barrier = [&](bool with_records) {
        payload.assign(1, own_done());
        payload.resize(5, 0);
        std::uint32_t count = 0;
        if (with_records) {
          // nxt_ holds the pre-swap (previous round) states; changed
          // boundary nodes are published ascending, matching the
          // coordinator's merge walk.
          for (const NodeId b : boundary) {
            if (cur_[b] == nxt_[b]) continue;
            payload.insert(payload.end(),
                           reinterpret_cast<const std::uint8_t*>(&b),
                           reinterpret_cast<const std::uint8_t*>(&b) + 4);
            const auto* bytes =
                reinterpret_cast<const std::uint8_t*>(&cur_[b]);
            payload.insert(payload.end(), bytes, bytes + sizeof(State));
            ++count;
          }
        }
        std::memcpy(payload.data() + 1, &count, 4);
        ch.send(FrameType::kBarrier, payload);
      };
      send_barrier(/*with_records=*/false);
      int r = 0;
      Frame f;
      for (;;) {
        if (!ch.recv(&f)) std::_Exit(1);  // coordinator vanished
        if (f.type == FrameType::kHalt) {
          ch.send(FrameType::kFinal,
                  reinterpret_cast<const std::uint8_t*>(cur_.data() + lo),
                  (hi - lo) * sizeof(State));
          std::_Exit(0);
        }
        DC_CHECK(f.type == FrameType::kStep);
        constexpr std::size_t kRecord = 4 + sizeof(State);
        std::uint32_t count = 0;
        DC_CHECK(f.payload.size() >= 4);
        std::memcpy(&count, f.payload.data(), 4);
        DC_CHECK(f.payload.size() == 4 + count * kRecord);
        const std::uint8_t* rec = f.payload.data() + 4;
        for (std::uint32_t i = 0; i < count; ++i, rec += kRecord) {
          NodeId node = 0;
          std::memcpy(&node, rec, 4);
          std::memcpy(&cur_[node], rec + 4, sizeof(State));
        }
        if (FaultInjector::armed()) {
          FaultInjector::global().on_engine_round(r);
          FaultInjector::global().on_shard_round(shard, r);
        }
        ScratchArena::local().reset();
        for (std::size_t i = lo; i < hi; ++i)
          nxt_[i] = step(View(g_, static_cast<NodeId>(i), cur_, r));
        for (const NodeId gnode : ghosts) nxt_[gnode] = cur_[gnode];
        cur_.swap(nxt_);
        ++r;
        send_barrier(/*with_records=*/true);
      }
    } catch (const std::exception& e) {
      try {
        ch.send(FrameType::kError, e.what(), std::strlen(e.what()));
      } catch (...) {
      }
      std::_Exit(1);
    } catch (...) {
      try {
        const char kWhat[] = "unknown exception in shard worker";
        ch.send(FrameType::kError, kWhat, sizeof(kWhat) - 1);
      } catch (...) {
      }
      std::_Exit(1);
    }
  }

  template <typename StepFn, typename DoneFn>
  int run_full(int max_rounds, StepFn& step, DoneFn& done) {
    const NodeId n = g_.num_nodes();
    int rounds = 0;
    while (rounds < max_rounds && !done(cur_)) {
      if (FaultInjector::armed())
        FaultInjector::global().on_engine_round(rounds);
      const int r = rounds;
      each_chunk(n, [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v = static_cast<NodeId>(i);
          nxt_[v] = step(View(g_, v, cur_, r));
        }
      });
      cur_.swap(nxt_);
      ++rounds;
    }
    return rounds;
  }

  template <typename StepFn, typename DoneFn>
  int run_frontier(int max_rounds, StepFn& step, DoneFn& done) {
    const NodeId n = g_.num_nodes();
    changed_.assign(n, 0);
    queued_.assign(n, 0);
    // Cost model: a sparse round pays ~deg+1 per active node to step plus
    // ~deg+1 per changed node to rebuild the frontier; a dense round pays
    // ~deg+1 per node with no list bookkeeping. Sparse activation only
    // wins once the changed set is well below n / (avg_deg + 2), so the
    // engine runs dense sweeps while the frontier is wide and switches to
    // the sparse list once it shrinks (re-widening switches back). Both
    // round kinds are bit-identical in outcome; only the schedule differs.
    std::size_t avg_deg_plus_2 = 2;
    if constexpr (requires(const GraphT& g) { g.num_edges(); }) {
      if (n != 0) avg_deg_plus_2 = 2 * g_.num_edges() / n + 2;
    } else {
      // Lazy views expose no global edge count; the max degree is a
      // conservative stand-in (cutoff only tunes when sparse mode kicks
      // in, never results).
      avg_deg_plus_2 = static_cast<std::size_t>(g_.max_degree()) + 2;
    }
    const std::size_t sparse_cutoff =
        std::max<std::size_t>(1, n / (2 * avg_deg_plus_2));
    std::vector<NodeId> active, next_active;
    bool dense = true;  // the first sweep steps everyone
    // Dense-round bookkeeping is single-pass: each worker appends the
    // changed nodes of its own contiguous chunk to a private list while it
    // steps them, so no post-round O(n) count or rebuild scan runs. After
    // the barrier the list sizes are reduced for the cutoff test, and on a
    // dense -> sparse transition the lists are concatenated in chunk order
    // — chunks are ascending contiguous node ranges, so the concatenation
    // is exactly the ascending scan order the rebuild pass produced, and
    // the active list (hence every later round) is bit-identical.
    chunk_changed_.resize(
        pool_ == nullptr ? 1 : static_cast<std::size_t>(pool_->num_workers()));

    // Invariant at the top of each SPARSE round: for every node NOT on the
    // active list, nxt_[v] == cur_[v] (its state cannot change, and the
    // shadow slot already agrees). A dense round establishes it — every
    // shadow slot is written, and unchanged nodes get equal values — and
    // sparse rounds preserve it because a node whose step output differs
    // from its previous state is in its own closed neighborhood and
    // therefore re-activated.
    int rounds = 0;
    while (rounds < max_rounds && !done(cur_)) {
      if (FaultInjector::armed())
        FaultInjector::global().on_engine_round(rounds);
      const int r = rounds;
      if (dense) {
        for (auto& list : chunk_changed_) list.clear();
        each_chunk(n, [&](int worker, std::size_t begin, std::size_t end) {
          auto& changed_here = chunk_changed_[static_cast<std::size_t>(worker)];
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId v = static_cast<NodeId>(i);
            State s = step(View(g_, v, cur_, r));
            if (!(s == cur_[v])) changed_here.push_back(v);
            nxt_[v] = std::move(s);
          }
        });
        cur_.swap(nxt_);
        std::size_t changed_count = 0;
        for (const auto& list : chunk_changed_) changed_count += list.size();
        if (changed_count <= sparse_cutoff) {
          next_active.clear();
          for (const auto& list : chunk_changed_)
            next_active.insert(next_active.end(), list.begin(), list.end());
          expand_frontier(next_active, active);
          dense = false;
        }
      } else if (!active.empty()) {
        each_chunk(active.size(),
                   [&](int, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const NodeId v = active[i];
                       State s = step(View(g_, v, cur_, r));
                       changed_[v] = !(s == cur_[v]);
                       nxt_[v] = std::move(s);
                     }
                   });
        cur_.swap(nxt_);
        next_active.clear();
        for (const NodeId v : active)
          if (changed_[v]) next_active.push_back(v);
        if (next_active.size() > sparse_cutoff) {
          dense = true;  // frontier re-widened; sweep everyone again
        } else {
          expand_frontier(next_active, active);
        }
      }
      ++rounds;
    }
    return rounds;
  }

  /// CSR reverse scan: in an undirected graph the nodes whose view of the
  /// last round included a changed node are exactly the changed nodes'
  /// closed neighborhoods. `queued_` dedups; `out` is rebuilt in place.
  void expand_frontier(const std::vector<NodeId>& changed,
                       std::vector<NodeId>& out) {
    out.clear();
    for (const NodeId v : changed) {
      if (!queued_[v]) {
        queued_[v] = 1;
        out.push_back(v);
      }
      g_.for_each_neighbor(v, [&](NodeId u) {
        if (!queued_[u]) {
          queued_[u] = 1;
          out.push_back(u);
        }
      });
    }
    for (const NodeId v : out) queued_[v] = 0;
  }

  /// Runs fn(worker, begin, end) over contiguous chunks of [0, size), one
  /// per worker (worker 0 owns the whole range when serial, i.e. when
  /// options_.num_threads == 1). The worker index is for worker-private
  /// bookkeeping only (e.g. dense-round changed lists); results must not
  /// depend on it. Each worker's ScratchArena is reset before its chunk:
  /// round-local scratch carved by step kernels never survives into the
  /// next round (arena.hpp contract), and the reset is free once arenas
  /// are warm.
  template <typename ChunkFn>
  void each_chunk(std::size_t size, ChunkFn&& fn) {
    if (pool_ == nullptr || pool_->num_workers() == 1) {
      ScratchArena::local().reset();
      fn(0, std::size_t{0}, size);
      return;
    }
    // Full sweeps over the host graph run on *stable* degree-balanced
    // chunk bounds: every round hands worker w the same node range, so the
    // CSR/state pages a worker faulted in (first touch) stay its own, and
    // skewed-degree graphs don't leave the high-degree stripe's worker as
    // the round's straggler. Bounds depend only on the degree sequence and
    // worker count — chunks stay contiguous ascending ranges, so results
    // (and the dense-round changed-list concatenation order) are
    // bit-identical to uniform striping.
    if (size == g_.num_nodes() && size > 0) {
      if constexpr (requires(const GraphT& g, NodeId v) {
                      g.neighbors(v);
                      g.num_edges();
                    }) {
        if (chunk_bounds_.empty()) compute_chunk_bounds();
        pool_->for_chunks(
            chunk_bounds_,
            [&](int worker, std::size_t begin, std::size_t end) {
              ScratchArena::local().reset();
              fn(worker, begin, end);
            });
        return;
      }
    }
    pool_->for_range(0, size,
                     [&](int worker, std::size_t begin, std::size_t end) {
                       ScratchArena::local().reset();
                       fn(worker, begin, end);
                     });
  }

  /// Degree-balanced 64-node-aligned chunk bounds over [0, n): worker w
  /// gets nodes [bounds[w], bounds[w+1]) whose (deg+1)-weight sums to
  /// ~1/workers of the total. Boundaries round up to 64-node groups so a
  /// cache line of the (typically word-sized) state arrays never straddles
  /// two workers. The weighting is the shared partitioner's
  /// (graph/partition.hpp) — the same split logic shard manifests use,
  /// with alignment 1 there. Host graphs only (lazy views may have
  /// expensive degree()); computed once per runner, O(n).
  void compute_chunk_bounds() {
    chunk_bounds_ =
        degree_balanced_bounds(g_, pool_->num_workers(), /*align=*/64);
  }

  const GraphT& g_;
  EngineOptions options_;
  ThreadPool* pool_ = nullptr;
  std::vector<State> cur_;
  std::vector<State> nxt_;
  std::vector<std::uint8_t> changed_;  // frontier: state changed last round
  std::vector<std::uint8_t> queued_;   // frontier: dedup for the next list
  // Dense rounds: per-worker changed-node lists (ascending within each
  // worker's contiguous chunk), concatenated in chunk order on a
  // dense -> sparse transition.
  std::vector<std::vector<NodeId>> chunk_changed_;
  // Full sweeps: stable degree-balanced worker chunk bounds (see
  // compute_chunk_bounds); empty until the first full sweep needs them.
  std::vector<std::size_t> chunk_bounds_;
};

/// One round of "everyone publishes, everyone reads neighbors" implemented
/// directly for hand-rolled primitives that keep their own buffers: swaps
/// `next` into `cur` and returns the incremented round count. An O(1) swap
/// (not a copy) is all the double-buffer discipline requires: once every
/// node has written its round-t state into `next`, the buffers trade roles
/// — `cur` becomes the published round-t snapshot, and the old snapshot
/// becomes the scratch buffer that round t+1 overwrites slot-by-slot before
/// the next commit, so its stale contents are never observed. Purely a
/// readability helper to keep that discipline visible at call sites.
template <typename State>
int commit_round(std::vector<State>& cur, std::vector<State>& next,
                 int rounds) {
  cur.swap(next);
  return rounds + 1;
}

}  // namespace deltacolor
