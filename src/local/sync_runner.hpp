// Double-buffered synchronous execution engine for LOCAL-model node
// programs, with optional multi-threaded stepping and sparse activation.
//
// Fidelity contract: in round t, a node's transition function sees only its
// own round-(t-1) state and the round-(t-1) states of its direct neighbors
// (unbounded messages in LOCAL make "publish full state" the most general
// message). The engine enforces this structurally: transitions write into a
// shadow buffer that becomes visible only after every node has stepped.
//
// Execution engine. `run()` is a template over the step functor, so the
// per-node call is devirtualized and inlined (no std::function in the hot
// loop). Nodes are partitioned into contiguous chunks across a thread pool
// each round; because every transition writes only its own slot of the
// shadow buffer, the schedule cannot affect results — states are
// bit-identical across worker counts and to the serial engine.
//
// Frontier mode (opt-in, EngineOptions::frontier) re-steps only nodes whose
// *closed neighborhood* changed state in the previous round. This is sound
// whenever the transition is a function of the closed neighborhood's
// previous states (plus node identity and the global round number, provided
// quiesced states are fixpoints for every later round — true for all
// engine algorithms in this library, whose decided/committed nodes return
// their state unchanged regardless of the round). Unchanged closed
// neighborhood => unchanged output, so skipped nodes already hold the right
// state. Many phases (color trials, MIS elimination, color reduction)
// quiesce region-by-region, so late rounds touch a small frontier; round
// counts and fixpoints are identical to full sweeps. The engine is
// adaptive: while the changed set is wide it keeps sweeping everyone
// (list bookkeeping would cost more than it saves) and drops to the
// sparse active list once the frontier shrinks below a degree-aware
// cutoff, switching back if it re-widens.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "graph/graph.hpp"
#include "local/backend.hpp"
#include "local/faults.hpp"
#include "local/shard_runner.hpp"
#include "local/transport.hpp"

namespace deltacolor {

/// Execution options for SyncRunner (and the engine algorithms built on
/// it). The defaults reproduce the library-wide default worker count
/// (DELTACOLOR_THREADS / hardware_concurrency) with full sweeps.
struct EngineOptions {
  /// Worker threads stepping nodes each round. 0 = library default
  /// (ThreadPool::default_workers()), 1 = serial in the calling thread.
  int num_threads = 0;
  /// Re-step only nodes whose closed neighborhood changed last round.
  /// Requires State to be equality-comparable; results and round counts
  /// are identical to full sweeps (see header comment for the soundness
  /// argument).
  bool frontier = false;
  /// Stage placement (backend.hpp). Non-owning; nullptr = in-process. Only
  /// run_until / run_rounds stages on prepared host graphs with
  /// trivially-copyable equality-comparable State can shard; everything
  /// else silently runs in-process, so results never depend on this field.
  ExecutionBackend* backend = nullptr;
};

/// A borrowed (pointer, length) view over trivially-copyable read-only
/// data. SyncRunner::ship() returns one whose pointer targets the shard
/// plan's shared halo plane (or the original vector when no pool applies),
/// so a step functor capturing it by value stays valid inside pool workers
/// — unlike a captured `const std::vector<T>&`, whose heap buffer a
/// post-fork worker has never seen.
template <typename T>
struct ShardSpan {
  const T* data = nullptr;
  std::size_t size = 0;
  const T& operator[](std::size_t i) const { return data[i]; }
  const T* begin() const { return data; }
  const T* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

/// A sticky one-byte failure flag whose cell lives in the shared halo
/// plane (SyncRunner::ship_flag), so pool workers setting it are visible
/// to the coordinator; the runner ORs every shipped cell back into its
/// original std::atomic<bool> after each run. Relaxed ordering suffices:
/// the flag is monotone (never cleared) and only read after the stage's
/// final-state handshake.
struct ShardFlag {
  std::atomic<std::uint8_t>* cell = nullptr;
  void set() const { cell->store(1, std::memory_order_relaxed); }
  bool test() const { return cell->load(std::memory_order_relaxed) != 0; }
};

/// Marker wrapper asserting a step/done functor is safe to dispatch to a
/// forked pool worker by shipping its raw bytes: every capture is a value,
/// the pre-prepare host graph by reference, or a shipped ShardSpan /
/// ShardFlag / raw pointer into the plane — never a coordinator stack or
/// post-prepare heap address. Unmarked functors always run in-process, so
/// adding the sharded path to a call site is an explicit, auditable edit.
template <typename Fn>
struct ShardSafe : Fn {
  explicit ShardSafe(Fn fn) : Fn(std::move(fn)) {}
};

template <typename Fn>
ShardSafe<std::decay_t<Fn>> shard_safe(Fn&& fn) {
  return ShardSafe<std::decay_t<Fn>>(std::forward<Fn>(fn));
}

template <typename Fn>
inline constexpr bool is_shard_safe_v = false;
template <typename Fn>
inline constexpr bool is_shard_safe_v<ShardSafe<Fn>> = true;

template <typename State, typename StepFn, typename DoneFn>
void shard_stage_entry(const WorkerStageCtx& ctx);

/// `GraphT` is any type modeling the GraphView concept (graph_view.hpp):
/// the host Graph (the default), or a lazy InducedSubgraphView /
/// PowerGraphView / LineGraphView — the engine itself never materializes
/// virtual-graph adjacency.
template <typename State, typename GraphT = Graph>
class SyncRunner {
 public:
  /// The per-node view a transition function receives.
  class View {
   public:
    View(const GraphT& g, NodeId v, const std::vector<State>& prev,
         int round)
        : g_(g), v_(v), prev_(prev), round_(round) {}

    NodeId node() const { return v_; }
    std::uint64_t id() const { return g_.id(v_); }
    int degree() const { return g_.degree(v_); }

    /// Contiguous sorted neighbor span — host graphs only; lazy views
    /// enumerate via for_each_neighbor instead.
    std::span<const NodeId> neighbors() const
      requires requires(const GraphT& g, NodeId v) { g.neighbors(v); }
    {
      return g_.neighbors(v_);
    }

    /// fn(u) for every neighbor u of this node in the (possibly virtual)
    /// graph — the view-generic way to read the neighborhood.
    template <typename Fn>
    void for_each_neighbor(Fn&& fn) const {
      g_.for_each_neighbor(v_, fn);
    }

    /// The round being computed's predecessor index: 0 in the first
    /// executed round. Global lockstep round counters are shared knowledge
    /// in a synchronous network, so exposing this does not weaken the
    /// LOCAL fidelity contract.
    int round() const { return round_; }

    const State& self() const { return prev_[v_]; }

    /// Round-(t-1) state of a *neighbor* u. Adjacency is checked in debug
    /// builds when the graph type supports the query — reading a
    /// non-neighbor's state would break the LOCAL model.
    const State& neighbor(NodeId u) const {
      if constexpr (requires(const GraphT& g) { g.has_edge(v_, u); }) {
        DC_DCHECK(g_.has_edge(v_, u));
      }
      return prev_[u];
    }

   private:
    const GraphT& g_;
    NodeId v_;
    const std::vector<State>& prev_;
    int round_;
  };

  /// Transition: given the view of round t-1, produce the round-t state.
  /// (Type-erased alias for storage; run() itself is a template so direct
  /// lambdas are devirtualized.)
  using Step = std::function<State(const View&)>;
  /// Global halting predicate, evaluated between rounds by the harness.
  /// (This is a simulation-harness convenience, not node knowledge; all
  /// algorithms in the library also have explicit round bounds.)
  using Done = std::function<bool(const std::vector<State>&)>;

  SyncRunner(const GraphT& g, std::vector<State> initial,
             EngineOptions options = {})
      : g_(g), options_(options), cur_(std::move(initial)) {
    DC_CHECK(cur_.size() == g_.num_nodes());
    nxt_.resize(cur_.size());
    if (options_.num_threads == 1) {
      pool_ = nullptr;  // serial: no pool, step inline
    } else if (options_.num_threads <= 0) {
      pool_ = &ThreadPool::global();
    } else {
      // Cached process-wide pool for this worker count: runners are
      // constructed per primitive call, and spawning/joining OS threads
      // per runner would swamp the per-round parallel gains in composed
      // pipelines (see ThreadPool::shared).
      pool_ = &ThreadPool::shared(options_.num_threads);
    }
  }

  SyncRunner(const SyncRunner&) = delete;
  SyncRunner& operator=(const SyncRunner&) = delete;

  ~SyncRunner() {
    // The stage slot (and with it the plane's ship arena) is held until
    // the runner dies: multi-stage runners re-read shipped data across
    // many run_* calls, so per-stage release would let a concurrent cell
    // reset the arena under them.
    if (slot_pool_ != nullptr) slot_pool_->slot_release();
  }

  /// Runs until `done` or `max_rounds`; returns rounds executed.
  /// StepFn: State(const View&). DoneFn: bool(const std::vector<State>&).
  template <typename StepFn, typename DoneFn>
  int run(int max_rounds, StepFn&& step, DoneFn&& done) {
    int rounds = 0;
    if (options_.frontier) {
      if constexpr (std::equality_comparable<State>) {
        rounds = run_frontier(max_rounds, step, done);
      } else {
        DC_CHECK_MSG(false,
                     "frontier mode requires an equality-comparable State");
      }
    } else {
      rounds = run_full(max_rounds, step, done);
    }
    sync_flags();
    return rounds;
  }

  /// Runs until every node satisfies `done_node(v, state_v)` — a halting
  /// predicate that decomposes as a conjunction over nodes, which is what
  /// every engine algorithm in the library actually checks — or until
  /// `max_rounds`. Semantically identical to run() with the equivalent
  /// vector predicate; the decomposed form is what lets a sharded backend
  /// evaluate halting with one AND-bit per shard instead of gathering full
  /// state every round. DoneNodeFn: bool(NodeId, const State&).
  template <typename StepFn, typename DoneNodeFn>
  int run_until(int max_rounds, StepFn&& step, DoneNodeFn&& done_node) {
    // The sharded path additionally requires the step functor (and any
    // non-trivial done predicate) to be explicitly shard_safe-marked: only
    // audited closures ever have their bytes shipped to a pool worker. A
    // captureless done predicate is safe by construction.
    if constexpr (kShardable && is_shard_safe_v<std::decay_t<StepFn>> &&
                  (is_shard_safe_v<std::decay_t<DoneNodeFn>> ||
                   std::is_empty_v<std::decay_t<DoneNodeFn>>)) {
      if (const ShardPlan* plan = shard_plan()) {
        if (plan->pool != nullptr && !aux_overflow_)
          return run_sharded(*plan, max_rounds, step, done_node);
        note_unshardable();  // shipped aux overflowed the plane's arena
      }
    } else {
      note_unshardable();
    }
    return run(max_rounds, step, [&](const std::vector<State>& states) {
      for (std::size_t v = 0; v < states.size(); ++v)
        if (!done_node(static_cast<NodeId>(v), states[v])) return false;
      return true;
    });
  }

  /// Runs exactly `max_rounds` rounds (schedule-driven stages: class
  /// sweeps, KW offset schedules, bit peeling). Equivalent to run() with a
  /// constant-false predicate, and shardable like run_until.
  template <typename StepFn>
  int run_rounds(int max_rounds, StepFn&& step) {
    if constexpr (kShardable && is_shard_safe_v<std::decay_t<StepFn>>) {
      const auto never_node = [](NodeId, const State&) { return false; };
      if (const ShardPlan* plan = shard_plan()) {
        if (plan->pool != nullptr && !aux_overflow_)
          return run_sharded(*plan, max_rounds, step, never_node);
        note_unshardable();
      }
    } else {
      note_unshardable();
    }
    return run(max_rounds, step,
               [](const std::vector<State>&) { return false; });
  }

  const std::vector<State>& states() const { return cur_; }
  std::vector<State> take_states() { return std::move(cur_); }

  /// Copies `data` into the shard plan's shared ship arena and returns a
  /// span a shard_safe step functor may capture by value. When no pool
  /// applies (no backend, unprepared graph, lazy view, arena full) the
  /// span aliases `data` itself — the functor then only ever runs
  /// in-process, where the original vector is live. `data` must outlive
  /// the runner either way and must not be mutated between run_* calls
  /// (the worker reads the shipped copy; in-process reads the original).
  template <typename T>
  ShardSpan<T> ship(const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (ShardWorkerPool* pool = ship_pool()) {
      const std::size_t bytes = data.size() * sizeof(T);
      if (void* dst = pool->aux_alloc(bytes, alignof(T))) {
        std::memcpy(dst, data.data(), bytes);
        return ShardSpan<T>{static_cast<const T*>(dst), data.size()};
      }
      aux_overflow_ = true;  // subsequent stages fall back in-process
    }
    return ShardSpan<T>{data.data(), data.size()};
  }

  /// Registers `orig` for cross-process reporting: returns a ShardFlag
  /// whose cell lives in the shared plane (or runner-local storage on the
  /// fallback paths); after every run_* the runner ORs each cell back into
  /// its original atomic. Unlike capturing `&orig`, the returned value is
  /// safe inside pool workers.
  ShardFlag ship_flag(std::atomic<bool>& orig) {
    std::atomic<std::uint8_t>* cell = nullptr;
    if (ShardWorkerPool* pool = ship_pool()) {
      if (void* p = pool->aux_alloc(sizeof(std::atomic<std::uint8_t>),
                                    alignof(std::atomic<std::uint8_t>))) {
        cell = new (p) std::atomic<std::uint8_t>(0);
      } else {
        aux_overflow_ = true;
      }
    }
    if (cell == nullptr) {
      local_cells_.push_back(
          std::make_unique<std::atomic<std::uint8_t>>(0));
      cell = local_cells_.back().get();
    }
    flags_.push_back(FlagBinding{cell, &orig});
    return ShardFlag{cell};
  }

  /// Zero-round local relabeling: every node applies `fn` to its own state
  /// with no communication (e.g. KW palette compaction between stages).
  /// Runs on the worker pool; slots are disjoint, so results are
  /// schedule-independent like regular rounds.
  template <typename Fn>
  void mutate_states(Fn&& fn) {
    each_chunk(cur_.size(), [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        cur_[i] = fn(std::move(cur_[i]));
    });
  }

 private:
  /// Static gates for the sharded path: a concrete host graph (lazy views
  /// have no cheap partition/cut scan and per-component work stays local
  /// anyway), raw-byte-copyable state that fits the halo plane's
  /// fixed-capacity regions, and equality (changed-boundary detection).
  static constexpr bool kShardable = std::same_as<GraphT, Graph> &&
                                     std::is_trivially_copyable_v<State> &&
                                     std::equality_comparable<State> &&
                                     sizeof(State) <= kMaxShardStateBytes;

  /// The backend's plan for this runner's graph, or nullptr to stay
  /// in-process. Only compiled into shardable instantiations.
  const ShardPlan* shard_plan() {
    if (options_.backend == nullptr) return nullptr;
    return options_.backend->plan_for(g_);
  }

  /// Fallback accounting for instantiations whose State/graph type cannot
  /// shard (the backend, if any, still learns a stage passed it by).
  void note_unshardable() {
    if (options_.backend != nullptr) options_.backend->note_fallback();
  }

  /// The plan's worker pool if ship()/ship_flag() should target its shared
  /// arena, acquiring the stage slot on first use (held until the runner
  /// dies — see the destructor). Accounting-neutral: uses find_plan, not
  /// plan_for, so ships don't inflate the per-stage fallback counters.
  ShardWorkerPool* ship_pool() {
    if constexpr (kShardable) {
      if (options_.backend == nullptr || aux_overflow_) return nullptr;
      const ShardPlan* plan = options_.backend->find_plan(g_);
      if (plan == nullptr || plan->pool == nullptr) return nullptr;
      hold_slot(plan->pool.get());
      return plan->pool.get();
    } else {
      return nullptr;
    }
  }

  void hold_slot(ShardWorkerPool* pool) {
    if (slot_pool_ == pool) return;
    DC_CHECK(slot_pool_ == nullptr);
    pool->slot_acquire();
    slot_pool_ = pool;
  }

  /// ORs every shipped flag cell back into its original atomic<bool>. Runs
  /// after every execution path, so callers observe identical flag state
  /// whether the stage ran in a pool worker or in-process.
  void sync_flags() {
    for (const FlagBinding& b : flags_) {
      if (b.cell->load(std::memory_order_relaxed) != 0)
        b.orig->store(true, std::memory_order_relaxed);
    }
  }

  /// Persistent-pool sharded execution (see shard_runner.hpp for the
  /// protocol and why results are bit-identical to run_full). The stage is
  /// dispatched to the plan's live workers: the state image crosses via
  /// the shared plane, and the step/done functors cross as raw bytes
  /// reconstructed by the shard_stage_entry trampoline — which is why only
  /// shard_safe()-marked, trivially-copyable closures reach this path.
  /// Frontier mode is ignored here — sharded stages are full sweeps —
  /// which is sound because frontier runs are bit-identical to full sweeps
  /// by contract.
  template <typename StepFn, typename DoneNodeFn>
  int run_sharded(const ShardPlan& plan, int max_rounds, const StepFn& step,
                  const DoneNodeFn& done_node) {
    DC_CHECK(plan.graph == &g_);
    using StepD = std::decay_t<StepFn>;
    using DoneD = std::decay_t<DoneNodeFn>;
    static_assert(std::is_trivially_copyable_v<StepD>,
                  "shard_safe step functors must be trivially copyable");
    static_assert(std::is_trivially_copyable_v<DoneD>,
                  "shard_safe done predicates must be trivially copyable");
    hold_slot(plan.pool.get());
    StageWire wire;
    wire.entry = &shard_stage_entry<State, StepD, DoneD>;
    wire.state_size = sizeof(State);
    wire.step_bytes.resize(sizeof(StepD));
    std::memcpy(wire.step_bytes.data(), std::addressof(step),
                sizeof(StepD));
    wire.done_bytes.resize(sizeof(DoneD));
    std::memcpy(wire.done_bytes.data(), std::addressof(done_node),
                sizeof(DoneD));
    ShardWorkerPool::StageResult res;
    try {
      res = plan.pool->run_stage(wire, max_rounds, cur_.data(),
                                 cur_.size() * sizeof(State));
    } catch (const CellError& e) {
      // Graceful degradation: once the pool's respawn budget is exhausted
      // (kWorkerDeath / kWorkerStall — anything else, e.g. a worker's own
      // exception, would deterministically recur in-process too), finish
      // the stage here instead of quarantining the cell. Safe because
      // run_stage never wrote `cur_` on failure, and shipped spans/flags
      // point into the still-mapped plane.
      if ((e.category() != FaultCategory::kWorkerDeath &&
           e.category() != FaultCategory::kWorkerStall) ||
          !options_.backend->degrade_on_worker_failure())
        throw;
      options_.backend->note_degraded();
      auto done = [&](const std::vector<State>& states) {
        for (std::size_t v = 0; v < states.size(); ++v)
          if (!done_node(static_cast<NodeId>(v), states[v])) return false;
        return true;
      };
      const int rounds = run_full(max_rounds, step, done);
      sync_flags();
      return rounds;
    }
    options_.backend->note_stage(plan, res.stats);
    sync_flags();
    return res.rounds;
  }

  template <typename StepFn, typename DoneFn>
  int run_full(int max_rounds, StepFn& step, DoneFn& done) {
    const NodeId n = g_.num_nodes();
    int rounds = 0;
    while (rounds < max_rounds && !done(cur_)) {
      if (FaultInjector::armed())
        FaultInjector::global().on_engine_round(rounds);
      const int r = rounds;
      each_chunk(n, [&](int, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const NodeId v = static_cast<NodeId>(i);
          nxt_[v] = step(View(g_, v, cur_, r));
        }
      });
      cur_.swap(nxt_);
      ++rounds;
    }
    return rounds;
  }

  template <typename StepFn, typename DoneFn>
  int run_frontier(int max_rounds, StepFn& step, DoneFn& done) {
    const NodeId n = g_.num_nodes();
    changed_.assign(n, 0);
    queued_.assign(n, 0);
    // Cost model: a sparse round pays ~deg+1 per active node to step plus
    // ~deg+1 per changed node to rebuild the frontier; a dense round pays
    // ~deg+1 per node with no list bookkeeping. Sparse activation only
    // wins once the changed set is well below n / (avg_deg + 2), so the
    // engine runs dense sweeps while the frontier is wide and switches to
    // the sparse list once it shrinks (re-widening switches back). Both
    // round kinds are bit-identical in outcome; only the schedule differs.
    std::size_t avg_deg_plus_2 = 2;
    if constexpr (requires(const GraphT& g) { g.num_edges(); }) {
      if (n != 0) avg_deg_plus_2 = 2 * g_.num_edges() / n + 2;
    } else {
      // Lazy views expose no global edge count; the max degree is a
      // conservative stand-in (cutoff only tunes when sparse mode kicks
      // in, never results).
      avg_deg_plus_2 = static_cast<std::size_t>(g_.max_degree()) + 2;
    }
    const std::size_t sparse_cutoff =
        std::max<std::size_t>(1, n / (2 * avg_deg_plus_2));
    std::vector<NodeId> active, next_active;
    bool dense = true;  // the first sweep steps everyone
    // Dense-round bookkeeping is single-pass: each worker appends the
    // changed nodes of its own contiguous chunk to a private list while it
    // steps them, so no post-round O(n) count or rebuild scan runs. After
    // the barrier the list sizes are reduced for the cutoff test, and on a
    // dense -> sparse transition the lists are concatenated in chunk order
    // — chunks are ascending contiguous node ranges, so the concatenation
    // is exactly the ascending scan order the rebuild pass produced, and
    // the active list (hence every later round) is bit-identical.
    chunk_changed_.resize(
        pool_ == nullptr ? 1 : static_cast<std::size_t>(pool_->num_workers()));

    // Invariant at the top of each SPARSE round: for every node NOT on the
    // active list, nxt_[v] == cur_[v] (its state cannot change, and the
    // shadow slot already agrees). A dense round establishes it — every
    // shadow slot is written, and unchanged nodes get equal values — and
    // sparse rounds preserve it because a node whose step output differs
    // from its previous state is in its own closed neighborhood and
    // therefore re-activated.
    int rounds = 0;
    while (rounds < max_rounds && !done(cur_)) {
      if (FaultInjector::armed())
        FaultInjector::global().on_engine_round(rounds);
      const int r = rounds;
      if (dense) {
        for (auto& list : chunk_changed_) list.clear();
        each_chunk(n, [&](int worker, std::size_t begin, std::size_t end) {
          auto& changed_here = chunk_changed_[static_cast<std::size_t>(worker)];
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId v = static_cast<NodeId>(i);
            State s = step(View(g_, v, cur_, r));
            if (!(s == cur_[v])) changed_here.push_back(v);
            nxt_[v] = std::move(s);
          }
        });
        cur_.swap(nxt_);
        std::size_t changed_count = 0;
        for (const auto& list : chunk_changed_) changed_count += list.size();
        if (changed_count <= sparse_cutoff) {
          next_active.clear();
          for (const auto& list : chunk_changed_)
            next_active.insert(next_active.end(), list.begin(), list.end());
          expand_frontier(next_active, active);
          dense = false;
        }
      } else if (!active.empty()) {
        each_chunk(active.size(),
                   [&](int, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const NodeId v = active[i];
                       State s = step(View(g_, v, cur_, r));
                       changed_[v] = !(s == cur_[v]);
                       nxt_[v] = std::move(s);
                     }
                   });
        cur_.swap(nxt_);
        next_active.clear();
        for (const NodeId v : active)
          if (changed_[v]) next_active.push_back(v);
        if (next_active.size() > sparse_cutoff) {
          dense = true;  // frontier re-widened; sweep everyone again
        } else {
          expand_frontier(next_active, active);
        }
      }
      ++rounds;
    }
    return rounds;
  }

  /// CSR reverse scan: in an undirected graph the nodes whose view of the
  /// last round included a changed node are exactly the changed nodes'
  /// closed neighborhoods. `queued_` dedups; `out` is rebuilt in place.
  void expand_frontier(const std::vector<NodeId>& changed,
                       std::vector<NodeId>& out) {
    out.clear();
    for (const NodeId v : changed) {
      if (!queued_[v]) {
        queued_[v] = 1;
        out.push_back(v);
      }
      g_.for_each_neighbor(v, [&](NodeId u) {
        if (!queued_[u]) {
          queued_[u] = 1;
          out.push_back(u);
        }
      });
    }
    for (const NodeId v : out) queued_[v] = 0;
  }

  /// Runs fn(worker, begin, end) over contiguous chunks of [0, size), one
  /// per worker (worker 0 owns the whole range when serial, i.e. when
  /// options_.num_threads == 1). The worker index is for worker-private
  /// bookkeeping only (e.g. dense-round changed lists); results must not
  /// depend on it. Each worker's ScratchArena is reset before its chunk:
  /// round-local scratch carved by step kernels never survives into the
  /// next round (arena.hpp contract), and the reset is free once arenas
  /// are warm.
  template <typename ChunkFn>
  void each_chunk(std::size_t size, ChunkFn&& fn) {
    if (pool_ == nullptr || pool_->num_workers() == 1) {
      ScratchArena::local().reset();
      fn(0, std::size_t{0}, size);
      return;
    }
    // Full sweeps over the host graph run on *stable* degree-balanced
    // chunk bounds: every round hands worker w the same node range, so the
    // CSR/state pages a worker faulted in (first touch) stay its own, and
    // skewed-degree graphs don't leave the high-degree stripe's worker as
    // the round's straggler. Bounds depend only on the degree sequence and
    // worker count — chunks stay contiguous ascending ranges, so results
    // (and the dense-round changed-list concatenation order) are
    // bit-identical to uniform striping.
    if (size == g_.num_nodes() && size > 0) {
      if constexpr (requires(const GraphT& g, NodeId v) {
                      g.neighbors(v);
                      g.num_edges();
                    }) {
        if (chunk_bounds_.empty()) compute_chunk_bounds();
        pool_->for_chunks(
            chunk_bounds_,
            [&](int worker, std::size_t begin, std::size_t end) {
              ScratchArena::local().reset();
              fn(worker, begin, end);
            });
        return;
      }
    }
    pool_->for_range(0, size,
                     [&](int worker, std::size_t begin, std::size_t end) {
                       ScratchArena::local().reset();
                       fn(worker, begin, end);
                     });
  }

  /// Degree-balanced 64-node-aligned chunk bounds over [0, n): worker w
  /// gets nodes [bounds[w], bounds[w+1]) whose (deg+1)-weight sums to
  /// ~1/workers of the total. Boundaries round up to 64-node groups so a
  /// cache line of the (typically word-sized) state arrays never straddles
  /// two workers. The weighting is the shared partitioner's
  /// (graph/partition.hpp) — the same split logic shard manifests use,
  /// with alignment 1 there. Host graphs only (lazy views may have
  /// expensive degree()); computed once per runner, O(n).
  void compute_chunk_bounds() {
    chunk_bounds_ =
        degree_balanced_bounds(g_, pool_->num_workers(), /*align=*/64);
  }

  const GraphT& g_;
  EngineOptions options_;
  ThreadPool* pool_ = nullptr;
  std::vector<State> cur_;
  std::vector<State> nxt_;
  std::vector<std::uint8_t> changed_;  // frontier: state changed last round
  std::vector<std::uint8_t> queued_;   // frontier: dedup for the next list
  // Dense rounds: per-worker changed-node lists (ascending within each
  // worker's contiguous chunk), concatenated in chunk order on a
  // dense -> sparse transition.
  std::vector<std::vector<NodeId>> chunk_changed_;
  // Full sweeps: stable degree-balanced worker chunk bounds (see
  // compute_chunk_bounds); empty until the first full sweep needs them.
  std::vector<std::size_t> chunk_bounds_;
  // Sharded dispatch: the pool whose stage slot this runner holds (see
  // ship_pool / ~SyncRunner), and whether a ship() overflowed the plane's
  // arena (subsequent stages then run in-process, where the original data
  // the returned spans alias is live).
  ShardWorkerPool* slot_pool_ = nullptr;
  bool aux_overflow_ = false;
  // Shipped failure flags: plane (or local fallback) cell -> original.
  struct FlagBinding {
    std::atomic<std::uint8_t>* cell;
    std::atomic<bool>* orig;
  };
  std::vector<FlagBinding> flags_;
  std::vector<std::unique_ptr<std::atomic<std::uint8_t>>> local_cells_;
};

/// Worker-side stage trampoline: reconstructs the shipped step/done
/// functors from their byte images and runs the round loop of
/// SyncRunner::run_full restricted to the worker's owned range [lo, hi),
/// with ghost slots refreshed from the peers' halo slabs at each barrier
/// and re-pinned into the shadow buffer before the swap (a ghost's shadow
/// slot would otherwise be two rounds stale). Dispatched by address via
/// STAGE_BEGIN (shard_runner.hpp); returns to the worker control loop
/// after the final barrier, leaving the worker parked for the next stage.
///
/// Two round loops, selected by the STAGE_BEGIN mode byte (ctx.frames):
///
///  - shm (default): rounds synchronize on the plane's epoch barrier with
///    no frames at all, and the sweep is *boundary-first* — boundary nodes
///    step first with their changed-state records appended inline (the
///    sparse frontier: a quiescent round publishes an empty delta without
///    any post-step rescan of the boundary list), the slab publishes
///    before the interior sweep begins, and peers blocked at the barrier
///    eagerly merge each slab the moment its epoch appears — overlapping
///    this shard's interior compute with the peers' "communication".
///    Reordering boundary before interior cannot change results: every
///    step reads only `cur` (frozen for the round) and writes its own
///    `nxt` slot.
///
///  - frames: the PR 8 coordinator-mediated loop, byte-for-byte (full
///    sweep, then a post-swap boundary rescan publishes the delta, then
///    BARRIER/STEP frames) — the DELTACOLOR_BARRIER=frames escape hatch
///    and the bench_shard A/B baseline.
///
/// Both loops ship a WorkerStageEnd summary (rounds, record totals,
/// per-round barrier-wait and publish-time samples) home in STAGE_END.
template <typename State, typename StepFn, typename DoneFn>
void shard_stage_entry(const WorkerStageCtx& ctx) {
  static_assert(std::is_trivially_copyable_v<State>);
  static_assert(std::is_trivially_copyable_v<StepFn>);
  static_assert(std::is_trivially_copyable_v<DoneFn>);
  if (ctx.state_size != sizeof(State) || ctx.step_size != sizeof(StepFn) ||
      ctx.done_size != sizeof(DoneFn))
    throw TransportError(
        "STAGE_BEGIN closure bytes do not match the stage's types");
  // bit_cast via a byte array: the wire bytes are the functors' object
  // representations, captured in the dispatching process whose address
  // space fork duplicated — values, &host-graph, and plane pointers all
  // stay valid here; that is exactly the shard_safe contract.
  std::array<std::byte, sizeof(StepFn)> step_img;
  std::memcpy(step_img.data(), ctx.step_bytes, sizeof(StepFn));
  const StepFn step = std::bit_cast<StepFn>(step_img);
  std::array<std::byte, sizeof(DoneFn)> done_img;
  std::memcpy(done_img.data(), ctx.done_bytes, sizeof(DoneFn));
  const DoneFn done_node = std::bit_cast<DoneFn>(done_img);

  const Graph& g = *ctx.plan->graph;
  const ShardManifest& mf = ctx.plan->manifest;
  HaloPlane& plane = *ctx.plane;
  const int shard = ctx.shard;
  const std::size_t si = static_cast<std::size_t>(shard);
  const std::size_t lo = mf.bounds[si];
  const std::size_t hi = mf.bounds[si + 1];
  const auto& boundary = mf.boundary[si];
  const auto& ghosts = mf.ghosts[si];
  const auto& runs = mf.ghost_runs[si];
  const auto& interior = mf.interior_runs[si];
  constexpr std::size_t kRecord = 4 + sizeof(State);
  const std::size_t n = g.num_nodes();

  std::vector<State> cur(n);
  std::vector<State> nxt(n);
  // Initial state comes from the stage-entry *snapshot*, never from the
  // mutable state image (which finish() below overwrites): a replay after
  // a peer's death or stall re-reads the identical entry bytes, which is
  // what makes recovered stages bit-identical with zero restore copies.
  std::memcpy(cur.data(), plane.snapshot_bytes(ctx.snap_parity),
              n * sizeof(State));

  using ViewT = typename SyncRunner<State, Graph>::View;
  const auto own_done = [&]() -> std::uint8_t {
    for (std::size_t i = lo; i < hi; ++i)
      if (!done_node(static_cast<NodeId>(i), cur[i])) return 0;
    return 1;
  };
  using Clock = std::chrono::steady_clock;
  const auto ns_since = [](Clock::time_point t0) -> std::uint32_t {
    const long long d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count();
    return static_cast<std::uint32_t>(
        std::clamp<long long>(d, 0, 0xffffffffll));
  };

  WorkerStageEnd ws;
  // Apply one peer's round-r slab: a two-pointer merge of the slab's
  // ascending records against this shard's ascending ghost run for that
  // peer. Only matching ghost slots are written, so even a corrupt slab
  // cannot write outside the ghost set.
  const auto merge_run = [&](const GhostRun& run,
                             const HaloPlane::SlabView& sv) -> std::uint32_t {
    const std::uint8_t* rec = sv.records;
    std::uint32_t gi = run.begin;
    std::uint32_t applied = 0;
    for (std::uint32_t i = 0; i < sv.count && gi < run.end;
         ++i, rec += kRecord) {
      NodeId node = 0;
      std::memcpy(&node, rec, 4);
      while (gi < run.end && ghosts[gi] < node) ++gi;
      if (gi < run.end && ghosts[gi] == node) {
        std::memcpy(&cur[node], rec + 4, sizeof(State));
        ++applied;
      }
    }
    ws.applied += applied;
    return applied;
  };
  const auto finish = [&](int rounds) {
    std::memcpy(plane.state_bytes() + lo * sizeof(State), cur.data() + lo,
                (hi - lo) * sizeof(State));
    plane.publish_final(shard, ctx.stage_id);
    ws.rounds = static_cast<std::uint32_t>(rounds);
    ctx.ch->send(FrameType::kStageEnd, encode_stage_end(ws));
  };

  if (!ctx.frames) {
    // --- shm epoch barrier: zero frames per round, boundary-first sweep.
    std::vector<std::uint8_t> merged(runs.size(), 0);
    plane.publish(shard, 0, ctx.epoch(0), 0);  // round 0 reads empty slabs
    int r = 0;
    std::uint8_t done = own_done();
    for (;;) {
      std::fill(merged.begin(), merged.end(), 0);
      plane.barrier_arrive(
          shard, ctx.epoch(r) | (done != 0 ? kBarrierDoneBit : 0));
      const auto barrier_at = Clock::now();
      // While peers trickle in, merge any round-r slab that is already
      // published — by the time the barrier opens, most of the halo work
      // is usually done (this is the read half of the overlap; the write
      // half is the early publish below).
      const bool peers_done = epoch_barrier_wait(ctx, r, [&] {
        for (std::size_t k = 0; k < runs.size(); ++k) {
          if (merged[k] != 0) continue;
          HaloPlane::SlabView sv;
          if (plane.try_open(runs[k].peer, r & 1, ctx.epoch(r), kRecord,
                             &sv)) {
            merge_run(runs[k], sv);
            merged[k] = 1;
          }
        }
      });
      ws.barrier_wait_ns.push_back(ns_since(barrier_at));
      // The halt predicate every worker computes identically from the
      // shared cells — exactly the coordinator's old all-done-or-max rule.
      if ((done != 0 && peers_done) || r >= ctx.max_rounds) {
        finish(r);
        return;
      }
      for (std::size_t k = 0; k < runs.size(); ++k) {
        if (merged[k] != 0) continue;
        merge_run(runs[k],
                  plane.open(runs[k].peer, r & 1, ctx.epoch(r), kRecord));
      }
      if (FaultInjector::armed()) {
        FaultInjector::global().on_engine_round(r);
        FaultInjector::global().on_shard_round(shard, r);
      }
      ScratchArena::local().reset();
      // Boundary first, appending changed-state records inline (ascending,
      // because boundary[] is ascending — the reader's merge relies on
      // that). The slab lands before any interior node steps, so peers
      // waiting at barrier r+1 start merging while this shard is still
      // sweeping its interior. Overwriting this parity's buddy (epoch
      // r-1) is safe: every peer merged it before arriving at barrier r,
      // and this code runs after barrier r opened.
      const auto publish_at = Clock::now();
      std::uint8_t* rec = plane.slab_records(shard, (r + 1) & 1);
      std::uint32_t count = 0;
      for (const NodeId b : boundary) {
        const State s = step(ViewT(g, b, cur, r));
        if (!(s == cur[b])) {
          std::memcpy(rec, &b, 4);
          std::memcpy(rec + 4, &s, sizeof(State));
          rec += kRecord;
          ++count;
        }
        nxt[b] = s;
      }
      // Torn-slab injection: a matching epoch with an impossible count is
      // exactly what a misordered publish would leave behind; readers
      // surface it as a structured TransportError, never a short read.
      if (FaultInjector::armed() &&
          FaultInjector::global().on_slab_publish(shard, r))
        plane.publish(shard, (r + 1) & 1, ctx.epoch(r + 1),
                      ~std::uint32_t{0});
      else
        plane.publish(shard, (r + 1) & 1, ctx.epoch(r + 1), count);
      ws.publish_ns.push_back(ns_since(publish_at));
      ws.published += count;
      for (const NodeRun& run : interior)
        for (NodeId i = run.begin; i < run.end; ++i)
          nxt[i] = step(ViewT(g, i, cur, r));
      for (const NodeId gnode : ghosts) nxt[gnode] = cur[gnode];
      cur.swap(nxt);
      ++r;
      done = own_done();
    }
  }

  // --- frames escape hatch: the PR 8 coordinator-mediated loop.
  const auto send_barrier = [&](std::uint32_t published,
                                std::uint32_t applied) {
    std::uint8_t payload[9];
    payload[0] = own_done();
    std::memcpy(payload + 1, &published, 4);
    std::memcpy(payload + 5, &applied, 4);
    ctx.ch->send(FrameType::kBarrier, payload, sizeof(payload));
  };
  // Changed boundary records, published ascending into this shard's slab
  // for `round`'s parity (the buddy buffer now holds round - 2, which
  // every reader is done with — see halo_plane.hpp). One bulk region
  // write + one release store replaces the per-record frame copies of the
  // fork-per-stage design.
  const auto publish_round = [&](int round) -> std::uint32_t {
    const auto publish_at = Clock::now();
    std::uint8_t* rec = plane.slab_records(shard, round & 1);
    std::uint32_t count = 0;
    for (const NodeId b : boundary) {
      if (cur[b] == nxt[b]) continue;  // nxt holds the pre-swap states
      std::memcpy(rec, &b, 4);
      std::memcpy(rec + 4, &cur[b], sizeof(State));
      rec += kRecord;
      ++count;
    }
    if (FaultInjector::armed() &&
        FaultInjector::global().on_slab_publish(shard, round))
      plane.publish(shard, round & 1, ctx.epoch(round), ~std::uint32_t{0});
    else
      plane.publish(shard, round & 1, ctx.epoch(round), count);
    ws.publish_ns.push_back(ns_since(publish_at));
    ws.published += count;
    return count;
  };

  plane.publish(shard, 0, ctx.epoch(0), 0);  // round 0 reads empty slabs
  auto barrier_at = Clock::now();
  send_barrier(0, 0);
  int r = 0;
  Frame f;
  for (;;) {
    if (!ctx.ch->recv(&f)) std::_Exit(1);  // coordinator vanished
    ws.barrier_wait_ns.push_back(ns_since(barrier_at));
    if (f.type == FrameType::kHalt) {
      finish(r);
      return;
    }
    // A peer died or stalled: abandon the attempt (the worker loop acks
    // and parks; the coordinator replays with a fresh stage id).
    if (f.type == FrameType::kStageAbort) throw StageAbortSignal{};
    if (f.type != FrameType::kStep)
      throw TransportError("unexpected frame inside a stage round loop");
    std::uint32_t applied = 0;
    for (const GhostRun& run : runs)
      applied +=
          merge_run(run, plane.open(run.peer, r & 1, ctx.epoch(r), kRecord));
    if (FaultInjector::armed()) {
      FaultInjector::global().on_engine_round(r);
      FaultInjector::global().on_shard_round(shard, r);
    }
    ScratchArena::local().reset();
    for (std::size_t i = lo; i < hi; ++i)
      nxt[i] = step(ViewT(g, static_cast<NodeId>(i), cur, r));
    for (const NodeId gnode : ghosts) nxt[gnode] = cur[gnode];
    cur.swap(nxt);
    ++r;
    const std::uint32_t published = publish_round(r);
    barrier_at = Clock::now();
    send_barrier(published, applied);
  }
}

/// One round of "everyone publishes, everyone reads neighbors" implemented
/// directly for hand-rolled primitives that keep their own buffers: swaps
/// `next` into `cur` and returns the incremented round count. An O(1) swap
/// (not a copy) is all the double-buffer discipline requires: once every
/// node has written its round-t state into `next`, the buffers trade roles
/// — `cur` becomes the published round-t snapshot, and the old snapshot
/// becomes the scratch buffer that round t+1 overwrites slot-by-slot before
/// the next commit, so its stale contents are never observed. Purely a
/// readability helper to keep that discipline visible at call sites.
template <typename State>
int commit_round(std::vector<State>& cur, std::vector<State>& next,
                 int rounds) {
  cur.swap(next);
  return rounds + 1;
}

}  // namespace deltacolor
