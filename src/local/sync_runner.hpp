// Double-buffered synchronous execution engine for LOCAL-model node
// programs.
//
// Fidelity contract: in round t, a node's transition function sees only its
// own round-(t-1) state and the round-(t-1) states of its direct neighbors
// (unbounded messages in LOCAL make "publish full state" the most general
// message). The engine enforces this structurally: transitions write into a
// shadow buffer that becomes visible only after every node has stepped.
#pragma once

#include <functional>
#include <vector>

#include "common/check.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

template <typename State>
class SyncRunner {
 public:
  /// The per-node view a transition function receives.
  class View {
   public:
    View(const Graph& g, NodeId v, const std::vector<State>& prev)
        : g_(g), v_(v), prev_(prev) {}

    NodeId node() const { return v_; }
    std::uint64_t id() const { return g_.id(v_); }
    int degree() const { return g_.degree(v_); }
    std::span<const NodeId> neighbors() const { return g_.neighbors(v_); }

    const State& self() const { return prev_[v_]; }

    /// Round-(t-1) state of a *neighbor* u. Adjacency is checked in debug
    /// builds — reading a non-neighbor's state would break the LOCAL model.
    const State& neighbor(NodeId u) const {
      DC_DCHECK(g_.has_edge(v_, u));
      return prev_[u];
    }

   private:
    const Graph& g_;
    NodeId v_;
    const std::vector<State>& prev_;
  };

  /// Transition: given the view of round t-1, produce the round-t state.
  using Step = std::function<State(const View&)>;
  /// Global halting predicate, evaluated between rounds by the harness.
  /// (This is a simulation-harness convenience, not node knowledge; all
  /// algorithms in the library also have explicit round bounds.)
  using Done = std::function<bool(const std::vector<State>&)>;

  SyncRunner(const Graph& g, std::vector<State> initial)
      : g_(g), cur_(std::move(initial)) {
    DC_CHECK(cur_.size() == g_.num_nodes());
    nxt_.resize(cur_.size());
  }

  /// Runs until `done` or `max_rounds`; returns rounds executed.
  int run(int max_rounds, const Step& step, const Done& done) {
    int rounds = 0;
    while (rounds < max_rounds && !done(cur_)) {
      for (NodeId v = 0; v < g_.num_nodes(); ++v)
        nxt_[v] = step(View(g_, v, cur_));
      cur_.swap(nxt_);
      ++rounds;
    }
    return rounds;
  }

  const std::vector<State>& states() const { return cur_; }
  std::vector<State> take_states() { return std::move(cur_); }

 private:
  const Graph& g_;
  std::vector<State> cur_;
  std::vector<State> nxt_;
};

/// One round of "everyone publishes, everyone reads neighbors" implemented
/// directly for hand-rolled primitives that keep their own buffers: copies
/// `next` over `cur` and returns the incremented round count. Purely a
/// readability helper to keep the double-buffer discipline visible.
template <typename State>
int commit_round(std::vector<State>& cur, std::vector<State>& next,
                 int rounds) {
  cur.swap(next);
  return rounds + 1;
}

}  // namespace deltacolor
