#include "local/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "local/shard_runner.hpp"

namespace deltacolor {

// Out of line: ShardPlan owns a ShardWorkerPool, which backend.hpp only
// forward-declares (shard_runner.hpp includes backend.hpp).
ShardPlan::ShardPlan() = default;
ShardPlan::~ShardPlan() = default;

BarrierMode resolve_barrier_mode(BarrierMode mode) {
  if (mode != BarrierMode::kAuto) return mode;
  const char* env = std::getenv("DELTACOLOR_BARRIER");
  if (env != nullptr && std::strcmp(env, "frames") == 0)
    return BarrierMode::kFrames;
  return BarrierMode::kShm;
}

const char* barrier_mode_name(BarrierMode mode) {
  switch (mode) {
    case BarrierMode::kShm:
      return "shm";
    case BarrierMode::kFrames:
      return "frames";
    case BarrierMode::kAuto:
      break;
  }
  return "auto";
}

namespace {

int env_int(const char* name, int fallback, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* rest = nullptr;
  const long n = std::strtol(env, &rest, 10);
  if (rest == nullptr || *rest != '\0' || n < min_value) return fallback;
  return static_cast<int>(n);
}

}  // namespace

int resolve_shard_stall_ms(int requested) {
  if (requested >= 0) return requested;
  return env_int("DELTACOLOR_SHARD_STALL_MS", /*fallback=*/0, /*min=*/0);
}

int resolve_shard_respawn_budget(int requested) {
  if (requested >= 0) return requested;
  return env_int("DELTACOLOR_SHARD_RESPAWNS", /*fallback=*/2, /*min=*/0);
}

bool resolve_shard_degrade() {
  const char* env = std::getenv("DELTACOLOR_SHARD_DEGRADE");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

ProcShardedBackend::ProcShardedBackend(int shards, bool persistent,
                                       BarrierMode barrier)
    : shards_(shards),
      persistent_(persistent),
      barrier_(resolve_barrier_mode(barrier)),
      stall_ms_(resolve_shard_stall_ms(-1)),
      respawn_budget_(resolve_shard_respawn_budget(-1)),
      degrade_(resolve_shard_degrade()) {
  DC_CHECK_MSG(shards >= 1, "ProcShardedBackend needs at least one shard");
  totals_.ghost_bytes_in.assign(static_cast<std::size_t>(shards), 0);
  totals_.boundary_bytes_out.assign(static_cast<std::size_t>(shards), 0);
  totals_.barrier_wait_ns.resize(static_cast<std::size_t>(shards));
  totals_.halo_publish_ns.resize(static_cast<std::size_t>(shards));
}

void ProcShardedBackend::prepare(const Graph& g) {
  // Lock order: the stage path holds the pool's stage slot (its mutex)
  // across note_stage(), so the canonical order is pool before backend —
  // never acquire the pool lock while holding ours. Spawning happens
  // after the backend lock is dropped.
  ShardWorkerPool* spawn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& plan : plans_)
      if (plan->graph == &g) return;
    // Forking a worker for a shard that owns zero nodes buys nothing and
    // skews the accounting, so clamp to the largest count with no empty
    // shard — with a startup warning so `--shards=N` users see why fewer
    // workers appear.
    const int effective = effective_shard_count(g, shards_);
    if (effective < shards_)
      std::cerr << "deltacolor: clamping shards " << shards_ << " -> "
                << effective << " (graph of " << g.num_nodes()
                << " nodes leaves " << (shards_ - effective)
                << " shard(s) empty)\n";
    if (totals_.effective_shards == 0 || effective > totals_.effective_shards)
      totals_.effective_shards = effective;
    // Per-shard accounting follows the shards that actually exist: a clamped
    // prepare shrinks the vectors so reports and tests never show phantom
    // rows for never-forked workers. (Widest plan wins when several graphs
    // are prepared; per-stage stats index by the stage's own manifest.)
    if (static_cast<int>(totals_.ghost_bytes_in.size()) > effective &&
        totals_.effective_shards == effective) {
      totals_.ghost_bytes_in.resize(static_cast<std::size_t>(effective));
      totals_.boundary_bytes_out.resize(static_cast<std::size_t>(effective));
      totals_.barrier_wait_ns.resize(static_cast<std::size_t>(effective));
      totals_.halo_publish_ns.resize(static_cast<std::size_t>(effective));
    }
    auto plan = std::make_unique<ShardPlan>();
    plan->graph = &g;
    plan->manifest = ShardManifest::build(g, effective);
    plan->pool = std::make_unique<ShardWorkerPool>(*plan, persistent_, barrier_,
                                                   stall_ms_, respawn_budget_);
    if (persistent_) spawn = plan->pool.get();
    plans_.push_back(std::move(plan));
  }
  // Fork before any stage state exists: the workers' inherited image is
  // just the graph + manifest, and everything per-stage arrives by wire or
  // through the shared plane. Racing a concurrent run_stage is fine —
  // spawn_now() is a no-op once the pool is live, and plans are
  // append-only so the pool outlives this call.
  if (spawn != nullptr) spawn->spawn_now();
}

const ShardPlan* ProcShardedBackend::plan_for(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return plan.get();
  ++totals_.fallback_stages;  // unprepared graph (e.g. a nested subgraph)
  return nullptr;
}

const ShardPlan* ProcShardedBackend::find_plan(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return plan.get();
  return nullptr;
}

namespace {

// Keeps a sample reservoir bounded across long sweeps: once past the cap,
// halve by keeping every other sample. Deterministic (no RNG), preserves
// the distribution shape well enough for p50/p95 reporting.
constexpr std::size_t kSampleCap = 16384;

void append_samples(std::vector<std::uint32_t>* into,
                    const std::vector<std::uint32_t>& samples) {
  into->insert(into->end(), samples.begin(), samples.end());
  while (into->size() > kSampleCap) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < into->size(); r += 2) (*into)[w++] = (*into)[r];
    into->resize(w);
  }
}

std::uint32_t percentile(std::vector<std::uint32_t> samples, double p) {
  if (samples.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

}  // namespace

void ProcShardedBackend::note_stage(const ShardPlan& plan,
                                    const ShardStageStats& stats) {
  (void)plan;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.stages;
  totals_.rounds += static_cast<std::uint64_t>(stats.rounds);
  totals_.ctl_frames += stats.ctl_frames;
  for (std::size_t s = 0; s < stats.ghost_bytes_in.size() &&
                          s < totals_.ghost_bytes_in.size();
       ++s) {
    totals_.ghost_bytes_in[s] += stats.ghost_bytes_in[s];
    totals_.boundary_bytes_out[s] += stats.boundary_bytes_out[s];
  }
  for (std::size_t s = 0; s < stats.barrier_wait_ns.size() &&
                          s < totals_.barrier_wait_ns.size();
       ++s)
    append_samples(&totals_.barrier_wait_ns[s], stats.barrier_wait_ns[s]);
  for (std::size_t s = 0; s < stats.halo_publish_ns.size() &&
                          s < totals_.halo_publish_ns.size();
       ++s)
    append_samples(&totals_.halo_publish_ns[s], stats.halo_publish_ns[s]);
}

void ProcShardedBackend::note_fallback() {
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.fallback_stages;
}

void ProcShardedBackend::set_stall_ms(int ms) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_ms_ = ms < 0 ? 0 : ms;
}

void ProcShardedBackend::set_respawn_budget(int budget) {
  std::lock_guard<std::mutex> lock(mu_);
  respawn_budget_ = budget < 0 ? 0 : budget;
}

void ProcShardedBackend::set_degrade(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  degrade_ = on;
}

int ProcShardedBackend::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_ms_;
}

int ProcShardedBackend::respawn_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return respawn_budget_;
}

bool ProcShardedBackend::degrade_on_worker_failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degrade_;
}

void ProcShardedBackend::note_degraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.degraded;
}

ProcShardedBackend::Totals ProcShardedBackend::totals() const {
  // Same lock order as prepare(): snapshot the pool list under our mutex,
  // then query each pool unlocked — pool->stats() takes the pool mutex,
  // which the stage path holds while calling note_stage() on us. Plans are
  // append-only, so the raw pointers stay valid after the lock is dropped.
  Totals t;
  std::vector<const ShardWorkerPool*> pools;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = totals_;
    pools.reserve(plans_.size());
    for (const auto& plan : plans_)
      if (plan->pool != nullptr) pools.push_back(plan->pool.get());
  }
  for (const ShardWorkerPool* pool : pools) {
    const ShardWorkerPool::Stats s = pool->stats();
    t.forks += s.forks;
    t.stage_reuse += s.reused;
    t.shm_bytes += s.shm_bytes;
    t.respawns += s.respawns;
    t.stalls += s.stalls;
    t.replayed_rounds += s.replayed_rounds;
  }
  return t;
}

std::string ProcShardedBackend::report() const {
  const Totals t = totals();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  const ShardManifest* mf =
      plans_.empty() ? nullptr : &plans_.front()->manifest;
  // Clamping can leave the manifest narrower than the requested shard
  // count; report the shards that actually exist.
  const int rows = mf != nullptr ? mf->num_shards() : shards_;
  for (int s = 0; s < rows; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    os << "SHARDS shard=" << s;
    if (mf != nullptr) {
      os << " nodes=" << mf->shard_size(s)
         << " boundary=" << mf->boundary[i].size()
         << " ghosts=" << mf->ghosts[i].size()
         << " cut_edges=" << mf->boundary_edges[i];
    }
    const std::uint64_t in = t.ghost_bytes_in[i];
    const std::uint64_t out = t.boundary_bytes_out[i];
    os << " ghost_bytes_in=" << in << " boundary_bytes_out=" << out;
    if (t.rounds > 0)
      os << " ghost_bytes_per_round=" << in / t.rounds;
    os << " barrier_wait_ns_p50=" << percentile(t.barrier_wait_ns[i], 0.50)
       << " barrier_wait_ns_p95=" << percentile(t.barrier_wait_ns[i], 0.95)
       << " halo_publish_ns_p50=" << percentile(t.halo_publish_ns[i], 0.50)
       << " halo_publish_ns_p95=" << percentile(t.halo_publish_ns[i], 0.95);
    os << "\n";
  }
  os << "SHARDS total shards=" << rows << " stages=" << t.stages
     << " fallback_stages=" << t.fallback_stages << " rounds=" << t.rounds
     << " forks=" << t.forks << " stage_reuse=" << t.stage_reuse
     << " shm_bytes=" << t.shm_bytes
     << " barrier=" << barrier_mode_name(barrier_)
     << " ctl_frames=" << t.ctl_frames << " ctl_frames_per_round="
     << (t.rounds > 0 ? t.ctl_frames / t.rounds : 0)
     << " respawns=" << t.respawns << " stalls=" << t.stalls
     << " replayed_rounds=" << t.replayed_rounds
     << " degraded=" << t.degraded;
  if (mf != nullptr) os << " cut_edges=" << mf->cut_edges;
  return os.str();
}

}  // namespace deltacolor
