#include "local/backend.hpp"

#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

ProcShardedBackend::ProcShardedBackend(int shards) : shards_(shards) {
  DC_CHECK_MSG(shards >= 1, "ProcShardedBackend needs at least one shard");
  totals_.ghost_bytes_in.assign(static_cast<std::size_t>(shards), 0);
  totals_.boundary_bytes_out.assign(static_cast<std::size_t>(shards), 0);
}

void ProcShardedBackend::prepare(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return;
  auto plan = std::make_unique<ShardPlan>();
  plan->graph = &g;
  plan->manifest = ShardManifest::build(g, shards_);
  plans_.push_back(std::move(plan));
}

const ShardPlan* ProcShardedBackend::plan_for(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return plan.get();
  ++totals_.fallback_stages;  // unprepared graph (e.g. a nested subgraph)
  return nullptr;
}

void ProcShardedBackend::note_stage(const ShardPlan& plan,
                                    const ShardStageStats& stats) {
  (void)plan;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.stages;
  totals_.rounds += static_cast<std::uint64_t>(stats.rounds);
  for (std::size_t s = 0; s < stats.ghost_bytes_in.size() &&
                          s < totals_.ghost_bytes_in.size();
       ++s) {
    totals_.ghost_bytes_in[s] += stats.ghost_bytes_in[s];
    totals_.boundary_bytes_out[s] += stats.boundary_bytes_out[s];
  }
}

void ProcShardedBackend::note_fallback() {
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.fallback_stages;
}

ProcShardedBackend::Totals ProcShardedBackend::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::string ProcShardedBackend::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  const ShardManifest* mf =
      plans_.empty() ? nullptr : &plans_.front()->manifest;
  for (int s = 0; s < shards_; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    os << "SHARDS shard=" << s;
    if (mf != nullptr) {
      os << " nodes=" << mf->shard_size(s)
         << " boundary=" << mf->boundary[i].size()
         << " ghosts=" << mf->ghosts[i].size()
         << " cut_edges=" << mf->boundary_edges[i];
    }
    const std::uint64_t in = totals_.ghost_bytes_in[i];
    const std::uint64_t out = totals_.boundary_bytes_out[i];
    os << " ghost_bytes_in=" << in << " boundary_bytes_out=" << out;
    if (totals_.rounds > 0)
      os << " ghost_bytes_per_round=" << in / totals_.rounds;
    os << "\n";
  }
  os << "SHARDS total shards=" << shards_ << " stages=" << totals_.stages
     << " fallback_stages=" << totals_.fallback_stages
     << " rounds=" << totals_.rounds;
  if (mf != nullptr) os << " cut_edges=" << mf->cut_edges;
  return os.str();
}

}  // namespace deltacolor
