#include "local/backend.hpp"

#include <sstream>

#include "common/check.hpp"
#include "local/shard_runner.hpp"

namespace deltacolor {

// Out of line: ShardPlan owns a ShardWorkerPool, which backend.hpp only
// forward-declares (shard_runner.hpp includes backend.hpp).
ShardPlan::ShardPlan() = default;
ShardPlan::~ShardPlan() = default;

ProcShardedBackend::ProcShardedBackend(int shards, bool persistent)
    : shards_(shards), persistent_(persistent) {
  DC_CHECK_MSG(shards >= 1, "ProcShardedBackend needs at least one shard");
  totals_.ghost_bytes_in.assign(static_cast<std::size_t>(shards), 0);
  totals_.boundary_bytes_out.assign(static_cast<std::size_t>(shards), 0);
}

void ProcShardedBackend::prepare(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return;
  auto plan = std::make_unique<ShardPlan>();
  plan->graph = &g;
  plan->manifest = ShardManifest::build(g, shards_);
  plan->pool = std::make_unique<ShardWorkerPool>(*plan, persistent_);
  // Fork before any stage state exists: the workers' inherited image is
  // just the graph + manifest, and everything per-stage arrives by wire or
  // through the shared plane.
  if (persistent_) plan->pool->spawn_now();
  plans_.push_back(std::move(plan));
}

const ShardPlan* ProcShardedBackend::plan_for(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return plan.get();
  ++totals_.fallback_stages;  // unprepared graph (e.g. a nested subgraph)
  return nullptr;
}

const ShardPlan* ProcShardedBackend::find_plan(const Graph& g) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& plan : plans_)
    if (plan->graph == &g) return plan.get();
  return nullptr;
}

void ProcShardedBackend::note_stage(const ShardPlan& plan,
                                    const ShardStageStats& stats) {
  (void)plan;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.stages;
  totals_.rounds += static_cast<std::uint64_t>(stats.rounds);
  for (std::size_t s = 0; s < stats.ghost_bytes_in.size() &&
                          s < totals_.ghost_bytes_in.size();
       ++s) {
    totals_.ghost_bytes_in[s] += stats.ghost_bytes_in[s];
    totals_.boundary_bytes_out[s] += stats.boundary_bytes_out[s];
  }
}

void ProcShardedBackend::note_fallback() {
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.fallback_stages;
}

ProcShardedBackend::Totals ProcShardedBackend::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t = totals_;
  for (const auto& plan : plans_) {
    if (plan->pool == nullptr) continue;
    const ShardWorkerPool::Stats s = plan->pool->stats();
    t.forks += s.forks;
    t.stage_reuse += s.reused;
    t.shm_bytes += s.shm_bytes;
  }
  return t;
}

std::string ProcShardedBackend::report() const {
  const Totals t = totals();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  const ShardManifest* mf =
      plans_.empty() ? nullptr : &plans_.front()->manifest;
  for (int s = 0; s < shards_; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    os << "SHARDS shard=" << s;
    if (mf != nullptr) {
      os << " nodes=" << mf->shard_size(s)
         << " boundary=" << mf->boundary[i].size()
         << " ghosts=" << mf->ghosts[i].size()
         << " cut_edges=" << mf->boundary_edges[i];
    }
    const std::uint64_t in = t.ghost_bytes_in[i];
    const std::uint64_t out = t.boundary_bytes_out[i];
    os << " ghost_bytes_in=" << in << " boundary_bytes_out=" << out;
    if (t.rounds > 0)
      os << " ghost_bytes_per_round=" << in / t.rounds;
    os << "\n";
  }
  os << "SHARDS total shards=" << shards_ << " stages=" << t.stages
     << " fallback_stages=" << t.fallback_stages << " rounds=" << t.rounds
     << " forks=" << t.forks << " stage_reuse=" << t.stage_reuse
     << " shm_bytes=" << t.shm_bytes;
  if (mf != nullptr) os << " cut_edges=" << mf->cut_edges;
  return os.str();
}

}  // namespace deltacolor
