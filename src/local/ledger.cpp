#include "local/ledger.hpp"

#include <chrono>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for phase labels.
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Heterogeneous find-or-intern: the string_view key only becomes a
/// std::string on the first charge of a label (the interning step).
std::size_t intern(detail::PhaseIndex& index, std::string_view phase,
                   std::size_t next_slot, bool& inserted) {
  const auto it = index.find(phase);
  if (it != index.end()) {
    inserted = false;
    return it->second;
  }
  inserted = true;
  index.emplace(std::string(phase), next_slot);
  return next_slot;
}

}  // namespace

void RoundLedger::charge(std::string_view phase, std::int64_t rounds,
                         std::int64_t dilation) {
  DC_CHECK(rounds >= 0 && dilation >= 1);
  const std::int64_t real = rounds * dilation;
  total_ += real;
  bool inserted = false;
  const std::size_t slot = intern(phase_index_, phase, phases_.size(),
                                  inserted);
  if (inserted)
    phases_.emplace_back(std::string(phase), real);
  else
    phases_[slot].second += real;
}

void RoundLedger::charge_time(std::string_view phase, double ms) {
  DC_CHECK(ms >= 0.0);
  time_total_ += ms;
  bool inserted = false;
  const std::size_t slot = intern(time_index_, phase, times_.size(),
                                  inserted);
  if (inserted)
    times_.emplace_back(std::string(phase), ms);
  else
    times_[slot].second += ms;
}

std::int64_t RoundLedger::phase_total(std::string_view phase) const {
  const auto it = phase_index_.find(phase);
  return it == phase_index_.end() ? 0 : phases_[it->second].second;
}

double RoundLedger::phase_time(std::string_view phase) const {
  const auto it = time_index_.find(phase);
  return it == time_index_.end() ? 0.0 : times_[it->second].second;
}

void RoundLedger::merge(const RoundLedger& other) {
  for (const auto& [phase, rounds] : other.phases_) charge(phase, rounds);
  for (const auto& [phase, ms] : other.times_) charge_time(phase, ms);
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  for (const auto& [phase, rounds] : phases_) {
    os << "  " << phase << ": " << rounds << " rounds";
    if (const double ms = phase_time(phase); ms > 0.0)
      os << " (" << ms << " ms)";
    os << '\n';
  }
  os << "  TOTAL: " << total_ << " rounds";
  if (time_total_ > 0.0) os << " (" << time_total_ << " ms)";
  os << '\n';
  return os.str();
}

std::string RoundLedger::time_report() const {
  std::ostringstream os;
  for (const auto& [phase, ms] : times_)
    os << "  " << phase << ": " << ms << " ms\n";
  os << "  TOTAL: " << time_total_ << " ms\n";
  return os.str();
}

std::string RoundLedger::json() const {
  std::ostringstream os;
  os << "{\"rounds\":" << total_ << ",\"ms\":" << time_total_
     << ",\"phases\":{";
  bool first = true;
  // Phases seen in either dimension, first-charge order, rounds first.
  auto emit = [&](const std::string& phase) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, phase);
    os << ":{\"rounds\":" << phase_total(phase)
       << ",\"ms\":" << phase_time(phase) << '}';
  };
  for (const auto& [phase, rounds] : phases_) emit(phase);
  for (const auto& [phase, ms] : times_)
    if (phase_index_.find(phase) == phase_index_.end()) emit(phase);
  os << "}}";
  return os.str();
}

void RoundLedger::clear() {
  phases_.clear();
  times_.clear();
  phase_index_.clear();
  time_index_.clear();
  total_ = 0;
  time_total_ = 0.0;
}

ScopedPhaseTimer::ScopedPhaseTimer(RoundLedger& ledger,
                                   std::string_view phase)
    : ledger_(ledger), phase_(phase), start_ns_(now_ns()) {}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  ledger_.charge_time(phase_, static_cast<double>(now_ns() - start_ns_) /
                                  1e6);
}

}  // namespace deltacolor
