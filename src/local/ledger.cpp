#include "local/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

void RoundLedger::charge(const std::string& phase, std::int64_t rounds,
                         std::int64_t dilation) {
  DC_CHECK(rounds >= 0 && dilation >= 1);
  const std::int64_t real = rounds * dilation;
  total_ += real;
  const auto it =
      std::find_if(phases_.begin(), phases_.end(),
                   [&](const auto& p) { return p.first == phase; });
  if (it == phases_.end())
    phases_.emplace_back(phase, real);
  else
    it->second += real;
}

std::int64_t RoundLedger::phase_total(const std::string& phase) const {
  const auto it =
      std::find_if(phases_.begin(), phases_.end(),
                   [&](const auto& p) { return p.first == phase; });
  return it == phases_.end() ? 0 : it->second;
}

void RoundLedger::merge(const RoundLedger& other) {
  for (const auto& [phase, rounds] : other.phases_) charge(phase, rounds);
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  for (const auto& [phase, rounds] : phases_)
    os << "  " << phase << ": " << rounds << " rounds\n";
  os << "  TOTAL: " << total_ << " rounds\n";
  return os.str();
}

void RoundLedger::clear() {
  phases_.clear();
  total_ = 0;
}

}  // namespace deltacolor
