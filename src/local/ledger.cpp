#include "local/ledger.hpp"

#include <chrono>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for phase labels.
void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void RoundLedger::charge(const std::string& phase, std::int64_t rounds,
                         std::int64_t dilation) {
  DC_CHECK(rounds >= 0 && dilation >= 1);
  const std::int64_t real = rounds * dilation;
  total_ += real;
  const auto [it, inserted] = phase_index_.try_emplace(phase, phases_.size());
  if (inserted)
    phases_.emplace_back(phase, real);
  else
    phases_[it->second].second += real;
}

void RoundLedger::charge_time(const std::string& phase, double ms) {
  DC_CHECK(ms >= 0.0);
  time_total_ += ms;
  const auto [it, inserted] = time_index_.try_emplace(phase, times_.size());
  if (inserted)
    times_.emplace_back(phase, ms);
  else
    times_[it->second].second += ms;
}

std::int64_t RoundLedger::phase_total(const std::string& phase) const {
  const auto it = phase_index_.find(phase);
  return it == phase_index_.end() ? 0 : phases_[it->second].second;
}

double RoundLedger::phase_time(const std::string& phase) const {
  const auto it = time_index_.find(phase);
  return it == time_index_.end() ? 0.0 : times_[it->second].second;
}

void RoundLedger::merge(const RoundLedger& other) {
  for (const auto& [phase, rounds] : other.phases_) charge(phase, rounds);
  for (const auto& [phase, ms] : other.times_) charge_time(phase, ms);
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  for (const auto& [phase, rounds] : phases_) {
    os << "  " << phase << ": " << rounds << " rounds";
    if (const double ms = phase_time(phase); ms > 0.0)
      os << " (" << ms << " ms)";
    os << '\n';
  }
  os << "  TOTAL: " << total_ << " rounds";
  if (time_total_ > 0.0) os << " (" << time_total_ << " ms)";
  os << '\n';
  return os.str();
}

std::string RoundLedger::time_report() const {
  std::ostringstream os;
  for (const auto& [phase, ms] : times_)
    os << "  " << phase << ": " << ms << " ms\n";
  os << "  TOTAL: " << time_total_ << " ms\n";
  return os.str();
}

std::string RoundLedger::json() const {
  std::ostringstream os;
  os << "{\"rounds\":" << total_ << ",\"ms\":" << time_total_
     << ",\"phases\":{";
  bool first = true;
  // Phases seen in either dimension, first-charge order, rounds first.
  auto emit = [&](const std::string& phase) {
    if (!first) os << ',';
    first = false;
    append_json_string(os, phase);
    os << ":{\"rounds\":" << phase_total(phase)
       << ",\"ms\":" << phase_time(phase) << '}';
  };
  for (const auto& [phase, rounds] : phases_) emit(phase);
  for (const auto& [phase, ms] : times_)
    if (phase_index_.find(phase) == phase_index_.end()) emit(phase);
  os << "}}";
  return os.str();
}

void RoundLedger::clear() {
  phases_.clear();
  times_.clear();
  phase_index_.clear();
  time_index_.clear();
  total_ = 0;
  time_total_ = 0.0;
}

ScopedPhaseTimer::ScopedPhaseTimer(RoundLedger& ledger, std::string phase)
    : ledger_(ledger), phase_(std::move(phase)), start_ns_(now_ns()) {}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  ledger_.charge_time(phase_, static_cast<double>(now_ns() - start_ns_) /
                                  1e6);
}

}  // namespace deltacolor
