// Length-prefixed frame transport between the shard coordinator and its
// worker processes.
//
// Each coordinator<->worker link is one AF_UNIX stream socket pair carrying
// frames of [u32 length][u8 type][payload], little-endian, where length
// counts the type byte plus the payload. Stream sockets (not pipes) give
// both directions on one descriptor and let the coordinator write with
// MSG_NOSIGNAL, so a worker that died mid-stage surfaces as a structured
// send/recv error instead of a SIGPIPE. All I/O is blocking with EINTR and
// partial-transfer retry; an orderly peer close is reported distinctly
// (recv returns false) because for a worker channel EOF *is* the
// worker-death signal.
//
// FdRegistry guards the one hazard of forking workers from a process that
// may be running several sharded stages concurrently (parallel sweep
// cells): a child forked for stage A must not inherit stage B's socket —
// the stray descriptor would keep B's channel open past its worker's
// death and stall B's EOF-based failure detection. Every channel registers
// its fd; fork_with_only() forks under the registry lock and closes, in
// the child, every registered fd except the child's own.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace deltacolor {

/// Frame vocabulary of the shard control plane (see shard_runner.hpp for
/// the sequencing contract). Since the persistent-pool rework the frames
/// carry no graph state — boundary records and final state travel through
/// the shared-memory HaloPlane; frames carry only the protocol.
enum class FrameType : std::uint8_t {
  kBarrier = 1,     ///< worker -> coord: done bit + publish/apply counts
  kStep = 2,        ///< coord -> worker: step one round (data is in the plane)
  kHalt = 3,        ///< coord -> worker: stop; publish final, send kStageEnd
  kStageEnd = 4,    ///< worker -> coord: stage done, final state published
  kError = 5,       ///< worker -> coord: exception text; worker exits nonzero
  kStageBegin = 6,  ///< coord -> worker: dispatch one stage to the live pool
  kShutdown = 7,    ///< coord -> worker: orderly pool teardown; worker exits
  kStageAbort = 8,  ///< coord -> worker: abandon the in-flight stage (a peer
                    ///< died or stalled); ack and park for the replay
  kAbortAck = 9,    ///< worker -> coord: stage abandoned, parked at the
                    ///< control loop awaiting the replayed STAGE_BEGIN
};

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Transport-layer failure (syscall error, malformed frame, peer vanished
/// mid-frame). The shard runner converts these into structured CellErrors.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One end of a frame link. Move-only; owns (and registers) its fd.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Takes ownership of `fd` and registers it with FdRegistry::global().
  explicit FrameChannel(int fd);
  FrameChannel(FrameChannel&& other) noexcept;
  FrameChannel& operator=(FrameChannel&& other) noexcept;
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  /// A connected socket pair: {coordinator end, worker end}.
  static std::pair<FrameChannel, FrameChannel> open_pair();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes one frame. Throws TransportError on any failure, including a
  /// peer that closed (EPIPE is reported, never raised as a signal).
  void send(FrameType type, const void* payload, std::size_t len);
  void send(FrameType type, const std::vector<std::uint8_t>& payload) {
    send(type, payload.data(), payload.size());
  }

  /// Reads one frame. Returns false on orderly EOF at a frame boundary
  /// (peer closed / died); throws TransportError on errors or a torn frame.
  bool recv(Frame* out);

  /// Closes and deregisters the fd (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Process-global table of live transport fds; see the header comment for
/// why forks must serialize against it.
class FdRegistry {
 public:
  static FdRegistry& global();

  void add(int fd);
  void remove(int fd);

  /// fork() while holding the registry lock; in the child, closes every
  /// registered fd except those in keep[0..keep_count). Returns the fork()
  /// result (pid in the parent, 0 in the child, -1 on failure).
  pid_t fork_with_only(const int* keep, std::size_t keep_count);

 private:
  std::mutex mu_;
  std::vector<int> fds_;
};

}  // namespace deltacolor
