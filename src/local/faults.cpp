#include "local/faults.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace deltacolor {

namespace {

thread_local std::int64_t tls_cell = -1;
thread_local int tls_attempt = 0;

/// FNV-1a, so free choices keyed on phase labels are stable across runs
/// (std::hash is only stable within one process).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void fault_alloc_probe(std::size_t bytes) {
  if (FaultInjector::armed())
    FaultInjector::global().on_alloc_growth(bytes);
}

bool parse_int(std::string_view v, std::int64_t* out) {
  if (v.empty()) return false;
  errno = 0;
  char* rest = nullptr;
  const long long n = std::strtoll(std::string(v).c_str(), &rest, 10);
  if (errno != 0 || rest == nullptr || *rest != '\0') return false;
  *out = n;
  return true;
}

bool parse_double(std::string_view v, double* out) {
  if (v.empty()) return false;
  errno = 0;
  char* rest = nullptr;
  const double x = std::strtod(std::string(v).c_str(), &rest);
  if (errno != 0 || rest == nullptr || *rest != '\0') return false;
  *out = x;
  return true;
}

/// Edit distance for the did-you-mean suggestions: small strings only, so
/// the O(len^2) two-row dynamic program is plenty.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Closest candidate within edit distance 3, or "" when nothing is close
/// enough to be a plausible typo.
std::string_view closest_of(std::string_view name,
                            const std::vector<std::string_view>& candidates) {
  std::string_view best;
  std::size_t best_d = 4;
  for (const std::string_view c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<std::string_view> category_names() {
  std::vector<std::string_view> names;
  for (const FaultCategory c :
       {FaultCategory::kInvariantViolation, FaultCategory::kRoundBudgetExceeded,
        FaultCategory::kWallClockTimeout, FaultCategory::kAllocationLimit,
        FaultCategory::kEngineException, FaultCategory::kProcessKill,
        FaultCategory::kWorkerDeath, FaultCategory::kWorkerStall,
        FaultCategory::kWorkerHang, FaultCategory::kTornSlab})
    names.push_back(to_string(c));
  return names;
}

const std::vector<std::string_view>& spec_keys() {
  static const std::vector<std::string_view> keys = {
      "cell",     "round",        "node",    "shard",
      "attempts", "extra_rounds", "sleep_ms", "phase"};
  return keys;
}

void set_unknown_name_error(std::string_view what, std::string_view name,
                            const std::vector<std::string_view>& candidates,
                            std::string* error) {
  if (error == nullptr) return;
  std::string msg = "unknown fault " + std::string(what) + " '" +
                    std::string(name) + "'";
  const std::string_view hint = closest_of(name, candidates);
  if (!hint.empty()) msg += " — did you mean '" + std::string(hint) + "'?";
  *error = msg;
}

}  // namespace

bool parse_fault_spec(std::string_view text, FaultSpec* out,
                      std::string* error) {
  FaultSpec spec;
  const std::size_t at = text.find('@');
  const std::string_view name = text.substr(0, at);
  if (!parse_fault_category(name, &spec.category)) {
    set_unknown_name_error("category", name, category_names(), error);
    return false;
  }
  std::string_view rest =
      at == std::string_view::npos ? std::string_view{} : text.substr(at + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr)
        *error = "malformed fault pair '" + std::string(pair) +
                 "' (expected key=value)";
      return false;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    std::int64_t n = 0;
    if (key == "cell" && parse_int(value, &spec.cell)) continue;
    if (key == "round" && parse_int(value, &spec.round)) continue;
    if (key == "node" && parse_int(value, &spec.node)) continue;
    if (key == "shard" && parse_int(value, &spec.shard)) continue;
    if (key == "phase" && !value.empty()) {
      spec.phase = std::string(value);
      continue;
    }
    if (key == "attempts" && parse_int(value, &n)) {
      spec.attempts = static_cast<int>(n);
      continue;
    }
    if (key == "extra_rounds" && parse_int(value, &spec.extra_rounds))
      continue;
    if (key == "sleep_ms" && parse_double(value, &spec.sleep_ms)) continue;
    // A recognized key with an unparsable value is a value error; an
    // unrecognized key gets the did-you-mean treatment.
    bool known = false;
    for (const std::string_view k : spec_keys()) known = known || k == key;
    if (known) {
      if (error != nullptr)
        *error = "bad value '" + std::string(value) + "' for fault key '" +
                 std::string(key) + "'";
    } else {
      set_unknown_name_error("key", key, spec_keys(), error);
    }
    return false;
  }
  *out = spec;
  return true;
}

bool parse_fault_spec(std::string_view text, FaultSpec* out) {
  return parse_fault_spec(text, out, nullptr);
}

void FaultInjector::snapshot(std::vector<FaultSpec>* specs,
                             std::uint64_t* seed) const {
  std::lock_guard<std::mutex> lock(mu_);
  specs->clear();
  for (const ArmedSpec& armed : plan_) specs->push_back(armed.spec);
  *seed = seed_;
}

FaultWire snapshot_fault_wire() {
  FaultWire w;
  w.armed = FaultInjector::armed();
  w.cell = FaultInjector::current_cell();
  w.attempt = FaultInjector::current_attempt();
  if (w.armed) FaultInjector::global().snapshot(&w.specs, &w.seed);
  return w;
}

namespace {

template <typename T>
void put_raw(const T& v, std::vector<std::uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

struct WireReader {
  const std::uint8_t* p;
  std::size_t left;
  template <typename T>
  T take() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (left < sizeof(T))
      throw std::runtime_error("torn fault wire in STAGE_BEGIN frame");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
};

}  // namespace

void encode_fault_wire(const FaultWire& w, std::vector<std::uint8_t>* out) {
  put_raw<std::uint8_t>(w.armed ? 1 : 0, out);
  if (!w.armed) return;
  put_raw(w.seed, out);
  put_raw(w.cell, out);
  put_raw<std::int32_t>(w.attempt, out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(w.specs.size()), out);
  for (const FaultSpec& s : w.specs) {
    put_raw<std::uint32_t>(static_cast<std::uint32_t>(s.category), out);
    put_raw(s.cell, out);
    put_raw(s.round, out);
    put_raw(s.node, out);
    put_raw(s.shard, out);
    put_raw<std::int32_t>(s.attempts, out);
    put_raw(s.extra_rounds, out);
    put_raw(s.sleep_ms, out);
    put_raw<std::uint32_t>(static_cast<std::uint32_t>(s.phase.size()), out);
    out->insert(out->end(), s.phase.begin(), s.phase.end());
  }
}

std::size_t decode_fault_wire(const std::uint8_t* data, std::size_t size,
                              FaultWire* out) {
  WireReader r{data, size};
  *out = FaultWire{};
  out->armed = r.take<std::uint8_t>() != 0;
  if (!out->armed) return size - r.left;
  out->seed = r.take<std::uint64_t>();
  out->cell = r.take<std::int64_t>();
  out->attempt = r.take<std::int32_t>();
  const std::uint32_t count = r.take<std::uint32_t>();
  out->specs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FaultSpec s;
    s.category = static_cast<FaultCategory>(r.take<std::uint32_t>());
    s.cell = r.take<std::int64_t>();
    s.round = r.take<std::int64_t>();
    s.node = r.take<std::int64_t>();
    s.shard = r.take<std::int64_t>();
    s.attempts = r.take<std::int32_t>();
    s.extra_rounds = r.take<std::int64_t>();
    s.sleep_ms = r.take<double>();
    const std::uint32_t phase_len = r.take<std::uint32_t>();
    if (r.left < phase_len)
      throw std::runtime_error("torn fault wire in STAGE_BEGIN frame");
    s.phase.assign(reinterpret_cast<const char*>(r.p), phase_len);
    r.p += phase_len;
    r.left -= phase_len;
    out->specs.push_back(std::move(s));
  }
  return size - r.left;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("DELTACOLOR_FAULTS");
  if (env == nullptr || *env == '\0') return;
  std::vector<FaultSpec> plan;
  std::string_view text(env);
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view one = text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (one.empty()) continue;
    FaultSpec spec;
    std::string error;
    if (!parse_fault_spec(one, &spec, &error)) {
      // A fault plan that silently half-parses leaves the chaos test
      // believing it injected and didn't; fail loudly and immediately.
      std::cerr << "deltacolor: invalid DELTACOLOR_FAULTS spec '" << one
                << "': " << error << "\n";
      std::exit(2);
    }
    plan.push_back(std::move(spec));
  }
  std::uint64_t seed = 1;
  if (const char* s = std::getenv("DELTACOLOR_FAULT_SEED")) {
    std::int64_t n = 0;
    if (parse_int(s, &n)) seed = static_cast<std::uint64_t>(n);
  }
  if (!plan.empty()) arm(std::move(plan), seed);
}

std::atomic<bool>& FaultInjector::armed_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void FaultInjector::arm(std::vector<FaultSpec> plan, std::uint64_t seed) {
  bool any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_.clear();
    for (FaultSpec& spec : plan) plan_.push_back(ArmedSpec{std::move(spec)});
    seed_ = seed;
    fired_ = 0;
    any = !plan_.empty();
  }
  ScratchArena::set_alloc_probe(&fault_alloc_probe);
  armed_flag().store(any, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  armed_flag().store(false, std::memory_order_relaxed);
  ScratchArena::set_alloc_probe(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  plan_.clear();
}

std::size_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

FaultInjector::CellScope::CellScope(std::int64_t cell, int attempt)
    : prev_cell_(tls_cell), prev_attempt_(tls_attempt) {
  tls_cell = cell;
  tls_attempt = attempt;
}

FaultInjector::CellScope::~CellScope() {
  tls_cell = prev_cell_;
  tls_attempt = prev_attempt_;
}

std::int64_t FaultInjector::current_cell() { return tls_cell; }
int FaultInjector::current_attempt() { return tls_attempt; }

bool FaultInjector::claim(FaultCategory category, std::int64_t round,
                          std::string_view phase, FaultSpec* out,
                          std::int64_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ArmedSpec& armed : plan_) {
    const FaultSpec& s = armed.spec;
    if (s.category != category) continue;
    if (s.cell >= 0 && s.cell != tls_cell) continue;
    if (s.round >= 0 && s.round != round) continue;
    if (s.shard >= 0 && s.shard != shard) continue;
    if (!s.phase.empty() && s.phase != phase) continue;
    if (s.attempts > 0 && tls_attempt >= s.attempts) continue;
    if (armed.fired_cell == tls_cell && armed.fired_attempt == tls_attempt)
      continue;  // at most one firing per (cell, attempt)
    armed.fired_cell = tls_cell;
    armed.fired_attempt = tls_attempt;
    ++fired_;
    *out = s;
    return true;
  }
  return false;
}

void FaultInjector::on_cell_start() {
  FaultSpec spec;
  if (claim(FaultCategory::kProcessKill, -1, {}, &spec)) {
    // Simulated SIGKILL for the journal/--resume round-trip: no stack
    // unwinding, no flushing beyond what the journal already did per line.
    std::_Exit(137);
  }
  if (claim(FaultCategory::kWallClockTimeout, -1, {}, &spec))
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec.sleep_ms));
  if (claim(FaultCategory::kEngineException, -1, {}, &spec))
    throw std::runtime_error("injected engine exception (cell start)");
}

std::int64_t FaultInjector::on_phase_charge(std::string_view phase) {
  FaultSpec spec;
  if (claim(FaultCategory::kWallClockTimeout, -1, phase, &spec))
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec.sleep_ms));
  if (claim(FaultCategory::kEngineException, -1, phase, &spec))
    throw std::runtime_error("injected engine exception (phase " +
                             std::string(phase) + ")");
  if (claim(FaultCategory::kRoundBudgetExceeded, -1, phase, &spec))
    return spec.extra_rounds;
  return 0;
}

void FaultInjector::on_engine_round(int round) {
  FaultSpec spec;
  if (claim(FaultCategory::kWallClockTimeout, round, {}, &spec))
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(spec.sleep_ms));
  if (claim(FaultCategory::kEngineException, round, {}, &spec))
    throw std::runtime_error("injected engine exception (round " +
                             std::to_string(round) + ")");
}

void FaultInjector::on_shard_round(int shard, int round) {
  FaultSpec spec;
  // Round-coordinate process kills target the worker loop: the cell-start
  // site never matches them (it probes with round = -1), and a spec
  // *without* a round fires at cell start in the coordinator before any
  // worker exists. A spec without shard= kills every matching worker — the
  // injector state is per process, and each forked worker owns a copy.
  if (claim(FaultCategory::kProcessKill, round, {}, &spec, shard))
    std::_Exit(137);
  // A hang keeps the process alive but silent: its barrier epoch cell
  // stops advancing and its control channel stays open, which is exactly
  // the failure mode the coordinator's stall watchdog exists to catch.
  // Sleeping in 1ms slices burns no CPU and dies instantly to SIGKILL.
  if (claim(FaultCategory::kWorkerHang, round, {}, &spec, shard)) {
    for (;;)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool FaultInjector::on_slab_publish(int shard, int round) {
  FaultSpec spec;
  return claim(FaultCategory::kTornSlab, round, {}, &spec, shard);
}

void FaultInjector::on_alloc_growth(std::size_t bytes) {
  FaultSpec spec;
  if (claim(FaultCategory::kAllocationLimit, -1, {}, &spec))
    throw CellError(
        FaultCategory::kAllocationLimit,
        "injected arena allocation failure (" + std::to_string(bytes) +
            " bytes requested)",
        {.node = -1, .round = -1});
}

void FaultInjector::maybe_corrupt_coloring(std::string_view phase,
                                           const Graph& g,
                                           std::vector<Color>& color) {
  FaultSpec spec;
  if (!claim(FaultCategory::kInvariantViolation, -1, phase, &spec)) return;
  const NodeId n = g.num_nodes();
  if (n == 0) return;
  std::uint64_t pick;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pick = hash_mix(seed_, static_cast<std::uint64_t>(tls_cell + 1),
                    fnv1a(phase));
  }
  NodeId v = spec.node >= 0 ? static_cast<NodeId>(spec.node % n)
                            : static_cast<NodeId>(pick % n);
  // Walk forward to a node with a neighbor so the corruption lands on an
  // actual edge (deterministic: first such node at or after the pick).
  for (NodeId step = 0; step < n; ++step) {
    const NodeId cand = (v + step) % n;
    if (g.degree(cand) > 0) {
      v = cand;
      break;
    }
  }
  if (g.degree(v) == 0) return;  // edgeless graph: nothing to violate
  const NodeId u = g.neighbors(v).front();
  Color c = color[u] != kNoColor ? color[u]
            : color[v] != kNoColor ? color[v]
                                   : Color{1};
  color[v] = c;
  color[u] = c;  // edge (v, u) is now monochromatic
}

}  // namespace deltacolor
