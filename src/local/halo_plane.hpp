// HaloPlane: the shared-memory data plane of the sharded backend.
//
// PR 7 moved every boundary record through the coordinator (worker
// serialize -> socketpair frame -> coordinator route -> socketpair frame ->
// subscriber deserialize: three copies and two syscalls per round per
// shard). The plane replaces all of that with one anonymous MAP_SHARED
// mapping created by the coordinator *before* the workers fork, so every
// process sees the same physical pages at the same virtual address and a
// publisher's store is the subscriber's load. Socketpairs remain only the
// control plane (STAGE_BEGIN / barrier / STEP / HALT) and the worker-death
// detector (EOF).
//
// Layout, sized once from the ShardManifest (offsets are fixed for the
// plan's lifetime, so forked workers can be handed the plane by value):
//
//   finals    per shard, one cache line holding an atomic<u64> epoch the
//             worker stamps after writing its final state slice;
//   barrier   per shard, one cache line holding an atomic<u64> the worker
//             release-stores on arriving at a round barrier (stage_id <<
//             32 | round, plus a done-vote bit), followed by one shared
//             futex word bumped on every arrival so waiting peers can
//             sleep instead of spinning — the peer-to-peer round barrier
//             that replaces the coordinator BARRIER/STEP frame round-trip
//             (shard_runner.hpp has the wait protocol);
//   slabs     per (shard, parity) — parity = round & 1, double buffering —
//             a header line {atomic<u64> epoch, u32 count} plus room for
//             every boundary node of that shard as a (u32 node, state
//             bytes) record;
//   states    the packed byte image of the stage's state vector
//             (num_nodes x state_size, capacity num_nodes x
//             kMaxShardStateBytes): the coordinator broadcasts initial
//             state with one memcpy, workers bulk-load it, and at HALT each
//             worker writes back exactly its owned slice;
//   snapshots two more state-image-sized regions holding the stage-entry
//             state, double-buffered by a per-stage parity the coordinator
//             stamps into STAGE_BEGIN. Workers load their initial state
//             from the snapshot (never from `states`, which they mutate at
//             finish), so a stage whose worker died or stalled mid-flight
//             can be replayed bit-identically against the untouched entry
//             image with zero restore copies. Two buffers isolate
//             consecutive stages: stage k+1's broadcast never lands on the
//             snapshot a straggling stage-k replay might still read.
//             NORESERVE keeps never-replayed capacity free;
//   aux       a bump arena for read-only data shipped alongside closures
//             (SyncRunner::ship / ship_flag): lookup tables, color lists,
//             sticky failure flags. Reset when the plan's stage slot is
//             fully released.
//
// Publication protocol (seqlock-shaped, one writer per slab): the writer
// stores records and the count, then release-stores the slab epoch
// (stage_id << 32 | round); a reader acquire-loads the epoch and treats any
// mismatch as a torn slab (structured TransportError, never a silent short
// read). std::atomic on a lock-free std::uint64_t is address-free, so the
// same cells synchronize across processes through the shared mapping — and
// the class is plain memory, so one process with two threads exercises the
// identical ordering under TSan (tests/test_shard_backend.cpp).
//
// Double-buffer safety needs no further synchronization: the epoch
// published for round r overwrites the round r-2 slab of the same parity,
// and the coordinator's gather-all-barriers-then-release protocol
// guarantees every reader finished with round r-2 before any writer could
// have received the STEP that leads to the round-r publish.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/partition.hpp"

namespace deltacolor {

/// Largest per-node state the plane's fixed-capacity regions accept; the
/// engine's shardability gate enforces it at compile time (every state in
/// the library is <= 16 bytes today).
inline constexpr std::size_t kMaxShardStateBytes = 64;

/// Bit 63 of a barrier-cell value: the arriving worker's done vote for the
/// round it arrives at. The low 63 bits are the slab epoch encoding
/// (stage_id << 32 | round), so masked values are globally monotonic per
/// cell — stage ids only grow across a pool's lifetime, and round grows
/// within a stage — and a new stage never needs the cells reset.
inline constexpr std::uint64_t kBarrierDoneBit = 1ull << 63;

class HaloPlane {
 public:
  HaloPlane() = default;
  /// Maps and zero-initializes a plane for `mf` over a graph of
  /// `num_nodes` nodes with `aux_capacity` bytes of ship arena. Throws
  /// TransportError if the mapping fails.
  HaloPlane(const ShardManifest& mf, std::size_t num_nodes,
            std::size_t aux_capacity);
  HaloPlane(HaloPlane&& other) noexcept;
  HaloPlane& operator=(HaloPlane&& other) noexcept;
  HaloPlane(const HaloPlane&) = delete;
  HaloPlane& operator=(const HaloPlane&) = delete;
  ~HaloPlane();

  bool valid() const { return base_ != nullptr; }
  std::size_t bytes_mapped() const { return total_bytes_; }

  // --- boundary slabs ------------------------------------------------------
  /// Writable record area of (shard, parity); capacity slab_capacity(shard).
  std::uint8_t* slab_records(int shard, int parity);
  std::size_t slab_capacity(int shard) const {
    return slab_caps_[static_cast<std::size_t>(shard)];
  }
  /// Publishes `count` records: count store, then epoch release-store.
  void publish(int shard, int parity, std::uint64_t epoch,
               std::uint32_t count);

  struct SlabView {
    const std::uint8_t* records = nullptr;
    std::uint32_t count = 0;
  };
  /// Acquire-reads (shard, parity); throws TransportError if the slab's
  /// epoch is not exactly `epoch` or its record bytes would exceed the slab
  /// capacity (a torn or misordered publish).
  SlabView open(int shard, int parity, std::uint64_t epoch,
                std::size_t record_size) const;
  /// Like open(), but an epoch mismatch returns false instead of throwing
  /// (the slab simply is not published yet — eager readers retry later). A
  /// count past the slab capacity at a *matching* epoch still throws.
  bool try_open(int shard, int parity, std::uint64_t epoch,
                std::size_t record_size, SlabView* out) const;

  // --- peer-to-peer round barrier ------------------------------------------
  /// Worker: record arrival at a barrier. `value` is the barrier epoch
  /// (stage_id << 32 | round) optionally OR'd with kBarrierDoneBit — the
  /// arriving shard's done vote. Release-stores the cell, bumps the plane's
  /// futex word and wakes every sleeper, so a peer either observes the cell
  /// during its next scan or wakes out of barrier_block().
  void barrier_arrive(int shard, std::uint64_t value);
  /// Acquire-load of shard `s`'s barrier cell (0 before any arrival).
  std::uint64_t barrier_raw(int shard) const;
  /// Acquire-load of the futex sequence word. Snapshot it *before* scanning
  /// the cells; if the scan comes up short, barrier_block(seq) sleeps only
  /// while no further arrival has bumped the word.
  std::uint32_t barrier_seq() const;
  /// Sleep until the futex word differs from `seen` or ~50 ms elapse
  /// (whichever first). Spurious returns are fine — callers rescan. On
  /// non-Linux builds this degrades to a short nanosleep.
  void barrier_block(std::uint32_t seen) const;

  // --- packed state image --------------------------------------------------
  std::uint8_t* state_bytes() { return base_ + state_off_; }
  const std::uint8_t* state_bytes() const { return base_ + state_off_; }
  std::size_t state_capacity() const { return state_cap_; }

  /// Stage-entry snapshot image of the given parity (0 or 1); same
  /// capacity as the state image. The coordinator writes it once per
  /// dispatched stage, workers (and replays) only read it.
  std::uint8_t* snapshot_bytes(int parity) {
    return base_ + snap_offs_[static_cast<std::size_t>(parity & 1)];
  }
  const std::uint8_t* snapshot_bytes(int parity) const {
    return base_ + snap_offs_[static_cast<std::size_t>(parity & 1)];
  }

  /// Worker: stamp shard `s`'s final-state slice as written (release).
  void publish_final(int shard, std::uint64_t epoch);
  /// Coordinator: true iff shard `s` stamped exactly `epoch` (acquire).
  bool check_final(int shard, std::uint64_t epoch) const;

  // --- ship arena ----------------------------------------------------------
  /// Bump-allocates `bytes` aligned to `align`; nullptr when full (the
  /// caller falls back to in-process execution). Coordinator-only, under
  /// the plan's stage slot.
  void* aux_alloc(std::size_t bytes, std::size_t align);
  void aux_reset() { aux_used_ = 0; }
  std::size_t aux_used() const { return aux_used_; }
  std::size_t aux_capacity() const { return aux_cap_; }

 private:
  struct alignas(64) SlabHdr {
    std::atomic<std::uint64_t> epoch;
    std::uint32_t count;
  };
  struct alignas(64) FinalCell {
    std::atomic<std::uint64_t> epoch;
  };
  struct alignas(64) BarrierCell {
    std::atomic<std::uint64_t> value;
  };
  struct alignas(64) BarrierSeq {
    std::atomic<std::uint32_t> seq;
    /// Sleepers currently inside barrier_block: arrivals skip the
    /// FUTEX_WAKE syscall while this is zero (the common case when peers
    /// are spinning or about to scan). No lost wakeup: a sleeper
    /// increments this before FUTEX_WAIT, and the kernel re-checks `seq`
    /// against the sleeper's snapshot atomically — an arrival that missed
    /// the increment already bumped `seq`, so the wait returns instantly.
    std::atomic<std::uint32_t> waiters;
  };

  SlabHdr* hdr(int shard, int parity) const;
  FinalCell* final_cell(int shard) const;
  BarrierCell* barrier_cell(int shard) const;
  BarrierSeq* barrier_word() const;

  std::uint8_t* base_ = nullptr;
  std::size_t total_bytes_ = 0;
  int num_shards_ = 0;
  std::size_t finals_off_ = 0;
  std::size_t barrier_off_ = 0;  // num_shards_ BarrierCells, then BarrierSeq
  std::vector<std::size_t> slab_offs_;  // per (shard * 2 + parity): header
  std::vector<std::size_t> slab_caps_;  // per shard: record bytes capacity
  std::size_t state_off_ = 0;
  std::size_t state_cap_ = 0;
  std::size_t snap_offs_[2] = {0, 0};
  std::size_t aux_off_ = 0;
  std::size_t aux_cap_ = 0;
  std::size_t aux_used_ = 0;
};

}  // namespace deltacolor
