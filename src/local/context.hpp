// LocalContext: the execution context threaded through every LOCAL
// subroutine, replacing the (RoundLedger&, const std::string& phase)
// parameter pairs the primitives used to carry.
//
// A context bundles
//   - the RoundLedger round/wall-clock accounting sink,
//   - the EngineOptions (worker threads, sparse-activation frontier) every
//     SyncRunner spawned below this call inherits,
//   - the random seed randomized subroutines draw from, and
//   - a scoped *phase stack*: charges always go to the innermost pushed
//     phase label, so a composed pipeline (e.g. hard-clique Phase 1 calling
//     maximal matching calling forest coloring) attributes every nested
//     round to the phase the caller opened, without label parameters
//     percolating through each signature.
//
// Phase semantics: callers open phases with ScopedPhase; a primitive's
// entry point opens its *default* label with DefaultPhase, which only
// pushes when no phase is active — so `mis_deterministic(g, ctx)` charges
// to "mis" standalone but to "phase1-matching" when called under that
// scope. This reproduces exactly the old default-argument behavior.
//
// Engine semantics: round-homogeneous transitions (trial/commit protocols
// whose non-fixpoint nodes change state every round) may run with the
// user's frontier setting; transitions keyed on the global round number
// (class sweeps, KW offset schedules, bit peeling, per-forest proposal
// slots) must re-step quiet nodes when their slot arrives, so they take
// round_indexed_engine(), which clears the frontier flag but keeps the
// worker count. Results are bit-identical either way; only legality of the
// sparse-activation optimization differs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "local/faults.hpp"
#include "local/ledger.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {

class LocalContext {
 public:
  explicit LocalContext(RoundLedger& ledger, EngineOptions engine = {},
                        std::uint64_t seed = 1)
      : ledger_(&ledger), engine_(engine), seed_(seed) {}

  LocalContext(const LocalContext&) = delete;
  LocalContext& operator=(const LocalContext&) = delete;

  RoundLedger& ledger() const { return *ledger_; }
  const EngineOptions& engine() const { return engine_; }
  std::uint64_t seed() const { return seed_; }

  /// The calling worker's scratch arena (reset by the engine at every
  /// chunk boundary — see arena.hpp for the ownership contract). Step
  /// kernels open a ScratchArena::Frame on it instead of keeping
  /// thread_local vectors.
  ScratchArena& scratch() const { return ScratchArena::local(); }

  /// Engine options for transitions keyed on the global round number:
  /// frontier mode is unsound for those (a quiet node must still act when
  /// its round slot arrives), so only the worker count is kept.
  EngineOptions round_indexed_engine() const {
    EngineOptions opts = engine_;
    opts.frontier = false;
    return opts;
  }

  bool has_phase() const { return !stack_.empty(); }

  /// Innermost phase label. A phase must be active (primitives guarantee
  /// one via DefaultPhase before charging).
  std::string_view phase() const {
    DC_CHECK_MSG(!stack_.empty(), "LocalContext: no active phase");
    return stack_.back();
  }

  /// Charges rounds to the innermost phase. While a FaultInjector is
  /// armed, a matching round-budget spec inflates the charge here — so the
  /// sweep driver's *real* budget enforcement trips, instead of a fake
  /// error path that never exercises the recovery code.
  void charge(std::int64_t rounds, std::int64_t dilation = 1) {
    if (FaultInjector::armed())
      rounds += FaultInjector::global().on_phase_charge(phase());
    ledger_->charge(phase(), rounds, dilation);
  }

  /// Charges wall-clock milliseconds to the innermost phase.
  void charge_time(double ms) { ledger_->charge_time(phase(), ms); }

 private:
  friend class ScopedPhase;
  friend class DefaultPhase;

  RoundLedger* ledger_;
  EngineOptions engine_;
  std::uint64_t seed_;
  std::vector<std::string> stack_;
};

/// Opens a phase for the duration of a scope (always pushes).
class ScopedPhase {
 public:
  ScopedPhase(LocalContext& ctx, std::string_view label) : ctx_(ctx) {
    ctx_.stack_.emplace_back(label);
  }
  ~ScopedPhase() { ctx_.stack_.pop_back(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  LocalContext& ctx_;
};

/// A primitive's entry-point phase: pushes `label` only when the caller
/// has not already opened a phase, mirroring the old default-argument
/// plumbing (explicit caller phases win over primitive defaults).
class DefaultPhase {
 public:
  DefaultPhase(LocalContext& ctx, std::string_view label)
      : ctx_(ctx), pushed_(!ctx.has_phase()) {
    if (pushed_) ctx_.stack_.emplace_back(label);
  }
  ~DefaultPhase() {
    if (pushed_) ctx_.stack_.pop_back();
  }

  DefaultPhase(const DefaultPhase&) = delete;
  DefaultPhase& operator=(const DefaultPhase&) = delete;

 private:
  LocalContext& ctx_;
  bool pushed_;
};

/// RAII wall-clock timer charging to the phase active at construction.
class ScopedContextTimer {
 public:
  explicit ScopedContextTimer(LocalContext& ctx);
  ~ScopedContextTimer();

  ScopedContextTimer(const ScopedContextTimer&) = delete;
  ScopedContextTimer& operator=(const ScopedContextTimer&) = delete;

 private:
  LocalContext& ctx_;
  std::string phase_;
  std::int64_t start_ns_;
};

}  // namespace deltacolor
