// ExecutionBackend: where SyncRunner stages execute.
//
// The round engine's semantics are fixed by sync_runner.hpp; a backend only
// chooses the *placement* of a stage's node sweep. Two implementations:
//
//   InProcessBackend   the existing engine path, unchanged — every stage
//                      steps in this process on the ThreadPool. This is the
//                      oracle: any other backend must be bit-identical.
//   ProcShardedBackend one forked worker process per shard, each stepping
//                      only its contiguous degree-balanced node range and
//                      exchanging boundary-node state at round barriers
//                      (shard_runner.hpp). Only stages that are provably
//                      shardable run this way — host-graph runners with
//                      trivially-copyable equality-comparable state whose
//                      halting condition decomposes per node (see
//                      SyncRunner::run_until / run_rounds); everything else
//                      silently takes the in-process path, so composed
//                      pipelines mix placements freely and results never
//                      depend on the backend.
//
// Plans are opt-in per graph: ProcShardedBackend::prepare(g) builds and
// caches the manifest for the instance the caller wants sharded (the
// top-level graph of a run), maps the shared-memory halo plane, and forks
// the persistent worker pool — stages are then *dispatched* to the live
// workers instead of forking per stage (shard_runner.hpp). Nested
// per-component subgraphs extracted by the composed pipelines are
// deliberately *not* auto-prepared — a worker pool per tiny subgraph would
// cost far more than it saves; those stages fall back in-process and are
// counted as such.
//
// A backend outlives every runner using it; EngineOptions carries a
// non-owning pointer (nullptr = in-process, the default everywhere).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/partition.hpp"

namespace deltacolor {

class ShardWorkerPool;

/// How sharded stages synchronize at round barriers.
enum class BarrierMode {
  kAuto,    ///< resolve from DELTACOLOR_BARRIER ("frames"), default kShm
  kShm,     ///< peer-to-peer shared-memory epoch barrier (syscall-free)
  kFrames,  ///< coordinator BARRIER/STEP socketpair frames (PR 8 baseline,
            ///< the escape hatch for stuck-barrier diagnosis)
};

/// kAuto -> the DELTACOLOR_BARRIER environment variable ("frames" picks the
/// frame barrier, anything else the shm barrier); other values pass through.
BarrierMode resolve_barrier_mode(BarrierMode mode);
const char* barrier_mode_name(BarrierMode mode);

/// Stall-watchdog deadline: `requested` >= 0 passes through; -1 resolves
/// DELTACOLOR_SHARD_STALL_MS (default 0 = watchdog off, so tests and
/// library embedders opt in explicitly; the dcolor CLI turns it on).
int resolve_shard_stall_ms(int requested);
/// Respawn budget per dispatched stage: `requested` >= 0 passes through;
/// -1 resolves DELTACOLOR_SHARD_RESPAWNS (default 2).
int resolve_shard_respawn_budget(int requested);
/// In-process degradation on budget exhaustion: DELTACOLOR_SHARD_DEGRADE
/// ("0" disables), default on.
bool resolve_shard_degrade();

/// A prepared shard split of one host graph, plus its live worker pool:
/// prepare() forks the pool's workers once, and every sharded stage on the
/// graph is dispatched to them (shard_runner.hpp). Address-stable — pool
/// workers and runners hold references into it.
struct ShardPlan {
  ShardPlan();
  ~ShardPlan();
  ShardPlan(const ShardPlan&) = delete;
  ShardPlan& operator=(const ShardPlan&) = delete;

  const Graph* graph = nullptr;
  ShardManifest manifest;
  std::unique_ptr<ShardWorkerPool> pool;
};

/// Per-stage exchange accounting reported by the shard runner.
struct ShardStageStats {
  int rounds = 0;
  /// Per shard: bytes of ghost records delivered to the shard (sum over
  /// rounds of routed changed-boundary records).
  std::vector<std::uint64_t> ghost_bytes_in;
  /// Per shard: bytes of changed-boundary records the shard published.
  std::vector<std::uint64_t> boundary_bytes_out;
  /// Per shard: worker-measured per-round samples (ns) of time spent
  /// waiting at the round barrier / publishing the halo slab.
  std::vector<std::vector<std::uint32_t>> barrier_wait_ns;
  std::vector<std::vector<std::uint32_t>> halo_publish_ns;
  /// Control-plane frames the coordinator sent + received for this stage —
  /// the syscall proxy of the frames-vs-shm barrier A/B (the frame barrier
  /// adds 2 frames per shard per round; the shm barrier adds none).
  std::uint64_t ctl_frames = 0;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  /// The shard plan for `g`, or nullptr to run the stage in-process. Called
  /// only for stages that pass the static shardability gates; returning a
  /// plan commits the engine to the sharded path for that stage.
  virtual const ShardPlan* plan_for(const Graph& g) = 0;

  /// Like plan_for but without fallback accounting — used by runners to
  /// locate the plan's ship arena outside stage dispatch (ship()/
  /// ship_flag() calls are per datum, not per stage).
  virtual const ShardPlan* find_plan(const Graph& g) {
    (void)g;
    return nullptr;
  }

  /// Accounting: one sharded stage completed.
  virtual void note_stage(const ShardPlan& plan,
                          const ShardStageStats& stats) {
    (void)plan;
    (void)stats;
  }
  /// Accounting: a stage consulted this backend but ran in-process (type
  /// gates failed, or no plan covers its graph).
  virtual void note_fallback() {}

  /// Whether the engine should complete a stage in-process when the pool
  /// exhausts its respawn budget (instead of letting the CellError
  /// propagate to the sweep's retry/quarantine policy).
  virtual bool degrade_on_worker_failure() const { return false; }
  /// Accounting: a stage was demoted to in-process after worker failure.
  virtual void note_degraded() {}
};

/// The oracle placement: everything in-process. Exists so `--backend=inproc`
/// is an explicit spelling of the default nullptr backend.
class InProcessBackend : public ExecutionBackend {
 public:
  const char* name() const override { return "inproc"; }
  const ShardPlan* plan_for(const Graph&) override { return nullptr; }
};

/// Multi-process sharded placement with halo exchange.
class ProcShardedBackend : public ExecutionBackend {
 public:
  /// `persistent` = fork the pool once at prepare() and reuse it across
  /// stages (the default); false forks per dispatched stage — the PR 7
  /// baseline, kept selectable for the bench_shard A/B comparison.
  /// `barrier` picks the round-barrier protocol (kAuto resolves the
  /// DELTACOLOR_BARRIER environment variable at construction). Recovery
  /// knobs default to the environment (DELTACOLOR_SHARD_STALL_MS /
  /// _RESPAWNS / _DEGRADE) and can be overridden with the setters below
  /// *before* the first prepare().
  explicit ProcShardedBackend(int shards, bool persistent = true,
                              BarrierMode barrier = BarrierMode::kAuto);

  const char* name() const override { return "proc"; }
  int shards() const { return shards_; }
  BarrierMode barrier_mode() const { return barrier_; }

  /// Watchdog deadline in ms (0 = off). Applies to pools created by
  /// subsequent prepare() calls.
  void set_stall_ms(int ms);
  /// Stage replays allowed before the failure propagates (or degrades).
  void set_respawn_budget(int budget);
  /// Whether run_sharded completes a budget-exhausted stage in-process.
  void set_degrade(bool on);
  int stall_ms() const;
  int respawn_budget() const;
  bool degrade_on_worker_failure() const override;
  void note_degraded() override;

  /// Builds (once) and caches the shard manifest for `g`, maps the shared
  /// halo plane, and — for persistent backends — forks the worker pool.
  /// Thread-safe; concurrent sweep cells sharing one instance share one
  /// plan and one pool.
  void prepare(const Graph& g);

  const ShardPlan* plan_for(const Graph& g) override;
  const ShardPlan* find_plan(const Graph& g) override;
  void note_stage(const ShardPlan& plan,
                  const ShardStageStats& stats) override;
  void note_fallback() override;

  /// Accounting snapshot for reports/tests.
  struct Totals {
    std::uint64_t stages = 0;           ///< sharded stages completed
    std::uint64_t fallback_stages = 0;  ///< stages that ran in-process
    std::uint64_t rounds = 0;           ///< rounds across sharded stages
    std::uint64_t forks = 0;        ///< worker processes ever forked
    std::uint64_t stage_reuse = 0;  ///< dispatches served by a live pool
    std::uint64_t shm_bytes = 0;    ///< mapped halo-plane bytes
    std::uint64_t ctl_frames = 0;   ///< control-plane frames across stages
    std::uint64_t respawns = 0;     ///< workers re-forked after death/stall
    std::uint64_t stalls = 0;       ///< watchdog-detected hung workers
    std::uint64_t replayed_rounds = 0;  ///< rounds discarded by replays
    std::uint64_t degraded = 0;  ///< stages completed in-process after the
                                 ///< respawn budget ran out
    int effective_shards = 0;  ///< shard count after empty-shard clamping
                               ///< (0 until the first prepare())
    std::vector<std::uint64_t> ghost_bytes_in;      // per shard
    std::vector<std::uint64_t> boundary_bytes_out;  // per shard
    /// Per shard: retained per-round timing samples (ns), decimated by
    /// stride once they exceed a cap so long sweeps stay bounded.
    std::vector<std::vector<std::uint32_t>> barrier_wait_ns;
    std::vector<std::vector<std::uint32_t>> halo_publish_ns;
  };
  Totals totals() const;

  /// Multi-line "SHARDS ..." accounting block: one line per shard (owned
  /// nodes, boundary nodes, ghost slots, cut edges, ghost bytes exchanged,
  /// per-round average) plus a totals line — the sharded counterpart of the
  /// SweepDriver's SWEEP line. Uses the first prepared plan's manifest for
  /// the static columns.
  std::string report() const;

 private:
  const int shards_;
  const bool persistent_;
  const BarrierMode barrier_;
  int stall_ms_;        ///< watchdog deadline for new pools (0 = off)
  int respawn_budget_;  ///< replays per stage for new pools
  bool degrade_;        ///< complete budget-exhausted stages in-process
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ShardPlan>> plans_;
  Totals totals_;
};

}  // namespace deltacolor
