#include "local/shard_runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "local/faults.hpp"

namespace deltacolor {

namespace {

template <typename T>
void put_raw(const T& v, std::vector<std::uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

/// STAGE_BEGIN payload; see the header comment for the layout. The fault
/// wire is snapshotted at dispatch time on the dispatching thread, so the
/// worker sees exactly the (plan, seed, cell, attempt) context the
/// coordinator's stage would have seen.
std::vector<std::uint8_t> encode_stage_begin(const StageWire& wire,
                                             std::uint64_t stage_id,
                                             int max_rounds, bool frames) {
  std::vector<std::uint8_t> out;
  put_raw<std::uint64_t>(
      reinterpret_cast<std::uint64_t>(
          reinterpret_cast<void*>(wire.entry)),
      &out);
  put_raw<std::uint64_t>(stage_id, &out);
  put_raw<std::int32_t>(max_rounds, &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.state_size), &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.step_bytes.size()),
                         &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.done_bytes.size()),
                         &out);
  put_raw<std::uint8_t>(frames ? 1 : 0, &out);
  encode_fault_wire(snapshot_fault_wire(), &out);
  out.insert(out.end(), wire.step_bytes.begin(), wire.step_bytes.end());
  out.insert(out.end(), wire.done_bytes.begin(), wire.done_bytes.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_stage_end(const WorkerStageEnd& e) {
  std::vector<std::uint8_t> out;
  put_raw<std::uint32_t>(e.rounds, &out);
  put_raw<std::uint64_t>(e.published, &out);
  put_raw<std::uint64_t>(e.applied, &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(e.barrier_wait_ns.size()),
                         &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(e.publish_ns.size()),
                         &out);
  for (const std::uint32_t v : e.barrier_wait_ns) put_raw(v, &out);
  for (const std::uint32_t v : e.publish_ns) put_raw(v, &out);
  return out;
}

bool decode_stage_end(const std::uint8_t* p, std::size_t size,
                      WorkerStageEnd* out) {
  const auto take = [&](void* dst, std::size_t nbytes) {
    if (size < nbytes) return false;
    std::memcpy(dst, p, nbytes);
    p += nbytes;
    size -= nbytes;
    return true;
  };
  std::uint32_t nwait = 0;
  std::uint32_t npub = 0;
  if (!take(&out->rounds, 4) || !take(&out->published, 8) ||
      !take(&out->applied, 8) || !take(&nwait, 4) || !take(&npub, 4))
    return false;
  if (size != (static_cast<std::size_t>(nwait) + npub) * 4) return false;
  out->barrier_wait_ns.resize(nwait);
  out->publish_ns.resize(npub);
  for (std::uint32_t i = 0; i < nwait; ++i)
    take(&out->barrier_wait_ns[i], 4);
  for (std::uint32_t i = 0; i < npub; ++i) take(&out->publish_ns[i], 4);
  return true;
}

bool control_channel_dead(const FrameChannel& ch) {
  struct pollfd pfd = {ch.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) return errno != EINTR && errno != EAGAIN;
  // Mid-stage, the coordinator sends nothing in shm mode until teardown —
  // so readable data (kShutdown) and HUP/ERR alike mean "stage is over".
  return rc > 0 && pfd.revents != 0;
}

ShardWorkerPool::ShardWorkerPool(const ShardPlan& plan, bool persistent,
                                 BarrierMode barrier)
    : plan_(plan),
      persistent_(persistent),
      barrier_(resolve_barrier_mode(barrier)),
      plane_(plan.manifest, plan.graph->num_nodes(),
             /*aux_capacity=*/16 * plan.graph->num_nodes() +
                 32 * plan.graph->num_edges() + (1u << 20)) {
  DC_CHECK(plan_.graph != nullptr);
  stats_.shm_bytes = plane_.bytes_mapped();
}

ShardWorkerPool::~ShardWorkerPool() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  teardown_locked();
}

void ShardWorkerPool::spawn_now() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!live_) spawn_locked();
}

void ShardWorkerPool::spawn_locked() {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(chans_.empty());
  live_ = true;  // teardown_locked() cleans up a partially-spawned pool
  chans_.reserve(static_cast<std::size_t>(shards));
  pids_.assign(static_cast<std::size_t>(shards), -1);
  // Parent stdio is flushed once so a child's inherited buffers never
  // replay half-written lines (children write nothing themselves, but
  // _Exit on an inherited non-empty buffer is the classic dup-output bug).
  std::fflush(nullptr);
  for (int s = 0; s < shards; ++s) {
    auto [parent_end, child_end] = FrameChannel::open_pair();
    const int keep = child_end.fd();
    const pid_t pid = FdRegistry::global().fork_with_only(&keep, 1);
    if (pid < 0) throw TransportError("fork failed for shard worker");
    if (pid == 0) {
      // Child: the parent ends registered by other pools (and this one)
      // are already closed by fork_with_only; park in the control loop.
      shard_worker_loop(plan_, plane_, s, child_end);
    }
    pids_[static_cast<std::size_t>(s)] = pid;
    child_end.close();  // parent keeps only its own end
    chans_.push_back(std::move(parent_end));
    ++stats_.forks;
  }
}

void ShardWorkerPool::teardown_locked() {
  // Orderly first: a worker parked in recv() exits 0 on kShutdown or on
  // the EOF from closing our end. Anything still alive after that (wedged
  // mid-step, mid-fault sleep) is killed. SIGKILL on an already-exited
  // child is a no-op, and the waitpid reaps either way — no zombies.
  for (FrameChannel& ch : chans_) {
    if (!ch.valid()) continue;
    try {
      ch.send(FrameType::kShutdown, nullptr, 0);
    } catch (const TransportError&) {
    }
  }
  chans_.clear();
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  pids_.clear();
  live_ = false;
}

void ShardWorkerPool::slot_acquire() {
  mu_.lock();
  ++slot_depth_;
}

void ShardWorkerPool::slot_release() {
  DC_CHECK(slot_depth_ > 0);
  if (--slot_depth_ == 0) plane_.aux_reset();
  mu_.unlock();
}

void* ShardWorkerPool::aux_alloc(std::size_t bytes, std::size_t align) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return plane_.aux_alloc(bytes, align);
}

ShardWorkerPool::Stats ShardWorkerPool::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return stats_;
}

void ShardWorkerPool::die_worker(int shard, int round, const char* what) {
  ErrorContext ctx;
  ctx.round = round;
  throw CellError(FaultCategory::kWorkerDeath,
                  "shard " + std::to_string(shard) + " worker " + what +
                      " mid-stage",
                  ctx);
}

ShardWorkerPool::StageResult ShardWorkerPool::run_stage(
    const StageWire& wire, int max_rounds, void* states,
    std::size_t state_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DC_CHECK(wire.entry != nullptr);
  DC_CHECK(wire.state_size > 0 && wire.state_size <= kMaxShardStateBytes);
  DC_CHECK(state_bytes <= plane_.state_capacity());
  ++stats_.dispatches;
  if (live_)
    ++stats_.reused;
  else
    spawn_locked();

  const std::uint64_t stage_id = next_stage_id_++;
  std::memcpy(plane_.state_bytes(), states, state_bytes);
  const bool frames = barrier_ == BarrierMode::kFrames;
  const std::vector<std::uint8_t> begin =
      encode_stage_begin(wire, stage_id, max_rounds, frames);
  StageResult res;
  res.stats.ghost_bytes_in.assign(
      static_cast<std::size_t>(plan_.manifest.num_shards()), 0);
  res.stats.boundary_bytes_out.assign(
      static_cast<std::size_t>(plan_.manifest.num_shards()), 0);
  res.stats.barrier_wait_ns.resize(
      static_cast<std::size_t>(plan_.manifest.num_shards()));
  res.stats.halo_publish_ns.resize(
      static_cast<std::size_t>(plan_.manifest.num_shards()));
  try {
    for (int s = 0; s < plan_.manifest.num_shards(); ++s) {
      try {
        chans_[static_cast<std::size_t>(s)].send(FrameType::kStageBegin,
                                                 begin);
      } catch (const TransportError&) {
        die_worker(s, -1, "died");
      }
      ++res.stats.ctl_frames;
    }
    if (frames) drive_frames_locked(max_rounds, &res);
    await_ends_locked(stage_id, 4 + wire.state_size, max_rounds, &res);
    std::memcpy(states, plane_.state_bytes(), state_bytes);
  } catch (...) {
    // A failed stage never leaks processes; the next dispatch reforks.
    // The SIGKILLs also unblock any surviving worker parked in a barrier
    // futex wait for the dead one.
    teardown_locked();
    throw;
  }
  stats_.ctl_frames += res.stats.ctl_frames;
  if (!persistent_) teardown_locked();
  return res;
}

void ShardWorkerPool::drive_frames_locked(int max_rounds, StageResult* res) {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(static_cast<int>(chans_.size()) == shards);

  Frame f;
  for (;;) {
    // Gather every shard's barrier before sending anything: no circular
    // waits (workers send their barrier unconditionally after stepping),
    // and a dead worker is detected here as EOF on its channel. The
    // barrier is a fixed 9-byte frame — [u8 done][u32 published]
    // [u32 applied] — validated up front; the record payloads themselves
    // live in the shared plane and are bounds-checked by HaloPlane::open,
    // and the byte accounting now arrives with the STAGE_END summary.
    bool all_done = true;
    for (int s = 0; s < shards; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      bool got = false;
      try {
        got = chans_[si].recv(&f);
      } catch (const TransportError&) {
        got = false;
      }
      if (!got) die_worker(s, res->rounds, "died");
      ++res->stats.ctl_frames;
      if (f.type == FrameType::kError) {
        ErrorContext ctx;
        ctx.round = res->rounds;
        throw CellError(
            FaultCategory::kEngineException,
            "shard " + std::to_string(s) + " worker: " +
                std::string(f.payload.begin(), f.payload.end()),
            ctx);
      }
      if (f.type != FrameType::kBarrier || f.payload.size() != 9)
        die_worker(s, res->rounds, "sent a malformed barrier");
      all_done &= f.payload[0] != 0;
    }

    const FrameType verdict = (all_done || res->rounds >= max_rounds)
                                  ? FrameType::kHalt
                                  : FrameType::kStep;
    for (int s = 0; s < shards; ++s) {
      try {
        chans_[static_cast<std::size_t>(s)].send(verdict, nullptr, 0);
      } catch (const TransportError&) {
        die_worker(s, res->rounds, "died");
      }
      ++res->stats.ctl_frames;
    }
    if (verdict == FrameType::kHalt) return;
    ++res->rounds;
    res->stats.rounds = res->rounds;
  }
}

int ShardWorkerPool::barrier_round_of(int shard,
                                      std::uint64_t stage_id) const {
  const std::uint64_t at = plane_.barrier_raw(shard) & ~kBarrierDoneBit;
  if ((at >> 32) != stage_id) return -1;
  return static_cast<int>(at & 0xffffffffull);
}

void ShardWorkerPool::await_ends_locked(std::uint64_t stage_id,
                                        std::size_t record_size,
                                        int max_rounds, StageResult* res) {
  const int shards = plan_.manifest.num_shards();
  const bool frames = barrier_ == BarrierMode::kFrames;
  std::vector<std::uint8_t> got_end(static_cast<std::size_t>(shards), 0);
  int pending = shards;
  Frame f;
  std::vector<struct pollfd> fds;
  std::vector<int> owner;
  while (pending > 0) {
    fds.clear();
    owner.clear();
    for (int s = 0; s < shards; ++s) {
      if (got_end[static_cast<std::size_t>(s)]) continue;
      fds.push_back({chans_[static_cast<std::size_t>(s)].fd(), POLLIN, 0});
      owner.push_back(s);
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError("poll on worker control sockets failed");
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int s = owner[i];
      const std::size_t si = static_cast<std::size_t>(s);
      bool ok = false;
      try {
        ok = chans_[si].recv(&f);
      } catch (const TransportError&) {
        ok = false;
      }
      // In shm mode the coordinator never saw the round loop, but a dead
      // worker's barrier cell still pins the failure to a round.
      if (!ok)
        die_worker(s, frames ? res->rounds : barrier_round_of(s, stage_id),
                   "died");
      ++res->stats.ctl_frames;
      if (f.type == FrameType::kError) {
        ErrorContext ctx;
        ctx.round = frames ? res->rounds : barrier_round_of(s, stage_id);
        throw CellError(
            FaultCategory::kEngineException,
            "shard " + std::to_string(s) + " worker: " +
                std::string(f.payload.begin(), f.payload.end()),
            ctx);
      }
      if (f.type != FrameType::kStageEnd)
        die_worker(s, res->rounds, "sent a malformed stage end");
      WorkerStageEnd we;
      if (!decode_stage_end(f.payload.data(), f.payload.size(), &we))
        die_worker(s, res->rounds, "sent a torn stage end");
      if (static_cast<int>(we.rounds) > max_rounds)
        die_worker(s, static_cast<int>(we.rounds), "overran max_rounds");
      if (frames || pending < shards) {
        // Every worker must have halted at the same barrier: in frames
        // mode at the coordinator's round count, in shm mode at whichever
        // round the first STAGE_END reported.
        if (static_cast<int>(we.rounds) != res->rounds)
          die_worker(s, static_cast<int>(we.rounds),
                     "disagreed on the stage round count");
      } else {
        res->rounds = static_cast<int>(we.rounds);
      }
      res->stats.boundary_bytes_out[si] = we.published * record_size;
      res->stats.ghost_bytes_in[si] = we.applied * record_size;
      res->stats.barrier_wait_ns[si] = std::move(we.barrier_wait_ns);
      res->stats.halo_publish_ns[si] = std::move(we.publish_ns);
      if (!plane_.check_final(s, stage_id))
        die_worker(s, -1, "acked a stage without publishing final state");
      got_end[si] = 1;
      --pending;
    }
  }
  res->stats.rounds = res->rounds;
}

void shard_worker_loop(const ShardPlan& plan, HaloPlane& plane, int shard,
                       FrameChannel& ch) {
  Frame f;
  for (;;) {
    bool got = false;
    try {
      got = ch.recv(&f);
    } catch (...) {
      std::_Exit(1);
    }
    // EOF (coordinator gone or tearing down) and kShutdown are both
    // orderly exits; anything else out of stage context is a protocol bug.
    if (!got || f.type == FrameType::kShutdown) std::_Exit(0);
    if (f.type != FrameType::kStageBegin) std::_Exit(1);
    try {
      const std::uint8_t* p = f.payload.data();
      std::size_t left = f.payload.size();
      const auto take = [&](void* dst, std::size_t nbytes) {
        if (left < nbytes) throw TransportError("torn STAGE_BEGIN frame");
        std::memcpy(dst, p, nbytes);
        p += nbytes;
        left -= nbytes;
      };
      std::uint64_t entry_raw = 0;
      std::uint64_t stage_id = 0;
      std::int32_t max_rounds = 0;
      std::uint32_t state_size = 0;
      std::uint32_t step_size = 0;
      std::uint32_t done_size = 0;
      std::uint8_t frames_byte = 0;
      take(&entry_raw, 8);
      take(&stage_id, 8);
      take(&max_rounds, 4);
      take(&state_size, 4);
      take(&step_size, 4);
      take(&done_size, 4);
      take(&frames_byte, 1);
      FaultWire fw;
      const std::size_t used = decode_fault_wire(p, left, &fw);
      p += used;
      left -= used;
      if (left != static_cast<std::size_t>(step_size) + done_size)
        throw TransportError("torn STAGE_BEGIN frame");

      WorkerStageCtx ctx;
      ctx.plan = &plan;
      ctx.plane = &plane;
      ctx.ch = &ch;
      ctx.shard = shard;
      ctx.stage_id = stage_id;
      ctx.max_rounds = max_rounds;
      ctx.state_size = state_size;
      ctx.step_bytes = p;
      ctx.step_size = step_size;
      ctx.done_bytes = p + step_size;
      ctx.done_size = done_size;
      ctx.frames = frames_byte != 0;

      // Re-create the coordinator's fault context for this stage: arm()
      // resets the fire-once markers, so per-stage re-firing matches what
      // fork-per-stage inheritance used to produce.
      if (fw.armed)
        FaultInjector::global().arm(fw.specs, fw.seed);
      else
        FaultInjector::global().disarm();
      const auto entry = reinterpret_cast<StageEntryFn>(
          reinterpret_cast<void*>(entry_raw));
      FaultInjector::CellScope scope(fw.cell, fw.attempt);
      entry(ctx);
    } catch (const std::exception& e) {
      try {
        ch.send(FrameType::kError, e.what(), std::strlen(e.what()));
      } catch (...) {
      }
      std::_Exit(1);
    } catch (...) {
      try {
        const char kWhat[] = "unknown exception in shard worker";
        ch.send(FrameType::kError, kWhat, sizeof(kWhat) - 1);
      } catch (...) {
      }
      std::_Exit(1);
    }
  }
}

}  // namespace deltacolor
