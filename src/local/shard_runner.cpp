#include "local/shard_runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "local/faults.hpp"

namespace deltacolor {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

template <typename T>
void put_raw(const T& v, std::vector<std::uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

/// STAGE_BEGIN payload; see the header comment for the layout. The fault
/// wire is snapshotted at dispatch time on the dispatching thread, so the
/// worker sees exactly the (plan, seed, cell, attempt) context the
/// coordinator's stage would have seen — with the attempt index bumped by
/// `replay`, so a default fire-once fault that killed attempt 0 does not
/// re-fire on the replay, while an attempts=0 (every-attempt) fault does
/// and deterministically exhausts the respawn budget.
std::vector<std::uint8_t> encode_stage_begin(const StageWire& wire,
                                             std::uint64_t stage_id,
                                             int max_rounds, bool frames,
                                             int snap_parity, int replay) {
  std::vector<std::uint8_t> out;
  put_raw<std::uint64_t>(
      reinterpret_cast<std::uint64_t>(
          reinterpret_cast<void*>(wire.entry)),
      &out);
  put_raw<std::uint64_t>(stage_id, &out);
  put_raw<std::int32_t>(max_rounds, &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.state_size), &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.step_bytes.size()),
                         &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.done_bytes.size()),
                         &out);
  put_raw<std::uint8_t>(frames ? 1 : 0, &out);
  put_raw<std::uint8_t>(static_cast<std::uint8_t>(snap_parity & 1), &out);
  FaultWire fw = snapshot_fault_wire();
  fw.attempt += replay;
  encode_fault_wire(fw, &out);
  out.insert(out.end(), wire.step_bytes.begin(), wire.step_bytes.end());
  out.insert(out.end(), wire.done_bytes.begin(), wire.done_bytes.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_stage_end(const WorkerStageEnd& e) {
  std::vector<std::uint8_t> out;
  put_raw<std::uint32_t>(e.rounds, &out);
  put_raw<std::uint64_t>(e.published, &out);
  put_raw<std::uint64_t>(e.applied, &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(e.barrier_wait_ns.size()),
                         &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(e.publish_ns.size()),
                         &out);
  for (const std::uint32_t v : e.barrier_wait_ns) put_raw(v, &out);
  for (const std::uint32_t v : e.publish_ns) put_raw(v, &out);
  return out;
}

bool decode_stage_end(const std::uint8_t* p, std::size_t size,
                      WorkerStageEnd* out) {
  const auto take = [&](void* dst, std::size_t nbytes) {
    if (size < nbytes) return false;
    std::memcpy(dst, p, nbytes);
    p += nbytes;
    size -= nbytes;
    return true;
  };
  std::uint32_t nwait = 0;
  std::uint32_t npub = 0;
  if (!take(&out->rounds, 4) || !take(&out->published, 8) ||
      !take(&out->applied, 8) || !take(&nwait, 4) || !take(&npub, 4))
    return false;
  if (size != (static_cast<std::size_t>(nwait) + npub) * 4) return false;
  out->barrier_wait_ns.resize(nwait);
  out->publish_ns.resize(npub);
  for (std::uint32_t i = 0; i < nwait; ++i)
    take(&out->barrier_wait_ns[i], 4);
  for (std::uint32_t i = 0; i < npub; ++i) take(&out->publish_ns[i], 4);
  return true;
}

bool control_channel_dead(const FrameChannel& ch) {
  struct pollfd pfd = {ch.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) return errno != EINTR && errno != EAGAIN;
  // Mid-stage, the coordinator sends nothing in shm mode until teardown —
  // so readable data (kShutdown) and HUP/ERR alike mean "stage is over".
  return rc > 0 && pfd.revents != 0;
}

void worker_poll_control(FrameChannel& ch) {
  struct pollfd pfd = {ch.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 0);
  if (rc < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    std::_Exit(1);
  }
  if (rc == 0 || pfd.revents == 0) return;
  Frame f;
  bool got = false;
  try {
    got = ch.recv(&f);
  } catch (...) {
    std::_Exit(1);
  }
  if (!got) std::_Exit(1);  // coordinator vanished mid-stage
  if (f.type == FrameType::kStageAbort) throw StageAbortSignal{};
  if (f.type == FrameType::kShutdown) std::_Exit(0);
  std::_Exit(1);  // anything else mid-stage is a protocol violation
}

ShardWorkerPool::ShardWorkerPool(const ShardPlan& plan, bool persistent,
                                 BarrierMode barrier, int stall_ms,
                                 int respawn_budget)
    : plan_(plan),
      persistent_(persistent),
      barrier_(resolve_barrier_mode(barrier)),
      stall_ms_(resolve_shard_stall_ms(stall_ms)),
      respawn_budget_(resolve_shard_respawn_budget(respawn_budget)),
      plane_(plan.manifest, plan.graph->num_nodes(),
             /*aux_capacity=*/16 * plan.graph->num_nodes() +
                 32 * plan.graph->num_edges() + (1u << 20)) {
  DC_CHECK(plan_.graph != nullptr);
  stats_.shm_bytes = plane_.bytes_mapped();
}

ShardWorkerPool::~ShardWorkerPool() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  teardown_locked();
}

void ShardWorkerPool::spawn_now() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!live_) spawn_locked();
}

void ShardWorkerPool::spawn_locked() {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(chans_.empty());
  live_ = true;  // teardown_locked() cleans up a partially-spawned pool
  chans_.resize(static_cast<std::size_t>(shards));  // invalid until spawned
  pids_.assign(static_cast<std::size_t>(shards), -1);
  for (int s = 0; s < shards; ++s) spawn_worker_locked(s);
}

void ShardWorkerPool::spawn_worker_locked(int s) {
  const std::size_t si = static_cast<std::size_t>(s);
  DC_CHECK(pids_[si] <= 0 && !chans_[si].valid());
  // Parent stdio is flushed so a child's inherited buffers never replay
  // half-written lines (children write nothing themselves, but _Exit on an
  // inherited non-empty buffer is the classic dup-output bug).
  std::fflush(nullptr);
  auto [parent_end, child_end] = FrameChannel::open_pair();
  const int keep = child_end.fd();
  const pid_t pid = FdRegistry::global().fork_with_only(&keep, 1);
  if (pid < 0) throw TransportError("fork failed for shard worker");
  if (pid == 0) {
    // Child: the parent ends registered by other pools (and this one)
    // are already closed by fork_with_only; park in the control loop.
    shard_worker_loop(plan_, plane_, s, child_end);
  }
  pids_[si] = pid;
  child_end.close();  // parent keeps only its own end
  chans_[si] = std::move(parent_end);
  ++stats_.forks;
}

void ShardWorkerPool::kill_worker_locked(int s) {
  const std::size_t si = static_cast<std::size_t>(s);
  const pid_t pid = pids_[si];
  if (pid > 0) {
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    pids_[si] = -1;
  }
  chans_[si].close();
}

void ShardWorkerPool::teardown_locked() {
  // Orderly first: a worker parked in recv() exits 0 on kShutdown or on
  // the EOF from closing our end. Anything still alive after that (wedged
  // mid-step, mid-fault sleep) is killed. SIGKILL on an already-exited
  // child is a no-op, and the waitpid reaps either way — no zombies.
  for (FrameChannel& ch : chans_) {
    if (!ch.valid()) continue;
    try {
      ch.send(FrameType::kShutdown, nullptr, 0);
    } catch (const TransportError&) {
    }
  }
  chans_.clear();
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  pids_.clear();
  live_ = false;
}

void ShardWorkerPool::slot_acquire() {
  mu_.lock();
  ++slot_depth_;
}

void ShardWorkerPool::slot_release() {
  DC_CHECK(slot_depth_ > 0);
  if (--slot_depth_ == 0) plane_.aux_reset();
  mu_.unlock();
}

void* ShardWorkerPool::aux_alloc(std::size_t bytes, std::size_t align) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return plane_.aux_alloc(bytes, align);
}

ShardWorkerPool::Stats ShardWorkerPool::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return stats_;
}

void ShardWorkerPool::die_worker(int shard, int round, const char* what) {
  ErrorContext ctx;
  ctx.round = round;
  throw CellError(FaultCategory::kWorkerDeath,
                  "shard " + std::to_string(shard) + " worker " + what +
                      " mid-stage",
                  ctx);
}

ShardWorkerPool::StageResult ShardWorkerPool::run_stage(
    const StageWire& wire, int max_rounds, void* states,
    std::size_t state_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DC_CHECK(wire.entry != nullptr);
  DC_CHECK(wire.state_size > 0 && wire.state_size <= kMaxShardStateBytes);
  DC_CHECK(state_bytes <= plane_.state_capacity());
  ++stats_.dispatches;
  if (live_)
    ++stats_.reused;
  else
    spawn_locked();

  // Stage-entry snapshot: workers load their initial state from here (and
  // only from here), so every replay of this stage starts from the
  // identical image with zero restore copies. The parity alternates per
  // *logical* stage, not per attempt — a straggling survivor of stage k
  // must never find stage k+1's broadcast under its feet, while replays of
  // stage k read the very same buffer.
  snap_parity_ ^= 1;
  std::memcpy(plane_.snapshot_bytes(snap_parity_), states, state_bytes);

  const bool frames = barrier_ == BarrierMode::kFrames;
  const std::size_t record_size = 4 + wire.state_size;
  int budget = respawn_budget_;
  int replay = 0;
  for (;;) {
    // A fresh stage id per attempt is the whole replay story: barrier
    // cells and slab epochs are monotonic across the pool's lifetime, so
    // whatever the aborted attempt left behind reads as "not yet arrived".
    const std::uint64_t stage_id = next_stage_id_++;
    const std::vector<std::uint8_t> begin = encode_stage_begin(
        wire, stage_id, max_rounds, frames, snap_parity_, replay);
    StageResult res;
    res.stats.ghost_bytes_in.assign(
        static_cast<std::size_t>(plan_.manifest.num_shards()), 0);
    res.stats.boundary_bytes_out.assign(
        static_cast<std::size_t>(plan_.manifest.num_shards()), 0);
    res.stats.barrier_wait_ns.resize(
        static_cast<std::size_t>(plan_.manifest.num_shards()));
    res.stats.halo_publish_ns.resize(
        static_cast<std::size_t>(plan_.manifest.num_shards()));
    try {
      dispatch_attempt_locked(begin, stage_id, record_size, max_rounds, &res);
      std::memcpy(states, plane_.state_bytes(), state_bytes);
      stats_.ctl_frames += res.stats.ctl_frames;
      if (!persistent_) teardown_locked();
      return res;
    } catch (const WorkerFailure& wf) {
      if (wf.category == FaultCategory::kWorkerStall) ++stats_.stalls;
      if (budget <= 0) {
        // Budget exhausted: surface the structured failure. The pool is
        // torn down (the next dispatch reforks) and `states` was never
        // written, so a caller that catches this — SyncRunner's in-process
        // degradation — still holds its intact pre-stage state.
        teardown_locked();
        ErrorContext ctx;
        ctx.round = wf.round;
        throw CellError(wf.category, wf.detail, ctx);
      }
      --budget;
      ++replay;
      stats_.replayed_rounds +=
          static_cast<std::uint64_t>(std::max(wf.round, 0));
      recover_locked(wf.shard);
    } catch (...) {
      // Non-recoverable (worker-reported exception, protocol violation,
      // transport breakdown): a failed stage never leaks processes; the
      // next dispatch reforks. The SIGKILLs also unblock any surviving
      // worker parked in a barrier futex wait for the dead one.
      teardown_locked();
      throw;
    }
  }
}

void ShardWorkerPool::dispatch_attempt_locked(
    const std::vector<std::uint8_t>& begin, std::uint64_t stage_id,
    std::size_t record_size, int max_rounds, StageResult* res) {
  for (int s = 0; s < plan_.manifest.num_shards(); ++s) {
    try {
      chans_[static_cast<std::size_t>(s)].send(FrameType::kStageBegin, begin);
    } catch (const TransportError&) {
      throw WorkerFailure{s, -1, FaultCategory::kWorkerDeath,
                          "shard " + std::to_string(s) +
                              " worker died before stage dispatch"};
    }
    ++res->stats.ctl_frames;
  }
  if (barrier_ == BarrierMode::kFrames)
    drive_frames_locked(max_rounds, res);
  await_ends_locked(stage_id, record_size, max_rounds, res);
}

void ShardWorkerPool::recover_locked(int failed_shard) {
  const int shards = plan_.manifest.num_shards();
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(shards), 0);
  kill_worker_locked(failed_shard);
  dead[static_cast<std::size_t>(failed_shard)] = 1;

  // Quiesce the survivors: every live worker must be parked at its control
  // loop before the replay is dispatched, or a straggler could interleave
  // its aborted-attempt frames with the replay's.
  for (int s = 0; s < shards; ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    if (dead[si] || !chans_[si].valid()) continue;
    try {
      chans_[si].send(FrameType::kStageAbort, nullptr, 0);
      ++stats_.ctl_frames;
    } catch (const TransportError&) {
      kill_worker_locked(s);
      dead[si] = 1;
    }
  }
  // The socketpair is FIFO, so draining until the kAbortAck consumes every
  // frame the worker queued before it observed the abort (stale barriers,
  // a STAGE_END it got in just under the wire, even a kError).
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         std::max(stall_ms_ > 0 ? stall_ms_ : 0, 2000));
  Frame f;
  for (int s = 0; s < shards; ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    if (dead[si]) continue;
    bool acked = false;
    while (!acked) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      struct pollfd pfd = {chans_[si].fd(), POLLIN, 0};
      const int rc =
          ::poll(&pfd, 1, left > 0 ? static_cast<int>(left) : 0);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) break;  // quiesce deadline: treat the survivor as hung
      bool ok = false;
      try {
        ok = chans_[si].recv(&f);
      } catch (const TransportError&) {
        ok = false;
      }
      if (!ok) break;  // survivor died while quiescing
      ++stats_.ctl_frames;
      acked = f.type == FrameType::kAbortAck;
    }
    if (!acked) {
      kill_worker_locked(s);
      dead[si] = 1;
    }
  }
  for (int s = 0; s < shards; ++s) {
    if (!dead[static_cast<std::size_t>(s)]) continue;
    spawn_worker_locked(s);
    ++stats_.respawns;
  }
}

void ShardWorkerPool::drive_frames_locked(int max_rounds, StageResult* res) {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(static_cast<int>(chans_.size()) == shards);

  Frame f;
  std::vector<std::uint8_t> got(static_cast<std::size_t>(shards), 0);
  std::vector<struct pollfd> fds;
  std::vector<int> owner;
  const int poll_ms =
      stall_ms_ > 0 ? std::clamp(stall_ms_ / 4, 10, 250) : -1;
  for (;;) {
    // Gather every shard's barrier before sending anything: no circular
    // waits (workers send their barrier unconditionally after stepping),
    // and a dead worker is detected here as EOF on its channel. The
    // barrier is a fixed 9-byte frame — [u8 done][u32 published]
    // [u32 applied] — validated up front; the record payloads themselves
    // live in the shared plane and are bounds-checked by HaloPlane::open,
    // and the byte accounting now arrives with the STAGE_END summary.
    std::fill(got.begin(), got.end(), 0);
    int pending = shards;
    bool all_done = true;
    const auto gather_start = Clock::now();
    while (pending > 0) {
      fds.clear();
      owner.clear();
      for (int s = 0; s < shards; ++s) {
        if (got[static_cast<std::size_t>(s)]) continue;
        fds.push_back({chans_[static_cast<std::size_t>(s)].fd(), POLLIN, 0});
        owner.push_back(s);
      }
      const int rc =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw TransportError("poll on worker control sockets failed");
      }
      if (rc == 0) {
        // Frame-barrier watchdog: workers send their round barrier
        // unconditionally after stepping, so once *any* peer delivered
        // this gather, a shard silent past the deadline is hung, not
        // merely slow-in-lockstep.
        if (stall_ms_ > 0 && pending < shards &&
            ms_since(gather_start) > stall_ms_) {
          const int s = owner.front();
          throw WorkerFailure{
              s, res->rounds, FaultCategory::kWorkerStall,
              "shard " + std::to_string(s) +
                  " worker sent no barrier for round " +
                  std::to_string(res->rounds) + " within " +
                  std::to_string(stall_ms_) + "ms (peers delivered)"};
        }
        continue;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        const int s = owner[i];
        const std::size_t si = static_cast<std::size_t>(s);
        bool ok = false;
        try {
          ok = chans_[si].recv(&f);
        } catch (const TransportError&) {
          ok = false;
        }
        if (!ok)
          throw WorkerFailure{s, res->rounds, FaultCategory::kWorkerDeath,
                              "shard " + std::to_string(s) +
                                  " worker died mid-stage"};
        ++res->stats.ctl_frames;
        if (f.type == FrameType::kError) {
          ErrorContext ctx;
          ctx.round = res->rounds;
          throw CellError(
              FaultCategory::kEngineException,
              "shard " + std::to_string(s) + " worker: " +
                  std::string(f.payload.begin(), f.payload.end()),
              ctx);
        }
        if (f.type != FrameType::kBarrier || f.payload.size() != 9)
          die_worker(s, res->rounds, "sent a malformed barrier");
        all_done &= f.payload[0] != 0;
        got[si] = 1;
        --pending;
      }
    }

    const FrameType verdict = (all_done || res->rounds >= max_rounds)
                                  ? FrameType::kHalt
                                  : FrameType::kStep;
    for (int s = 0; s < shards; ++s) {
      try {
        chans_[static_cast<std::size_t>(s)].send(verdict, nullptr, 0);
      } catch (const TransportError&) {
        throw WorkerFailure{s, res->rounds, FaultCategory::kWorkerDeath,
                            "shard " + std::to_string(s) +
                                " worker died mid-stage"};
      }
      ++res->stats.ctl_frames;
    }
    if (verdict == FrameType::kHalt) return;
    ++res->rounds;
    res->stats.rounds = res->rounds;
  }
}

int ShardWorkerPool::barrier_round_of(int shard,
                                      std::uint64_t stage_id) const {
  const std::uint64_t at = plane_.barrier_raw(shard) & ~kBarrierDoneBit;
  if ((at >> 32) != stage_id) return -1;
  return static_cast<int>(at & 0xffffffffull);
}

void ShardWorkerPool::await_ends_locked(std::uint64_t stage_id,
                                        std::size_t record_size,
                                        int max_rounds, StageResult* res) {
  const int shards = plan_.manifest.num_shards();
  const bool frames = barrier_ == BarrierMode::kFrames;
  std::vector<std::uint8_t> got_end(static_cast<std::size_t>(shards), 0);
  int pending = shards;
  Frame f;
  std::vector<struct pollfd> fds;
  std::vector<int> owner;
  // Stall watchdog bookkeeping. In shm mode the coordinator shadows each
  // pending shard's barrier epoch cell: the cell advances every round, so
  // "unchanged past the deadline" means hung — but only for shards at the
  // *minimum* masked epoch, because peers waiting on a straggler stop
  // advancing their own cells too and must not be flagged. In frames mode
  // the cells carry no rounds; the silence-after-progress heuristic from
  // drive_frames_locked covers the STAGE_END wait instead.
  const int poll_ms =
      stall_ms_ > 0 ? std::clamp(stall_ms_ / 4, 10, 250) : -1;
  struct CellWatch {
    std::uint64_t raw = 0;
    Clock::time_point since;
  };
  std::vector<CellWatch> watch(static_cast<std::size_t>(shards));
  const auto start = Clock::now();
  for (int s = 0; s < shards; ++s)
    watch[static_cast<std::size_t>(s)] = {plane_.barrier_raw(s), start};
  auto last_end = start;
  while (pending > 0) {
    fds.clear();
    owner.clear();
    for (int s = 0; s < shards; ++s) {
      if (got_end[static_cast<std::size_t>(s)]) continue;
      fds.push_back({chans_[static_cast<std::size_t>(s)].fd(), POLLIN, 0});
      owner.push_back(s);
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError("poll on worker control sockets failed");
    }
    for (std::size_t i = 0; rc > 0 && i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int s = owner[i];
      const std::size_t si = static_cast<std::size_t>(s);
      bool ok = false;
      try {
        ok = chans_[si].recv(&f);
      } catch (const TransportError&) {
        ok = false;
      }
      // In shm mode the coordinator never saw the round loop, but a dead
      // worker's barrier cell still pins the failure to a round.
      if (!ok) {
        const int round =
            frames ? res->rounds : barrier_round_of(s, stage_id);
        throw WorkerFailure{s, round, FaultCategory::kWorkerDeath,
                            "shard " + std::to_string(s) +
                                " worker died mid-stage"};
      }
      ++res->stats.ctl_frames;
      if (f.type == FrameType::kError) {
        ErrorContext ctx;
        ctx.round = frames ? res->rounds : barrier_round_of(s, stage_id);
        throw CellError(
            FaultCategory::kEngineException,
            "shard " + std::to_string(s) + " worker: " +
                std::string(f.payload.begin(), f.payload.end()),
            ctx);
      }
      if (f.type != FrameType::kStageEnd)
        die_worker(s, res->rounds, "sent a malformed stage end");
      WorkerStageEnd we;
      if (!decode_stage_end(f.payload.data(), f.payload.size(), &we))
        die_worker(s, res->rounds, "sent a torn stage end");
      if (static_cast<int>(we.rounds) > max_rounds)
        die_worker(s, static_cast<int>(we.rounds), "overran max_rounds");
      if (frames || pending < shards) {
        // Every worker must have halted at the same barrier: in frames
        // mode at the coordinator's round count, in shm mode at whichever
        // round the first STAGE_END reported.
        if (static_cast<int>(we.rounds) != res->rounds)
          die_worker(s, static_cast<int>(we.rounds),
                     "disagreed on the stage round count");
      } else {
        res->rounds = static_cast<int>(we.rounds);
      }
      res->stats.boundary_bytes_out[si] = we.published * record_size;
      res->stats.ghost_bytes_in[si] = we.applied * record_size;
      res->stats.barrier_wait_ns[si] = std::move(we.barrier_wait_ns);
      res->stats.halo_publish_ns[si] = std::move(we.publish_ns);
      if (!plane_.check_final(s, stage_id))
        die_worker(s, -1, "acked a stage without publishing final state");
      got_end[si] = 1;
      --pending;
      last_end = Clock::now();
    }
    if (stall_ms_ > 0 && pending > 0) {
      const auto now = Clock::now();
      if (!frames) {
        std::uint64_t min_at = ~0ull;
        for (int s = 0; s < shards; ++s) {
          const std::size_t si = static_cast<std::size_t>(s);
          if (got_end[si]) continue;
          const std::uint64_t cur = plane_.barrier_raw(s);
          if (cur != watch[si].raw) watch[si] = {cur, now};
          min_at = std::min(min_at, cur & ~kBarrierDoneBit);
        }
        for (int s = 0; s < shards; ++s) {
          const std::size_t si = static_cast<std::size_t>(s);
          if (got_end[si]) continue;
          if ((watch[si].raw & ~kBarrierDoneBit) != min_at) continue;
          if (std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - watch[si].since)
                  .count() <= stall_ms_)
            continue;
          const int round = barrier_round_of(s, stage_id);
          throw WorkerFailure{
              s, round, FaultCategory::kWorkerStall,
              "shard " + std::to_string(s) +
                  " worker stopped advancing its barrier epoch (round " +
                  std::to_string(round) + ") for over " +
                  std::to_string(stall_ms_) + "ms"};
        }
      } else if (pending < shards &&
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     now - last_end)
                         .count() > stall_ms_) {
        const int s = owner.front();
        throw WorkerFailure{s, res->rounds, FaultCategory::kWorkerStall,
                            "shard " + std::to_string(s) +
                                " worker sent no stage end within " +
                                std::to_string(stall_ms_) +
                                "ms (peers delivered)"};
      }
    }
  }
  res->stats.rounds = res->rounds;
}

void shard_worker_loop(const ShardPlan& plan, HaloPlane& plane, int shard,
                       FrameChannel& ch) {
  Frame f;
  for (;;) {
    bool got = false;
    try {
      got = ch.recv(&f);
    } catch (...) {
      std::_Exit(1);
    }
    // EOF (coordinator gone or tearing down) and kShutdown are both
    // orderly exits; anything else out of stage context is a protocol bug.
    if (!got || f.type == FrameType::kShutdown) std::_Exit(0);
    if (f.type == FrameType::kStageAbort) {
      // The stage this abort targets already ended here (the STAGE_END and
      // the abort crossed on the wire); ack so the coordinator's quiesce
      // completes and park for the replayed STAGE_BEGIN.
      try {
        ch.send(FrameType::kAbortAck, nullptr, 0);
      } catch (...) {
        std::_Exit(1);
      }
      continue;
    }
    if (f.type != FrameType::kStageBegin) std::_Exit(1);
    try {
      const std::uint8_t* p = f.payload.data();
      std::size_t left = f.payload.size();
      const auto take = [&](void* dst, std::size_t nbytes) {
        if (left < nbytes) throw TransportError("torn STAGE_BEGIN frame");
        std::memcpy(dst, p, nbytes);
        p += nbytes;
        left -= nbytes;
      };
      std::uint64_t entry_raw = 0;
      std::uint64_t stage_id = 0;
      std::int32_t max_rounds = 0;
      std::uint32_t state_size = 0;
      std::uint32_t step_size = 0;
      std::uint32_t done_size = 0;
      std::uint8_t frames_byte = 0;
      std::uint8_t parity_byte = 0;
      take(&entry_raw, 8);
      take(&stage_id, 8);
      take(&max_rounds, 4);
      take(&state_size, 4);
      take(&step_size, 4);
      take(&done_size, 4);
      take(&frames_byte, 1);
      take(&parity_byte, 1);
      FaultWire fw;
      const std::size_t used = decode_fault_wire(p, left, &fw);
      p += used;
      left -= used;
      if (left != static_cast<std::size_t>(step_size) + done_size)
        throw TransportError("torn STAGE_BEGIN frame");

      WorkerStageCtx ctx;
      ctx.plan = &plan;
      ctx.plane = &plane;
      ctx.ch = &ch;
      ctx.shard = shard;
      ctx.stage_id = stage_id;
      ctx.max_rounds = max_rounds;
      ctx.state_size = state_size;
      ctx.step_bytes = p;
      ctx.step_size = step_size;
      ctx.done_bytes = p + step_size;
      ctx.done_size = done_size;
      ctx.frames = frames_byte != 0;
      ctx.snap_parity = parity_byte & 1;

      // Re-create the coordinator's fault context for this stage: arm()
      // resets the fire-once markers, so per-stage re-firing matches what
      // fork-per-stage inheritance used to produce. (A replayed stage
      // arrives with a bumped attempt index instead — see
      // encode_stage_begin.)
      if (fw.armed)
        FaultInjector::global().arm(fw.specs, fw.seed);
      else
        FaultInjector::global().disarm();
      const auto entry = reinterpret_cast<StageEntryFn>(
          reinterpret_cast<void*>(entry_raw));
      FaultInjector::CellScope scope(fw.cell, fw.attempt);
      entry(ctx);
    } catch (const StageAbortSignal&) {
      // Orderly mid-stage abort (a peer died or stalled): ack and park for
      // the replay. Deliberately ahead of the generic handlers — an abort
      // is not a failure and must not produce a kError frame.
      try {
        ch.send(FrameType::kAbortAck, nullptr, 0);
      } catch (...) {
        std::_Exit(1);
      }
    } catch (const std::exception& e) {
      try {
        ch.send(FrameType::kError, e.what(), std::strlen(e.what()));
      } catch (...) {
      }
      std::_Exit(1);
    } catch (...) {
      try {
        const char kWhat[] = "unknown exception in shard worker";
        ch.send(FrameType::kError, kWhat, sizeof(kWhat) - 1);
      } catch (...) {
      }
      std::_Exit(1);
    }
  }
}

}  // namespace deltacolor
