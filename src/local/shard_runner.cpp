#include "local/shard_runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/errors.hpp"

namespace deltacolor {

ShardStage::ShardStage(const ShardPlan& plan, std::size_t state_size)
    : plan_(plan),
      state_size_(state_size),
      record_size_(4 + state_size) {
  DC_CHECK(plan_.graph != nullptr);
  DC_CHECK(state_size_ > 0);
}

ShardStage::~ShardStage() {
  // Close our ends first: a worker blocked in recv() sees EOF and exits on
  // its own; anything still alive after that (wedged mid-step, mid-fault
  // sleep) is killed. SIGKILL on an already-exited child is a no-op, and
  // the waitpid reaps either way — no zombies, no hang.
  chans_.clear();
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
}

void ShardStage::spawn(
    const std::function<void(int, FrameChannel&)>& worker_main) {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(chans_.empty());
  chans_.reserve(static_cast<std::size_t>(shards));
  pids_.assign(static_cast<std::size_t>(shards), -1);
  // Parent stdio is flushed once so a child's inherited buffers never
  // replay half-written lines (children write nothing themselves, but
  // _Exit on an inherited non-empty buffer is the classic dup-output bug).
  std::fflush(nullptr);
  for (int s = 0; s < shards; ++s) {
    auto [parent_end, child_end] = FrameChannel::open_pair();
    const int keep = child_end.fd();
    const pid_t pid = FdRegistry::global().fork_with_only(&keep, 1);
    if (pid < 0) throw TransportError("fork failed for shard worker");
    if (pid == 0) {
      // Child: the parent ends registered by other stages (and this one)
      // are already closed by fork_with_only; run the worker body.
      worker_main(s, child_end);
      std::_Exit(1);  // worker_main must not return
    }
    pids_[static_cast<std::size_t>(s)] = pid;
    child_end.close();  // parent keeps only its own end
    chans_.push_back(std::move(parent_end));
  }
}

void ShardStage::die_worker(int shard, int round, const char* what) {
  ErrorContext ctx;
  ctx.round = round;
  throw CellError(FaultCategory::kWorkerDeath,
                  "shard " + std::to_string(shard) + " worker " + what +
                      " mid-stage",
                  ctx);
}

ShardStage::Result ShardStage::drive(int max_rounds) {
  const ShardManifest& mf = plan_.manifest;
  const int shards = mf.num_shards();
  DC_CHECK(static_cast<int>(chans_.size()) == shards);

  Result res;
  res.stats.ghost_bytes_in.assign(static_cast<std::size_t>(shards), 0);
  res.stats.boundary_bytes_out.assign(static_cast<std::size_t>(shards), 0);

  std::vector<Frame> barriers(static_cast<std::size_t>(shards));
  std::vector<std::vector<std::uint8_t>> out(
      static_cast<std::size_t>(shards));
  for (;;) {
    // Gather every shard's barrier before sending anything: no circular
    // waits (workers send their barrier unconditionally after stepping),
    // and a dead worker is detected here as EOF on its channel.
    bool all_done = true;
    for (int s = 0; s < shards; ++s) {
      Frame& f = barriers[static_cast<std::size_t>(s)];
      bool got = false;
      try {
        got = chans_[static_cast<std::size_t>(s)].recv(&f);
      } catch (const TransportError&) {
        got = false;
      }
      if (!got) die_worker(s, res.rounds, "died");
      if (f.type == FrameType::kError) {
        ErrorContext ctx;
        ctx.round = res.rounds;
        throw CellError(
            FaultCategory::kEngineException,
            "shard " + std::to_string(s) + " worker: " +
                std::string(f.payload.begin(), f.payload.end()),
            ctx);
      }
      if (f.type != FrameType::kBarrier ||
          f.payload.size() < 5)
        die_worker(s, res.rounds, "sent a malformed barrier");
      all_done &= f.payload[0] != 0;
    }

    if (all_done || res.rounds >= max_rounds) {
      for (int s = 0; s < shards; ++s)
        chans_[static_cast<std::size_t>(s)].send(FrameType::kHalt, nullptr,
                                                 0);
      return res;
    }

    // Route each shard's changed-boundary records to its subscribers. The
    // records arrive ascending (workers scan their sorted boundary list),
    // so a single merge walk against boundary[s] finds each record's
    // subscriber slice.
    for (auto& payload : out) payload.assign(4, 0);  // count placeholder
    for (int s = 0; s < shards; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      const Frame& f = barriers[si];
      std::uint32_t count = 0;
      std::memcpy(&count, f.payload.data() + 1, 4);
      if (f.payload.size() != 5 + count * record_size_)
        die_worker(s, res.rounds, "sent a torn barrier payload");
      res.stats.boundary_bytes_out[si] += count * record_size_;
      const std::uint8_t* rec = f.payload.data() + 5;
      const auto& boundary = mf.boundary[si];
      const auto& offsets = mf.sub_offsets[si];
      const auto& targets = mf.sub_targets[si];
      std::size_t idx = 0;
      for (std::uint32_t i = 0; i < count; ++i, rec += record_size_) {
        std::uint32_t node = 0;
        std::memcpy(&node, rec, 4);
        while (idx < boundary.size() && boundary[idx] < node) ++idx;
        if (idx >= boundary.size() || boundary[idx] != node)
          die_worker(s, res.rounds, "published a non-boundary node");
        for (std::uint32_t t = offsets[idx]; t < offsets[idx + 1]; ++t) {
          auto& payload = out[targets[t]];
          payload.insert(payload.end(), rec, rec + record_size_);
          res.stats.ghost_bytes_in[targets[t]] += record_size_;
        }
      }
    }
    for (int s = 0; s < shards; ++s) {
      auto& payload = out[static_cast<std::size_t>(s)];
      const std::uint32_t count = static_cast<std::uint32_t>(
          (payload.size() - 4) / record_size_);
      std::memcpy(payload.data(), &count, 4);
      try {
        chans_[static_cast<std::size_t>(s)].send(FrameType::kStep, payload);
      } catch (const TransportError&) {
        die_worker(s, res.rounds, "died");
      }
    }
    ++res.rounds;
    res.stats.rounds = res.rounds;
  }
}

void ShardStage::collect(
    const std::function<void(int, const std::uint8_t*, std::size_t)>& sink) {
  const ShardManifest& mf = plan_.manifest;
  for (int s = 0; s < mf.num_shards(); ++s) {
    Frame f;
    bool got = false;
    try {
      got = chans_[static_cast<std::size_t>(s)].recv(&f);
    } catch (const TransportError&) {
      got = false;
    }
    if (!got || f.type != FrameType::kFinal ||
        f.payload.size() != mf.shard_size(s) * state_size_)
      die_worker(s, -1, "died before delivering final state");
    sink(s, f.payload.data(), f.payload.size());
  }
}

}  // namespace deltacolor
