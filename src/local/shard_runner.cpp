#include "local/shard_runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "local/faults.hpp"

namespace deltacolor {

namespace {

template <typename T>
void put_raw(const T& v, std::vector<std::uint8_t>* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

/// STAGE_BEGIN payload; see the header comment for the layout. The fault
/// wire is snapshotted at dispatch time on the dispatching thread, so the
/// worker sees exactly the (plan, seed, cell, attempt) context the
/// coordinator's stage would have seen.
std::vector<std::uint8_t> encode_stage_begin(const StageWire& wire,
                                             std::uint64_t stage_id,
                                             int max_rounds) {
  std::vector<std::uint8_t> out;
  put_raw<std::uint64_t>(
      reinterpret_cast<std::uint64_t>(
          reinterpret_cast<void*>(wire.entry)),
      &out);
  put_raw<std::uint64_t>(stage_id, &out);
  put_raw<std::int32_t>(max_rounds, &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.state_size), &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.step_bytes.size()),
                         &out);
  put_raw<std::uint32_t>(static_cast<std::uint32_t>(wire.done_bytes.size()),
                         &out);
  encode_fault_wire(snapshot_fault_wire(), &out);
  out.insert(out.end(), wire.step_bytes.begin(), wire.step_bytes.end());
  out.insert(out.end(), wire.done_bytes.begin(), wire.done_bytes.end());
  return out;
}

}  // namespace

ShardWorkerPool::ShardWorkerPool(const ShardPlan& plan, bool persistent)
    : plan_(plan),
      persistent_(persistent),
      plane_(plan.manifest, plan.graph->num_nodes(),
             /*aux_capacity=*/16 * plan.graph->num_nodes() +
                 32 * plan.graph->num_edges() + (1u << 20)) {
  DC_CHECK(plan_.graph != nullptr);
  stats_.shm_bytes = plane_.bytes_mapped();
}

ShardWorkerPool::~ShardWorkerPool() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  teardown_locked();
}

void ShardWorkerPool::spawn_now() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!live_) spawn_locked();
}

void ShardWorkerPool::spawn_locked() {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(chans_.empty());
  live_ = true;  // teardown_locked() cleans up a partially-spawned pool
  chans_.reserve(static_cast<std::size_t>(shards));
  pids_.assign(static_cast<std::size_t>(shards), -1);
  // Parent stdio is flushed once so a child's inherited buffers never
  // replay half-written lines (children write nothing themselves, but
  // _Exit on an inherited non-empty buffer is the classic dup-output bug).
  std::fflush(nullptr);
  for (int s = 0; s < shards; ++s) {
    auto [parent_end, child_end] = FrameChannel::open_pair();
    const int keep = child_end.fd();
    const pid_t pid = FdRegistry::global().fork_with_only(&keep, 1);
    if (pid < 0) throw TransportError("fork failed for shard worker");
    if (pid == 0) {
      // Child: the parent ends registered by other pools (and this one)
      // are already closed by fork_with_only; park in the control loop.
      shard_worker_loop(plan_, plane_, s, child_end);
    }
    pids_[static_cast<std::size_t>(s)] = pid;
    child_end.close();  // parent keeps only its own end
    chans_.push_back(std::move(parent_end));
    ++stats_.forks;
  }
}

void ShardWorkerPool::teardown_locked() {
  // Orderly first: a worker parked in recv() exits 0 on kShutdown or on
  // the EOF from closing our end. Anything still alive after that (wedged
  // mid-step, mid-fault sleep) is killed. SIGKILL on an already-exited
  // child is a no-op, and the waitpid reaps either way — no zombies.
  for (FrameChannel& ch : chans_) {
    if (!ch.valid()) continue;
    try {
      ch.send(FrameType::kShutdown, nullptr, 0);
    } catch (const TransportError&) {
    }
  }
  chans_.clear();
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  pids_.clear();
  live_ = false;
}

void ShardWorkerPool::slot_acquire() {
  mu_.lock();
  ++slot_depth_;
}

void ShardWorkerPool::slot_release() {
  DC_CHECK(slot_depth_ > 0);
  if (--slot_depth_ == 0) plane_.aux_reset();
  mu_.unlock();
}

void* ShardWorkerPool::aux_alloc(std::size_t bytes, std::size_t align) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return plane_.aux_alloc(bytes, align);
}

ShardWorkerPool::Stats ShardWorkerPool::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return stats_;
}

void ShardWorkerPool::die_worker(int shard, int round, const char* what) {
  ErrorContext ctx;
  ctx.round = round;
  throw CellError(FaultCategory::kWorkerDeath,
                  "shard " + std::to_string(shard) + " worker " + what +
                      " mid-stage",
                  ctx);
}

ShardWorkerPool::StageResult ShardWorkerPool::run_stage(
    const StageWire& wire, int max_rounds, void* states,
    std::size_t state_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DC_CHECK(wire.entry != nullptr);
  DC_CHECK(wire.state_size > 0 && wire.state_size <= kMaxShardStateBytes);
  DC_CHECK(state_bytes <= plane_.state_capacity());
  ++stats_.dispatches;
  if (live_)
    ++stats_.reused;
  else
    spawn_locked();

  const std::uint64_t stage_id = next_stage_id_++;
  std::memcpy(plane_.state_bytes(), states, state_bytes);
  const std::vector<std::uint8_t> begin =
      encode_stage_begin(wire, stage_id, max_rounds);
  StageResult res;
  try {
    for (int s = 0; s < plan_.manifest.num_shards(); ++s) {
      try {
        chans_[static_cast<std::size_t>(s)].send(FrameType::kStageBegin,
                                                 begin);
      } catch (const TransportError&) {
        die_worker(s, -1, "died");
      }
    }
    res = drive_locked(max_rounds, 4 + wire.state_size);
    finish_locked(stage_id);
    std::memcpy(states, plane_.state_bytes(), state_bytes);
  } catch (...) {
    // A failed stage never leaks processes; the next dispatch reforks.
    teardown_locked();
    throw;
  }
  if (!persistent_) teardown_locked();
  return res;
}

ShardWorkerPool::StageResult ShardWorkerPool::drive_locked(
    int max_rounds, std::size_t record_size) {
  const int shards = plan_.manifest.num_shards();
  DC_CHECK(static_cast<int>(chans_.size()) == shards);

  StageResult res;
  res.stats.ghost_bytes_in.assign(static_cast<std::size_t>(shards), 0);
  res.stats.boundary_bytes_out.assign(static_cast<std::size_t>(shards), 0);

  Frame f;
  for (;;) {
    // Gather every shard's barrier before sending anything: no circular
    // waits (workers send their barrier unconditionally after stepping),
    // and a dead worker is detected here as EOF on its channel. The
    // barrier is a fixed 9-byte frame — [u8 done][u32 published]
    // [u32 applied] — validated up front; the record payloads themselves
    // live in the shared plane and are bounds-checked by HaloPlane::open.
    bool all_done = true;
    for (int s = 0; s < shards; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      bool got = false;
      try {
        got = chans_[si].recv(&f);
      } catch (const TransportError&) {
        got = false;
      }
      if (!got) die_worker(s, res.rounds, "died");
      if (f.type == FrameType::kError) {
        ErrorContext ctx;
        ctx.round = res.rounds;
        throw CellError(
            FaultCategory::kEngineException,
            "shard " + std::to_string(s) + " worker: " +
                std::string(f.payload.begin(), f.payload.end()),
            ctx);
      }
      if (f.type != FrameType::kBarrier || f.payload.size() != 9)
        die_worker(s, res.rounds, "sent a malformed barrier");
      all_done &= f.payload[0] != 0;
      std::uint32_t published = 0;
      std::uint32_t applied = 0;
      std::memcpy(&published, f.payload.data() + 1, 4);
      std::memcpy(&applied, f.payload.data() + 5, 4);
      res.stats.boundary_bytes_out[si] += published * record_size;
      res.stats.ghost_bytes_in[si] += applied * record_size;
    }

    if (all_done || res.rounds >= max_rounds) {
      for (int s = 0; s < shards; ++s) {
        try {
          chans_[static_cast<std::size_t>(s)].send(FrameType::kHalt, nullptr,
                                                   0);
        } catch (const TransportError&) {
          die_worker(s, res.rounds, "died");
        }
      }
      return res;
    }

    for (int s = 0; s < shards; ++s) {
      try {
        chans_[static_cast<std::size_t>(s)].send(FrameType::kStep, nullptr,
                                                 0);
      } catch (const TransportError&) {
        die_worker(s, res.rounds, "died");
      }
    }
    ++res.rounds;
    res.stats.rounds = res.rounds;
  }
}

void ShardWorkerPool::finish_locked(std::uint64_t stage_id) {
  const int shards = plan_.manifest.num_shards();
  Frame f;
  for (int s = 0; s < shards; ++s) {
    bool got = false;
    try {
      got = chans_[static_cast<std::size_t>(s)].recv(&f);
    } catch (const TransportError&) {
      got = false;
    }
    if (!got || f.type != FrameType::kStageEnd)
      die_worker(s, -1, "died before delivering final state");
    if (!plane_.check_final(s, stage_id))
      die_worker(s, -1, "acked a stage without publishing final state");
  }
}

void shard_worker_loop(const ShardPlan& plan, HaloPlane& plane, int shard,
                       FrameChannel& ch) {
  Frame f;
  for (;;) {
    bool got = false;
    try {
      got = ch.recv(&f);
    } catch (...) {
      std::_Exit(1);
    }
    // EOF (coordinator gone or tearing down) and kShutdown are both
    // orderly exits; anything else out of stage context is a protocol bug.
    if (!got || f.type == FrameType::kShutdown) std::_Exit(0);
    if (f.type != FrameType::kStageBegin) std::_Exit(1);
    try {
      const std::uint8_t* p = f.payload.data();
      std::size_t left = f.payload.size();
      const auto take = [&](void* dst, std::size_t nbytes) {
        if (left < nbytes) throw TransportError("torn STAGE_BEGIN frame");
        std::memcpy(dst, p, nbytes);
        p += nbytes;
        left -= nbytes;
      };
      std::uint64_t entry_raw = 0;
      std::uint64_t stage_id = 0;
      std::int32_t max_rounds = 0;
      std::uint32_t state_size = 0;
      std::uint32_t step_size = 0;
      std::uint32_t done_size = 0;
      take(&entry_raw, 8);
      take(&stage_id, 8);
      take(&max_rounds, 4);
      take(&state_size, 4);
      take(&step_size, 4);
      take(&done_size, 4);
      FaultWire fw;
      const std::size_t used = decode_fault_wire(p, left, &fw);
      p += used;
      left -= used;
      if (left != static_cast<std::size_t>(step_size) + done_size)
        throw TransportError("torn STAGE_BEGIN frame");

      WorkerStageCtx ctx;
      ctx.plan = &plan;
      ctx.plane = &plane;
      ctx.ch = &ch;
      ctx.shard = shard;
      ctx.stage_id = stage_id;
      ctx.max_rounds = max_rounds;
      ctx.state_size = state_size;
      ctx.step_bytes = p;
      ctx.step_size = step_size;
      ctx.done_bytes = p + step_size;
      ctx.done_size = done_size;

      // Re-create the coordinator's fault context for this stage: arm()
      // resets the fire-once markers, so per-stage re-firing matches what
      // fork-per-stage inheritance used to produce.
      if (fw.armed)
        FaultInjector::global().arm(fw.specs, fw.seed);
      else
        FaultInjector::global().disarm();
      const auto entry = reinterpret_cast<StageEntryFn>(
          reinterpret_cast<void*>(entry_raw));
      FaultInjector::CellScope scope(fw.cell, fw.attempt);
      entry(ctx);
    } catch (const std::exception& e) {
      try {
        ch.send(FrameType::kError, e.what(), std::strlen(e.what()));
      } catch (...) {
      }
      std::_Exit(1);
    } catch (...) {
      try {
        const char kWhat[] = "unknown exception in shard worker";
        ch.send(FrameType::kError, kWhat, sizeof(kWhat) - 1);
      } catch (...) {
      }
      std::_Exit(1);
    }
  }
}

}  // namespace deltacolor
