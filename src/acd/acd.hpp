// Almost-clique decomposition (ACD), Lemma 2 of the paper
// [HSS18, ACK19, AKM22, FHM23, HM24].
//
// The decomposition partitions V into V_sparse and almost cliques
// C_1, .., C_t such that for epsilon (default 1/63):
//   (i)   (1 - eps/4) Delta <= |C_i| <= (1 + eps) Delta,
//   (ii)  every v in C_i has >= (1 - eps) Delta neighbors inside C_i,
//   (iii) every u outside C_i has <= (1 - eps/2) Delta neighbors in C_i.
// Observation 3: every member of an AC has <= eps * Delta external
// neighbors. A graph is *dense* (Definition 4) when V_sparse is empty.
//
// Computation (O(1) LOCAL rounds): friend edges (common neighborhood
// >= (1 - eta) Delta), connected components of the friend graph among
// dense vertices form preliminary ACs, followed by the O(1)-round
// repair steps of [FHM23, HM24]: evict members violating (ii), absorb
// outsiders triggering (iii), dissolve components violating (i).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

struct AcdParams {
  double epsilon = kAcdEpsilon;  ///< Lemma 2's epsilon (paper: 1/63)
  /// Friend threshold parameter eta: adjacent u, v are friends when
  /// |N(u) ∩ N(v)| >= (1 - eta) * Delta. If negative, eta is chosen
  /// automatically as max(epsilon, 3.5 / Delta) — the latter keeps
  /// Delta-cliques recognizable at moderate Delta, including cliques with
  /// one deleted edge whose members share only Delta - 3 common neighbors.
  double eta = -1.0;
  int max_repair_iterations = 20;
};

struct Acd {
  double epsilon = kAcdEpsilon;
  /// Almost-clique index per node; -1 for sparse nodes.
  std::vector<int> clique_of;
  /// Member lists, one per almost clique.
  std::vector<std::vector<NodeId>> cliques;
  /// Sparse nodes (empty iff the graph is dense, Definition 4).
  std::vector<NodeId> sparse;

  bool is_dense() const { return sparse.empty(); }
  int num_cliques() const { return static_cast<int>(cliques.size()); }
};

/// Computes the ACD in O(1) LOCAL rounds (charged to `ledger`).
Acd compute_acd(const Graph& g, RoundLedger& ledger,
                const AcdParams& params = {},
                const std::string& phase = "acd");

/// Structural validation of Lemma 2 (i)-(iii) and Observation 3.
/// Returns a human-readable list of violations (empty = valid).
std::vector<std::string> validate_acd(const Graph& g, const Acd& acd);

}  // namespace deltacolor
