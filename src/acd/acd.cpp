#include "acd/acd.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace deltacolor {

namespace {

// |N(u) ∩ N(v)| for adjacent u, v via sorted-adjacency intersection.
int common_neighbors(const Graph& g, NodeId u, NodeId v) {
  const auto a = g.neighbors(u);
  const auto b = g.neighbors(v);
  int count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

int neighbors_in(const Graph& g, NodeId v, const std::vector<int>& clique_of,
                 int c) {
  int count = 0;
  for (const NodeId u : g.neighbors(v))
    if (clique_of[u] == c) ++count;
  return count;
}

}  // namespace

Acd compute_acd(const Graph& g, RoundLedger& ledger, const AcdParams& params,
                const std::string& phase) {
  Acd acd;
  acd.epsilon = params.epsilon;
  const NodeId n = g.num_nodes();
  acd.clique_of.assign(n, -1);
  if (n == 0) {
    ledger.charge(phase, 1);
    return acd;
  }
  const int delta = g.max_degree();
  const double eta = params.eta >= 0
                         ? params.eta
                         : std::max(params.epsilon,
                                    3.5 / std::max(1, delta));
  const double friend_threshold = (1.0 - eta) * delta;
  const double dense_threshold = (1.0 - eta) * delta;

  // Round 1: mark friend edges; round 2: count friend neighbors.
  std::vector<bool> friendly(g.num_edges(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    friendly[e] = common_neighbors(g, u, v) >= friend_threshold;
  }
  std::vector<bool> dense(n, false);
  for (NodeId v = 0; v < n; ++v) {
    int friends = 0;
    const auto inc = g.incident_edges(v);
    for (const EdgeId e : inc)
      if (friendly[e]) ++friends;
    dense[v] = friends >= dense_threshold;
  }

  // Preliminary ACs: connected components of (dense vertices, friend
  // edges). These components have diameter <= 2 [HSS18], so identifying
  // them is O(1) rounds.
  std::vector<int> comp(n, -1);
  int num_comp = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (!dense[s] || comp[s] != -1) continue;
    comp[s] = num_comp;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      const auto nbrs = g.neighbors(x);
      const auto inc = g.incident_edges(x);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId y = nbrs[i];
        if (!friendly[inc[i]] || !dense[y] || comp[y] != -1) continue;
        comp[y] = num_comp;
        stack.push_back(y);
      }
    }
    ++num_comp;
  }
  acd.clique_of = comp;

  // O(1)-round repair toward Lemma 2's guarantees.
  const double eps = params.epsilon;
  const double min_size = (1.0 - eps / 4.0) * delta;
  const double max_size = (1.0 + eps) * delta;
  const double member_threshold = (1.0 - eps) * delta;     // (ii)
  const double absorb_threshold = (1.0 - eps / 2.0) * delta;  // (iii)
  for (int it = 0; it < params.max_repair_iterations; ++it) {
    bool changed = false;
    // (ii): evict members with too few internal neighbors.
    for (NodeId v = 0; v < n; ++v) {
      const int c = acd.clique_of[v];
      if (c == -1) continue;
      if (neighbors_in(g, v, acd.clique_of, c) < member_threshold) {
        acd.clique_of[v] = -1;
        changed = true;
      }
    }
    // (iii): absorb outsiders with too many neighbors in one AC.
    for (NodeId v = 0; v < n; ++v) {
      if (acd.clique_of[v] != -1) continue;
      // Count neighbors per adjacent AC.
      int best_c = -1, best = 0;
      std::vector<std::pair<int, int>> counts;
      for (const NodeId u : g.neighbors(v)) {
        const int c = acd.clique_of[u];
        if (c == -1) continue;
        bool found = false;
        for (auto& [cc, k] : counts)
          if (cc == c) {
            ++k;
            found = true;
          }
        if (!found) counts.emplace_back(c, 1);
      }
      for (const auto& [cc, k] : counts)
        if (k > best) {
          best = k;
          best_c = cc;
        }
      if (best_c != -1 && best > absorb_threshold) {
        acd.clique_of[v] = best_c;
        changed = true;
      }
    }
    // (i): dissolve components outside the size window.
    std::vector<int> size(num_comp, 0);
    for (NodeId v = 0; v < n; ++v)
      if (acd.clique_of[v] != -1) ++size[acd.clique_of[v]];
    for (NodeId v = 0; v < n; ++v) {
      const int c = acd.clique_of[v];
      if (c == -1) continue;
      if (size[c] < min_size || size[c] > max_size) {
        acd.clique_of[v] = -1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Compact AC indices and fill member lists.
  std::vector<int> remap(num_comp, -1);
  for (NodeId v = 0; v < n; ++v) {
    const int c = acd.clique_of[v];
    if (c == -1) {
      acd.sparse.push_back(v);
      continue;
    }
    if (remap[c] == -1) {
      remap[c] = static_cast<int>(acd.cliques.size());
      acd.cliques.emplace_back();
    }
    acd.clique_of[v] = remap[c];
    acd.cliques[static_cast<std::size_t>(remap[c])].push_back(v);
  }
  // The whole computation is a constant number of bounded-radius steps
  // (friend marking: 1 round; density: 1; components of diameter <= 2: 3;
  // each repair sweep: 2). The paper charges O(1); we charge the actual
  // constant.
  ledger.charge(phase, 5 + 2 * params.max_repair_iterations);
  return acd;
}

std::vector<std::string> validate_acd(const Graph& g, const Acd& acd) {
  std::vector<std::string> violations;
  const int delta = g.max_degree();
  const double eps = acd.epsilon;
  auto complain = [&violations](const std::ostringstream& os) {
    violations.push_back(os.str());
  };
  for (std::size_t c = 0; c < acd.cliques.size(); ++c) {
    const auto& members = acd.cliques[c];
    // (i) size window.
    if (members.size() < (1.0 - eps / 4.0) * delta ||
        members.size() > (1.0 + eps) * delta) {
      std::ostringstream os;
      os << "AC " << c << " size " << members.size()
         << " outside [(1-eps/4)D, (1+eps)D] for Delta=" << delta;
      complain(os);
    }
    // (ii) internal degree.
    for (const NodeId v : members) {
      int internal = 0;
      for (const NodeId u : g.neighbors(v))
        if (acd.clique_of[u] == static_cast<int>(c)) ++internal;
      if (internal < (1.0 - eps) * delta) {
        std::ostringstream os;
        os << "node " << v << " has only " << internal
           << " neighbors inside its AC " << c;
        complain(os);
      }
      // Observation 3: external neighbors <= eps * Delta.
      const int external = g.degree(v) - internal;
      if (external > eps * delta) {
        std::ostringstream os;
        os << "node " << v << " has " << external
           << " external neighbors > eps*Delta";
        complain(os);
      }
    }
  }
  // (iii) outsiders.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<std::pair<int, int>> counts;
    for (const NodeId u : g.neighbors(v)) {
      const int c = acd.clique_of[u];
      if (c == -1 || c == acd.clique_of[v]) continue;
      bool found = false;
      for (auto& [cc, k] : counts)
        if (cc == c) {
          ++k;
          found = true;
        }
      if (!found) counts.emplace_back(c, 1);
    }
    for (const auto& [cc, k] : counts) {
      if (k > (1.0 - eps / 2.0) * delta) {
        std::ostringstream os;
        os << "outsider " << v << " has " << k << " neighbors in AC " << cc;
        complain(os);
      }
    }
  }
  return violations;
}

}  // namespace deltacolor
