// Algorithm registry: one catalog mapping stable names to context-driven
// entry points, shared by the `dcolor` CLI and the bench harnesses so the
// two never drift apart. Every entry accepts the same AlgorithmRequest
// (seed + EngineOptions) and runs through the LocalContext execution
// layer, so `--threads` / `--frontier` reach the nested SyncRunner stages
// of every registered algorithm uniformly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/errors.hpp"
#include "graph/graph.hpp"
#include "local/context.hpp"
#include "local/ledger.hpp"

namespace deltacolor {

/// Uniform input to every registered algorithm.
struct AlgorithmRequest {
  std::uint64_t seed = 1;
  /// Worker threads / frontier mode for every engine-stepped stage.
  /// Results are bit-identical across settings.
  EngineOptions engine;
  /// Opt-in validation oracle (dcolor --validate). The composed pipelines
  /// (det, rand) honor kEnd / kPhase by throwing structured CellErrors on
  /// invariant violations; primitive entries ignore it (their checkers
  /// already run unconditionally and set `ok`).
  ValidateMode validate = ValidateMode::kOff;
};

/// Uniform output. Coloring algorithms fill `color` and set `palette` to
/// the number of colors they are allowed; set-valued algorithms (MIS,
/// maximal matching, ruling sets) fill `in_set` (indexed by node, or by
/// edge for matchings) and leave palette = 0.
struct AlgorithmResult {
  std::vector<Color> color;
  std::vector<bool> in_set;
  RoundLedger ledger;
  int palette = 0;
  bool set_on_edges = false;  ///< in_set is indexed by EdgeId
  bool ok = false;            ///< output verified (proper coloring / valid set)
  std::string summary;        ///< one human-readable result line
};

struct AlgorithmEntry {
  std::string_view name;
  std::string_view description;
  AlgorithmResult (*run)(const Graph& g, const AlgorithmRequest& req);
};

/// The full catalog, in listing order.
std::span<const AlgorithmEntry> algorithm_registry();

/// Exact-name lookup; nullptr when unknown.
const AlgorithmEntry* find_algorithm(std::string_view name);

/// Closest registered names by edit distance (for "unknown algorithm"
/// diagnostics), best first.
std::vector<std::string_view> suggest_algorithms(std::string_view name,
                                                 std::size_t max_results = 3);

}  // namespace deltacolor
