#include "registry/registry.hpp"

#include <algorithm>
#include <sstream>

#include "baselines/baselines.hpp"
#include "baselines/brooks.hpp"
#include "core/delta_coloring.hpp"
#include "graph/checker.hpp"
#include "local/message_passing.hpp"
#include "primitives/linial.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/maximal_matching.hpp"
#include "primitives/mis.hpp"
#include "primitives/ruling_set.hpp"
#include "randomized/randomized_coloring.hpp"

namespace deltacolor {

namespace {

AlgorithmResult run_det(const Graph& g, const AlgorithmRequest& req) {
  DeltaColoringOptions opt = scaled_options(g.max_degree());
  opt.engine = req.engine;
  opt.hard.seed = req.seed;
  opt.validate = req.validate;
  auto res = delta_color_dense(g, opt);
  AlgorithmResult out;
  out.color = std::move(res.color);
  out.ledger = std::move(res.ledger);
  out.palette = g.max_degree();
  out.ok = res.valid;
  out.summary = res.summary();
  return out;
}

AlgorithmResult run_rand(const Graph& g, const AlgorithmRequest& req) {
  RandomizedOptions opt =
      scaled_randomized_options(g.max_degree(), req.seed);
  opt.engine = req.engine;
  opt.validate = req.validate;
  auto res = randomized_delta_color(g, opt);
  AlgorithmResult out;
  out.color = std::move(res.color);
  out.ledger = std::move(res.ledger);
  out.palette = g.max_degree();
  out.ok = res.valid;
  std::ostringstream os;
  os << "valid=" << res.valid << " rounds=" << out.ledger.total()
     << " tnodes=" << res.stats.tnodes_placed
     << " components=" << res.stats.components;
  out.summary = os.str();
  return out;
}

AlgorithmResult run_brooks(const Graph& g, const AlgorithmRequest&) {
  const BrooksResult res = brooks_coloring(g);
  AlgorithmResult out;
  out.palette = g.max_degree();
  if (!res.success) {
    out.summary = "Brooks exception (K_{Delta+1} or odd cycle)";
    return out;
  }
  out.color = res.color;
  out.ok = is_proper_coloring(g, out.color, out.palette);
  out.summary = "Brooks: " + check_coloring(g, out.color).describe();
  return out;
}

AlgorithmResult run_greedy(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  LocalContext ctx(out.ledger, req.engine, req.seed);
  out.color = greedy_delta_plus_one(g, ctx);
  out.palette = g.max_degree() + 1;
  out.ok = is_proper_coloring(g, out.color, out.palette);
  std::ostringstream os;
  os << "greedy (Delta+1): " << check_coloring(g, out.color).describe()
     << ", rounds " << out.ledger.total();
  out.summary = os.str();
  return out;
}

AlgorithmResult run_linial(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  LocalContext ctx(out.ledger, req.engine, req.seed);
  const LinialResult res = linial_coloring(g, ctx);
  out.color = res.color;
  out.palette = res.num_colors;
  out.ok = is_proper_coloring(g, out.color, out.palette);
  std::ostringstream os;
  os << "Linial: " << res.num_colors << " colors in " << res.rounds
     << " rounds";
  out.summary = os.str();
  return out;
}

AlgorithmResult run_trial(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  out.color = color_trial_message_passing(g, req.seed, out.ledger, "trial",
                                          req.engine);
  out.palette = g.max_degree() + 1;
  out.ok = is_proper_coloring(g, out.color, out.palette);
  out.summary =
      "color trials (Delta+1, engine): " +
      check_coloring(g, out.color).describe();
  return out;
}

AlgorithmResult run_mis(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  out.in_set = mis_message_passing(g, req.seed, out.ledger, "mis",
                                   req.engine);
  out.ok = is_maximal_independent_set(g, out.in_set);
  std::size_t size = 0;
  for (const bool b : out.in_set) size += b;
  std::ostringstream os;
  os << "MIS (engine): " << size << " of " << g.num_nodes() << " nodes";
  out.summary = os.str();
  return out;
}

AlgorithmResult run_mis_det(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  LocalContext ctx(out.ledger, req.engine, req.seed);
  out.in_set = mis_deterministic(g, ctx);
  out.ok = is_maximal_independent_set(g, out.in_set);
  std::size_t size = 0;
  for (const bool b : out.in_set) size += b;
  std::ostringstream os;
  os << "deterministic MIS: " << size << " of " << g.num_nodes()
     << " nodes in " << out.ledger.total() << " rounds";
  out.summary = os.str();
  return out;
}

AlgorithmResult run_matching(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  LocalContext ctx(out.ledger, req.engine, req.seed);
  out.in_set = maximal_matching_deterministic(g, ctx);
  out.set_on_edges = true;
  out.ok = is_matching(g, out.in_set) && is_maximal_matching(g, out.in_set);
  std::size_t size = 0;
  for (const bool b : out.in_set) size += b;
  std::ostringstream os;
  os << "maximal matching: " << size << " edges in " << out.ledger.total()
     << " rounds";
  out.summary = os.str();
  return out;
}

AlgorithmResult run_ruling(const Graph& g, const AlgorithmRequest& req) {
  AlgorithmResult out;
  LocalContext ctx(out.ledger, req.engine, req.seed);
  const RulingSetResult res = ruling_set(g, ctx);
  out.in_set = res.in_set;
  out.ok = is_independent_set(g, out.in_set);
  std::size_t size = 0;
  for (const bool b : out.in_set) size += b;
  std::ostringstream os;
  os << "ruling set: " << size << " nodes, domination radius "
     << res.domination_radius << ", " << out.ledger.total() << " rounds";
  out.summary = os.str();
  return out;
}

constexpr AlgorithmEntry kRegistry[] = {
    {"det", "deterministic Delta-coloring of dense graphs (Theorem 1)",
     run_det},
    {"rand", "randomized Delta-coloring via shattering (Theorem 2)",
     run_rand},
    {"brooks", "centralized Brooks' theorem ground truth", run_brooks},
    {"greedy", "distributed greedy (Delta+1)-coloring (deg+1-list)",
     run_greedy},
    {"linial", "Linial's O(log* n) coloring with O(Delta^2) colors",
     run_linial},
    {"trial", "randomized (Delta+1) color trials (engine demo)", run_trial},
    {"mis", "Luby's MIS (engine demo)", run_mis},
    {"mis-det", "deterministic MIS via schedule coloring", run_mis_det},
    {"matching", "deterministic maximal matching (edge coloring sweep)",
     run_matching},
    {"ruling", "(2, O(log Delta)) ruling set via bit peeling", run_ruling},
};

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

}  // namespace

std::span<const AlgorithmEntry> algorithm_registry() { return kRegistry; }

const AlgorithmEntry* find_algorithm(std::string_view name) {
  for (const AlgorithmEntry& e : kRegistry)
    if (e.name == name) return &e;
  return nullptr;
}

std::vector<std::string_view> suggest_algorithms(std::string_view name,
                                                 std::size_t max_results) {
  std::vector<std::pair<std::size_t, std::string_view>> scored;
  for (const AlgorithmEntry& e : kRegistry)
    scored.emplace_back(edit_distance(name, e.name), e.name);
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) {
                     return x.first < y.first;
                   });
  std::vector<std::string_view> out;
  for (const auto& [dist, n] : scored) {
    if (out.size() >= max_results) break;
    // Only suggest names within a plausible typo distance.
    if (dist > std::max<std::size_t>(3, name.size() / 2)) break;
    out.push_back(n);
  }
  return out;
}

}  // namespace deltacolor
