// dcolor-import — builds .dcsr on-disk CSR containers without ever holding
// a full edge list in RAM.
//
//   dcolor-import edges <in> <out.dcsr> [--format=dc|snap] [--nodes=N]
//   dcolor-import gen path      <n> <out.dcsr>
//   dcolor-import gen cycle     <n> <out.dcsr>
//   dcolor-import gen torus     <rows> <cols> <out.dcsr>
//   dcolor-import gen circulant <n> <k> <out.dcsr>
//   dcolor-import info   <file.dcsr>
//   dcolor-import verify <file.dcsr>
//
// `edges` streams a text edge list twice through the external counting-sort
// builder (graph/csr_file.hpp): pass 1 histograms lower endpoints, pass 2
// scatters into an mmap'd scratch bucket file, and the CSR sections are
// materialized straight into the mmap'd output — RAM stays O(n), disk does
// the rest. Input formats:
//   dc    the repo's own "n m" header + "u v" lines (io.hpp)
//   snap  SNAP-style: '#' comment lines, whitespace-separated pairs,
//         duplicates and both orientations tolerated, self loops skipped.
//         Node count is max id + 1 unless --nodes=N says otherwise (an
//         extra streaming pre-pass discovers the max).
// The format is sniffed from the first line ('#' => snap) unless forced.
//
// `gen` streams a structured family straight to disk; nothing but the
// generator's O(1) cursor state is ever in memory. circulant(n, k) — node
// i adjacent to i±1..±k mod n, Delta = 2k — is the giant-instance family:
// n = 10^8, k = 8 yields a ~21 GB file that colors through mmap with RSS
// far below the file size.
//
// `info` prints the header of an existing container; with --shards=N it
// also previews the N-way degree-balanced partition the proc execution
// backend would use (per-shard node ranges, boundary/ghost counts, and
// boundary-edge totals). `verify` re-checks
// every section checksum (load with DELTACOLOR_CSR_VERIFY-independent
// forced verification).
//
// Exit codes: 0 success; 2 usage error; 3 unreadable/malformed input or
// failed verification.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr_file.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace {

using namespace deltacolor;

constexpr int kExitUsage = 2;
constexpr int kExitBadFile = 3;

int usage() {
  std::cerr
      << "usage:\n"
         "  dcolor-import edges <in> <out.dcsr> [--format=dc|snap] "
         "[--nodes=N]\n"
         "  dcolor-import gen path      <n> <out.dcsr>\n"
         "  dcolor-import gen cycle     <n> <out.dcsr>\n"
         "  dcolor-import gen torus     <rows> <cols> <out.dcsr>\n"
         "  dcolor-import gen circulant <n> <k> <out.dcsr>\n"
         "  dcolor-import info   <file.dcsr> [--shards=N]\n"
         "  dcolor-import verify <file.dcsr>\n"
         "formats: dc = \"n m\" header + \"u v\" lines; snap = '#' "
         "comments + pairs, self loops skipped (sniffed from the first "
         "line unless forced)\n"
         "exit codes: 0 success; 2 usage error; 3 unreadable or malformed "
         "input / failed verification\n";
  return kExitUsage;
}

// --- text-file sources -------------------------------------------------------

/// "n m" header + "u v" lines (the io.hpp format). rewind() reopens.
class DcEdgeSource : public EdgeSource {
 public:
  explicit DcEdgeSource(const std::string& path) : path_(path) { rewind(); }

  NodeId num_nodes() const { return num_nodes_; }

  void rewind() override {
    in_ = std::ifstream(path_);
    if (!in_.good())
      throw std::runtime_error("cannot open edge list '" + path_ + "'");
    std::uint64_t n = 0, m = 0;
    if (!(in_ >> n >> m))
      throw std::runtime_error("malformed edge list in '" + path_ +
                               "' (expected \"n m\" header)");
    num_nodes_ = static_cast<NodeId>(n);
  }

  std::size_t next(std::pair<NodeId, NodeId>* out,
                   std::size_t cap) override {
    std::size_t got = 0;
    std::uint64_t u = 0, v = 0;
    while (got < cap && (in_ >> u >> v))
      out[got++] = {static_cast<NodeId>(u), static_cast<NodeId>(v)};
    return got;
  }

 private:
  std::string path_;
  std::ifstream in_;
  NodeId num_nodes_ = 0;
};

/// SNAP-style: '#' comments anywhere, whitespace-separated pairs, self
/// loops silently skipped (the builder would reject them, SNAP dumps
/// contain them routinely).
class SnapEdgeSource : public EdgeSource {
 public:
  explicit SnapEdgeSource(const std::string& path) : path_(path) {
    rewind();
  }

  void rewind() override {
    in_ = std::ifstream(path_);
    if (!in_.good())
      throw std::runtime_error("cannot open edge list '" + path_ + "'");
  }

  std::size_t next(std::pair<NodeId, NodeId>* out,
                   std::size_t cap) override {
    std::size_t got = 0;
    std::string line;
    while (got < cap && std::getline(in_, line)) {
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      std::istringstream ls(line);
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v))
        throw std::runtime_error("malformed snap line: " + line);
      if (u == v) continue;  // SNAP dumps routinely carry self loops
      out[got++] = {static_cast<NodeId>(u), static_cast<NodeId>(v)};
    }
    return got;
  }

  /// Streaming max-id scan (for when --nodes is not given).
  NodeId scan_num_nodes() {
    rewind();
    std::pair<NodeId, NodeId> buf[1024];
    std::uint64_t max_id = 0;
    bool any = false;
    for (std::size_t got; (got = next(buf, 1024)) > 0;)
      for (std::size_t i = 0; i < got; ++i) {
        max_id = std::max<std::uint64_t>({max_id, buf[i].first,
                                          buf[i].second});
        any = true;
      }
    return any ? static_cast<NodeId>(max_id + 1) : 0;
  }

 private:
  std::string path_;
  std::ifstream in_;
};

// --- streaming generator sources ---------------------------------------------

/// Emits edge j = edge_at(j) for j in [0, count) — every structured family
/// below is a pure function of the edge index, so rewind is a counter
/// reset and the source holds O(1) state.
class IndexedEdgeSource : public EdgeSource {
 public:
  void rewind() override { pos_ = 0; }

  std::size_t next(std::pair<NodeId, NodeId>* out,
                   std::size_t cap) override {
    std::size_t got = 0;
    while (got < cap && pos_ < count_) out[got++] = edge_at(pos_++);
    return got;
  }

 protected:
  explicit IndexedEdgeSource(std::uint64_t count) : count_(count) {}
  virtual std::pair<NodeId, NodeId> edge_at(std::uint64_t j) const = 0;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t pos_ = 0;
};

class PathSource : public IndexedEdgeSource {
 public:
  explicit PathSource(NodeId n) : IndexedEdgeSource(n >= 1 ? n - 1 : 0) {}

 protected:
  std::pair<NodeId, NodeId> edge_at(std::uint64_t j) const override {
    return {static_cast<NodeId>(j), static_cast<NodeId>(j + 1)};
  }
};

class CycleSource : public IndexedEdgeSource {
 public:
  explicit CycleSource(NodeId n) : IndexedEdgeSource(n), n_(n) {}

 protected:
  std::pair<NodeId, NodeId> edge_at(std::uint64_t j) const override {
    return {static_cast<NodeId>(j),
            static_cast<NodeId>((j + 1) % n_)};
  }

 private:
  std::uint64_t n_ = 0;
};

/// Wrap-around grid: cell (r, c) connects right and down. Rows/cols of 2
/// emit each wrap edge twice; the builder's dedup folds them.
class TorusSource : public IndexedEdgeSource {
 public:
  TorusSource(NodeId rows, NodeId cols)
      : IndexedEdgeSource(2ull * rows * cols), rows_(rows), cols_(cols) {}

 protected:
  std::pair<NodeId, NodeId> edge_at(std::uint64_t j) const override {
    const std::uint64_t cell = j / 2;
    const std::uint64_t r = cell / cols_, c = cell % cols_;
    const std::uint64_t nr = j % 2 == 0 ? r : (r + 1) % rows_;
    const std::uint64_t nc = j % 2 == 0 ? (c + 1) % cols_ : c;
    return {static_cast<NodeId>(r * cols_ + c),
            static_cast<NodeId>(nr * cols_ + nc)};
  }

 private:
  std::uint64_t rows_ = 0, cols_ = 0;
};

/// circulant(n, k): node i adjacent to i±1..±k (mod n); emitting only the
/// +j arcs covers every edge once. Delta = 2k for n > 2k.
class CirculantSource : public IndexedEdgeSource {
 public:
  CirculantSource(NodeId n, int k)
      : IndexedEdgeSource(static_cast<std::uint64_t>(n) * k), n_(n), k_(k) {}

 protected:
  std::pair<NodeId, NodeId> edge_at(std::uint64_t j) const override {
    const std::uint64_t i = j / k_;
    const std::uint64_t step = j % k_ + 1;
    return {static_cast<NodeId>(i),
            static_cast<NodeId>((i + step) % n_)};
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t k_ = 0;
};

// --- commands ----------------------------------------------------------------

void print_build(const std::string& out, const CsrBuildStats& stats,
                 NodeId n) {
  std::cout << "wrote " << out << ": n=" << n
            << " m=" << stats.unique_edges
            << " input_edges=" << stats.input_edges
            << " Delta=" << stats.max_degree
            << " bytes=" << stats.file_bytes << "\n";
}

int cmd_edges(int argc, char** argv) {
  std::string in_path, out_path, format = "auto";
  std::uint64_t nodes = 0;
  bool have_nodes = false;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "dc" && format != "snap") {
        std::cerr << "dcolor-import: invalid " << arg
                  << " (formats: dc, snap)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--nodes=", 0) == 0) {
      nodes = std::strtoull(arg.c_str() + 8, nullptr, 10);
      have_nodes = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();
  in_path = positional[0];
  out_path = positional[1];

  if (format == "auto") {
    std::ifstream probe(in_path);
    if (!probe.good()) {
      std::cerr << "dcolor-import: cannot open '" << in_path << "'\n";
      return kExitBadFile;
    }
    std::string first;
    std::getline(probe, first);
    const std::size_t at = first.find_first_not_of(" \t\r");
    format = (at != std::string::npos && first[at] == '#') ? "snap" : "dc";
  }

  try {
    if (format == "dc") {
      DcEdgeSource source(in_path);
      const NodeId n = have_nodes ? static_cast<NodeId>(nodes)
                                  : source.num_nodes();
      const CsrBuildStats stats = build_csr_file(source, n, out_path);
      print_build(out_path, stats, n);
    } else {
      SnapEdgeSource source(in_path);
      const NodeId n = have_nodes ? static_cast<NodeId>(nodes)
                                  : source.scan_num_nodes();
      const CsrBuildStats stats = build_csr_file(source, n, out_path);
      print_build(out_path, stats, n);
    }
  } catch (const std::exception& e) {
    std::cerr << "dcolor-import: " << e.what() << "\n";
    return kExitBadFile;
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string family = argv[2];
  try {
    if (family == "path" && argc == 5) {
      const NodeId n = static_cast<NodeId>(std::strtoull(argv[3], nullptr, 10));
      PathSource source(n);
      print_build(argv[4], build_csr_file(source, n, argv[4]), n);
      return 0;
    }
    if (family == "cycle" && argc == 5) {
      const NodeId n = static_cast<NodeId>(std::strtoull(argv[3], nullptr, 10));
      if (n < 3) {
        std::cerr << "dcolor-import: cycle needs n >= 3\n";
        return kExitUsage;
      }
      CycleSource source(n);
      print_build(argv[4], build_csr_file(source, n, argv[4]), n);
      return 0;
    }
    if (family == "torus" && argc == 6) {
      const NodeId rows = static_cast<NodeId>(std::strtoull(argv[3], nullptr, 10));
      const NodeId cols = static_cast<NodeId>(std::strtoull(argv[4], nullptr, 10));
      if (rows < 2 || cols < 2) {
        std::cerr << "dcolor-import: torus needs rows, cols >= 2\n";
        return kExitUsage;
      }
      TorusSource source(rows, cols);
      const NodeId n = rows * cols;
      print_build(argv[5], build_csr_file(source, n, argv[5]), n);
      return 0;
    }
    if (family == "circulant" && argc == 6) {
      const NodeId n = static_cast<NodeId>(std::strtoull(argv[3], nullptr, 10));
      const int k = std::atoi(argv[4]);
      if (n < 3 || k < 1 || 2 * static_cast<std::uint64_t>(k) >= n) {
        std::cerr << "dcolor-import: circulant needs n >= 3 and 1 <= k < "
                     "n/2\n";
        return kExitUsage;
      }
      CirculantSource source(n, k);
      print_build(argv[5], build_csr_file(source, n, argv[5]), n);
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "dcolor-import: " << e.what() << "\n";
    return kExitBadFile;
  }
  if (family == "path" || family == "cycle" || family == "torus" ||
      family == "circulant")
    return usage();  // right family, wrong arity
  std::cerr << "dcolor-import: unknown family '" << family
            << "' (families: path, cycle, torus, circulant)\n";
  return kExitUsage;
}

int cmd_info(int argc, char** argv) {
  std::string path;
  int shards = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
      if (shards < 1) {
        std::cerr << "dcolor-import: invalid " << arg
                  << " (need at least 1)\n";
        return kExitUsage;
      }
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  try {
    const CsrFileInfo info = peek_csr_file(path);
    std::cout << "dcsr v" << info.header.version << " n="
              << info.header.num_nodes << " m=" << info.header.num_edges
              << " Delta=" << info.header.max_degree
              << " bytes=" << info.file_bytes << "\n";
    for (int s = 0; s < kNumSections; ++s) {
      static const char* names[kNumSections] = {"offsets", "adjacency",
                                                "arc_edge", "edges", "ids"};
      const CsrSection& sec = info.header.sections[s];
      std::cout << "  " << names[s] << ": offset=" << sec.offset
                << " bytes=" << sec.bytes << " checksum=" << std::hex
                << sec.checksum << std::dec << "\n";
    }
    if (shards > 0) {
      // Sharding preview: the partition the proc backend would use, with
      // its halo-exchange cost drivers (boundary nodes and cut edges).
      const Graph g = load_csr_file(path);
      const ShardManifest mf = ShardManifest::build(g, shards);
      for (int s = 0; s < mf.num_shards(); ++s)
        std::cout << "  shard " << s << ": nodes=[" << mf.bounds[s] << ", "
                  << mf.bounds[s + 1] << ") size=" << mf.shard_size(s)
                  << " boundary=" << mf.boundary[s].size()
                  << " ghosts=" << mf.ghosts[s].size()
                  << " boundary_edges=" << mf.boundary_edges[s] << "\n";
      std::cout << "  cut: shards=" << mf.num_shards()
                << " cut_edges=" << mf.cut_edges << "\n";
    }
  } catch (const CsrError& e) {
    std::cerr << "dcolor-import: " << e.what() << "\n";
    return kExitBadFile;
  }
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 3) return usage();
  try {
    CsrLoadOptions opt;
    opt.verify = CsrVerify::kAlways;
    const Graph g = load_csr_file(argv[2], opt);
    std::cout << "ok: n=" << g.num_nodes() << " m=" << g.num_edges()
              << " Delta=" << g.max_degree() << "\n";
  } catch (const CsrError& e) {
    std::cerr << "dcolor-import: " << e.what() << "\n";
    return kExitBadFile;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "edges") return cmd_edges(argc, argv);
  if (cmd == "gen") return cmd_gen(argc, argv);
  if (cmd == "info") return cmd_info(argc, argv);
  if (cmd == "verify") return cmd_verify(argc, argv);
  if (cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }
  return usage();
}
