// dcolor — command-line front end for the deltacolor library.
//
//   dcolor gen blowup  <cliques> <delta> <clique_size> <easy%> <seed> <out>
//   dcolor gen ring    <cliques> <clique_size> <seed> <out>
//   dcolor gen regular <n> <degree> <seed> <out>
//   dcolor color <graph> [det|rand|brooks|greedy|trial|mis] [seed] [out]
//   dcolor check <graph> <coloring>
//
// Global flags (anywhere on the command line):
//   --threads=N    worker threads for the round engine (also settable via
//                  the DELTACOLOR_THREADS env var; default: all cores)
//   --frontier     sparse activation: re-step only nodes whose closed
//                  neighborhood changed last round (engine algorithms)
//
// Graphs are plain edge lists ("n m" header then "u v" per line); colorings
// are "v color" lines. `color` prints the summary and round ledger, writes
// the coloring if an output path is given, and exits non-zero on failure.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "deltacolor.hpp"

namespace {

using namespace deltacolor;

int usage() {
  std::cerr
      << "usage:\n"
         "  dcolor gen blowup  <cliques> <delta> <size> <easy%> <seed> <out>\n"
         "  dcolor gen ring    <cliques> <size> <seed> <out>\n"
         "  dcolor gen regular <n> <degree> <seed> <out>\n"
         "  dcolor color <graph> "
         "[det|rand|brooks|greedy|trial|mis] [seed] [out]\n"
         "  dcolor check <graph> <coloring>\n"
         "flags: --threads=N (engine workers; env DELTACOLOR_THREADS), "
         "--frontier (sparse activation)\n";
  return 2;
}

EngineOptions g_engine;  // from --threads / --frontier

void write_coloring(const std::string& path, const std::vector<Color>& c) {
  std::ofstream os(path);
  os << c.size() << '\n';
  for (std::size_t v = 0; v < c.size(); ++v) os << v << ' ' << c[v] << '\n';
}

std::vector<Color> read_coloring(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK_MSG(is.good(), "cannot open " << path);
  std::size_t n = 0;
  is >> n;
  std::vector<Color> c(n, kNoColor);
  std::size_t v = 0;
  Color col = 0;
  while (is >> v >> col) {
    DC_CHECK(v < n);
    c[v] = col;
  }
  return c;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kind = argv[2];
  if (kind == "blowup" && argc == 9) {
    CliqueInstanceOptions opt;
    opt.num_cliques = std::atoi(argv[3]);
    opt.delta = std::atoi(argv[4]);
    opt.clique_size = std::atoi(argv[5]);
    opt.easy_fraction = std::atof(argv[6]) / 100.0;
    opt.seed = std::strtoull(argv[7], nullptr, 10);
    const CliqueInstance inst = clique_blowup_instance(opt);
    save_edge_list(argv[8], inst.graph);
    std::cout << "wrote " << argv[8] << ": n=" << inst.graph.num_nodes()
              << " m=" << inst.graph.num_edges() << " Delta="
              << inst.graph.max_degree() << "\n";
    return 0;
  }
  if (kind == "ring" && argc == 7) {
    const CliqueInstance inst = clique_ring(
        std::atoi(argv[3]), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    save_edge_list(argv[6], inst.graph);
    std::cout << "wrote " << argv[6] << ": n=" << inst.graph.num_nodes()
              << "\n";
    return 0;
  }
  if (kind == "regular" && argc == 7) {
    const Graph g = random_regular(
        static_cast<NodeId>(std::atoi(argv[3])), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    save_edge_list(argv[6], g);
    std::cout << "wrote " << argv[6] << ": n=" << g.num_nodes() << "\n";
    return 0;
  }
  return usage();
}

int cmd_color(int argc, char** argv) {
  if (argc < 3) return usage();
  Graph g = load_edge_list(argv[2]);
  g.set_ids(shuffled_ids(g.num_nodes(), 1));
  const std::string algo = argc > 3 ? argv[3] : "det";
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  const std::string out = argc > 5 ? argv[5] : "";
  const int delta = g.max_degree();

  std::vector<Color> color;
  if (algo == "det") {
    const auto res = delta_color_dense(g, scaled_options(delta));
    std::cout << res.summary() << "\n" << res.ledger.report();
    color = res.color;
  } else if (algo == "rand") {
    const auto res =
        randomized_delta_color(g, scaled_randomized_options(delta, seed));
    std::cout << "valid=" << res.valid << " rounds=" << res.ledger.total()
              << " tnodes=" << res.stats.tnodes_placed << " components="
              << res.stats.components << "\n"
              << res.ledger.report();
    color = res.color;
  } else if (algo == "brooks") {
    const auto res = brooks_coloring(g);
    if (!res.success) {
      std::cerr << "Brooks exception (K_{Delta+1} or odd cycle)\n";
      return 1;
    }
    color = res.color;
    std::cout << "Brooks: " << check_coloring(g, color).describe() << "\n";
  } else if (algo == "greedy") {
    RoundLedger ledger;
    color = greedy_delta_plus_one(g, ledger);
    std::cout << "greedy (Delta+1): "
              << check_coloring(g, color).describe() << ", rounds "
              << ledger.total() << "\n";
  } else if (algo == "trial") {
    RoundLedger ledger;
    color = color_trial_message_passing(g, seed, ledger, "trial", g_engine);
    std::cout << "color trials (Delta+1, engine): "
              << check_coloring(g, color).describe() << "\n"
              << ledger.report();
  } else if (algo == "mis") {
    RoundLedger ledger;
    const auto set = mis_message_passing(g, seed, ledger, "mis", g_engine);
    std::size_t size = 0;
    for (const bool b : set) size += b;
    std::cout << "MIS (engine): " << size << " of " << g.num_nodes()
              << " nodes\n"
              << ledger.report();
    if (!out.empty()) {
      std::ofstream os(out);
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if (set[v]) os << v << '\n';
      std::cout << "set written to " << out << "\n";
    }
    return 0;
  } else {
    return usage();
  }
  const int palette =
      algo == "greedy" || algo == "trial" ? delta + 1 : delta;
  if (!is_proper_coloring(g, color, palette)) {
    std::cerr << "RESULT INVALID\n";
    return 1;
  }
  if (!out.empty()) {
    write_coloring(out, color);
    std::cout << "coloring written to " << out << "\n";
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc != 4) return usage();
  const Graph g = load_edge_list(argv[2]);
  const auto color = read_coloring(argv[3]);
  DC_CHECK_MSG(color.size() == g.num_nodes(), "size mismatch");
  const auto report = check_coloring(g, color);
  std::cout << report.describe() << "\n";
  return report.proper && report.complete &&
                 report.max_color < g.max_degree()
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global engine flags before positional dispatch.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 10);
      if (n <= 0) return usage();
      g_engine.num_threads = n;
      ThreadPool::set_default_workers(n);
    } else if (arg == "--frontier") {
      g_engine.frontier = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "color") return cmd_color(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
