// dcolor — command-line front end for the deltacolor library.
//
//   dcolor gen blowup  <cliques> <delta> <clique_size> <easy%> <seed> <out>
//   dcolor gen ring    <cliques> <clique_size> <seed> <out>
//   dcolor gen regular <n> <degree> <seed> <out>
//   dcolor color <graph> [algorithm] [seed] [out]
//   dcolor check <graph> <coloring>
//
// Algorithms are resolved from the shared registry (the same catalog the
// benches use); `dcolor --list` enumerates them. Unknown names exit with
// status 2 and print the closest registered names.
//
// Global flags (anywhere on the command line):
//   --list         list registered algorithms and exit
//   --threads=N    worker threads for the round engine (also settable via
//                  the DELTACOLOR_THREADS env var; default: all cores)
//   --frontier     sparse activation: re-step only nodes whose closed
//                  neighborhood changed last round (engine algorithms)
//   --repeat=N     color only: run N seeds (seed, seed+1, ...) of the
//                  algorithm over the shared instance as concurrent sweep
//                  cells; print per-seed rounds and aggregate wall-clock
//                  statistics instead of a single ledger
//
// Graphs are plain edge lists ("n m" header then "u v" per line); colorings
// are "v color" lines. `color` prints the summary and round ledger, writes
// the coloring if an output path is given, and exits non-zero on failure.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>

#include "bench_support/sweep.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;

int usage() {
  std::cerr
      << "usage:\n"
         "  dcolor gen blowup  <cliques> <delta> <size> <easy%> <seed> <out>\n"
         "  dcolor gen ring    <cliques> <size> <seed> <out>\n"
         "  dcolor gen regular <n> <degree> <seed> <out>\n"
         "  dcolor color <graph> [algorithm] [seed] [out]\n"
         "  dcolor check <graph> <coloring>\n"
         "flags: --list (registered algorithms), --threads=N (engine "
         "workers, 0 = auto; env DELTACOLOR_THREADS), --frontier (sparse "
         "activation), --repeat=N (color: N seeds as sweep cells, "
         "aggregate stats)\n";
  return 2;
}

int list_algorithms() {
  std::cout << "registered algorithms:\n";
  for (const AlgorithmEntry& e : algorithm_registry())
    std::cout << "  " << std::left << std::setw(10) << e.name << " "
              << e.description << "\n";
  return 0;
}

EngineOptions g_engine;  // from --threads / --frontier
int g_repeat = 1;        // from --repeat=N

void write_coloring(const std::string& path, const std::vector<Color>& c) {
  std::ofstream os(path);
  os << c.size() << '\n';
  for (std::size_t v = 0; v < c.size(); ++v) os << v << ' ' << c[v] << '\n';
}

std::vector<Color> read_coloring(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK_MSG(is.good(), "cannot open " << path);
  std::size_t n = 0;
  is >> n;
  std::vector<Color> c(n, kNoColor);
  std::size_t v = 0;
  Color col = 0;
  while (is >> v >> col) {
    DC_CHECK(v < n);
    c[v] = col;
  }
  return c;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kind = argv[2];
  if (kind == "blowup" && argc == 9) {
    CliqueInstanceOptions opt;
    opt.num_cliques = std::atoi(argv[3]);
    opt.delta = std::atoi(argv[4]);
    opt.clique_size = std::atoi(argv[5]);
    opt.easy_fraction = std::atof(argv[6]) / 100.0;
    opt.seed = std::strtoull(argv[7], nullptr, 10);
    const CliqueInstance inst = clique_blowup_instance(opt);
    save_edge_list(argv[8], inst.graph);
    std::cout << "wrote " << argv[8] << ": n=" << inst.graph.num_nodes()
              << " m=" << inst.graph.num_edges() << " Delta="
              << inst.graph.max_degree() << "\n";
    return 0;
  }
  if (kind == "ring" && argc == 7) {
    const CliqueInstance inst = clique_ring(
        std::atoi(argv[3]), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    save_edge_list(argv[6], inst.graph);
    std::cout << "wrote " << argv[6] << ": n=" << inst.graph.num_nodes()
              << "\n";
    return 0;
  }
  if (kind == "regular" && argc == 7) {
    const Graph g = random_regular(
        static_cast<NodeId>(std::atoi(argv[3])), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    save_edge_list(argv[6], g);
    std::cout << "wrote " << argv[6] << ": n=" << g.num_nodes() << "\n";
    return 0;
  }
  return usage();
}

int cmd_color(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string algo = argc > 3 ? argv[3] : "det";
  const AlgorithmEntry* entry = find_algorithm(algo);
  if (entry == nullptr) {
    std::cerr << "unknown algorithm '" << algo << "'";
    const auto suggestions = suggest_algorithms(algo);
    if (!suggestions.empty()) {
      std::cerr << " — did you mean";
      for (std::size_t i = 0; i < suggestions.size(); ++i)
        std::cerr << (i == 0 ? " " : ", ") << "'" << suggestions[i] << "'";
      std::cerr << "?";
    }
    std::cerr << " (see dcolor --list)\n";
    return 2;
  }

  Graph g = load_edge_list(argv[2]);
  g.set_ids(shuffled_ids(g.num_nodes(), 1));
  AlgorithmRequest req;
  req.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  req.engine = g_engine;
  const std::string out = argc > 5 ? argv[5] : "";

  if (g_repeat > 1) {
    // Batch mode: seeds seed..seed+N-1 run as sweep cells over the one
    // loaded instance; cells are concurrent when sweep workers are
    // available (each cell's engine is then serialized, see sweep.hpp).
    struct Row {
      bool ok = false;
      std::int64_t rounds = 0;
      double wall_ms = 0;
      std::string summary;
    };
    bench::SweepOptions sweep_opt;
    sweep_opt.cell_engine = g_engine;
    bench::SweepDriver driver(sweep_opt);
    const auto rows = driver.run<Row>(
        static_cast<std::size_t>(g_repeat),
        [&](std::size_t i, bench::CellContext& ctx) {
          AlgorithmRequest cell_req;
          cell_req.seed = req.seed + i;
          cell_req.engine = ctx.engine();
          const auto t0 = std::chrono::steady_clock::now();
          const AlgorithmResult res = entry->run(g, cell_req);
          Row row;
          row.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
          row.ok = res.ok;
          row.rounds = res.ledger.total();
          row.summary = res.summary;
          return row;
        });
    std::vector<double> rounds, wall;
    bool all_ok = true;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::cout << "seed " << (req.seed + i) << ": rounds="
                << rows[i].rounds << " wall_ms=" << rows[i].wall_ms << " "
                << (rows[i].ok ? "ok" : "INVALID") << " — "
                << rows[i].summary << "\n";
      rounds.push_back(static_cast<double>(rows[i].rounds));
      wall.push_back(rows[i].wall_ms);
      all_ok = all_ok && rows[i].ok;
    }
    std::cout << "rounds:  " << format_summary(summarize(rounds)) << "\n"
              << "wall_ms: " << format_summary(summarize(wall)) << "\n"
              << driver.report() << "\n";
    return all_ok ? 0 : 1;
  }

  const AlgorithmResult res = entry->run(g, req);
  std::cout << res.summary << "\n" << res.ledger.report();
  if (!res.ok) {
    std::cerr << "RESULT INVALID\n";
    return 1;
  }
  if (!out.empty()) {
    if (!res.color.empty()) {
      write_coloring(out, res.color);
      std::cout << "coloring written to " << out << "\n";
    } else if (!res.in_set.empty()) {
      std::ofstream os(out);
      for (std::size_t i = 0; i < res.in_set.size(); ++i)
        if (res.in_set[i]) os << i << '\n';
      std::cout << (res.set_on_edges ? "edge set" : "set") << " written to "
                << out << "\n";
    }
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc != 4) return usage();
  const Graph g = load_edge_list(argv[2]);
  const auto color = read_coloring(argv[3]);
  DC_CHECK_MSG(color.size() == g.num_nodes(), "size mismatch");
  const auto report = check_coloring(g, color);
  std::cout << report.describe() << "\n";
  return report.proper && report.complete &&
                 report.max_color < g.max_degree()
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global engine flags before positional dispatch.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 10);
      if (n < 0) return usage();
      // 0 = auto (library default: DELTACOLOR_THREADS env var, else
      // hardware concurrency) — previously this fell through to usage(),
      // silently suggesting the flag had been applied.
      g_engine.num_threads = n;
      if (n > 0) ThreadPool::set_default_workers(n);
    } else if (arg == "--frontier") {
      g_engine.frontier = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      g_repeat = std::atoi(arg.c_str() + 9);
      if (g_repeat < 1) return usage();
    } else if (arg == "--list") {
      return list_algorithms();
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (argc < 2) return usage();
  // Resolved engine configuration, printed once so "--threads=0" (auto)
  // never silently runs with an unexpected worker count.
  std::cerr << "dcolor: engine workers=" << ThreadPool::default_workers()
            << " (hw_threads=" << std::thread::hardware_concurrency()
            << ", requested="
            << (g_engine.num_threads == 0 ? std::string("auto")
                                          : std::to_string(
                                                g_engine.num_threads))
            << "), frontier=" << (g_engine.frontier ? "on" : "off") << "\n";
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "color") return cmd_color(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
