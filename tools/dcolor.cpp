// dcolor — command-line front end for the deltacolor library.
//
//   dcolor gen blowup  <cliques> <delta> <clique_size> <easy%> <seed> <out>
//   dcolor gen ring    <cliques> <clique_size> <seed> <out>
//   dcolor gen regular <n> <degree> <seed> <out>
//   dcolor color <graph> [algorithm] [seed] [out]
//   dcolor check <graph> <coloring>
//
// Algorithms are resolved from the shared registry (the same catalog the
// benches use); `dcolor --list` enumerates them. Unknown names exit with
// status 4 and print the closest registered names.
//
// Global flags (anywhere on the command line):
//   --list         list registered algorithms and exit
//   --load=PATH    graph source for color/check, replacing the positional
//                  <graph> argument; .dcsr files are mmap'd zero-copy and
//                  cached by file identity (path, size, mtime) so repeated
//                  runs in one process share a single mapping
//   --ids=M       M in {auto, file, shuffled}: LOCAL identifier source.
//                  auto (default) keeps the file's ids for .dcsr instances
//                  and shuffles (seed 1) for text edge lists — the
//                  pre-existing behavior for both formats
//   --threads=N    worker threads for the round engine (also settable via
//                  the DELTACOLOR_THREADS env var; default: all cores)
//   --frontier     sparse activation: re-step only nodes whose closed
//                  neighborhood changed last round (engine algorithms)
//   --backend=M    M in {inproc, proc}: execution backend. proc shards the
//                  loaded instance across forked worker processes that
//                  exchange boundary state at round barriers; results are
//                  bit-identical to inproc. Prints a per-shard SHARDS
//                  accounting block next to the ledger / SWEEP line
//   --shards=N     proc backend: number of worker processes (default 2;
//                  clamped, with a warning, when shards would be empty)
//   --barrier=M    proc backend round barrier, M in {shm, frames}: shm
//                  (default) synchronizes rounds through shared-memory
//                  epoch cells with zero per-round syscalls; frames is the
//                  coordinator socketpair barrier — the escape hatch when
//                  diagnosing a stuck barrier (DELTACOLOR_BARRIER=frames
//                  is the env equivalent)
//   --repeat=N     color only: run N seeds (seed, seed+1, ...) of the
//                  algorithm over the shared instance as concurrent sweep
//                  cells; print per-seed rounds and aggregate wall-clock
//                  statistics instead of a single ledger
//   --validate=M   oracle mode, M in {off, end, phase}: end checks the
//                  final coloring (structured error instead of a hard
//                  abort); phase additionally checks partial-coloring
//                  invariants between pipeline phases (det/rand)
//   --retries=N    color --repeat: attempts per seed before the cell is
//                  quarantined (retries re-run with a perturbed seed)
//   --journal=P    color --repeat: JSONL checkpoint journal at path P
//   --resume       with --journal: skip seeds already completed in P
//
// Exit codes: 0 success; 1 runtime failure (invalid result, quarantined
// cells, engine error); 2 usage error / invalid flag combination;
// 3 unreadable or malformed input file; 4 unknown algorithm or generator
// family. Documented here and in `--help`.
//
// Graphs are plain edge lists ("n m" header then "u v" per line) or binary
// .dcsr containers (see graph/csr_file.hpp) — the format is sniffed from
// the file's magic, and `gen` writes .dcsr when the output path has that
// extension. Colorings are "v color" lines. `color` prints the summary and
// round ledger, writes the coloring if an output path is given, and exits
// non-zero on failure.
#include <sys/stat.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "bench_support/instance_cache.hpp"

#include "bench_support/sweep.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;

// Distinct exit codes (see the header comment; also printed by --help).
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadFile = 3;
constexpr int kExitUnknownAlgorithm = 4;

int usage() {
  std::cerr
      << "usage:\n"
         "  dcolor gen blowup  <cliques> <delta> <size> <easy%> <seed> <out>\n"
         "  dcolor gen ring    <cliques> <size> <seed> <out>\n"
         "  dcolor gen regular <n> <degree> <seed> <out>\n"
         "  dcolor color <graph> [algorithm] [seed] [out]\n"
         "  dcolor check <graph> <coloring>\n"
         "graphs: text edge list or binary .dcsr (mmap'd zero-copy; "
         "sniffed by magic; `gen` writes .dcsr when <out> ends in .dcsr)\n"
         "flags: --load=PATH (graph source replacing the positional "
         "<graph>; cached by file identity), --ids=auto|file|shuffled "
         "(LOCAL id source; auto = file ids for .dcsr, shuffled for text), "
         "--list (registered algorithms), --threads=N (engine "
         "workers, 0 = auto; env DELTACOLOR_THREADS), --frontier (sparse "
         "activation), --backend=inproc|proc (proc = multi-process sharded "
         "execution with halo exchange; bit-identical results), --shards=N "
         "(proc backend: worker processes, default 2, 0 = one per hardware "
         "core), --barrier=shm|frames (proc backend round barrier: "
         "shared-memory epoch cells (default) or coordinator frames; env "
         "DELTACOLOR_BARRIER), --shard-stall-ms=N (proc backend: watchdog "
         "deadline before a silent worker is declared hung and its stage "
         "replayed; 0 = off, default 10000; env DELTACOLOR_SHARD_STALL_MS; "
         "respawn budget / in-process degradation via env "
         "DELTACOLOR_SHARD_RESPAWNS and DELTACOLOR_SHARD_DEGRADE), "
         "--repeat=N (color: N seeds as sweep cells, "
         "aggregate stats), --validate=off|end|phase (oracle mode: check "
         "the final coloring / every pipeline phase boundary), --retries=N "
         "(repeat: attempts per seed before quarantine), --journal=PATH "
         "(repeat: JSONL checkpoint), --resume (skip seeds completed in "
         "the journal)\n"
         "exit codes: 0 success; 1 runtime failure (invalid result, "
         "quarantined cells); 2 usage error or invalid flag combination; "
         "3 unreadable or malformed input file; 4 unknown algorithm or "
         "generator family\n";
  return kExitUsage;
}

int list_algorithms() {
  std::cout << "registered algorithms:\n";
  for (const AlgorithmEntry& e : algorithm_registry())
    std::cout << "  " << std::left << std::setw(10) << e.name << " "
              << e.description << "\n";
  return 0;
}

EngineOptions g_engine;  // from --threads / --frontier
bool g_proc_backend = false;  // from --backend=proc
int g_shards = 2;             // from --shards=N
BarrierMode g_barrier = BarrierMode::kAuto;  // from --barrier=M
int g_repeat = 1;             // from --repeat=N
ValidateMode g_validate = ValidateMode::kOff;  // from --validate=M
int g_retries = 1;                             // from --retries=N
std::string g_journal_path;                    // from --journal=P
bool g_resume = false;                         // from --resume
std::string g_load_path;                       // from --load=PATH
int g_stall_ms = -1;                           // from --shard-stall-ms=N

enum class IdsMode { kAuto, kFile, kShuffled };
IdsMode g_ids = IdsMode::kAuto;  // from --ids=M

std::uint64_t file_bytes_of(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0
             ? static_cast<std::uint64_t>(st.st_size)
             : 0;
}

/// Instance provenance, on stderr next to the engine report: where the
/// graph came from (loaded file + format + byte size, or generated
/// family), how big it is, and which LOCAL ids it runs with.
void report_loaded_instance(const std::string& path, bool dcsr,
                            const Graph& g, const char* ids) {
  std::cerr << "dcolor: instance file=" << path
            << " format=" << (dcsr ? "dcsr" : "edge-list")
            << " bytes=" << file_bytes_of(path) << " n=" << g.num_nodes()
            << " m=" << g.num_edges() << " Delta=" << g.max_degree()
            << " ids=" << ids << "\n";
}

void report_generated_instance(const std::string& family, const Graph& g) {
  std::cerr << "dcolor: instance generated family=" << family
            << " n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << "\n";
}

/// One-line error + kExitBadFile instead of the library's DC_CHECK
/// (file:line logic_error) for operator-facing input problems. Sniffs the
/// .dcsr magic, so both formats load transparently.
std::optional<Graph> try_load_graph(const std::string& path) {
  if (is_csr_file(path)) {
    try {
      Graph g = load_csr_file(path);
      report_loaded_instance(path, /*dcsr=*/true, g, "file");
      return g;
    } catch (const CsrError& e) {
      std::cerr << "dcolor: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "dcolor: cannot open graph file '" << path << "'\n";
    return std::nullopt;
  }
  try {
    Graph g = read_edge_list(is);
    report_loaded_instance(path, /*dcsr=*/false, g, "file");
    return g;
  } catch (const std::exception&) {
    std::cerr << "dcolor: malformed edge list in '" << path
              << "' (expected \"n m\" header then m \"u v\" lines)\n";
    return std::nullopt;
  }
}

/// `gen` output: .dcsr extension selects the binary container, anything
/// else the text edge list.
void save_graph_as(const std::string& path, const Graph& g) {
  const std::string ext = ".dcsr";
  if (path.size() >= ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
    write_csr_file(path, g);
  else
    save_edge_list(path, g);
}

void write_coloring(const std::string& path, const std::vector<Color>& c) {
  std::ofstream os(path);
  os << c.size() << '\n';
  for (std::size_t v = 0; v < c.size(); ++v) os << v << ' ' << c[v] << '\n';
}

std::optional<std::vector<Color>> try_read_coloring(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "dcolor: cannot open coloring file '" << path << "'\n";
    return std::nullopt;
  }
  std::size_t n = 0;
  if (!(is >> n)) {
    std::cerr << "dcolor: malformed coloring file '" << path
              << "' (expected node count header)\n";
    return std::nullopt;
  }
  std::vector<Color> c(n, kNoColor);
  std::size_t v = 0;
  Color col = 0;
  while (is >> v >> col) {
    if (v >= n) {
      std::cerr << "dcolor: coloring file '" << path << "' names node " << v
                << " but declares only " << n << " nodes\n";
      return std::nullopt;
    }
    c[v] = col;
  }
  return c;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kind = argv[2];
  if (kind == "blowup" && argc == 9) {
    CliqueInstanceOptions opt;
    opt.num_cliques = std::atoi(argv[3]);
    opt.delta = std::atoi(argv[4]);
    opt.clique_size = std::atoi(argv[5]);
    opt.easy_fraction = std::atof(argv[6]) / 100.0;
    opt.seed = std::strtoull(argv[7], nullptr, 10);
    const CliqueInstance inst = clique_blowup_instance(opt);
    report_generated_instance("blowup", inst.graph);
    save_graph_as(argv[8], inst.graph);
    std::cout << "wrote " << argv[8] << ": n=" << inst.graph.num_nodes()
              << " m=" << inst.graph.num_edges() << " Delta="
              << inst.graph.max_degree() << "\n";
    return 0;
  }
  if (kind == "ring" && argc == 7) {
    const CliqueInstance inst = clique_ring(
        std::atoi(argv[3]), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    report_generated_instance("ring", inst.graph);
    save_graph_as(argv[6], inst.graph);
    std::cout << "wrote " << argv[6] << ": n=" << inst.graph.num_nodes()
              << "\n";
    return 0;
  }
  if (kind == "regular" && argc == 7) {
    const Graph g = random_regular(
        static_cast<NodeId>(std::atoi(argv[3])), std::atoi(argv[4]),
        std::strtoull(argv[5], nullptr, 10));
    report_generated_instance("regular", g);
    save_graph_as(argv[6], g);
    std::cout << "wrote " << argv[6] << ": n=" << g.num_nodes() << "\n";
    return 0;
  }
  if (kind == "blowup" || kind == "ring" || kind == "regular")
    return usage();  // right family, wrong arity
  std::cerr << "dcolor: unknown generator family '" << kind
            << "' (families: blowup, ring, regular)\n";
  return kExitUnknownAlgorithm;
}

/// Per-seed row of the --repeat sweep table, journal-serializable so a
/// killed batch resumes from completed seeds.
struct RepeatRow {
  bool ok = false;
  std::int64_t rounds = 0;
  double wall_ms = 0;
  // Recovery accounting deltas observed while this cell ran (proc backend
  // only; all zero in-process). Under concurrent cells the attribution is
  // best-effort — a respawn lands on whichever cell's window saw it — but
  // the batch totals match the SHARDS report.
  std::int64_t respawns = 0;
  std::int64_t stalls = 0;
  std::int64_t degraded = 0;
  std::string summary;
};

std::string encode_repeat_row(const RepeatRow& row) {
  std::ostringstream os;
  os << (row.ok ? 1 : 0) << '\x1f' << row.rounds << '\x1f' << row.wall_ms
     << '\x1f' << row.respawns << '\x1f' << row.stalls << '\x1f'
     << row.degraded << '\x1f' << row.summary;
  return os.str();
}

bool decode_repeat_row(std::string_view text, RepeatRow* out) {
  RepeatRow row;
  std::size_t pos = 0;
  const auto next = [&](std::string* field) {
    const std::size_t sep = text.find('\x1f', pos);
    if (sep == std::string_view::npos) return false;
    *field = std::string(text.substr(pos, sep - pos));
    pos = sep + 1;
    return true;
  };
  std::string ok, rounds, wall;
  if (!next(&ok) || !next(&rounds) || !next(&wall)) return false;
  row.ok = ok == "1";
  row.rounds = std::strtoll(rounds.c_str(), nullptr, 10);
  row.wall_ms = std::strtod(wall.c_str(), nullptr);
  // Recovery counters arrived with the self-healing backend; journals
  // written before it lack the fields, and --resume must still accept
  // their rows (counters default to zero, summary is the remainder).
  const std::size_t before_counters = pos;
  const auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s)
      if (c < '0' || c > '9') return false;
    return true;
  };
  std::string respawns, stalls, degraded;
  if (next(&respawns) && next(&stalls) && next(&degraded) &&
      all_digits(respawns) && all_digits(stalls) && all_digits(degraded)) {
    row.respawns = std::strtoll(respawns.c_str(), nullptr, 10);
    row.stalls = std::strtoll(stalls.c_str(), nullptr, 10);
    row.degraded = std::strtoll(degraded.c_str(), nullptr, 10);
  } else {
    pos = before_counters;
  }
  row.summary = std::string(text.substr(pos));
  *out = row;
  return true;
}

int cmd_color(int argc, char** argv) {
  // With --load=PATH the positional <graph> argument disappears and the
  // remaining positionals shift left one slot.
  const int base = g_load_path.empty() ? 3 : 2;
  if (argc < base) return usage();
  const std::string graph_path =
      g_load_path.empty() ? argv[2] : g_load_path;
  const std::string algo = argc > base ? argv[base] : "det";
  const AlgorithmEntry* entry = find_algorithm(algo);
  if (entry == nullptr) {
    std::cerr << "dcolor: unknown algorithm '" << algo << "'";
    const auto suggestions = suggest_algorithms(algo);
    if (!suggestions.empty()) {
      std::cerr << " — did you mean";
      for (std::size_t i = 0; i < suggestions.size(); ++i)
        std::cerr << (i == 0 ? " " : ", ") << "'" << suggestions[i] << "'";
      std::cerr << "?";
    }
    std::cerr << " (see dcolor --list)\n";
    return kExitUnknownAlgorithm;
  }

  // Load through the instance cache keyed by file identity: repeated
  // color runs (and every --repeat cell) in one process share a single
  // parse — for a .dcsr file, a single zero-copy mapping.
  const bool dcsr = is_csr_file(graph_path);
  std::shared_ptr<const Graph> shared;
  try {
    shared = bench::InstanceCache::global().file_graph(graph_path, [&] {
      if (dcsr) return load_csr_file(graph_path);
      std::ifstream is(graph_path);
      if (!is.good())
        throw std::runtime_error("cannot open graph file '" + graph_path +
                                 "'");
      try {
        return read_edge_list(is);
      } catch (const std::exception&) {
        throw std::runtime_error(
            "malformed edge list in '" + graph_path +
            "' (expected \"n m\" header then m \"u v\" lines)");
      }
    });
  } catch (const std::exception& e) {
    std::cerr << "dcolor: " << e.what() << "\n";
    return kExitBadFile;
  }
  // LOCAL identifiers: text instances historically run with shuffled ids
  // (seed 1); mapped .dcsr instances default to the ids stored in the
  // file, which keeps the cached graph untouched and the ids section
  // zero-copy. --ids overrides either way.
  const bool shuffle = g_ids == IdsMode::kShuffled ||
                       (g_ids == IdsMode::kAuto && !dcsr);
  Graph reidentified;
  if (shuffle) {
    reidentified = *shared;  // shares any mapping; copies in-memory arrays
    reidentified.set_ids(shuffled_ids(reidentified.num_nodes(), 1));
  }
  const Graph& g = shuffle ? reidentified : *shared;
  report_loaded_instance(graph_path, dcsr, g, shuffle ? "shuffled" : "file");
  // --backend=proc: shard the loaded instance once; every run (and every
  // --repeat cell) stages its shardable sweeps through forked workers.
  // Stages the backend cannot shard (nested subgraphs, non-POD states)
  // fall back in-process and are counted in the SHARDS report.
  std::unique_ptr<ProcShardedBackend> proc_backend;
  if (g_proc_backend) {
    proc_backend = std::make_unique<ProcShardedBackend>(
        g_shards, /*persistent=*/true, g_barrier);
    // The CLI turns the stall watchdog ON by default (10s — generous
    // enough that a slow-but-live shard on a loaded box is never shot);
    // the library default is off so embedders and tests opt in. Flag
    // beats env beats the CLI default.
    if (g_stall_ms >= 0)
      proc_backend->set_stall_ms(g_stall_ms);
    else if (std::getenv("DELTACOLOR_SHARD_STALL_MS") == nullptr)
      proc_backend->set_stall_ms(10000);
    proc_backend->prepare(g);
    g_engine.backend = proc_backend.get();
  }
  AlgorithmRequest req;
  req.seed =
      argc > base + 1 ? std::strtoull(argv[base + 1], nullptr, 10) : 1;
  req.engine = g_engine;
  req.validate = g_validate;
  const std::string out = argc > base + 2 ? argv[base + 2] : "";

  if (g_repeat > 1) {
    // Batch mode: seeds seed..seed+N-1 run as sweep cells over the one
    // loaded instance; cells are concurrent when sweep workers are
    // available (each cell's engine is then serialized, see sweep.hpp).
    // The retry/journal robustness layer is driven by --retries /
    // --journal / --resume plus the DELTACOLOR_SWEEP_* env overlay.
    bench::SweepOptions sweep_opt = bench::sweep_options_from_env();
    sweep_opt.cell_engine = g_engine;
    if (g_retries > 1) {
      sweep_opt.retry.max_attempts = g_retries;
      sweep_opt.retry.quarantine = true;
    }
    if (!g_journal_path.empty()) {
      sweep_opt.journal =
          std::make_shared<bench::SweepJournal>(g_journal_path, g_resume);
      // A journaled batch wants partial tables, not an all-or-nothing
      // rethrow that would discard the checkpoint's value.
      sweep_opt.retry.quarantine = true;
    }
    bench::SweepDriver driver(sweep_opt);
    const bench::CellCodec<RepeatRow> codec{
        encode_repeat_row,
        [](std::string_view text, RepeatRow* row) {
          return decode_repeat_row(text, row);
        }};
    // Cell key = instance + algorithm + seed, stable across processes.
    const auto key_fn = [&](std::size_t i) {
      std::ostringstream key;
      key << "file/" << graph_path << "/alg=" << algo
          << "/seed=" << (req.seed + i);
      return key.str();
    };
    const auto result = driver.run_cells<RepeatRow>(
        static_cast<std::size_t>(g_repeat),
        [&](std::size_t i, bench::CellContext& ctx) {
          AlgorithmRequest cell_req;
          // Retries perturb the seed deterministically (w.h.p. re-run).
          cell_req.seed = ctx.seed_for(req.seed + i);
          cell_req.engine = ctx.engine();
          cell_req.validate = g_validate;
          const auto t0 = std::chrono::steady_clock::now();
          ProcShardedBackend::Totals before;
          if (proc_backend != nullptr) before = proc_backend->totals();
          const AlgorithmResult res = entry->run(g, cell_req);
          RepeatRow row;
          row.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
          row.ok = res.ok;
          row.rounds = res.ledger.total();
          if (proc_backend != nullptr) {
            const ProcShardedBackend::Totals after = proc_backend->totals();
            row.respawns = static_cast<std::int64_t>(after.respawns -
                                                     before.respawns);
            row.stalls =
                static_cast<std::int64_t>(after.stalls - before.stalls);
            row.degraded = static_cast<std::int64_t>(after.degraded -
                                                     before.degraded);
          }
          row.summary = res.summary;
          return row;
        },
        key_fn, &codec);
    std::vector<double> rounds, wall;
    bool all_ok = true;
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      const RepeatRow& row = result.rows[i];
      const bench::CellOutcome& oc = result.outcomes[i];
      std::cout << "seed " << (req.seed + i)
                << ": status=" << to_string(oc.status);
      if (oc.status == bench::CellStatus::kQuarantined) {
        std::cout << " [" << to_string(oc.category) << " after "
                  << oc.attempts << " attempt"
                  << (oc.attempts == 1 ? "" : "s") << "] " << oc.error
                  << "\n";
        all_ok = false;
        continue;
      }
      std::cout << " rounds=" << row.rounds << " wall_ms=" << row.wall_ms;
      if (row.respawns > 0 || row.stalls > 0 || row.degraded > 0)
        std::cout << " respawns=" << row.respawns << " stalls=" << row.stalls
                  << " degraded=" << row.degraded;
      std::cout << " " << (row.ok ? "ok" : "INVALID")
                << (oc.resumed ? " (resumed)" : "") << " — " << row.summary
                << "\n";
      rounds.push_back(static_cast<double>(row.rounds));
      wall.push_back(row.wall_ms);
      all_ok = all_ok && row.ok;
    }
    if (!rounds.empty())
      std::cout << "rounds:  " << format_summary(summarize(rounds)) << "\n"
                << "wall_ms: " << format_summary(summarize(wall)) << "\n";
    std::cout << driver.report() << "\n";
    if (proc_backend != nullptr) std::cout << proc_backend->report() << "\n";
    return all_ok ? 0 : kExitFailure;
  }

  const AlgorithmResult res = entry->run(g, req);
  std::cout << res.summary << "\n" << res.ledger.report();
  if (proc_backend != nullptr) std::cout << proc_backend->report() << "\n";
  if (!res.ok) {
    std::cerr << "RESULT INVALID\n";
    return kExitFailure;
  }
  if (!out.empty()) {
    if (!res.color.empty()) {
      write_coloring(out, res.color);
      std::cout << "coloring written to " << out << "\n";
    } else if (!res.in_set.empty()) {
      std::ofstream os(out);
      for (std::size_t i = 0; i < res.in_set.size(); ++i)
        if (res.in_set[i]) os << i << '\n';
      std::cout << (res.set_on_edges ? "edge set" : "set") << " written to "
                << out << "\n";
    }
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  const int base = g_load_path.empty() ? 3 : 2;
  if (argc != base + 1) return usage();
  const auto g =
      try_load_graph(g_load_path.empty() ? argv[2] : g_load_path);
  if (!g) return kExitBadFile;
  const auto color = try_read_coloring(argv[base]);
  if (!color) return kExitBadFile;
  if (color->size() != g->num_nodes()) {
    std::cerr << "dcolor: coloring has " << color->size()
              << " nodes but the graph has " << g->num_nodes() << "\n";
    return kExitBadFile;
  }
  const auto report = check_coloring(*g, *color);
  std::cout << report.describe() << "\n";
  return report.proper && report.complete &&
                 report.max_color < g->max_degree()
             ? 0
             : kExitFailure;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global engine flags before positional dispatch.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 10);
      if (n < 0) return usage();
      // 0 = auto (library default: DELTACOLOR_THREADS env var, else
      // hardware concurrency) — previously this fell through to usage(),
      // silently suggesting the flag had been applied.
      g_engine.num_threads = n;
      if (n > 0) ThreadPool::set_default_workers(n);
    } else if (arg == "--frontier") {
      g_engine.frontier = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string mode = arg.substr(10);
      if (mode == "proc") {
        g_proc_backend = true;
      } else if (mode == "inproc") {
        g_proc_backend = false;
      } else {
        std::cerr << "dcolor: invalid " << arg
                  << " (backends: inproc, proc)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 9);
      if (n < 0) {
        std::cerr << "dcolor: invalid " << arg
                  << " (need at least 1, or 0 = auto)\n";
        return kExitUsage;
      }
      // 0 = auto, mirroring --threads=0: one shard per hardware core. The
      // resolved count is printed in the startup provenance line.
      g_shards = n > 0 ? n
                       : std::max(
                             1, static_cast<int>(
                                    std::thread::hardware_concurrency()));
    } else if (arg.rfind("--barrier=", 0) == 0) {
      const std::string mode = arg.substr(10);
      if (mode == "shm") {
        g_barrier = BarrierMode::kShm;
      } else if (mode == "frames") {
        g_barrier = BarrierMode::kFrames;
      } else {
        std::cerr << "dcolor: invalid " << arg
                  << " (barriers: shm, frames)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--shard-stall-ms=", 0) == 0) {
      g_stall_ms = std::atoi(arg.c_str() + 17);
      if (g_stall_ms < 0 ||
          (g_stall_ms == 0 && std::string(arg.c_str() + 17) != "0")) {
        std::cerr << "dcolor: invalid " << arg
                  << " (milliseconds; 0 turns the watchdog off)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--repeat=", 0) == 0) {
      g_repeat = std::atoi(arg.c_str() + 9);
      if (g_repeat < 1) {
        std::cerr << "dcolor: invalid " << arg << " (need at least 1)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--validate=", 0) == 0) {
      if (!parse_validate_mode(arg.c_str() + 11, &g_validate)) {
        std::cerr << "dcolor: invalid " << arg
                  << " (modes: off, end, phase)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--retries=", 0) == 0) {
      g_retries = std::atoi(arg.c_str() + 10);
      if (g_retries < 1) {
        std::cerr << "dcolor: invalid " << arg << " (need at least 1)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--journal=", 0) == 0) {
      g_journal_path = arg.substr(10);
      if (g_journal_path.empty()) {
        std::cerr << "dcolor: invalid --journal= (need a path)\n";
        return kExitUsage;
      }
    } else if (arg == "--resume") {
      g_resume = true;
    } else if (arg.rfind("--load=", 0) == 0) {
      g_load_path = arg.substr(7);
      if (g_load_path.empty()) {
        std::cerr << "dcolor: invalid --load= (need a path)\n";
        return kExitUsage;
      }
    } else if (arg.rfind("--ids=", 0) == 0) {
      const std::string mode = arg.substr(6);
      if (mode == "auto") {
        g_ids = IdsMode::kAuto;
      } else if (mode == "file") {
        g_ids = IdsMode::kFile;
      } else if (mode == "shuffled") {
        g_ids = IdsMode::kShuffled;
      } else {
        std::cerr << "dcolor: invalid " << arg
                  << " (modes: auto, file, shuffled)\n";
        return kExitUsage;
      }
    } else if (arg == "--list") {
      return list_algorithms();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (g_resume && g_journal_path.empty()) {
    std::cerr << "dcolor: --resume requires --journal=PATH\n";
    return kExitUsage;
  }
  if ((g_resume || !g_journal_path.empty() || g_retries > 1) &&
      g_repeat <= 1) {
    std::cerr << "dcolor: --journal/--resume/--retries apply to "
                 "`color --repeat=N` batches only\n";
    return kExitUsage;
  }
  if (argc < 2) return usage();
  // Resolved engine configuration, printed once so "--threads=0" (auto)
  // never silently runs with an unexpected worker count.
  std::cerr << "dcolor: engine workers=" << ThreadPool::default_workers()
            << " (hw_threads=" << std::thread::hardware_concurrency()
            << ", requested="
            << (g_engine.num_threads == 0 ? std::string("auto")
                                          : std::to_string(
                                                g_engine.num_threads))
            << "), frontier=" << (g_engine.frontier ? "on" : "off")
            << ", backend="
            << (g_proc_backend
                    ? "proc(shards=" + std::to_string(g_shards) +
                          ", barrier=" +
                          barrier_mode_name(resolve_barrier_mode(g_barrier)) +
                          ")"
                    : std::string("inproc"))
            << "\n";
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "color") return cmd_color(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitFailure;
  }
  return usage();
}
