// On-disk CSR container suite: round-trips (in-memory graph -> .dcsr file
// -> mmap-backed Graph must be bit-identical through the public API,
// including ids), the streaming external builder vs the in-memory builder,
// mapped-graph ownership semantics (copies and set_ids outlive the
// original mapping), and hostile inputs — truncation, bad magic, wrong
// version, corrupted payload, short header — each of which must surface as
// a structured CsrError with the right kind and a one-line message, never
// a crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace deltacolor {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "dcsr_test_" + name;
}

// Structural equality through the public API (same checks the CSR builder
// suite pins): edges, per-node adjacency/arc spans, offsets, ids.
void expect_identical(const Graph& got, const Graph& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  EXPECT_EQ(got.max_degree(), want.max_degree());
  const auto ge = got.edges();
  const auto we = want.edges();
  EXPECT_TRUE(std::equal(ge.begin(), ge.end(), we.begin(), we.end()));
  for (NodeId v = 0; v < want.num_nodes(); ++v) {
    const auto gn = got.neighbors(v);
    const auto wn = want.neighbors(v);
    ASSERT_EQ(gn.size(), wn.size()) << "degree mismatch at node " << v;
    EXPECT_TRUE(std::equal(gn.begin(), gn.end(), wn.begin()))
        << "adjacency mismatch at node " << v;
    const auto gi = got.incident_edges(v);
    const auto wi = want.incident_edges(v);
    EXPECT_TRUE(std::equal(gi.begin(), gi.end(), wi.begin(), wi.end()))
        << "arc mismatch at node " << v;
    EXPECT_EQ(got.id(v), want.id(v)) << "id mismatch at node " << v;
  }
}

/// FNV-1a over the full structure — the golden-hash form used to compare a
/// mapped graph against its in-memory source without trusting either side's
/// iteration shortcuts.
std::uint64_t structure_hash(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ull;
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  mix(static_cast<std::uint64_t>(g.max_degree()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    mix(g.id(v));
    for (const NodeId u : g.neighbors(v)) mix(u);
    for (const EdgeId e : g.incident_edges(v)) mix(e);
  }
  for (const auto& [u, v] : g.edges()) {
    mix(u);
    mix(v);
  }
  return h;
}

TEST(CsrFile, RoundTripGeneratorFamilies) {
  const std::string path = tmp_path("roundtrip.dcsr");
  const Graph graphs[] = {path_graph(17), cycle_graph(30),
                          complete_graph(9), torus_grid(5, 7),
                          random_graph(64, 0.2, 7)};
  for (const Graph& g : graphs) {
    write_csr_file(path, g);
    const Graph loaded = load_csr_file(path, {CsrVerify::kAlways});
    expect_identical(loaded, g);
    EXPECT_EQ(structure_hash(loaded), structure_hash(g));
  }
  std::remove(path.c_str());
}

TEST(CsrFile, RoundTripPreservesShuffledIds) {
  Graph g = cycle_graph(12);
  std::vector<std::uint64_t> ids;
  for (NodeId v = 0; v < 12; ++v)
    ids.push_back(1000 + static_cast<std::uint64_t>(11 - v) * 7);
  g.set_ids(ids);
  const std::string path = tmp_path("ids.dcsr");
  write_csr_file(path, g);
  const Graph loaded = load_csr_file(path, {CsrVerify::kAlways});
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(loaded.id(v), ids[v]);
  std::remove(path.c_str());
}

TEST(CsrFile, EmptyAndSingleNodeGraphs) {
  const std::string path = tmp_path("tiny.dcsr");
  for (const NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    const Graph g(n, {});
    write_csr_file(path, g);
    const Graph loaded = load_csr_file(path, {CsrVerify::kAlways});
    expect_identical(loaded, g);
  }
  std::remove(path.c_str());
}

// A deliberately hostile in-memory edge source: duplicates, reversed
// orientation, batches of awkward sizes. The external builder must fold
// all of that exactly like the in-memory builder does.
class VectorSource final : public EdgeSource {
 public:
  explicit VectorSource(EdgeList edges, std::size_t burst = 3)
      : edges_(std::move(edges)), burst_(burst) {}
  void rewind() override { pos_ = 0; }
  std::size_t next(std::pair<NodeId, NodeId>* out,
                   std::size_t cap) override {
    std::size_t produced = 0;
    const std::size_t want = std::min(cap, burst_);
    while (produced < want && pos_ < edges_.size())
      out[produced++] = edges_[pos_++];
    return produced;
  }

 private:
  EdgeList edges_;
  std::size_t burst_;
  std::size_t pos_ = 0;
};

TEST(CsrFile, ExternalBuildMatchesInMemoryBuilder) {
  // Edge soup with duplicates and both orientations.
  EdgeList soup;
  const NodeId n = 41;
  std::uint64_t state = 99;
  for (int i = 0; i < 400; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const NodeId u = static_cast<NodeId>((state >> 32) % n);
    const NodeId v = static_cast<NodeId>((state >> 13) % n);
    if (u == v) continue;
    soup.emplace_back(u, v);
    if (i % 3 == 0) soup.emplace_back(v, u);  // reversed duplicate
  }
  const Graph want(n, soup);

  const std::string path = tmp_path("external.dcsr");
  VectorSource source(soup);
  const CsrBuildStats stats = build_csr_file(source, n, path);
  EXPECT_EQ(stats.input_edges, soup.size());
  EXPECT_EQ(stats.unique_edges, want.num_edges());
  EXPECT_EQ(stats.max_degree, want.max_degree());

  const Graph loaded = load_csr_file(path, {CsrVerify::kAlways});
  expect_identical(loaded, want);
  std::remove(path.c_str());
}

TEST(CsrFile, ExternalBuildFileBitIdenticalToWriter) {
  // The streaming builder's output must be byte-for-byte the file the
  // in-memory writer produces for the same graph — one frozen format, two
  // producers.
  const Graph g = torus_grid(6, 9);
  EdgeList edges(g.edges().begin(), g.edges().end());
  const std::string a = tmp_path("writer.dcsr");
  const std::string b = tmp_path("builder.dcsr");
  write_csr_file(a, g);
  VectorSource source(edges, 7);
  build_csr_file(source, g.num_nodes(), b);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(CsrFile, MappedGraphSurvivesCopyAndSetIds) {
  const std::string path = tmp_path("ownership.dcsr");
  write_csr_file(path, random_graph(32, 0.3, 3));
  const Graph want = load_csr_file(path);
  {
    Graph copy;
    {
      const Graph mapped = load_csr_file(path);
      copy = mapped;  // shares the mapping via storage keep-alive
    }
    expect_identical(copy, want);  // original mapping handle destroyed
    // set_ids must work on a mapped graph: new ids are owned, the rest
    // stays mapped.
    std::vector<std::uint64_t> ids(32);
    for (NodeId v = 0; v < 32; ++v) ids[v] = 5000 + v;
    copy.set_ids(ids);
    EXPECT_EQ(copy.id(7), 5007u);
    const Graph copy2 = copy;  // partially-owned graph must copy cleanly
    EXPECT_EQ(copy2.id(7), 5007u);
    EXPECT_TRUE(std::equal(copy2.neighbors(0).begin(),
                           copy2.neighbors(0).end(),
                           want.neighbors(0).begin()));
  }
  std::remove(path.c_str());
}

TEST(CsrFile, PeekAndSniff) {
  const std::string path = tmp_path("peek.dcsr");
  const Graph g = cycle_graph(25);
  write_csr_file(path, g);
  EXPECT_TRUE(is_csr_file(path));
  const CsrFileInfo info = peek_csr_file(path);
  EXPECT_EQ(info.header.num_nodes, 25u);
  EXPECT_EQ(info.header.num_edges, 25u);
  EXPECT_EQ(info.header.max_degree, 2u);
  EXPECT_GT(info.file_bytes, sizeof(CsrFileHeader));

  const std::string text = tmp_path("plain.txt");
  std::ofstream(text) << "5 4\n0 1\n";
  EXPECT_FALSE(is_csr_file(text));
  EXPECT_FALSE(is_csr_file(tmp_path("does_not_exist")));
  std::remove(path.c_str());
  std::remove(text.c_str());
}

// --- hostile inputs: every failure is a typed CsrError, never a crash ---

CsrErrorKind load_kind(const std::string& path,
                       CsrVerify verify = CsrVerify::kAlways) {
  try {
    (void)load_csr_file(path, {verify});
  } catch (const CsrError& e) {
    // Structured one-line message: mentions the path, no embedded newline.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find('\n'), std::string::npos);
    return e.kind();
  }
  ADD_FAILURE() << "load of " << path << " unexpectedly succeeded";
  return CsrErrorKind::kOpen;
}

std::string write_valid_file(const std::string& name) {
  const std::string path = tmp_path(name);
  write_csr_file(path, torus_grid(4, 5));
  return path;
}

void corrupt_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(CsrFileHostile, MissingFile) {
  EXPECT_EQ(load_kind(tmp_path("missing.dcsr")), CsrErrorKind::kOpen);
}

TEST(CsrFileHostile, ShortHeader) {
  const std::string path = tmp_path("short.dcsr");
  std::ofstream(path, std::ios::binary) << "DC";  // 2 bytes
  EXPECT_EQ(load_kind(path), CsrErrorKind::kShortHeader);
  std::ofstream(path, std::ios::binary | std::ios::trunc);  // 0 bytes
  EXPECT_EQ(load_kind(path), CsrErrorKind::kShortHeader);
  std::remove(path.c_str());
}

TEST(CsrFileHostile, BadMagic) {
  const std::string path = write_valid_file("magic.dcsr");
  corrupt_byte(path, 0);
  EXPECT_EQ(load_kind(path), CsrErrorKind::kBadMagic);
  EXPECT_FALSE(is_csr_file(path));
  std::remove(path.c_str());
}

TEST(CsrFileHostile, BadVersion) {
  const std::string path = write_valid_file("version.dcsr");
  // Version field sits right after the 8-byte magic.
  corrupt_byte(path, 8);
  EXPECT_EQ(load_kind(path), CsrErrorKind::kBadVersion);
  std::remove(path.c_str());
}

TEST(CsrFileHostile, CorruptedHeaderGeometry) {
  const std::string path = write_valid_file("geometry.dcsr");
  // num_nodes field: magic(8) + version(4) + header_bytes(4).
  corrupt_byte(path, 16);
  const CsrErrorKind kind = load_kind(path);
  // Depending on which bit flips, this is caught by the header checksum.
  EXPECT_EQ(kind, CsrErrorKind::kBadHeader);
  std::remove(path.c_str());
}

TEST(CsrFileHostile, TruncatedPayload) {
  const std::string path = write_valid_file("truncated.dcsr");
  const CsrFileInfo info = peek_csr_file(path);
  std::ofstream f(path, std::ios::binary | std::ios::in);
  f.close();
  // Chop the last section short.
  const std::uint64_t keep = info.file_bytes - 64;
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(keep)), 0);
  EXPECT_EQ(load_kind(path), CsrErrorKind::kTruncated);
  // Even with verification off, geometry still protects the mapping.
  EXPECT_EQ(load_kind(path, CsrVerify::kNever), CsrErrorKind::kTruncated);
  std::remove(path.c_str());
}

TEST(CsrFileHostile, PayloadChecksumMismatch) {
  const std::string path = write_valid_file("payload.dcsr");
  const CsrFileInfo info = peek_csr_file(path);
  // Flip one byte in the adjacency section.
  corrupt_byte(path, info.header.sections[kSecAdjacency].offset + 5);
  EXPECT_EQ(load_kind(path, CsrVerify::kAlways), CsrErrorKind::kChecksum);
  // kNever skips payload verification by design: the load succeeds (the
  // header is intact), which is exactly the lazy-page tradeoff documented
  // in the header. kAuto on a small file verifies.
  EXPECT_NO_THROW((void)load_csr_file(path, {CsrVerify::kNever}));
  EXPECT_EQ(load_kind(path, CsrVerify::kAuto), CsrErrorKind::kChecksum);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deltacolor
