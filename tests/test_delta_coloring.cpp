// End-to-end tests for the deterministic Delta-coloring algorithm
// (Theorem 1 / Algorithms 1-3), including the per-phase structural lemma
// outcomes the pipeline records.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/delta_coloring.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"

namespace deltacolor {
namespace {

CliqueInstance blowup(int cliques, int delta, int s, double easy,
                      std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = s;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

struct Case {
  int cliques, delta, s;
  double easy;
  std::uint64_t seed;
};

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, ProducesValidDeltaColoring) {
  const Case c = GetParam();
  const CliqueInstance inst = blowup(c.cliques, c.delta, c.s, c.easy, c.seed);
  const auto res =
      delta_color_dense(inst.graph, scaled_options(c.delta));
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_TRUE(is_delta_coloring(inst.graph, res.color));
  EXPECT_EQ(res.num_cliques, static_cast<int>(inst.cliques.size()));
  EXPECT_GT(res.ledger.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    DenseInstances, EndToEnd,
    ::testing::Values(
        Case{16, 16, 16, 0.0, 1},    // all hard, e = 1
        Case{16, 16, 16, 0.0, 2},    // another seed
        Case{24, 12, 12, 0.0, 3},    // smaller cliques
        Case{16, 16, 16, 0.25, 4},   // mixed hard/easy
        Case{16, 16, 16, 0.60, 5},   // mostly easy
        Case{16, 16, 16, 1.0, 6},    // all easy
        Case{32, 16, 16, 0.1, 7},    // larger, few easy
        Case{12, 32, 32, 0.0, 8},    // bigger Delta, all hard
        Case{12, 32, 32, 0.3, 9}));  // bigger Delta, mixed

TEST(EndToEndExtra, HardStatsReflectLemmas) {
  const CliqueInstance inst = blowup(24, 16, 16, 0.0, 11);
  const auto res = delta_color_dense(inst.graph, scaled_options(16));
  ASSERT_TRUE(res.valid);
  const auto& st = res.hard_stats;
  EXPECT_EQ(st.num_hard, static_cast<int>(inst.cliques.size()));
  EXPECT_EQ(st.num_heg_cliques + st.type2, st.num_hard);
  EXPECT_TRUE(st.heg_complete);
  EXPECT_TRUE(st.lemma11_ok) << "delta_H/r_H = " << st.heg_ratio;
  EXPECT_GE(st.min_outgoing_f3, 2);
  EXPECT_TRUE(st.lemma16_ok) << "max G_V degree " << st.max_gv_degree;
  EXPECT_EQ(st.num_triads, st.num_heg_cliques - st.dropped_triads);
  EXPECT_LE(st.max_gv_degree, 16 - 2);
}

TEST(EndToEndExtra, CliqueRingAllEasy) {
  const CliqueInstance inst = clique_ring(10, 8, 2);
  const auto res = delta_color_dense(inst.graph, scaled_options(8));
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_EQ(res.num_hard, 0);
  EXPECT_EQ(res.hard_stats.num_triads, 0);
}

TEST(EndToEndExtra, PaperExactParametersAtDelta63) {
  // Delta = 63 is the smallest degree where the paper's epsilon = 1/63
  // admits non-trivial dense graphs; run the full pipeline unscaled.
  //
  // Reproduction finding (recorded in EXPERIMENTS.md): Lemma 11's stated
  // margin delta_H > 1.1 r_H does NOT survive integer rounding at
  // Delta = 63 — sub-cliques of 63/28 vertices propose only
  // floor(63/28) = 2 edges while r_H = 2, giving ratio exactly 1.0. The
  // HEG instance is nevertheless feasible (2-regular bipartite incidence
  // decomposes into cycles) and the pipeline completes.
  const CliqueInstance inst = blowup(8, 63, 63, 0.0, 13);
  DeltaColoringOptions opt;  // paper defaults: epsilon = 1/63, K = 28
  opt.hard.scale_for_delta = false;
  const auto res = delta_color_dense(inst.graph, opt);
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_FALSE(res.hard_stats.lemma11_ok);  // the documented rounding gap
  EXPECT_GE(res.hard_stats.heg_ratio, 1.0);
  EXPECT_TRUE(res.hard_stats.heg_complete);
  EXPECT_TRUE(res.hard_stats.lemma13_ok);
  EXPECT_TRUE(res.hard_stats.lemma16_ok);
}

TEST(EndToEndExtra, PaperConstantsClearLemma11AtLargeDelta) {
  // With Delta = 126 the sub-cliques hold >= 4 members and the Lemma 11
  // margin holds strictly: delta_H = 4 > 1.1 * r_H = 2.2.
  const CliqueInstance inst = blowup(4, 126, 126, 0.0, 29);
  DeltaColoringOptions opt;
  opt.hard.scale_for_delta = false;
  const auto res = delta_color_dense(inst.graph, opt);
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_TRUE(res.hard_stats.lemma11_ok)
      << "ratio " << res.hard_stats.heg_ratio;
  EXPECT_TRUE(res.hard_stats.lemma13_ok);
  EXPECT_TRUE(res.hard_stats.lemma16_ok);
}

TEST(EndToEndExtra, MultiCrossEdgeInstances) {
  // e_C = 2: cliques one vertex short of Delta, every member carrying two
  // cross edges — the paper's "less dense" regime of Section 1.1. The
  // Lemma 2 size window forces epsilon >= 4(Delta-s)/Delta here, far above
  // 1/63 (the paper's constants assume Delta >= 63*e_C); at this epsilon
  // the stated Lemma 11/13 margins fail, but the HEG solver and the
  // runtime checks carry the pipeline to a valid Delta-coloring.
  CliqueInstanceOptions opt;
  opt.num_cliques = 16;
  opt.delta = 12;
  opt.clique_size = 11;
  opt.seed = 2;
  const CliqueInstance inst = clique_blowup_instance(opt);
  DeltaColoringOptions dopt;
  dopt.acd.epsilon = 4.2 / 12.0;
  dopt.hard.epsilon = dopt.acd.epsilon;
  const auto res = delta_color_dense(inst.graph, dopt);
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_TRUE(res.hard_stats.lemma16_ok);
  EXPECT_FALSE(res.hard_stats.lemma11_ok);  // documented margin gap
  EXPECT_EQ(res.hard_stats.num_triads, res.num_hard);
}

TEST(EndToEndExtra, TripleCrossEdgeInstances) {
  // e_C = 3 (cliques two short of Delta, three cross edges per member):
  // the blow-up generator needs a Sidon supergraph of ~14k cliques here
  // (n ~ 198k), the loophole detector exercises its cross-cycle case, and
  // the pipeline still produces a valid Delta-coloring — with the HEG
  // ratio at 0.5, i.e. deep below Lemma 11's regime, carried entirely by
  // the augmenting-path solver.
  CliqueInstanceOptions opt;
  opt.num_cliques = 16;
  opt.delta = 16;
  opt.clique_size = 14;
  opt.seed = 4;
  const CliqueInstance inst = clique_blowup_instance(opt);
  DeltaColoringOptions dopt;
  dopt.acd.epsilon = 0.55;  // Lemma 2(i) needs eps >= 4(Delta-s)/Delta
  dopt.hard.epsilon = dopt.acd.epsilon;
  const auto res = delta_color_dense(inst.graph, dopt);
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid) << res.summary();
  EXPECT_EQ(res.hard_stats.num_triads, res.num_hard);
}

TEST(EndToEndExtra, SparseGraphRejected) {
  Graph g = random_regular(64, 6, 17);
  EXPECT_THROW(delta_color_dense(g), std::logic_error);
}

TEST(EndToEndExtra, LowDegreeRejected) {
  Graph g = cycle_graph(10);
  EXPECT_THROW(delta_color_dense(g), std::logic_error);
}

TEST(EndToEndExtra, AdversarialIdAssignments) {
  // Identifier permutations must not affect validity.
  for (const std::uint64_t idseed : {101ull, 202ull, 303ull}) {
    CliqueInstance inst = blowup(16, 12, 12, 0.2, 19);
    inst.graph.set_ids(shuffled_ids(inst.graph.num_nodes(), idseed));
    const auto res = delta_color_dense(inst.graph, scaled_options(12));
    EXPECT_TRUE(res.valid) << "idseed " << idseed;
  }
}

TEST(EndToEndExtra, RoundsGrowSlowlyWithN) {
  // O(log n)-type growth: quadrupling n must not triple the rounds.
  const CliqueInstance small = blowup(16, 16, 16, 0.0, 23);
  const CliqueInstance large = blowup(64, 16, 16, 0.0, 23);
  const auto rs = delta_color_dense(small.graph, scaled_options(16));
  const auto rl = delta_color_dense(large.graph, scaled_options(16));
  ASSERT_TRUE(rs.valid && rl.valid);
  EXPECT_LT(rl.ledger.total(), 3 * rs.ledger.total());
}

TEST(EndToEndExtra, TraceArtifactsConsistent) {
  const CliqueInstance inst = blowup(16, 12, 12, 0.0, 33);
  PipelineTrace trace;
  DeltaColoringOptions opt = scaled_options(12);
  opt.hard.trace = &trace;
  const auto res = delta_color_dense(inst.graph, opt);
  ASSERT_TRUE(res.valid);
  const Graph& g = inst.graph;

  // F1 is a matching of real cross edges.
  std::vector<int> touched(g.num_nodes(), 0);
  for (const auto& [u, v] : trace.f1) {
    EXPECT_TRUE(g.has_edge(u, v));
    EXPECT_NE(inst.clique_of[u], inst.clique_of[v]);
    EXPECT_LE(++touched[u], 1);
    EXPECT_LE(++touched[v], 1);
  }
  // F2 is an oriented matching of real cross edges.
  std::fill(touched.begin(), touched.end(), 0);
  for (const auto& [tail, head] : trace.f2) {
    EXPECT_TRUE(g.has_edge(tail, head));
    EXPECT_NE(inst.clique_of[tail], inst.clique_of[head]);
    EXPECT_LE(++touched[tail], 1);
    EXPECT_LE(++touched[head], 1);
  }
  // F3 references valid F2 entries, at most two outgoing per clique.
  std::map<int, int> outgoing;
  for (const int k : trace.f3_of_f2) {
    ASSERT_GE(k, 0);
    ASSERT_LT(k, static_cast<int>(trace.f2.size()));
    const auto& [tail, head] = trace.f2[static_cast<std::size_t>(k)];
    (void)head;
    EXPECT_LE(++outgoing[inst.clique_of[tail]], 2);
  }
  // Triads: live ones reference same-colored non-adjacent pairs adjacent
  // to the (initially uncolored) slack vertex.
  for (const auto& t : trace.triads) {
    if (t.dropped) continue;
    EXPECT_TRUE(g.has_edge(t.slack, t.pair_in));
    EXPECT_TRUE(g.has_edge(t.slack, t.pair_out));
    EXPECT_FALSE(g.has_edge(t.pair_in, t.pair_out));
    EXPECT_EQ(res.color[t.pair_in], res.color[t.pair_out]);
    EXPECT_EQ(res.color[t.pair_in], t.pair_color);
    EXPECT_EQ(inst.clique_of[t.slack], t.clique);
  }
  EXPECT_FALSE(trace.summary().empty());
  // DOT export sanity.
  RoundLedger tmp;
  const Acd acd = compute_acd(g, tmp, opt.acd);
  std::ostringstream os;
  trace.write_dot(os, g, acd, &res.color);
  EXPECT_NE(os.str().find("penwidth=3"), std::string::npos);
  EXPECT_NE(os.str().find("doublecircle"), std::string::npos);
}

TEST(EndToEndExtra, EmptyGraph) {
  Graph g(0, {});
  const auto res = delta_color_dense(g);
  EXPECT_TRUE(res.valid);
}

}  // namespace
}  // namespace deltacolor
