// Property-based parameterized suites: the paper's lemma invariants and
// the library's validity guarantees swept across instance families, sizes,
// parameters, seeds, and adversarial identifier assignments.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/brooks.hpp"
#include "common/rng.hpp"
#include "bench_support/workloads.hpp"
#include "core/delta_coloring.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "primitives/degree_splitting.hpp"
#include "primitives/heg.hpp"
#include "randomized/randomized_coloring.hpp"

namespace deltacolor {
namespace {

std::vector<std::uint64_t> reversed_ids(NodeId n) {
  std::vector<std::uint64_t> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = n - 1 - v;
  return ids;
}

// ---------------------------------------------------------------- pipeline

using PipelineParam = std::tuple<int, double, std::uint64_t>;  // delta, easy, seed

class PipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineSweep, DeterministicValidAndLemmasHold) {
  const auto [delta, easy, seed] = GetParam();
  CliqueInstanceOptions opt;
  opt.num_cliques = 20;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.easy_fraction = easy;
  opt.seed = seed;
  const CliqueInstance inst = clique_blowup_instance(opt);
  const auto res = delta_color_dense(inst.graph, scaled_options(delta));
  ASSERT_TRUE(res.valid) << res.summary();
  const auto& st = res.hard_stats;
  // Lemma 12: every hard clique is Type I (C_HEG) or Type II.
  EXPECT_EQ(st.type1 + st.type2, st.num_hard);
  // Lemma 13 outcome: every C_HEG clique ends with two outgoing edges.
  if (st.num_heg_cliques > 0) EXPECT_EQ(st.min_outgoing_f3, 2);
  // Lemma 15 iii): structurally, slack pair vertices per clique are
  // bounded by the clique's incoming F3 edges plus its own pair member;
  // the paper's numeric bound additionally needs Lemma 13's epsilon-tight
  // incoming bound, so it is asserted only when that holds.
  EXPECT_LE(st.max_slack_pairs_per_clique, st.max_incoming_f3 + 1);
  if (st.lemma13_ok) {
    const double pair_bound =
        0.5 * (delta - 2 * scaled_options(delta).acd.epsilon * delta - 1) +
        1;
    EXPECT_LE(st.max_slack_pairs_per_clique, pair_bound + 1e-9);
  }
  // Lemma 16.
  EXPECT_TRUE(st.lemma16_ok) << st.max_gv_degree;
  // Exactly Delta colors available, all of them typically used; at the
  // very least the palette is respected (checked by res.valid).
  EXPECT_LE(check_coloring(inst.graph, res.color).max_color, delta - 1);
}

INSTANTIATE_TEST_SUITE_P(
    DeltaEasySeed, PipelineSweep,
    ::testing::Combine(::testing::Values(10, 12, 16, 24, 32),
                       ::testing::Values(0.0, 0.15, 0.5),
                       ::testing::Values(1ull, 2ull, 3ull)));

TEST(PipelineAdversarial, ReversedIdentifiers) {
  for (const int delta : {12, 16}) {
    CliqueInstanceOptions opt;
    opt.num_cliques = 16;
    opt.delta = delta;
    opt.clique_size = delta;
    opt.easy_fraction = 0.2;
    opt.seed = 5;
    opt.shuffle_ids = false;
    CliqueInstance inst = clique_blowup_instance(opt);
    inst.graph.set_ids(reversed_ids(inst.graph.num_nodes()));
    const auto res = delta_color_dense(inst.graph, scaled_options(delta));
    EXPECT_TRUE(res.valid) << "delta " << delta;
  }
}

// --------------------------------------------------------------- randomized

using RandParam = std::tuple<int, std::uint64_t, std::uint64_t>;

class RandomizedSweep : public ::testing::TestWithParam<RandParam> {};

TEST_P(RandomizedSweep, ValidColoringAndConsistentStats) {
  const auto [delta, graph_seed, algo_seed] = GetParam();
  CliqueInstanceOptions opt;
  opt.num_cliques = 24;
  opt.delta = delta;
  opt.clique_size = delta;
  opt.seed = graph_seed;
  const CliqueInstance inst = clique_blowup_instance(opt);
  const auto res = randomized_delta_color(
      inst.graph, scaled_randomized_options(delta, algo_seed));
  ASSERT_TRUE(res.valid);
  EXPECT_EQ(res.stats.tnodes_placed + res.stats.failed_cliques,
            res.stats.num_hard);
  EXPECT_GE(res.stats.tnodes_placed, 1);
  if (res.stats.components == 0)
    EXPECT_EQ(res.stats.max_component_vertices, 0);
  EXPECT_LE(res.stats.max_component_rounds, res.ledger.total());
}

INSTANTIATE_TEST_SUITE_P(
    DeltaSeeds, RandomizedSweep,
    ::testing::Combine(::testing::Values(12, 16, 24),
                       ::testing::Values(1ull, 2ull),
                       ::testing::Values(11ull, 12ull, 13ull)));

// ---------------------------------------------------------------------- HEG

using HegParam = std::tuple<int, int, int, std::uint64_t>;  // n, delta, rank

class HegSweep : public ::testing::TestWithParam<HegParam> {};

TEST_P(HegSweep, DistributedMatchesCentralized) {
  const auto [n, delta, rank, seed] = GetParam();
  const Hypergraph h = bench::random_hypergraph(n, delta, rank, seed);
  RoundLedger ledger;
  const HegResult dist = solve_heg(h, ledger);
  const HegResult cent = solve_heg_centralized(h);
  EXPECT_EQ(dist.complete, cent.complete);
  EXPECT_TRUE(is_valid_heg(h, dist, dist.complete));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HegSweep,
    ::testing::Combine(::testing::Values(50, 200), ::testing::Values(4, 8),
                       ::testing::Values(3, 6),
                       ::testing::Values(1ull, 2ull, 3ull)));

// --------------------------------------------------------- degree splitting

class SplitFamilies : public ::testing::TestWithParam<int> {};

TEST_P(SplitFamilies, PartitionAndDiscrepancy) {
  const int which = GetParam();
  Graph g = [&]() {
    switch (which) {
      case 0:
        return torus_grid(12, 12);
      case 1:
        return random_regular(256, 12, 3);
      case 2:
        return random_graph(200, 0.08, 4);
      case 3:
        return bench::hard_instance(16, 12, 5).graph;
      default:
        return random_tree(300, 6);
    }
  }();
  RoundLedger ledger;
  const int segment = 32, levels = 2;
  const auto split = degree_split(g, levels, segment, 9, ledger);
  // Partition property.
  std::vector<int> total(g.num_nodes(), 0);
  for (int p = 0; p < split.num_parts; ++p) {
    const auto deg = part_degrees(g, split, p);
    for (NodeId v = 0; v < g.num_nodes(); ++v) total[v] += deg[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(total[v], g.degree(v));
  // Discrepancy bound (empirical form; see DESIGN.md).
  const double eps = 2.0 * levels / segment;
  for (int p = 0; p < split.num_parts; ++p) {
    const auto deg = part_degrees(g, split, p);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double expect =
          static_cast<double>(g.degree(v)) / split.num_parts;
      EXPECT_LE(std::abs(deg[v] - expect),
                eps * g.degree(v) + 3.0 * levels + 1)
          << "family " << which << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SplitFamilies, ::testing::Range(0, 5));

TEST(SplitMultigraph, ParallelEdgesSupported) {
  // The abstract splitter must handle parallel virtual edges (G_Q case).
  std::vector<std::pair<int, int>> edges;
  for (int k = 0; k < 16; ++k) edges.emplace_back(0, 1);
  for (int k = 0; k < 16; ++k) edges.emplace_back(1, 2);
  RoundLedger ledger;
  const auto split = degree_split_edges(3, edges, 1, 8, 3, ledger);
  int part0_at_0 = 0;
  for (int k = 0; k < 16; ++k)
    if (split.part[static_cast<std::size_t>(k)] == 0) ++part0_at_0;
  EXPECT_GE(part0_at_0, 4);  // near-half of node 0's sixteen edges
  EXPECT_LE(part0_at_0, 12);
}

// ------------------------------------------------------------------- Brooks

class BrooksSweep : public ::testing::TestWithParam<int> {};

TEST_P(BrooksSweep, RandomGraphsColoredOrException) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  // A random mix: G(n,p), regular, tree, plus isolated vertices.
  const NodeId n = 40 + static_cast<NodeId>(rng.below(60));
  Graph g = [&]() {
    switch (seed % 3) {
      case 0:
        return random_graph(n, 0.05 + 0.1 * rng.uniform(), seed);
      case 1:
        return random_regular(n + (n % 2), 3 + static_cast<int>(rng.below(4)),
                              seed);
      default:
        return random_tree(n, seed);
    }
  }();
  const auto res = brooks_coloring(g);
  if (res.success) {
    EXPECT_TRUE(is_delta_coloring(g, res.color)) << "seed " << seed;
  } else {
    EXPECT_TRUE(res.brooks_exception);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrooksSweep,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace deltacolor
