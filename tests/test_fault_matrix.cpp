// The fault matrix: every FaultCategory is injected through the
// FaultInjector's probe sites and must come out the other side of the
// SweepDriver caught, categorized, retried or quarantined — without
// disturbing any other cell's row. Also pins the determinism contract:
// under injected faults, rows and merged ledgers are identical between a
// serial and a parallel sweep (fault coordinates are (cell, attempt)
// addressed, never schedule-addressed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_support/sweep.hpp"
#include "bench_support/workloads.hpp"
#include "common/arena.hpp"
#include "common/errors.hpp"
#include "graph/generators.hpp"
#include "local/context.hpp"
#include "local/faults.hpp"
#include "registry/registry.hpp"

namespace deltacolor::bench {
namespace {

/// Arms `plan` for the scope of one test and disarms on exit, so the
/// process-wide injector never leaks into other tests.
class ArmedScope {
 public:
  explicit ArmedScope(std::vector<FaultSpec> plan, std::uint64_t seed = 1) {
    FaultInjector::global().arm(std::move(plan), seed);
  }
  ~ArmedScope() { FaultInjector::global().disarm(); }
};

FaultSpec spec_of(std::string_view text) {
  FaultSpec spec;
  EXPECT_TRUE(parse_fault_spec(text, &spec)) << text;
  return spec;
}

/// A small deterministic cell: charges `10 + i` rounds to "work" through a
/// LocalContext (so the phase-charge probe site runs) and returns i*i.
int run_work_cell(std::size_t i, CellContext& ctx) {
  LocalContext local(ctx.ledger(), ctx.engine());
  DefaultPhase phase(local, "work");
  local.charge(static_cast<std::int64_t>(10 + i));
  return static_cast<int>(i * i);
}

TEST(FaultSpecGrammar, ParsesCoordinatesAndPayloads) {
  const FaultSpec s = spec_of(
      "engine-exception@cell=3,round=7,phase=work,attempts=2");
  EXPECT_EQ(s.category, FaultCategory::kEngineException);
  EXPECT_EQ(s.cell, 3);
  EXPECT_EQ(s.round, 7);
  EXPECT_EQ(s.phase, "work");
  EXPECT_EQ(s.attempts, 2);

  const FaultSpec budget = spec_of("round-budget-exceeded@extra_rounds=500");
  EXPECT_EQ(budget.category, FaultCategory::kRoundBudgetExceeded);
  EXPECT_EQ(budget.extra_rounds, 500);

  const FaultSpec sleepy = spec_of("wall-clock-timeout@sleep_ms=1.5");
  EXPECT_DOUBLE_EQ(sleepy.sleep_ms, 1.5);

  FaultSpec out;
  EXPECT_FALSE(parse_fault_spec("no-such-category@cell=0", &out));
  EXPECT_FALSE(parse_fault_spec("engine-exception@bogus=1", &out));
  EXPECT_FALSE(parse_fault_spec("engine-exception@cell=", &out));
}

TEST(FaultMatrix, EngineExceptionIsCaughtAndQuarantined) {
  ArmedScope armed({spec_of("engine-exception@cell=2,attempts=0")});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.max_attempts = 2;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(5, run_work_cell);
  ASSERT_EQ(result.outcomes.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(result.outcomes[i].status, CellStatus::kOk);
    EXPECT_EQ(result.rows[i], static_cast<int>(i * i))
        << "other cells keep their rows";
  }
  const CellOutcome& oc = result.outcomes[2];
  EXPECT_EQ(oc.status, CellStatus::kQuarantined);
  EXPECT_EQ(oc.attempts, 2);
  EXPECT_EQ(oc.category, FaultCategory::kEngineException);
  EXPECT_NE(oc.error.find("injected engine exception"), std::string::npos);
  EXPECT_EQ(result.rows[2], 0) << "quarantined cell keeps the default row";
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(result.quarantined(), 1u);
}

TEST(FaultMatrix, TransientFaultRetriesThenSucceeds) {
  // attempts=1 (the default): the fault fires on attempt 0 only, so the
  // retry — which runs under attempt 1 — succeeds.
  ArmedScope armed({spec_of("engine-exception@cell=1")});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.max_attempts = 3;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(3, run_work_cell);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kRetried);
  EXPECT_EQ(result.outcomes[1].attempts, 2);
  EXPECT_EQ(result.rows[1], 1) << "the retried attempt's row is kept";
  EXPECT_TRUE(result.all_ok());
  // The re-run coordination was charged: one "retry" round in the ledger.
  EXPECT_EQ(driver.ledger().phase_total("retry"), 1);
}

TEST(FaultMatrix, RoundBudgetInflationTripsTheRealBudgetCheck) {
  // The injector inflates cell 0's "work" charge by 1000 rounds; the
  // driver's *real* budget enforcement must classify it.
  ArmedScope armed(
      {spec_of("round-budget-exceeded@cell=0,attempts=0,extra_rounds=1000")});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.round_budget = 100;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(2, run_work_cell);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kQuarantined);
  EXPECT_EQ(result.outcomes[0].category,
            FaultCategory::kRoundBudgetExceeded);
  EXPECT_NE(result.outcomes[0].error.find("budget"), std::string::npos);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kOk);
  EXPECT_EQ(result.rows[1], 1);
}

TEST(FaultMatrix, InjectedStallTripsTheRealDeadline) {
  ArmedScope armed(
      {spec_of("wall-clock-timeout@cell=1,attempts=0,sleep_ms=30")});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.deadline_ms = 5;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(2, run_work_cell);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kQuarantined);
  EXPECT_EQ(result.outcomes[1].category, FaultCategory::kWallClockTimeout);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kOk);
}

TEST(FaultMatrix, ArenaFaultSurfacesAsAllocationLimit) {
  ArmedScope armed({spec_of("allocation-limit@cell=0,attempts=0")});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(2, [](std::size_t i,
                                                  CellContext& ctx) {
    // An allocation big enough to force arena growth, so the alloc probe
    // runs (overflow blocks are not reused until reset, so this grows
    // even if earlier tests warmed the thread's arena).
    ScratchArena::Frame frame;
    (void)frame.alloc<std::uint64_t>(1 << 20);
    return run_work_cell(i, ctx);
  });
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kQuarantined);
  EXPECT_EQ(result.outcomes[0].category, FaultCategory::kAllocationLimit);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kOk);
}

TEST(FaultMatrix, ArenaByteBudgetLimitIsStructured) {
  // No injector at all: the RetryPolicy's real arena byte budget must
  // produce the same structured category.
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.arena_limit_bytes = 1024;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result =
      driver.run_cells<int>(2, [](std::size_t i, CellContext& ctx) {
        if (i == 0) {
          ScratchArena::Frame frame;
          (void)frame.alloc<std::uint64_t>(1 << 22);
        }
        return run_work_cell(i, ctx);
      });
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kQuarantined);
  EXPECT_EQ(result.outcomes[0].category, FaultCategory::kAllocationLimit);
  EXPECT_NE(result.outcomes[0].error.find("byte budget"), std::string::npos);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kOk)
      << "the limit is per-attempt and must be lifted after the cell";
}

TEST(FaultMatrix, CorruptedColoringIsCaughtByThePhaseOracle) {
  // Corrupt the partial coloring at the det pipeline's "easy" oracle site;
  // --validate=phase must turn it into a structured invariant violation.
  ArmedScope armed(
      {spec_of("invariant-violation@cell=0,attempts=0,phase=easy")});
  const CliqueInstance inst = clique_blowup_instance(
      {.num_cliques = 8, .delta = 8, .clique_size = 8, .seed = 11});
  SweepOptions opt;
  opt.workers = 1;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(
      2, [&](std::size_t /*i*/, CellContext& ctx) {
        AlgorithmRequest req;
        req.seed = 7;
        req.engine = ctx.engine();
        req.validate = ValidateMode::kPhase;
        const AlgorithmResult res = run_registered("det", inst.graph, req);
        return res.ok ? 1 : 0;
      });
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kQuarantined);
  EXPECT_EQ(result.outcomes[0].category,
            FaultCategory::kInvariantViolation);
  EXPECT_NE(result.outcomes[0].error.find("monochromatic"),
            std::string::npos);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kOk)
      << "the same pipeline, uncorrupted, passes the phase oracle";
  EXPECT_EQ(result.rows[1], 1);
}

TEST(FaultMatrix, ConcurrentFailuresKeepEveryOtherRow) {
  ArmedScope armed({spec_of("engine-exception@cell=3,attempts=0"),
                    spec_of("engine-exception@cell=11,attempts=0")});
  SweepOptions opt;
  opt.workers = 4;
  opt.retry.max_attempts = 2;
  opt.retry.quarantine = true;
  SweepDriver driver(opt);
  const auto result = driver.run_cells<int>(16, run_work_cell);
  EXPECT_EQ(result.quarantined(), 2u);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 3 || i == 11) {
      EXPECT_EQ(result.outcomes[i].status, CellStatus::kQuarantined) << i;
    } else {
      EXPECT_EQ(result.outcomes[i].status, CellStatus::kOk) << i;
      EXPECT_EQ(result.rows[i], static_cast<int>(i * i)) << i;
    }
  }
}

TEST(FaultMatrix, SerialAndParallelAgreeUnderInjectedFaults) {
  const std::vector<FaultSpec> plan = {
      spec_of("engine-exception@cell=2"),  // transient: retried
      spec_of("engine-exception@cell=5,attempts=0"),  // hard: quarantined
  };
  struct Run {
    SweepResult<int> result;
    std::int64_t work_rounds = 0;
    std::int64_t retry_rounds = 0;
  };
  const auto sweep = [&](int workers) {
    ArmedScope armed(plan, 99);
    SweepOptions opt;
    opt.workers = workers;
    opt.retry.max_attempts = 3;
    opt.retry.quarantine = true;
    SweepDriver driver(opt);
    Run run;
    run.result = driver.run_cells<int>(12, run_work_cell);
    run.work_rounds = driver.ledger().phase_total("work");
    run.retry_rounds = driver.ledger().phase_total("retry");
    return run;
  };
  const Run serial = sweep(1);
  const Run parallel = sweep(4);
  ASSERT_EQ(serial.result.rows.size(), parallel.result.rows.size());
  for (std::size_t i = 0; i < serial.result.rows.size(); ++i) {
    EXPECT_EQ(serial.result.rows[i], parallel.result.rows[i]) << i;
    EXPECT_EQ(serial.result.outcomes[i].status,
              parallel.result.outcomes[i].status)
        << i;
    EXPECT_EQ(serial.result.outcomes[i].attempts,
              parallel.result.outcomes[i].attempts)
        << i;
  }
  // Round counts (not wall-clock) must match exactly across schedules.
  EXPECT_EQ(serial.work_rounds, parallel.work_rounds);
  EXPECT_EQ(serial.retry_rounds, parallel.retry_rounds);
  EXPECT_EQ(serial.result.quarantined(), 1u);
}

TEST(FaultMatrix, LegacyRethrowStillPropagatesLowestIndex) {
  // Default policy + faults on two cells: the legacy all-or-nothing
  // contract applies, and the lowest cell index's error wins.
  // Distinct probe sites so the messages identify which cell's error won:
  // cell 1 throws at cell start, cell 4 at its "work" phase charge.
  ArmedScope armed({spec_of("engine-exception@cell=1,attempts=0"),
                    spec_of("engine-exception@cell=4,phase=work,attempts=0")});
  SweepOptions opt;
  opt.workers = 4;
  SweepDriver driver(opt);
  try {
    (void)driver.run<int>(8, run_work_cell);
    FAIL() << "expected the injected exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cell start"), std::string::npos)
        << "lowest cell index's exception must win, got: " << e.what();
  }
}

TEST(FaultMatrix, DisarmedInjectorChargesNothing) {
  FaultInjector::global().disarm();
  EXPECT_FALSE(FaultInjector::armed());
  SweepDriver driver;
  const auto rows = driver.run<int>(4, run_work_cell);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(rows[i], static_cast<int>(i * i));
  EXPECT_EQ(driver.ledger().phase_total("retry"), 0);
}

}  // namespace
}  // namespace deltacolor::bench
