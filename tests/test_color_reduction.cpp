// Tests for Kuhn-Wattenhofer color reduction and the schedule coloring it
// enables (Linial -> Delta+1 classes).
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/ledger.hpp"
#include "primitives/color_reduction.hpp"
#include "primitives/linial.hpp"

namespace deltacolor {
namespace {

std::vector<Graph> family() {
  std::vector<Graph> gs;
  gs.push_back(cycle_graph(33));
  gs.push_back(complete_graph(10));
  gs.push_back(torus_grid(7, 8));
  gs.push_back(random_regular(128, 6, 4));
  gs.push_back(random_graph(96, 0.08, 5));
  gs.push_back(random_tree(150, 6));
  return gs;
}

TEST(KwReduce, ReachesDeltaPlusOneEverywhere) {
  for (const Graph& g : family()) {
    RoundLedger ledger;
    const LinialResult lin = linial_coloring(g, ledger);
    const int target = g.max_degree() + 1;
    const LinialResult red =
        kw_reduce_graph(g, lin.color, lin.num_colors, target, ledger);
    EXPECT_LE(red.num_colors, target);
    EXPECT_TRUE(is_proper_coloring(g, red.color, target))
        << "n=" << g.num_nodes() << " Delta=" << g.max_degree();
  }
}

TEST(KwReduce, IdentityWhenAlreadyAtTarget) {
  Graph g = cycle_graph(12);
  RoundLedger ledger;
  std::vector<Color> c(12);
  for (NodeId v = 0; v < 12; ++v) c[v] = v % 3;
  const LinialResult red = kw_reduce_graph(g, c, 3, 3, ledger);
  EXPECT_EQ(red.rounds, 0);
  EXPECT_EQ(red.color, c);
}

TEST(KwReduce, RejectsTargetBelowDeltaPlusOne) {
  Graph g = complete_graph(4);
  RoundLedger ledger;
  std::vector<Color> c = {0, 1, 2, 3};
  EXPECT_THROW(kw_reduce_graph(g, c, 4, 3, ledger), std::logic_error);
}

TEST(KwReduce, RoundsAreDeltaLogShaped) {
  // Rounds ~ target * #stages with #stages ~ log(k / target).
  Graph g = random_regular(256, 8, 9);
  g.set_ids(shuffled_ids(256, 10));
  RoundLedger ledger;
  const LinialResult lin = linial_coloring(g, ledger);
  const int target = 9;
  const LinialResult red =
      kw_reduce_graph(g, lin.color, lin.num_colors, target, ledger);
  const int stages =
      static_cast<int>(std::ceil(std::log2(
          static_cast<double>(lin.num_colors) / target))) + 1;
  EXPECT_LE(red.rounds, target * (stages + 1));
  EXPECT_TRUE(is_proper_coloring(g, red.color, target));
}

TEST(KwReduce, TargetAboveDeltaPlusOneAllowed) {
  Graph g = random_regular(64, 4, 2);
  RoundLedger ledger;
  const LinialResult lin = linial_coloring(g, ledger);
  const LinialResult red =
      kw_reduce_graph(g, lin.color, lin.num_colors, 12, ledger);
  EXPECT_LE(red.num_colors, 12);
  EXPECT_TRUE(is_proper_coloring(g, red.color, 12));
}

TEST(ScheduleColoring, DeltaPlusOneClassesLogStarRounds) {
  for (const Graph& g : family()) {
    RoundLedger ledger;
    const LinialResult sch = schedule_coloring(g, ledger);
    EXPECT_LE(sch.num_colors, g.max_degree() + 1);
    EXPECT_TRUE(is_proper_coloring(g, sch.color,
                                   std::max(1, g.max_degree() + 1)));
    // O(Delta log Delta + log* n): generous numeric cap.
    const int delta = std::max(1, g.max_degree());
    EXPECT_LE(sch.rounds, delta * (8 + 2 * static_cast<int>(
                                            std::log2(delta + 1))) +
                              4 * log_star(g.num_nodes()) + 32);
  }
}

TEST(ScheduleColoring, EmptyGraph) {
  Graph g(0, {});
  RoundLedger ledger;
  const LinialResult sch = schedule_coloring(g, ledger);
  EXPECT_EQ(sch.num_colors, 1);
}

}  // namespace
}  // namespace deltacolor
