// Golden determinism tests for every algorithm in the shared registry:
//  (a) the result on a fixed instance hashes to a pinned golden value —
//      any change to RNG streams, round accounting, or schedules that
//      leaks into results fails loudly here;
//  (b) results are bit-identical across engine configurations
//      ({1 worker, full sweep} x {8 workers} x {frontier}) — the
//      SyncRunner fidelity contract, end to end through LocalContext for
//      the composed pipelines, not just leaf primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "bench_support/workloads.hpp"
#include "registry/registry.hpp"

namespace deltacolor {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

/// Order-sensitive hash of everything observable in a result: the
/// coloring, the set, the total round charge, and the palette.
std::uint64_t result_hash(const AlgorithmResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Color c : r.color) h = fnv(h, static_cast<std::uint64_t>(c) + 1);
  for (const bool b : r.in_set) h = fnv(h, b ? 2 : 1);
  h = fnv(h, static_cast<std::uint64_t>(r.ledger.total()));
  h = fnv(h, static_cast<std::uint64_t>(r.palette));
  return h;
}

struct Golden {
  std::string_view name;
  std::uint64_t hash;
};

// Pinned on hard_instance(32, 12, 5) with seed 7, serial full sweeps.
// Regenerate only for a deliberate semantic change (and say so in the
// commit): run each registry entry with EngineOptions{1, false} and
// result_hash() above.
constexpr Golden kGolden[] = {
    {"det", 0x0897fb0024162a79ULL},       // rounds=642
    {"rand", 0x93e9117833775cc2ULL},      // rounds=261
    {"brooks", 0x0d66d7ac10fbf341ULL},    // rounds=0 (centralized)
    {"greedy", 0xc01b4867bf7ce67cULL},    // rounds=78
    {"linial", 0x255301b762fc353dULL},    // rounds=0 (ids already < q^2)
    {"trial", 0xa14c1936dc8be643ULL},     // rounds=14
    {"mis", 0x4e91da99ab2d8005ULL},       // rounds=8
    {"mis-det", 0x7fe9a61a12cd7811ULL},   // rounds=78
    {"matching", 0x24480378f2461a1dULL},  // rounds=372
    {"ruling", 0x1b9600473ecd346fULL},    // rounds=9
};

TEST(GoldenPrimitives, RegistryCoversEveryGolden) {
  EXPECT_EQ(algorithm_registry().size(), std::size(kGolden));
  for (const Golden& g : kGolden)
    EXPECT_NE(find_algorithm(g.name), nullptr) << g.name;
}

TEST(GoldenPrimitives, SerialResultsMatchPinnedHashes) {
  const Graph g = bench::hard_instance(32, 12, 5).graph;
  for (const Golden& golden : kGolden) {
    AlgorithmRequest req;
    req.seed = 7;
    req.engine = {1, false};
    const AlgorithmResult res = bench::run_registered(golden.name, g, req);
    EXPECT_TRUE(res.ok) << golden.name;
    EXPECT_EQ(result_hash(res), golden.hash) << golden.name;
  }
}

TEST(GoldenPrimitives, ResultsBitIdenticalAcrossWorkersAndFrontier) {
  const Graph g = bench::hard_instance(32, 12, 5).graph;
  const EngineOptions engines[] = {{1, false}, {8, false}, {8, true}};
  for (const Golden& golden : kGolden) {
    AlgorithmResult baseline;
    bool have_baseline = false;
    for (const EngineOptions& engine : engines) {
      AlgorithmRequest req;
      req.seed = 7;
      req.engine = engine;
      const AlgorithmResult res = bench::run_registered(golden.name, g, req);
      EXPECT_TRUE(res.ok)
          << golden.name << " workers=" << engine.num_threads;
      if (!have_baseline) {
        baseline = res;
        have_baseline = true;
        continue;
      }
      EXPECT_EQ(res.color, baseline.color)
          << golden.name << " workers=" << engine.num_threads
          << " frontier=" << engine.frontier;
      EXPECT_EQ(res.in_set, baseline.in_set)
          << golden.name << " workers=" << engine.num_threads;
      EXPECT_EQ(res.ledger.total(), baseline.ledger.total())
          << golden.name << " workers=" << engine.num_threads;
      EXPECT_EQ(res.palette, baseline.palette) << golden.name;
    }
  }
}

}  // namespace
}  // namespace deltacolor
