// Tests for degree splitting (Lemma 21 / Corollary 22 role) and hyperedge
// grabbing (Lemma 5 role).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "local/ledger.hpp"
#include "primitives/degree_splitting.hpp"
#include "primitives/heg.hpp"

namespace deltacolor {
namespace {

// --- degree splitting ---------------------------------------------------------

TEST(DegreeSplit, PartitionCoversAllEdges) {
  Graph g = random_regular(200, 8, 1);
  RoundLedger ledger;
  const auto split = degree_split(g, 2, 32, 5, ledger);
  ASSERT_EQ(split.part.size(), g.num_edges());
  EXPECT_EQ(split.num_parts, 4);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(split.part[e], 0);
    EXPECT_LT(split.part[e], 4);
  }
  // part_degrees over all parts sums to the degree.
  std::vector<int> total(g.num_nodes(), 0);
  for (int p = 0; p < 4; ++p) {
    const auto deg = part_degrees(g, split, p);
    for (NodeId v = 0; v < g.num_nodes(); ++v) total[v] += deg[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(total[v], g.degree(v));
}

class SplitDiscrepancyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitDiscrepancyTest, PerNodeDiscrepancyBounded) {
  const auto [levels, degree] = GetParam();
  Graph g = random_regular(600, degree, 77 + degree);
  RoundLedger ledger;
  const int segment_length = 32;
  const auto split = degree_split(g, levels, segment_length, 9, ledger);
  const int parts = 1 << levels;
  // Corollary 22 shape: each part's per-node degree lies within
  // deg/2^i +- (eps * deg + a). Our empirical bound uses eps = 2/segment
  // per level plus the alternation defect of 3 per level.
  const double eps = 2.0 * levels / segment_length;
  const double a = 3.0 * levels + 1;
  for (int p = 0; p < parts; ++p) {
    const auto deg = part_degrees(g, split, p);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double expect = static_cast<double>(g.degree(v)) / parts;
      const double slack = eps * g.degree(v) + a;
      EXPECT_GE(deg[v], std::floor(expect - slack))
          << "node " << v << " part " << p;
      EXPECT_LE(deg[v], std::ceil(expect + slack))
          << "node " << v << " part " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LevelsAndDegrees, SplitDiscrepancyTest,
                         ::testing::Values(std::tuple{1, 8},
                                           std::tuple{1, 16},
                                           std::tuple{2, 16},
                                           std::tuple{2, 32},
                                           std::tuple{3, 32}));

TEST(DegreeSplit, SingleHalvingOnCycleIsNearPerfect) {
  // A cycle is one closed walk; alternation errs by at most the defects at
  // segment boundaries and the odd-cycle closure.
  Graph g = cycle_graph(257);
  RoundLedger ledger;
  const auto split = degree_split(g, 1, 64, 3, ledger);
  const auto deg0 = part_degrees(g, split, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_LE(deg0[v], 2);
}

TEST(DegreeSplit, RejectsBadParameters) {
  Graph g = cycle_graph(8);
  RoundLedger ledger;
  EXPECT_THROW(degree_split(g, 0, 16, 1, ledger), std::logic_error);
  EXPECT_THROW(degree_split(g, 1, 1, 1, ledger), std::logic_error);
}

// --- hyperedge grabbing -------------------------------------------------------

// Random multihypergraph with all vertex degrees >= delta and rank <= r.
Hypergraph random_heg_instance(int num_vertices, int delta, int rank,
                               std::uint64_t seed) {
  Rng rng(seed);
  Hypergraph h;
  h.num_vertices = num_vertices;
  // Enough hyperedges that average degree exceeds delta, then patch any
  // deficient vertex with extra singleton-ish edges.
  const int num_edges = (num_vertices * delta) / std::max(1, rank / 2) + 1;
  for (int f = 0; f < num_edges; ++f) {
    std::vector<int> members;
    const int size = 1 + static_cast<int>(rng.below(rank));
    for (int i = 0; i < size; ++i)
      members.push_back(static_cast<int>(rng.below(num_vertices)));
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    h.edges.push_back(std::move(members));
  }
  // Patch degrees.
  std::vector<int> deg(num_vertices, 0);
  for (const auto& e : h.edges)
    for (const int v : e) ++deg[v];
  for (int v = 0; v < num_vertices; ++v)
    while (deg[v] < delta) {
      h.edges.push_back({v});
      ++deg[v];
    }
  h.build_incidence();
  return h;
}

TEST(Heg, RankAndDegreeAccessors) {
  Hypergraph h;
  h.num_vertices = 3;
  h.edges = {{0, 1}, {1, 2, 0}, {2}};
  h.build_incidence();
  EXPECT_EQ(h.rank(), 3);
  EXPECT_EQ(h.min_degree(), 2);
}

TEST(Heg, CentralizedSolvesFeasibleInstances) {
  const Hypergraph h = random_heg_instance(60, 6, 4, 1);
  const HegResult r = solve_heg_centralized(h);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(is_valid_heg(h, r));
}

TEST(Heg, DistributedMatchesCentralizedFeasibility) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Hypergraph h = random_heg_instance(80, 7, 5, seed);
    RoundLedger ledger;
    const HegResult dist = solve_heg(h, ledger);
    const HegResult cent = solve_heg_centralized(h);
    EXPECT_EQ(dist.complete, cent.complete) << "seed " << seed;
    EXPECT_TRUE(is_valid_heg(h, dist, dist.complete));
    EXPECT_GT(ledger.total(), 0);
  }
}

TEST(Heg, SinklessOrientationViaHeg) {
  // Rank-2 HEG on a 3-regular graph == sinkless orientation: every vertex
  // grabs (orients outward) one incident edge, no edge claimed twice.
  const Graph g = random_regular(128, 3, 5);
  Hypergraph h;
  h.num_vertices = static_cast<int>(g.num_nodes());
  for (const auto& [u, v] : g.edges())
    h.edges.push_back({static_cast<int>(u), static_cast<int>(v)});
  h.build_incidence();
  EXPECT_EQ(h.rank(), 2);
  EXPECT_EQ(h.min_degree(), 3);
  RoundLedger ledger;
  const HegResult r = solve_heg(h, ledger);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(is_valid_heg(h, r));
}

TEST(Heg, InfeasibleInstanceReportsIncomplete) {
  // Two vertices, one shared hyperedge: only one can grab it.
  Hypergraph h;
  h.num_vertices = 2;
  h.edges = {{0, 1}};
  h.build_incidence();
  RoundLedger ledger;
  const HegResult r = solve_heg(h, ledger);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(is_valid_heg(h, r, /*require_complete=*/false));
  EXPECT_FALSE(solve_heg_centralized(h).complete);
}

TEST(Heg, ValidityCheckerCatchesBadGrabs) {
  Hypergraph h;
  h.num_vertices = 2;
  h.edges = {{0}, {1}, {0, 1}};
  h.build_incidence();
  HegResult r;
  r.grabbed_edge = {2, 2};  // double grab
  r.grabber = {-1, -1, 0};
  EXPECT_FALSE(is_valid_heg(h, r));
  r.grabbed_edge = {1, 2};  // vertex 0 not a member of edge 1
  EXPECT_FALSE(is_valid_heg(h, r));
  r.grabbed_edge = {0, 2};
  EXPECT_TRUE(is_valid_heg(h, r));
}

}  // namespace
}  // namespace deltacolor
