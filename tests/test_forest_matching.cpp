// Tests for Cole-Vishkin forest 3-coloring and the Panconesi-Rizzi
// O(Delta + log* n) maximal matching built on it.
#include <gtest/gtest.h>

#include "bench_support/workloads.hpp"
#include "common/rng.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/ledger.hpp"
#include "primitives/forest_coloring.hpp"
#include "primitives/maximal_matching.hpp"

namespace deltacolor {
namespace {

// Parent array of a path rooted at its last node.
std::vector<NodeId> path_parents(NodeId n) {
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId v = 0; v + 1 < n; ++v) parent[v] = v + 1;
  return parent;
}

TEST(ForestColoring, PathProper3Coloring) {
  for (const NodeId n : {2u, 3u, 17u, 1000u}) {
    const auto parent = path_parents(n);
    const auto ids = shuffled_ids(n, n);
    RoundLedger ledger;
    const auto res = forest_3_coloring(parent, ids, ledger);
    EXPECT_TRUE(is_proper_forest_coloring(parent, res.color, 3))
        << "n=" << n;
  }
}

TEST(ForestColoring, RandomForest) {
  Rng rng(5);
  const NodeId n = 4000;
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId v = 1; v < n; ++v)
    if (rng.chance(0.9)) parent[v] = static_cast<NodeId>(rng.below(v));
  RoundLedger ledger;
  const auto res = forest_3_coloring(parent, identity_ids(n), ledger);
  EXPECT_TRUE(is_proper_forest_coloring(parent, res.color, 3));
}

TEST(ForestColoring, StarAndSingletons) {
  // Star: every leaf's parent is the center; isolated roots elsewhere.
  const NodeId n = 12;
  std::vector<NodeId> parent(n, kNoNode);
  for (NodeId v = 1; v < 8; ++v) parent[v] = 0;
  RoundLedger ledger;
  const auto res = forest_3_coloring(parent, shuffled_ids(n, 3), ledger);
  EXPECT_TRUE(is_proper_forest_coloring(parent, res.color, 3));
}

TEST(ForestColoring, RoundsLogStarShaped) {
  RoundLedger l1, l2;
  const auto r1 =
      forest_3_coloring(path_parents(512), shuffled_ids(512, 1), l1);
  const auto r2 =
      forest_3_coloring(path_parents(65536), shuffled_ids(65536, 2), l2);
  EXPECT_LE(r2.rounds, r1.rounds + 3);  // log* growth is negligible
}

TEST(ForestColoring, DuplicateIdAlongEdgeThrows) {
  std::vector<NodeId> parent = {1, kNoNode};
  std::vector<std::uint64_t> ids = {7, 7};
  RoundLedger ledger;
  EXPECT_THROW(forest_3_coloring(parent, ids, ledger), std::logic_error);
}

// --- PR matching ----------------------------------------------------------

TEST(PrMatching, MaximalOnFamilies) {
  std::vector<Graph> gs;
  gs.push_back(path_graph(40));
  gs.push_back(cycle_graph(41));
  gs.push_back(complete_graph(9));
  gs.push_back(torus_grid(6, 7));
  gs.push_back(random_tree(120, 5));
  gs.push_back(random_graph(80, 0.1, 6));
  gs.push_back(random_regular(60, 4, 7));
  gs.push_back(bench::hard_instance(16, 12, 3).graph);
  for (const Graph& g : gs) {
    RoundLedger ledger;
    const auto m = maximal_matching_pr(g, ledger);
    EXPECT_TRUE(is_maximal_matching(g, m)) << "n=" << g.num_nodes();
  }
}

TEST(PrMatching, AdversarialIds) {
  Graph g = random_regular(128, 6, 9);
  std::vector<std::uint64_t> ids(128);
  for (NodeId v = 0; v < 128; ++v) ids[v] = 127 - v;
  g.set_ids(ids);
  RoundLedger ledger;
  const auto m = maximal_matching_pr(g, ledger);
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(PrMatching, FewerRoundsThanEdgeColoringVariant) {
  const Graph g = bench::hard_instance(32, 32, 5).graph;
  RoundLedger pr, ec;
  const auto m1 = maximal_matching_pr(g, pr);
  const auto m2 = maximal_matching_deterministic(g, ec);
  EXPECT_TRUE(is_maximal_matching(g, m1));
  EXPECT_TRUE(is_maximal_matching(g, m2));
  // O(Delta + log* n) vs O(Delta log Delta + log* n) with dilation-2
  // line-graph rounds: PR wins clearly at Delta = 32.
  EXPECT_LT(pr.total(), ec.total());
}

TEST(PrMatching, EdgelessAndTiny) {
  Graph g0(5, {});
  RoundLedger l;
  EXPECT_TRUE(maximal_matching_pr(g0, l).empty());
  Graph g1(2, {{0, 1}});
  const auto m = maximal_matching_pr(g1, l);
  EXPECT_TRUE(is_maximal_matching(g1, m));
}

}  // namespace
}  // namespace deltacolor
