// Tests for the baselines: centralized Brooks (ground truth), distributed
// greedy (Delta+1), and the layered loophole baseline.
#include <gtest/gtest.h>

#include "acd/acd.hpp"
#include "baselines/baselines.hpp"
#include "baselines/brooks.hpp"
#include "core/loopholes.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"

namespace deltacolor {
namespace {

TEST(Brooks, LowDegreeVertexGraphs) {
  for (const NodeId n : {5u, 12u, 33u}) {
    Graph g = random_tree(n, n);
    const auto res = brooks_coloring(g);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(is_delta_coloring(g, res.color));
  }
  Graph p = path_graph(9);
  const auto res = brooks_coloring(p);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(p, res.color));
}

TEST(Brooks, EvenCycleTwoColors) {
  Graph g = cycle_graph(8);
  const auto res = brooks_coloring(g);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(g, res.color));
}

TEST(Brooks, OddCycleIsException) {
  Graph g = cycle_graph(9);
  const auto res = brooks_coloring(g);
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.brooks_exception);
}

TEST(Brooks, CompleteGraphIsException) {
  Graph g = complete_graph(5);
  const auto res = brooks_coloring(g);
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.brooks_exception);
}

TEST(Brooks, CompleteMinusEdgeColorable) {
  // K5 minus one edge: Delta = 4, Brooks applies.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 5; ++i)
    for (NodeId j = i + 1; j < 5; ++j)
      if (!(i == 0 && j == 1)) edges.emplace_back(i, j);
  Graph g(5, std::move(edges));
  const auto res = brooks_coloring(g);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(g, res.color));
}

TEST(Brooks, RegularGraphsViaLovaszTriple) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Graph g = random_regular(24, 3, seed);
    const auto res = brooks_coloring(g);
    ASSERT_TRUE(res.success) << "seed " << seed;
    EXPECT_TRUE(is_delta_coloring(g, res.color)) << "seed " << seed;
  }
  Graph t = torus_grid(5, 6);  // 4-regular, 2-connected
  const auto res = brooks_coloring(t);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(t, res.color));
}

TEST(Brooks, ArticulationPointRegularGraph) {
  // Two K4-minus-edge gadgets joined at a shared vertex to make it
  // 3-regular with a cut vertex: barbell of two K4s sharing... simplest:
  // two triangles sharing a vertex is 4-regular at the middle? Use two K4s
  // with a middle vertex replacing one vertex of each — construct
  // explicitly: vertices 0..2 + x=3 form K4; vertices 4..6 + x form K4.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 3; ++i) {
    edges.emplace_back(i, 3);
    for (NodeId j = i + 1; j < 3; ++j) edges.emplace_back(i, j);
  }
  for (NodeId i = 4; i < 7; ++i) {
    edges.emplace_back(i, 3);
    for (NodeId j = i + 1; j < 7; ++j) edges.emplace_back(i, j);
  }
  Graph g(7, std::move(edges));
  EXPECT_EQ(g.max_degree(), 6);  // x has degree 6, others 3
  const auto res = brooks_coloring(g);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(g, res.color));
}

TEST(Brooks, DenseInstancesAreDeltaColorable) {
  // Ground truth for the distributed pipeline's inputs.
  for (const double easy : {0.0, 0.5}) {
    CliqueInstanceOptions opt;
    opt.num_cliques = 12;
    opt.delta = 12;
    opt.clique_size = 12;
    opt.easy_fraction = easy;
    opt.seed = 7;
    const CliqueInstance inst = clique_blowup_instance(opt);
    const auto res = brooks_coloring(inst.graph);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(is_delta_coloring(inst.graph, res.color));
  }
}

TEST(Brooks, DisconnectedMix) {
  // A path, an even cycle and an isolated vertex in one graph.
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}};
  for (NodeId i = 3; i < 9; ++i)
    edges.emplace_back(i, i == 8 ? 3 : i + 1);
  Graph g(10, std::move(edges));
  const auto res = brooks_coloring(g);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_delta_coloring(g, res.color));
}

// --- greedy (Delta+1) ---------------------------------------------------------

TEST(GreedyPlusOne, ColorsEverythingWithOneExtraColor) {
  CliqueInstanceOptions opt;
  opt.num_cliques = 12;
  opt.delta = 12;
  opt.clique_size = 12;
  opt.seed = 9;
  const CliqueInstance inst = clique_blowup_instance(opt);
  RoundLedger ledger;
  const auto color = greedy_delta_plus_one(inst.graph, ledger);
  EXPECT_TRUE(is_proper_coloring(inst.graph, color,
                                 inst.graph.max_degree() + 1));
  EXPECT_GT(ledger.total(), 0);
}

TEST(GreedyPlusOne, CompleteGraphNeedsTheExtraColor) {
  Graph g = complete_graph(6);  // Delta = 5, chi = 6
  RoundLedger ledger;
  const auto color = greedy_delta_plus_one(g, ledger);
  EXPECT_TRUE(is_proper_coloring(g, color, 6));
}

// --- layered loophole baseline ---------------------------------------------------

TEST(LayeredBaseline, SucceedsOnEasyInstancesFailsOnHard) {
  RoundLedger ledger;
  // Easy ring: loopholes everywhere, layering succeeds.
  const CliqueInstance ring = clique_ring(12, 8, 5);
  {
    RoundLedger l2;
    const Acd acd = compute_acd(ring.graph, l2, AcdParams{0.4, -1, 20});
    const auto lps = find_loopholes_dense(ring.graph, acd, l2);
    const auto res = layered_loophole_coloring(ring.graph, lps, ledger);
    EXPECT_TRUE(res.success);
    EXPECT_TRUE(is_delta_coloring(ring.graph, res.color));
  }
  // Hard blow-up: no loopholes at all — the baseline stalls.
  {
    CliqueInstanceOptions opt;
    opt.num_cliques = 12;
    opt.delta = 12;
    opt.clique_size = 12;
    opt.seed = 3;
    const CliqueInstance inst = clique_blowup_instance(opt);
    RoundLedger l2;
    AcdParams p;
    p.epsilon = std::max(kAcdEpsilon, 2.5 / 12);
    const Acd acd = compute_acd(inst.graph, l2, p);
    const auto lps = find_loopholes_dense(inst.graph, acd, l2);
    const auto res = layered_loophole_coloring(inst.graph, lps, ledger);
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.unreachable, inst.graph.num_nodes());
  }
}

TEST(LayeredBaseline, LayerCountTracksDistanceToLoopholes) {
  // On a long clique ring, layers ~ ring length (linear rounds) — the
  // contrast with the O(log n) slack-triad pipeline.
  RoundLedger ledger;
  const CliqueInstance shortring = clique_ring(6, 6, 1);
  const CliqueInstance longring = clique_ring(30, 6, 1);
  RoundLedger tmp;
  const AcdParams p{0.5, -1, 20};
  const auto l1 = find_loopholes_dense(
      shortring.graph, compute_acd(shortring.graph, tmp, p), tmp);
  const auto l2 = find_loopholes_dense(
      longring.graph, compute_acd(longring.graph, tmp, p), tmp);
  const auto r1 = layered_loophole_coloring(shortring.graph, l1, ledger);
  const auto r2 = layered_loophole_coloring(longring.graph, l2, ledger);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_LE(r1.layers, r2.layers);
}

}  // namespace
}  // namespace deltacolor
