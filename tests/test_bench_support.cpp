// Tests for the bench-support layer added for the concurrent experiment
// suite: the keyed InstanceCache (hit/miss accounting, identity of cached
// pointers, single-flight generation, graph-build charging) and the
// SweepDriver (index-addressed determinism serial vs parallel, ledger
// merging, engine serialization under a parallel sweep, exception order).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_support/instance_cache.hpp"
#include "bench_support/sweep.hpp"
#include "bench_support/workloads.hpp"
#include "common/thread_pool.hpp"
#include "local/ledger.hpp"

namespace deltacolor::bench {
namespace {

TEST(InstanceCache, HitsShareMissesBuild) {
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  const auto before = cache.stats();

  RoundLedger ledger;
  const auto a = cache.regular(64, 3, 5, &ledger);
  const auto b = cache.regular(64, 3, 5, &ledger);
  EXPECT_EQ(a.get(), b.get()) << "equal keys must share one instance";
  // The miss charged its generation time to the builder's ledger.
  EXPECT_GE(ledger.phase_time("graph-build"), 0.0);

  const auto c = cache.regular(64, 3, 6, &ledger);  // different seed
  const auto d = cache.regular(66, 3, 5, &ledger);  // different n
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());

  const auto after = cache.stats();
  EXPECT_EQ(after.misses - before.misses, 3u);
  EXPECT_EQ(after.hits - before.hits, 1u);
}

TEST(InstanceCache, KeysCoverEveryBlowupOption) {
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  CliqueInstanceOptions opt;
  opt.num_cliques = 8;
  opt.delta = 8;
  opt.clique_size = 8;
  opt.seed = 3;
  const auto base = cache.blowup(opt);
  auto easy = opt;
  easy.easy_fraction = 0.5;
  auto unshuffled = opt;
  unshuffled.shuffle_ids = false;
  EXPECT_NE(base.get(), cache.blowup(easy).get());
  EXPECT_NE(base.get(), cache.blowup(unshuffled).get());
  EXPECT_EQ(base.get(), cache.blowup(opt).get());
}

TEST(InstanceCache, ClearDropsEntriesButKeepsOutstandingPointers) {
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  const auto held = cache.regular(32, 3, 9);
  const NodeId n = held->num_nodes();
  cache.clear();
  EXPECT_EQ(held->num_nodes(), n) << "outstanding pointers stay valid";
  const auto rebuilt = cache.regular(32, 3, 9);
  EXPECT_NE(held.get(), rebuilt.get()) << "clear() forces regeneration";
}

TEST(InstanceCache, SingleFlightUnderConcurrency) {
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  const auto before = cache.stats();
  constexpr int kWorkers = 4;
  std::vector<std::shared_ptr<const Graph>> got(kWorkers);
  ThreadPool::shared(kWorkers).for_range(
      0, kWorkers, [&](int w, std::size_t, std::size_t) {
        got[w] = cache.regular(256, 3, 11);
      });
  for (int w = 1; w < kWorkers; ++w) EXPECT_EQ(got[0].get(), got[w].get());
  const auto after = cache.stats();
  EXPECT_EQ(after.misses - before.misses, 1u)
      << "concurrent requesters must coalesce onto one generation";
}

TEST(InstanceCache, ThrowingGeneratorDoesNotWedgeTheSlot) {
  // Regression: with the old std::once_flag latch, a generator throwing
  // inside the single-flight section left concurrent waiters blocked
  // forever (libstdc++ pthread_once). The slot must instead return to
  // empty so the next requester rebuilds.
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  std::atomic<int> builds{0};
  const auto failing = [&]() -> Graph {
    builds.fetch_add(1);
    throw std::runtime_error("generator failed");
  };
  EXPECT_THROW((void)cache.custom_graph("flaky", failing),
               std::runtime_error);
  // Second call must attempt a fresh build (not hang, not serve a
  // half-built value) and succeed with a working generator.
  const auto built = cache.custom_graph("flaky", [&]() {
    builds.fetch_add(1);
    return Graph(2, {{0, 1}});
  });
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(built->num_nodes(), 2u);
  EXPECT_EQ(builds.load(), 2) << "one failed build + one rebuild";
  // And the slot is now ready: further calls are hits, generator unused.
  const auto again = cache.custom_graph(
      "flaky", [&]() -> Graph { throw std::logic_error("must not run"); });
  EXPECT_EQ(again.get(), built.get());
}

TEST(InstanceCache, ThrowingGeneratorReleasesConcurrentWaiters) {
  InstanceCache& cache = InstanceCache::global();
  cache.clear();
  constexpr int kWorkers = 4;
  std::atomic<int> failures{0};
  std::vector<std::shared_ptr<const Graph>> got(kWorkers);
  // Every worker requests the same key with a generator that throws on
  // the first build. Exactly one requester sees the exception; the rest
  // either rebuild (their generator succeeds after the failure) or share
  // the rebuilt value. Nobody deadlocks.
  std::atomic<bool> failed_once{false};
  ThreadPool::shared(kWorkers).for_range(
      0, kWorkers, [&](int w, std::size_t, std::size_t) {
        try {
          got[w] = cache.custom_graph("contended-flaky", [&]() -> Graph {
            if (!failed_once.exchange(true))
              throw std::runtime_error("first build fails");
            return Graph(3, {{0, 1}, {1, 2}});
          });
        } catch (const std::runtime_error&) {
          failures.fetch_add(1);
        }
      });
  EXPECT_EQ(failures.load(), 1)
      << "the exception reaches only the requester that ran the generator";
  const Graph* value = nullptr;
  for (int w = 0; w < kWorkers; ++w) {
    if (got[w] == nullptr) continue;
    if (value == nullptr) value = got[w].get();
    EXPECT_EQ(got[w].get(), value) << "survivors share one instance";
  }
  ASSERT_NE(value, nullptr) << "at least one requester rebuilt";
}

TEST(SweepDriver, RowsAreIndexAddressed) {
  SweepOptions opt;
  opt.workers = 1;
  SweepDriver driver(opt);
  const auto rows = driver.run<int>(
      8, [](std::size_t i, CellContext&) { return static_cast<int>(i * i); });
  ASSERT_EQ(rows.size(), 8u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i], static_cast<int>(i * i));
}

TEST(SweepDriver, ParallelMatchesSerial) {
  const auto cell = [](std::size_t i, CellContext& ctx) {
    ctx.ledger().charge("work", static_cast<std::int64_t>(i) + 1);
    return static_cast<int>(3 * i + 1);
  };
  SweepOptions serial_opt;
  serial_opt.workers = 1;
  SweepDriver serial(serial_opt);
  const auto want = serial.run<int>(16, cell);

  SweepOptions par_opt;
  par_opt.workers = 4;
  SweepDriver parallel(par_opt);
  const auto got = parallel.run<int>(16, cell);

  EXPECT_EQ(got, want);
  // Round counts merge identically regardless of schedule: 1 + 2 + ... + 16.
  EXPECT_EQ(serial.ledger().phase_total("work"), 136);
  EXPECT_EQ(parallel.ledger().phase_total("work"), 136);
}

TEST(SweepDriver, ParallelSweepSerializesCellEngines) {
  SweepOptions opt;
  opt.workers = 4;
  opt.cell_engine = EngineOptions{8, true};
  SweepDriver driver(opt);
  driver.run<int>(8, [&](std::size_t, CellContext& ctx) {
    // One layer parallelizes, never both: the sweep owns the pool, so the
    // cell's engine must come back serial with frontier preserved.
    EXPECT_EQ(ctx.engine().num_threads, 1);
    EXPECT_TRUE(ctx.engine().frontier);
    return 0;
  });

  SweepOptions serial_opt = opt;
  serial_opt.workers = 1;
  SweepDriver serial(serial_opt);
  serial.run<int>(2, [&](std::size_t, CellContext& ctx) {
    EXPECT_EQ(ctx.engine().num_threads, 8)
        << "a serial sweep passes the caller's engine through";
    EXPECT_TRUE(ctx.engine().frontier);
    return 0;
  });
}

TEST(SweepDriver, LowestIndexExceptionWins) {
  for (const int workers : {1, 4}) {
    SweepOptions opt;
    opt.workers = workers;
    SweepDriver driver(opt);
    try {
      driver.run<int>(12, [](std::size_t i, CellContext&) -> int {
        if (i == 3 || i == 9) throw std::runtime_error("cell " +
                                                       std::to_string(i));
        return 0;
      });
      FAIL() << "expected the cell exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 3");
    }
  }
}

TEST(SweepDriver, CachedCellsReportHitsAndSeparatePhases) {
  InstanceCache::global().clear();
  SweepOptions opt;
  opt.workers = 1;
  SweepDriver driver(opt);
  const auto rows =
      driver.run<NodeId>(4, [](std::size_t, CellContext& ctx) {
        return cached_regular(128, 3, 21, &ctx.ledger())->num_nodes();
      });
  for (const NodeId n : rows) EXPECT_EQ(n, 128u);
  // One miss builds, three hits share; the merged ledger keeps generation
  // ("graph-build") and cell time ("cell") as separate phases.
  EXPECT_GE(driver.ledger().phase_time("cell"), 0.0);
  EXPECT_NE(driver.report().find("cache_hits=3"), std::string::npos)
      << driver.report();
  EXPECT_NE(driver.report().find("cache_misses=1"), std::string::npos);
}

}  // namespace
}  // namespace deltacolor::bench
