// Tests for the shared algorithm registry: lookup, the did-you-mean
// suggestions dcolor prints for unknown names, and the run contract the
// CLI and the benches both rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bench_support/workloads.hpp"
#include "graph/checker.hpp"
#include "registry/registry.hpp"

namespace deltacolor {
namespace {

TEST(Registry, FindsEveryRegisteredName) {
  for (const AlgorithmEntry& e : algorithm_registry()) {
    const AlgorithmEntry* found = find_algorithm(e.name);
    ASSERT_NE(found, nullptr) << e.name;
    EXPECT_EQ(found->name, e.name);
    EXPECT_FALSE(found->description.empty()) << e.name;
  }
}

TEST(Registry, UnknownNamesReturnNull) {
  EXPECT_EQ(find_algorithm("no-such-algorithm"), nullptr);
  EXPECT_EQ(find_algorithm(""), nullptr);
  EXPECT_EQ(find_algorithm("DET"), nullptr);  // lookups are case-sensitive
}

TEST(Registry, SuggestsCloseNamesForTypos) {
  const auto det = suggest_algorithms("detr");
  ASSERT_FALSE(det.empty());
  EXPECT_EQ(det.front(), "det");

  const auto matching = suggest_algorithms("matchng");
  ASSERT_FALSE(matching.empty());
  EXPECT_EQ(matching.front(), "matching");

  const auto mis = suggest_algorithms("mis-dt");
  ASSERT_FALSE(mis.empty());
  EXPECT_EQ(mis.front(), "mis-det");
}

TEST(Registry, DoesNotSuggestForGibberish) {
  EXPECT_TRUE(suggest_algorithms("qqqqqqqqqqqqqqqq").empty());
}

TEST(Registry, SuggestionsRespectMaxResults) {
  EXPECT_LE(suggest_algorithms("m", 2).size(), 2u);
}

TEST(Registry, RunProducesValidatedResults) {
  const Graph g = bench::hard_instance(16, 8, 9).graph;
  for (const AlgorithmEntry& e : algorithm_registry()) {
    AlgorithmRequest req;
    req.seed = 11;
    const AlgorithmResult res = e.run(g, req);
    EXPECT_TRUE(res.ok) << e.name;
    EXPECT_FALSE(res.summary.empty()) << e.name;
    // Every entry yields a coloring or a set; never neither.
    EXPECT_TRUE(!res.color.empty() || !res.in_set.empty()) << e.name;
    if (!res.color.empty() && res.palette > 0)
      EXPECT_TRUE(is_proper_coloring(g, res.color, res.palette)) << e.name;
  }
}

TEST(Registry, BenchHelperResolvesByName) {
  const Graph g = bench::hard_instance(8, 6, 2).graph;
  const AlgorithmResult res = bench::run_registered("greedy", g);
  EXPECT_TRUE(res.ok);
  EXPECT_GT(res.ledger.total(), 0);
}

}  // namespace
}  // namespace deltacolor
