// Equivalence suite for the sort-free CSR builder: the counting-sort
// constructor (serial and pool-parallel, with every hint combination) must
// reproduce the legacy sort+unique builder (`Graph::legacy_build`, kept as
// the oracle) bit for bit — same edge list, neighbor order, arc/edge
// alignment, offsets, and max degree — on random edge soups and on every
// generator family.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace deltacolor {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

// Exact structural equality through the public API: edges() pins edge ids,
// neighbors()/incident_edges() pin the CSR arrays, and the per-node spans
// walk offsets_ so any offset drift shows up as a span mismatch.
void expect_identical(const Graph& got, const Graph& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  EXPECT_EQ(got.max_degree(), want.max_degree());
  const auto got_edges = got.edges();
  const auto want_edges = want.edges();
  EXPECT_TRUE(std::equal(got_edges.begin(), got_edges.end(),
                         want_edges.begin(), want_edges.end()));
  for (NodeId v = 0; v < want.num_nodes(); ++v) {
    const auto gn = got.neighbors(v);
    const auto wn = want.neighbors(v);
    ASSERT_EQ(gn.size(), wn.size()) << "degree mismatch at node " << v;
    EXPECT_TRUE(std::equal(gn.begin(), gn.end(), wn.begin()))
        << "adjacency mismatch at node " << v;
    const auto ge = got.incident_edges(v);
    const auto we = want.incident_edges(v);
    ASSERT_EQ(ge.size(), we.size());
    EXPECT_TRUE(std::equal(ge.begin(), ge.end(), we.begin()))
        << "arc/edge alignment mismatch at node " << v;
  }
}

// A messy edge list: reversed pairs, duplicates (both orders), and a
// skewed degree distribution so some counting-sort buckets are large.
EdgeList random_soup(NodeId n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(m);
  while (edges.size() < m) {
    NodeId u = static_cast<NodeId>(rng.below(n));
    // Skew: half the endpoints land in the first quarter of the id space.
    NodeId v = static_cast<NodeId>(rng.below(rng.chance(0.5) ? n : n / 4 + 1));
    if (u == v) continue;
    if (rng.chance(0.5)) std::swap(u, v);  // deliberately denormalized
    edges.emplace_back(u, v);
    if (rng.chance(0.3)) edges.push_back(edges.back());  // duplicates
  }
  return edges;
}

EdgeList normalized_unique(EdgeList edges) {
  for (auto& [u, v] : edges)
    if (u > v) std::swap(u, v);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

TEST(CsrBuilder, MatchesLegacyOnRandomSoup) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const NodeId n = 200 + 50 * static_cast<NodeId>(seed);
    const EdgeList soup = random_soup(n, 8 * n, seed);
    const Graph want = Graph::legacy_build(n, soup);
    expect_identical(Graph(n, soup), want);
    expect_identical(Graph(n, soup, kUnsortedEdges), want);
  }
}

TEST(CsrBuilder, HintedPathsMatchLegacy) {
  const NodeId n = 300;
  const EdgeList soup = random_soup(n, 6 * n, 7);
  const Graph want = Graph::legacy_build(n, soup);
  const EdgeList clean = normalized_unique(soup);
  expect_identical(Graph(n, clean, kSortedUniqueEdges), want);
  expect_identical(Graph(n, clean, kNormalizedUniqueEdges), want);
  expect_identical(Graph(n, clean, EdgeListHints{true, false, false}), want);
  // Sorted-but-not-unique: duplicates adjacent after the sort.
  EdgeList sorted_dups = soup;
  for (auto& [u, v] : sorted_dups)
    if (u > v) std::swap(u, v);
  std::sort(sorted_dups.begin(), sorted_dups.end());
  expect_identical(Graph(n, sorted_dups, EdgeListHints{true, false, true}),
                   want);
}

TEST(CsrBuilder, ParallelBuildIsBitIdentical) {
  const NodeId n = 500;
  const EdgeList soup = random_soup(n, 10 * n, 11);
  const Graph want = Graph::legacy_build(n, soup);
  for (const int workers : {2, 3, 8}) {
    ThreadPool& pool = ThreadPool::shared(workers);
    expect_identical(Graph(n, soup, kUnsortedEdges, &pool), want);
    expect_identical(
        Graph(n, normalized_unique(soup), kSortedUniqueEdges, &pool), want);
  }
}

TEST(CsrBuilder, RejectsSelfLoopsAndOutOfRange) {
  EXPECT_THROW(Graph(4, {{2, 2}}), std::logic_error);
  EXPECT_THROW(Graph(4, {{0, 1}, {3, 3}}, kUnsortedEdges), std::logic_error);
  EXPECT_THROW(Graph(3, {{0, 7}}), std::logic_error);
  EXPECT_THROW(Graph::legacy_build(4, {{2, 2}}), std::logic_error);
}

TEST(CsrBuilder, IsolatedNodesAndEmptyGraphs) {
  expect_identical(Graph(0, {}), Graph::legacy_build(0, {}));
  expect_identical(Graph(9, {}), Graph::legacy_build(9, {}));
  const EdgeList one = {{7, 3}};
  expect_identical(Graph(9, one), Graph::legacy_build(9, one));
}

// Every generator family must survive its declared hints: the generators
// hand the builder pre-structured edge lists, so a wrong promise would
// surface here as a mismatch against rebuilding from the raw edge pairs.
TEST(CsrBuilder, GeneratorFamiliesMatchRebuild) {
  const auto check = [](const Graph& g) {
    expect_identical(g, Graph::legacy_build(
                            g.num_nodes(),
                            EdgeList(g.edges().begin(), g.edges().end())));
  };
  check(path_graph(17));
  check(cycle_graph(12));
  check(complete_graph(9));
  check(complete_bipartite(5, 8));
  check(star_graph(10));
  check(torus_grid(6, 7));
  check(random_tree(64, 5));
  check(random_graph(80, 0.1, 6));
  check(random_regular(64, 4, 7));
  CliqueInstanceOptions opt;
  opt.num_cliques = 16;
  opt.delta = 8;
  opt.clique_size = 8;
  opt.easy_fraction = 0.25;
  opt.seed = 9;
  check(clique_blowup_instance(opt).graph);
  check(clique_ring(8, 6, 3).graph);
}

}  // namespace
}  // namespace deltacolor
