// Tests for the parallel sparse-activation execution engine:
//  (a) states bit-identical across worker counts {1, 2, 8} and equal to an
//      independent serial reference of the pre-change engine semantics, on
//      Luby MIS and color-trial workloads;
//  (b) frontier mode reaches the same fixpoint in the same number of
//      rounds as full sweeps (odd cycle, clique blow-up);
//  (c) RoundLedger wall-clock totals are monotone and merge per phase.
#include <gtest/gtest.h>

#include <numeric>

#include "bench_support/workloads.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/message_passing.hpp"
#include "local/sync_runner.hpp"

namespace deltacolor {
namespace {

std::vector<Graph> family() {
  std::vector<Graph> gs;
  gs.push_back(cycle_graph(31));  // odd cycle
  gs.push_back(random_regular(200, 5, 3));
  gs.push_back(random_graph(150, 0.06, 4));
  gs.push_back(bench::hard_instance(16, 12, 8).graph);
  return gs;
}

// ---------------------------------------------------------------------------
// Independent references for the pre-change serial engine semantics: plain
// double-buffered sweeps with a per-node round counter, transcribed from the
// original message_passing.cpp. The engine must reproduce these bit-exactly.

std::vector<bool> reference_mis(const Graph& g, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  enum class St : std::uint8_t { kUndecided, kCandidate, kIn, kOut };
  struct S {
    St status = St::kUndecided;
    std::uint64_t draw = 0;
  };
  std::vector<S> cur(n), nxt(n);
  const int max_rounds = 128 * (32 - __builtin_clz(n + 2));
  auto done = [&] {
    for (const S& s : cur)
      if (s.status == St::kUndecided || s.status == St::kCandidate)
        return false;
    return true;
  };
  int round = 0;
  for (; round < max_rounds && !done(); ++round) {
    for (NodeId v = 0; v < n; ++v) {
      S s = cur[v];
      if (s.status == St::kIn || s.status == St::kOut) {
        nxt[v] = s;
        continue;
      }
      if (round % 2 == 0) {
        s.draw = hash_mix(seed, g.id(v),
                          static_cast<std::uint64_t>(round)) |
                 1;
        s.status = St::kCandidate;
        nxt[v] = s;
        continue;
      }
      bool is_max = true;
      bool out = false;
      for (const NodeId u : g.neighbors(v)) {
        const S& nb = cur[u];
        if (nb.status == St::kIn) {
          out = true;
          break;
        }
        if (nb.status != St::kCandidate) continue;
        if (nb.draw > s.draw || (nb.draw == s.draw && g.id(u) > g.id(v)))
          is_max = false;
      }
      s.status = out ? St::kOut : (is_max ? St::kIn : St::kUndecided);
      nxt[v] = s;
    }
    cur.swap(nxt);
  }
  std::vector<bool> in_set(n, false);
  for (NodeId v = 0; v < n; ++v) in_set[v] = cur[v].status == St::kIn;
  return in_set;
}

std::vector<Color> reference_color_trial(const Graph& g,
                                         std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  const int palette = g.max_degree() + 1;
  struct S {
    Color color = kNoColor;
    Color trial = kNoColor;
  };
  std::vector<S> cur(n), nxt(n);
  const int max_rounds = 128 * (32 - __builtin_clz(n + 2));
  auto done = [&] {
    for (const S& s : cur)
      if (s.color == kNoColor) return false;
    return true;
  };
  int round = 0;
  for (; round < max_rounds && !done(); ++round) {
    for (NodeId v = 0; v < n; ++v) {
      S s = cur[v];
      if (s.color != kNoColor) {
        nxt[v] = s;
        continue;
      }
      if (round % 2 == 0) {
        std::vector<bool> used(static_cast<std::size_t>(palette), false);
        for (const NodeId u : g.neighbors(v))
          if (cur[u].color != kNoColor)
            used[static_cast<std::size_t>(cur[u].color)] = true;
        std::vector<Color> free;
        for (Color c = 0; c < palette; ++c)
          if (!used[static_cast<std::size_t>(c)]) free.push_back(c);
        s.trial = free[hash_mix(seed, g.id(v),
                                static_cast<std::uint64_t>(round)) %
                       free.size()];
        nxt[v] = s;
        continue;
      }
      bool clash = false;
      for (const NodeId u : g.neighbors(v))
        if (cur[u].trial == s.trial || cur[u].color == s.trial) clash = true;
      if (!clash) s.color = s.trial;
      s.trial = kNoColor;
      nxt[v] = s;
    }
    cur.swap(nxt);
  }
  std::vector<Color> color(n);
  for (NodeId v = 0; v < n; ++v) color[v] = cur[v].color;
  return color;
}

// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_workers(), 8);
  for (const std::size_t size : {0u, 1u, 7u, 8u, 1000u}) {
    std::vector<int> hits(size, 0);
    pool.for_range(0, size, [&](int, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0u), size);
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  std::size_t total = 0;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::size_t> per_worker(4, 0);
    pool.for_range(0, 997, [&](int w, std::size_t b, std::size_t e) {
      per_worker[static_cast<std::size_t>(w)] = e - b;
    });
    total += std::accumulate(per_worker.begin(), per_worker.end(),
                             std::size_t{0});
  }
  EXPECT_EQ(total, 50u * 997u);
}

TEST(SyncRunnerParallel, MisBitIdenticalAcrossWorkersAndReference) {
  for (const Graph& g : family()) {
    const auto expected = reference_mis(g, 55);
    for (const int workers : {1, 2, 8}) {
      for (const bool frontier : {false, true}) {
        RoundLedger ledger;
        const auto got = mis_message_passing(
            g, 55, ledger, "mis-mp", EngineOptions{workers, frontier});
        EXPECT_EQ(got, expected)
            << "n=" << g.num_nodes() << " workers=" << workers
            << " frontier=" << frontier;
        EXPECT_TRUE(is_maximal_independent_set(g, got));
      }
    }
  }
}

TEST(SyncRunnerParallel, ColorTrialBitIdenticalAcrossWorkersAndReference) {
  for (const Graph& g : family()) {
    const auto expected = reference_color_trial(g, 77);
    for (const int workers : {1, 2, 8}) {
      for (const bool frontier : {false, true}) {
        RoundLedger ledger;
        const auto got = color_trial_message_passing(
            g, 77, ledger, "trial", EngineOptions{workers, frontier});
        EXPECT_EQ(got, expected)
            << "n=" << g.num_nodes() << " workers=" << workers
            << " frontier=" << frontier;
        EXPECT_TRUE(is_proper_coloring(g, got, g.max_degree() + 1));
      }
    }
  }
}

TEST(SyncRunnerParallel, GenericStateBitIdenticalAcrossSchedules) {
  // A round-dependent, neighbor-dependent transition on a custom state:
  // every schedule (worker count, frontier on/off) must produce the same
  // trajectory because writes are confined to the shadow buffer.
  struct S {
    std::uint64_t acc = 0;
    bool frozen = false;
    bool operator==(const S&) const = default;
  };
  const Graph g = random_regular(300, 6, 11);
  auto step = [&](const SyncRunner<S>::View& view) {
    S s = view.self();
    if (s.frozen) return s;
    std::uint64_t mix = hash_mix(9, view.id(),
                                 static_cast<std::uint64_t>(view.round()));
    for (const NodeId u : view.neighbors()) mix ^= view.neighbor(u).acc;
    s.acc = splitmix64(mix);
    if (s.acc % 5 == 0) s.frozen = true;
    return s;
  };
  auto never = [](const std::vector<S>&) { return false; };

  SyncRunner<S> serial(g, std::vector<S>(300), EngineOptions{1, false});
  serial.run(40, step, never);
  for (const int workers : {2, 8}) {
    SyncRunner<S> par(g, std::vector<S>(300),
                      EngineOptions{workers, false});
    par.run(40, step, never);
    ASSERT_EQ(par.states().size(), serial.states().size());
    for (NodeId v = 0; v < 300; ++v)
      EXPECT_EQ(par.states()[v], serial.states()[v])
          << "workers=" << workers << " node=" << v;
  }
}

TEST(SyncRunnerFrontier, SameFixpointAndRoundsOnOddCycle) {
  const Graph g = cycle_graph(101);
  RoundLedger full, sparse;
  const auto c_full = color_trial_message_passing(
      g, 13, full, "trial", EngineOptions{1, false});
  const auto c_sparse = color_trial_message_passing(
      g, 13, sparse, "trial", EngineOptions{1, true});
  EXPECT_EQ(c_full, c_sparse);
  EXPECT_EQ(full.total(), sparse.total());

  RoundLedger mfull, msparse;
  const auto m_full =
      mis_message_passing(g, 21, mfull, "mis", EngineOptions{1, false});
  const auto m_sparse =
      mis_message_passing(g, 21, msparse, "mis", EngineOptions{1, true});
  EXPECT_EQ(m_full, m_sparse);
  EXPECT_EQ(mfull.total(), msparse.total());
}

TEST(SyncRunnerFrontier, SameFixpointAndRoundsOnCliqueBlowup) {
  const Graph g = bench::hard_instance(32, 12, 5).graph;
  RoundLedger full, sparse;
  const auto c_full = color_trial_message_passing(
      g, 3, full, "trial", EngineOptions{1, false});
  const auto c_sparse = color_trial_message_passing(
      g, 3, sparse, "trial", EngineOptions{1, true});
  EXPECT_EQ(c_full, c_sparse);
  EXPECT_EQ(full.total(), sparse.total());

  RoundLedger mfull, msparse;
  const auto m_full =
      mis_message_passing(g, 4, mfull, "mis", EngineOptions{4, false});
  const auto m_sparse =
      mis_message_passing(g, 4, msparse, "mis", EngineOptions{4, true});
  EXPECT_EQ(m_full, m_sparse);
  EXPECT_EQ(mfull.total(), msparse.total());
}

TEST(LedgerTime, TotalsAreMonotoneAndPhaseMerged) {
  RoundLedger l;
  double last = 0.0;
  for (int i = 0; i < 10; ++i) {
    l.charge_time(i % 2 == 0 ? "a" : "b", 0.5 * i);
    EXPECT_GE(l.time_total(), last);
    last = l.time_total();
  }
  EXPECT_DOUBLE_EQ(l.time_total(), l.phase_time("a") + l.phase_time("b"));
  EXPECT_DOUBLE_EQ(l.phase_time("missing"), 0.0);

  RoundLedger other;
  other.charge("a", 3);
  other.charge_time("a", 2.0);
  other.charge_time("c", 1.0);
  const double before = l.time_total();
  l.merge(other);
  EXPECT_DOUBLE_EQ(l.time_total(), before + 3.0);
  EXPECT_DOUBLE_EQ(l.phase_time("a"),
                   2.0 + 0.5 * (0 + 2 + 4 + 6 + 8));
  EXPECT_DOUBLE_EQ(l.phase_time("c"), 1.0);
  EXPECT_EQ(l.phase_total("a"), 3);

  // Engine algorithms charge both dimensions under the same phase label.
  RoundLedger run;
  mis_message_passing(cycle_graph(15), 1, run, "mis-mp");
  EXPECT_GT(run.total(), 0);
  EXPECT_GT(run.time_total(), 0.0);
  EXPECT_DOUBLE_EQ(run.time_total(), run.phase_time("mis-mp"));
  EXPECT_NE(run.json().find("\"ms\""), std::string::npos);
}

TEST(LedgerTime, ManyPhasesIndexedLookup) {
  RoundLedger l;
  for (int i = 0; i < 500; ++i) {
    l.charge("phase-" + std::to_string(i), i + 1);
    l.charge_time("phase-" + std::to_string(i), 0.25);
  }
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(l.phase_total("phase-" + std::to_string(i)), i + 1);
  EXPECT_EQ(l.phases().size(), 500u);
  EXPECT_DOUBLE_EQ(l.time_total(), 125.0);
}

}  // namespace
}  // namespace deltacolor
