// Checkpoint/resume layer: the JSONL SweepJournal (escape/parse
// round-trips, torn-line tolerance), the field/ledger codecs benches use
// for row payloads, and the SweepDriver's resume semantics — completed
// cells are served from the journal, quarantined cells re-run, and a
// resumed sweep's table is identical to an uninterrupted one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_support/codec.hpp"
#include "bench_support/journal.hpp"
#include "bench_support/sweep.hpp"
#include "local/ledger.hpp"

namespace deltacolor::bench {
namespace {

/// Unique-ish temp path per test; removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir().empty()
                              ? "/tmp/"
                              : ::testing::TempDir()) +
              "dc_journal_" + tag + ".jsonl") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SweepJournal, LineRoundTripsThroughEscaping) {
  JournalEntry entry;
  entry.key = "blowup/t=8\"quoted\"/alg=det/seed=3";
  entry.status = CellStatus::kRetried;
  entry.attempts = 2;
  entry.error = "line\nbreak\tand\\slash";
  entry.payload = std::string("a\x1f") + "b\x1f" + "1.5";
  const std::string line = SweepJournal::format_line(entry);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "journal lines must be single-line";
  JournalEntry back;
  ASSERT_TRUE(SweepJournal::parse_line(line, &back)) << line;
  EXPECT_EQ(back.key, entry.key);
  EXPECT_EQ(back.status, entry.status);
  EXPECT_EQ(back.attempts, entry.attempts);
  EXPECT_EQ(back.error, entry.error);
  EXPECT_EQ(back.payload, entry.payload);
}

TEST(SweepJournal, ParseRejectsGarbageAndTornLines) {
  JournalEntry out;
  EXPECT_FALSE(SweepJournal::parse_line("", &out));
  EXPECT_FALSE(SweepJournal::parse_line("not json at all", &out));
  // A line cut mid-write (process killed while flushing).
  JournalEntry entry;
  entry.key = "k";
  entry.status = CellStatus::kOk;
  const std::string line = SweepJournal::format_line(entry);
  EXPECT_FALSE(
      SweepJournal::parse_line(line.substr(0, line.size() / 2), &out));
}

TEST(SweepJournal, ResumeLoadsRecordsAndSkipsTornTail) {
  TempFile tmp("resume_load");
  {
    SweepJournal journal(tmp.path(), /*resume=*/false);
    JournalEntry a;
    a.key = "cell/0";
    a.status = CellStatus::kOk;
    a.payload = "42";
    journal.record(a);
    JournalEntry b;
    b.key = "cell/1";
    b.status = CellStatus::kQuarantined;
    b.attempts = 3;
    b.category = "engine-exception";
    b.error = "boom";
    journal.record(b);
  }
  {
    // Simulate a SIGKILL mid-write: append half a line.
    std::ofstream torn(tmp.path(), std::ios::app);
    torn << "{\"key\":\"cell/2\",\"status\":\"o";
  }
  SweepJournal journal(tmp.path(), /*resume=*/true);
  EXPECT_TRUE(journal.resuming());
  EXPECT_EQ(journal.loaded(), 2u);
  const JournalEntry* a = journal.lookup("cell/0");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, CellStatus::kOk);
  EXPECT_EQ(a->payload, "42");
  const JournalEntry* b = journal.lookup("cell/1");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, CellStatus::kQuarantined);
  EXPECT_EQ(b->error, "boom");
  EXPECT_EQ(journal.lookup("cell/2"), nullptr) << "torn line is dropped";
}

TEST(FieldCodec, WriterReaderRoundTrip) {
  const std::string text = FieldWriter()
                               .add(7)
                               .add(-3)
                               .add(2.5)
                               .add("tail with spaces")
                               .str();
  FieldReader in(text);
  std::int64_t a = 0, b = 0;
  double c = 0;
  std::string_view tail;
  ASSERT_TRUE(in.next_int(&a));
  ASSERT_TRUE(in.next_int(&b));
  ASSERT_TRUE(in.next_double(&c));
  ASSERT_TRUE(in.next(&tail));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, -3);
  EXPECT_DOUBLE_EQ(c, 2.5);
  EXPECT_EQ(tail, "tail with spaces");
  EXPECT_FALSE(in.next(&tail)) << "reader must report exhaustion";

  FieldReader bad("x\x1f" "1");
  std::int64_t n = 0;
  EXPECT_FALSE(bad.next_int(&n)) << "non-numeric field must fail";
}

TEST(FieldCodec, LedgerRoundTripPreservesPhases) {
  RoundLedger ledger;
  ledger.charge("phase1-heg", 12);
  ledger.charge("phase2-split", 7);
  ledger.charge("phase1-heg", 3);
  ledger.charge_time("cell", 1.25);
  const std::string text = encode_ledger(ledger);
  RoundLedger back;
  ASSERT_TRUE(decode_ledger(text, &back));
  EXPECT_EQ(back.total(), ledger.total());
  EXPECT_EQ(back.phase_total("phase1-heg"), 15);
  EXPECT_EQ(back.phase_total("phase2-split"), 7);
  EXPECT_DOUBLE_EQ(back.phase_time("cell"), 1.25);
  ASSERT_EQ(back.phases().size(), ledger.phases().size());
  for (std::size_t i = 0; i < back.phases().size(); ++i)
    EXPECT_EQ(back.phases()[i], ledger.phases()[i])
        << "first-charge order must survive the round-trip";

  RoundLedger scratch;
  EXPECT_FALSE(decode_ledger("no separators here", &scratch));
}

/// Cell function counting actual executions, so resume tests can prove
/// which cells were served from the journal.
struct CountingCells {
  std::atomic<int> executions{0};
  int operator()(std::size_t i, CellContext& ctx) {
    executions.fetch_add(1);
    ctx.ledger().charge("work", 1);
    return static_cast<int>(100 + i);
  }
};

CellCodec<int> int_codec() {
  return CellCodec<int>{
      [](const int& row) { return std::to_string(row); },
      [](std::string_view text, int* row) {
        char* rest = nullptr;
        const std::string buf(text);
        *row = static_cast<int>(std::strtol(buf.c_str(), &rest, 10));
        return rest != nullptr && *rest == '\0';
      }};
}

std::string cell_key(std::size_t i) {
  return "resume-test/cell=" + std::to_string(i);
}

TEST(SweepResume, CompletedCellsAreServedFromTheJournal) {
  TempFile tmp("served");
  const auto codec = int_codec();
  // First run: all six cells execute and are journaled.
  {
    SweepOptions opt;
    opt.workers = 1;
    opt.journal = std::make_shared<SweepJournal>(tmp.path(), false);
    SweepDriver driver(opt);
    CountingCells cells;
    const auto result = driver.run_cells<int>(
        6, [&](std::size_t i, CellContext& ctx) { return cells(i, ctx); },
        cell_key, &codec);
    EXPECT_EQ(cells.executions.load(), 6);
    EXPECT_TRUE(result.all_ok());
  }
  // Resumed run: zero executions, identical rows, outcomes marked
  // resumed, and the driver report says so.
  SweepOptions opt;
  opt.workers = 1;
  opt.journal = std::make_shared<SweepJournal>(tmp.path(), true);
  SweepDriver driver(opt);
  CountingCells cells;
  const auto result = driver.run_cells<int>(
      6, [&](std::size_t i, CellContext& ctx) { return cells(i, ctx); },
      cell_key, &codec);
  EXPECT_EQ(cells.executions.load(), 0)
      << "every cell must be served from the checkpoint";
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.rows[i], static_cast<int>(100 + i)) << i;
    EXPECT_TRUE(result.outcomes[i].resumed) << i;
    EXPECT_EQ(result.outcomes[i].status, CellStatus::kOk) << i;
  }
  EXPECT_NE(driver.report().find("resumed=6"), std::string::npos)
      << driver.report();
}

TEST(SweepResume, PartialJournalRunsOnlyTheMissingCells) {
  TempFile tmp("partial");
  const auto codec = int_codec();
  // Checkpoint only cells 0, 2, 4 — as if the first run was killed.
  {
    SweepJournal journal(tmp.path(), false);
    for (const std::size_t i : {0u, 2u, 4u}) {
      JournalEntry entry;
      entry.key = cell_key(i);
      entry.status = CellStatus::kOk;
      entry.payload = std::to_string(100 + i);
      journal.record(entry);
    }
  }
  SweepOptions opt;
  opt.workers = 1;
  opt.journal = std::make_shared<SweepJournal>(tmp.path(), true);
  SweepDriver driver(opt);
  CountingCells cells;
  const auto result = driver.run_cells<int>(
      6, [&](std::size_t i, CellContext& ctx) { return cells(i, ctx); },
      cell_key, &codec);
  EXPECT_EQ(cells.executions.load(), 3) << "only cells 1, 3, 5 execute";
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.rows[i], static_cast<int>(100 + i))
        << "resumed table must equal the uninterrupted one, cell " << i;
    EXPECT_EQ(result.outcomes[i].resumed, i % 2 == 0) << i;
  }
}

TEST(SweepResume, QuarantinedCellsReRunOnResume) {
  TempFile tmp("requarantine");
  const auto codec = int_codec();
  {
    SweepJournal journal(tmp.path(), false);
    JournalEntry bad;
    bad.key = cell_key(1);
    bad.status = CellStatus::kQuarantined;
    bad.attempts = 2;
    bad.category = "engine-exception";
    bad.error = "was failing last run";
    journal.record(bad);
  }
  SweepOptions opt;
  opt.workers = 1;
  opt.journal = std::make_shared<SweepJournal>(tmp.path(), true);
  SweepDriver driver(opt);
  CountingCells cells;
  const auto result = driver.run_cells<int>(
      2, [&](std::size_t i, CellContext& ctx) { return cells(i, ctx); },
      cell_key, &codec);
  EXPECT_EQ(cells.executions.load(), 2)
      << "the quarantined cell gets another shot";
  EXPECT_EQ(result.rows[1], 101);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kOk);
  EXPECT_FALSE(result.outcomes[1].resumed);
}

TEST(SweepResume, ForeignPayloadFallsBackToReRun) {
  TempFile tmp("foreign");
  const auto codec = int_codec();
  {
    SweepJournal journal(tmp.path(), false);
    JournalEntry stale;
    stale.key = cell_key(0);
    stale.status = CellStatus::kOk;
    stale.payload = "not-an-int (schema changed between versions)";
    journal.record(stale);
  }
  SweepOptions opt;
  opt.workers = 1;
  opt.journal = std::make_shared<SweepJournal>(tmp.path(), true);
  SweepDriver driver(opt);
  CountingCells cells;
  const auto result = driver.run_cells<int>(
      1, [&](std::size_t i, CellContext& ctx) { return cells(i, ctx); },
      cell_key, &codec);
  EXPECT_EQ(cells.executions.load(), 1)
      << "an undecodable payload re-runs instead of corrupting the row";
  EXPECT_EQ(result.rows[0], 100);
}

TEST(SweepResume, JournalingAloneKeepsLegacyThrowSemantics) {
  // A journal without quarantine still rethrows failures — robustness
  // features compose, they are not implicitly coupled.
  TempFile tmp("throws");
  SweepOptions opt;
  opt.workers = 1;
  opt.journal = std::make_shared<SweepJournal>(tmp.path(), false);
  SweepDriver driver(opt);
  EXPECT_THROW(
      (void)driver.run<int>(2,
                            [](std::size_t i, CellContext&) {
                              if (i == 1)
                                throw std::runtime_error("cell 1 fails");
                              return 0;
                            }),
      std::runtime_error);
}

}  // namespace
}  // namespace deltacolor::bench
