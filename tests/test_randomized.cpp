// End-to-end tests for the randomized Delta-coloring algorithm
// (Theorem 2 / Algorithm 4): validity across instance families and seeds,
// shattering behavior, and the reserved-color mechanics.
#include <gtest/gtest.h>

#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "randomized/randomized_coloring.hpp"

namespace deltacolor {
namespace {

CliqueInstance blowup(int cliques, int delta, int s, double easy,
                      std::uint64_t seed) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = s;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

struct RCase {
  int cliques, delta;
  double easy;
  std::uint64_t graph_seed, algo_seed;
};

class RandomizedEndToEnd : public ::testing::TestWithParam<RCase> {};

TEST_P(RandomizedEndToEnd, ProducesValidDeltaColoring) {
  const RCase c = GetParam();
  const CliqueInstance inst =
      blowup(c.cliques, c.delta, c.delta, c.easy, c.graph_seed);
  const auto res = randomized_delta_color(
      inst.graph, scaled_randomized_options(c.delta, c.algo_seed));
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid);
  EXPECT_TRUE(is_delta_coloring(inst.graph, res.color));
  EXPECT_EQ(res.stats.tnodes_placed + res.stats.failed_cliques,
            res.stats.num_hard);
}

INSTANTIATE_TEST_SUITE_P(
    DenseInstances, RandomizedEndToEnd,
    ::testing::Values(RCase{16, 16, 0.0, 1, 10}, RCase{16, 16, 0.0, 1, 11},
                      RCase{16, 16, 0.0, 2, 12}, RCase{24, 12, 0.0, 3, 13},
                      RCase{16, 16, 0.3, 4, 14}, RCase{16, 16, 1.0, 5, 15},
                      RCase{32, 16, 0.1, 6, 16}, RCase{12, 32, 0.0, 7, 17}));

TEST(Randomized, ShatteringLeavesOnlySmallComponents) {
  const CliqueInstance inst = blowup(48, 16, 16, 0.0, 21);
  const auto res =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 5));
  ASSERT_TRUE(res.valid);
  // A clique whose members host another T-node's pair vertex legitimately
  // fails to place its own (all its members neighbor a color-0 vertex),
  // but the coverage layers around nearby slack vertices absorb it: the
  // uncovered remainder must be a small fraction of the graph.
  EXPECT_GT(res.stats.tnodes_placed, res.stats.num_hard / 4);
  EXPECT_LT(res.stats.max_component_vertices,
            static_cast<int>(inst.graph.num_nodes()) / 4 + 1);
}

TEST(Randomized, PairColorIsReservedColorZero) {
  const CliqueInstance inst = blowup(24, 16, 16, 0.0, 31);
  const auto res =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 7));
  ASSERT_TRUE(res.valid);
  // Count color-0 vertices: at least two per placed T-node.
  int zero = 0;
  for (const Color c : res.color) zero += c == 0 ? 1 : 0;
  EXPECT_GE(zero, 2 * res.stats.tnodes_placed);
}

TEST(Randomized, DifferentSeedsDifferentColoringsBothValid) {
  const CliqueInstance inst = blowup(16, 16, 16, 0.2, 41);
  const auto r1 =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 1));
  const auto r2 =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 2));
  ASSERT_TRUE(r1.valid && r2.valid);
  EXPECT_NE(r1.color, r2.color);  // overwhelmingly likely
}

TEST(Randomized, SparseGraphRejected) {
  Graph g = random_regular(64, 6, 3);
  EXPECT_THROW(randomized_delta_color(g), std::logic_error);
}

TEST(Randomized, RoundsSublinearInN) {
  const CliqueInstance small = blowup(16, 16, 16, 0.0, 51);
  const CliqueInstance large = blowup(64, 16, 16, 0.0, 51);
  const auto rs =
      randomized_delta_color(small.graph, scaled_randomized_options(16, 3));
  const auto rl =
      randomized_delta_color(large.graph, scaled_randomized_options(16, 3));
  ASSERT_TRUE(rs.valid && rl.valid);
  EXPECT_LT(rl.ledger.total(), 3 * rs.ledger.total());
}

TEST(Randomized, PaperExactParametersAtDelta63) {
  // Full Algorithm 4 at the paper's epsilon = 1/63 (no scaling), the
  // smallest Delta the constants admit.
  const CliqueInstance inst = blowup(8, 63, 63, 0.0, 2);
  RandomizedOptions opt;  // defaults: epsilon = 1/63
  opt.seed = 5;
  const auto res = randomized_delta_color(inst.graph, opt);
  EXPECT_TRUE(res.dense);
  EXPECT_TRUE(res.valid);
  EXPECT_GT(res.stats.tnodes_placed, 0);
}

TEST(Randomized, Fhm23GuardNeverFiresAtSimulationScale) {
  const CliqueInstance inst = blowup(12, 16, 16, 0.0, 61);
  const auto res =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 9));
  EXPECT_FALSE(res.stats.fhm23_branch);
}

}  // namespace
}  // namespace deltacolor
